// Reproduces Figure 3: application resilience difference between serial
// and parallel executions. For each benchmark, the success rate of
//   - serial execution with x errors injected into the common
//     computation, versus
//   - parallel execution (8 ranks) conditioned on x MPI processes being
//     contaminated,
// for x = 1..8. Parallel entries are "-" when the campaign never observed
// that contamination count (the paper's missing bars, e.g. LU 2-6).
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "harness/campaign.hpp"

int main() {
  using namespace resilience;
  const auto cfg = util::BenchConfig::from_env();
  bench::print_header(
      "Figure 3: serial multi-error success vs parallel conditional success "
      "(8 ranks)",
      cfg);

  for (const auto& app : bench::paper_apps()) {
    // Parallel campaign at 8 ranks: conditional success by contamination.
    harness::DeploymentConfig par;
    par.nranks = 8;
    par.trials = cfg.trials;
    par.seed = cfg.seed;
    const auto parallel = harness::CampaignRunner::run(*app, par);

    std::cout << "-- " << app->label() << " --\n";
    util::TablePrinter table(
        {"x", "serial, x errors", "parallel, x ranks contaminated",
         "parallel tests at x"});
    for (int x = 1; x <= 8; ++x) {
      harness::DeploymentConfig ser;
      ser.nranks = 1;
      ser.errors_per_test = x;
      ser.scenario.regions = fsefi::RegionMask::Common;
      ser.trials = cfg.trials;
      ser.seed = util::derive_seed(cfg.seed, static_cast<std::uint64_t>(x));
      const auto serial = harness::CampaignRunner::run(*app, ser);

      const auto& cond =
          parallel.by_contamination[static_cast<std::size_t>(x)];
      table.add_row({std::to_string(x),
                     bench::pct(serial.overall.success_rate()),
                     cond.trials > 0 ? bench::pct(cond.success_rate()) : "-",
                     std::to_string(cond.trials)});
    }
    table.print();
    std::cout << "\n";
  }
  std::cout << "Paper shape: serial and parallel curves similar for CG / "
               "MiniFE / PENNANT, similar variance for MG, different for FT "
               "and LU; several parallel contamination counts unobserved.\n";
  return 0;
}
