// Reproduces Figures 1 and 2: error-propagation profiles across MPI
// processes for CG (Fig. 1) and FT (Fig. 2) —
//   (a) the small scale (8 ranks),
//   (b) the large scale (64 ranks), and
//   (c) the large scale's 64 cases evenly split into 8 groups,
// plus the cosine similarity between (a) and (c).
#include "bench_common.hpp"
#include "harness/campaign.hpp"

namespace {

using namespace resilience;

void propagation_figure(const apps::App& app, const util::BenchConfig& cfg) {
  harness::DeploymentConfig small_dep;
  small_dep.nranks = 8;
  small_dep.trials = cfg.trials;
  small_dep.seed = cfg.seed;
  harness::DeploymentConfig large_dep = small_dep;
  large_dep.nranks = 64;

  const auto small = harness::CampaignRunner::run(app, small_dep);
  const auto large = harness::CampaignRunner::run(app, large_dep);
  const auto small_prof = core::PropagationProfile::from_campaign(small);
  const auto large_prof = core::PropagationProfile::from_campaign(large);
  const auto grouped = core::group_propagation(large_prof.r, 8);

  std::cout << "-- " << app.label() << " --\n";
  util::TablePrinter table({"group (ranks contaminated)", "(a) 8 ranks",
                            "(c) 64 ranks grouped by 8"});
  for (int g = 1; g <= 8; ++g) {
    const std::string label = std::to_string((g - 1) * 8 + 1) + "-" +
                              std::to_string(g * 8) + "  (small: " +
                              std::to_string(g) + ")";
    table.add_row({label,
                   bench::pct(small_prof.r[static_cast<std::size_t>(g - 1)]),
                   bench::pct(grouped[static_cast<std::size_t>(g - 1)])});
  }
  table.print();

  std::cout << "(b) raw 64-rank cases with nonzero mass: ";
  for (int x = 1; x <= 64; ++x) {
    const double r = large_prof.r[static_cast<std::size_t>(x - 1)];
    if (r > 0.0) std::cout << x << ":" << bench::pct(r) << " ";
  }
  std::cout << "\ncosine similarity (a) vs (c): "
            << bench::fmt(core::propagation_similarity(small_prof, large_prof))
            << "\n\n";
}

}  // namespace

int main() {
  const auto cfg = resilience::util::BenchConfig::from_env();
  resilience::bench::print_header(
      "Figures 1 & 2: error propagation across MPI processes, small (8) vs "
      "large (64) scale",
      cfg);
  propagation_figure(*resilience::apps::make_app(resilience::apps::AppId::CG),
                     cfg);
  propagation_figure(*resilience::apps::make_app(resilience::apps::AppId::FT),
                     cfg);
  std::cout << "Paper shape: both benchmarks bimodal (mass at 1 and at all "
               "ranks); (a) and (c) nearly identical, cosine ~0.999.\n";
  return 0;
}
