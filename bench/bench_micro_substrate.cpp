// Micro-benchmarks of the substrates (google-benchmark): the cost of the
// instrumented Real relative to plain double, the injector's hot path,
// and simmpi messaging/collective latency across job sizes — the numbers
// that determine how long a fault-injection campaign takes.
#include <benchmark/benchmark.h>

#include <vector>

#include "fsefi/real.hpp"
#include "fsefi/transport.hpp"
#include "simmpi/runtime.hpp"

namespace {

using resilience::fsefi::ContextGuard;
using resilience::fsefi::FaultContext;
using resilience::fsefi::Real;
using resilience::simmpi::Comm;
using resilience::simmpi::Runtime;

void BM_DoubleAxpy(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<double> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += 1.000001 * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DoubleAxpy);

void BM_RealAxpyUninstrumented(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyUninstrumented);

void BM_RealAxpyUnderContext(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FaultContext ctx;
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyUnderContext);

void BM_RealAxpyArmedPlan(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FaultContext ctx;
  resilience::fsefi::InjectionPlan plan;
  plan.points = {{.op_index = ~0ULL, .operand = 0, .bit = 0}};  // never fires
  ctx.arm(std::move(plan));
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyArmedPlan);

void BM_JobSpawnJoin(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto result = Runtime::run(ranks, [](Comm&) {});
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_JobSpawnJoin)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t count = bytes / sizeof(double);
  for (auto _ : state) {
    Runtime::run(2, [count](Comm& comm) {
      std::vector<double> buf(count, 1.0);
      if (comm.rank() == 0) {
        comm.send(1, 0, std::span<const double>(buf));
        comm.recv(1, 1, std::span<double>(buf));
      } else {
        comm.recv(0, 0, std::span<double>(buf));
        comm.send(0, 1, std::span<const double>(buf));
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(65536);

void BM_AllreduceRound(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime::run(ranks, [](Comm& comm) {
      double acc = 0.0;
      for (int round = 0; round < 16; ++round) {
        acc += comm.allreduce_value(1.0 + comm.rank());
      }
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AllreduceRound)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
