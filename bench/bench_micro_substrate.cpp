// Micro-benchmarks of the substrates (google-benchmark): the cost of the
// instrumented Real relative to plain double, the injector's hot path,
// and simmpi messaging/collective latency across job sizes — the numbers
// that determine how long a fault-injection campaign takes.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "fsefi/real.hpp"
#include "fsefi/transport.hpp"
#include "simmpi/rank_team.hpp"
#include "simmpi/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using resilience::fsefi::ContextGuard;
using resilience::fsefi::FaultContext;
using resilience::fsefi::Real;
using resilience::simmpi::Comm;
using resilience::simmpi::RankTeamPool;
using resilience::simmpi::Runtime;

void BM_DoubleAxpy(benchmark::State& state) {
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<double> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += 1.000001 * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DoubleAxpy);

void BM_RealAxpyUninstrumented(benchmark::State& state) {
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyUninstrumented)->Repetitions(9);

void BM_RealAxpyUnderContext(benchmark::State& state) {
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FaultContext ctx;
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyUnderContext)->Repetitions(9);

void BM_RealAxpyArmedPlan(benchmark::State& state) {
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FaultContext ctx;
  resilience::fsefi::InjectionPlan plan;
  plan.points = {{.op_index = ~0ULL, .operand = 0, .bit = 0}};  // never fires
  ctx.arm(std::move(plan));
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyArmedPlan)->Repetitions(9);

// ---- telemetry overhead (DESIGN.md §10) ------------------------------------
// Telemetry must cost one branch when disabled: the TelemetryOff leg pins
// set_metrics_enabled(false) around the default unarmed axpy, and
// merge_bench.py derives telemetry_overhead.disabled = TelemetryOff /
// UnderContext (acceptance bar <= 1.05). The Scoped leg arms a
// never-firing plan under a live metric scope, so every countdown refill
// pays an enabled count() — the heaviest per-op-stream telemetry cost a
// campaign trial sees.

/// Scoped override of the metrics switch; restores the default on exit.
struct MetricsMode {
  explicit MetricsMode(bool enabled) {
    resilience::telemetry::set_metrics_enabled(enabled);
  }
  ~MetricsMode() { resilience::telemetry::set_metrics_enabled(true); }
};

void BM_RealAxpyTelemetryOff(benchmark::State& state) {
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  MetricsMode mode(false);
  FaultContext ctx;
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyTelemetryOff)->Repetitions(9);

void BM_RealAxpyTelemetryScoped(benchmark::State& state) {
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  resilience::telemetry::MetricScope scope;
  resilience::telemetry::ScopeGuard scope_guard(&scope);
  FaultContext ctx;
  resilience::fsefi::InjectionPlan plan;
  plan.points = {{.op_index = ~0ULL, .operand = 0, .bit = 0}};  // never fires
  ctx.arm(std::move(plan));
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyTelemetryScoped)->Repetitions(9);

// ---- instrumented-arithmetic fast path (DESIGN.md §8) ----------------------
// The per-op legs above run in the production configuration (countdown
// fast path). The *Reference legs below pin RESILIENCE_FAST_REAL=0 — the
// pre-countdown implementation — so tools/merge_bench.py can derive
// real_scalar_speedup (acceptance bar: >= 3x unarmed) and
// blocked_dot_speedup (>= 5x) from the same dump.

/// Scoped override of the fast-real toggle; contexts latch it at
/// construction/reset/arm, so set it before creating the context.
struct FastRealMode {
  explicit FastRealMode(bool fast) {
    resilience::fsefi::set_fast_real_enabled(fast);
  }
  ~FastRealMode() { resilience::fsefi::set_fast_real_enabled(true); }
};

void BM_RealAxpyUnderContextReference(benchmark::State& state) {
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FastRealMode mode(false);
  FaultContext ctx;
  ctx.reset();
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyUnderContextReference)->Repetitions(9);

void BM_RealAxpyArmedPlanReference(benchmark::State& state) {
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FastRealMode mode(false);
  FaultContext ctx;
  resilience::fsefi::InjectionPlan plan;
  plan.points = {{.op_index = ~0ULL, .operand = 0, .bit = 0}};  // never fires
  ctx.arm(std::move(plan));
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyArmedPlanReference)->Repetitions(9);

// ---- seed-path baseline ----------------------------------------------------
// The *Reference legs above still benefit from this repo's inlined
// thread-local context lookup; the seed fetched the context through an
// out-of-line call (current_context lived in fault_context.cpp) on every
// instrumented operation. The SeedPath legs reproduce that pre-PR call
// structure — out-of-line lookup per op + the pre-countdown per-op
// bookkeeping (preserved as the reference path) — so merge_bench.py can
// report the speedup this PR actually delivered over the seed.

__attribute__((noinline)) FaultContext* seed_context_lookup() {
  return resilience::fsefi::current_context();
}

// seed_binary/seed_eval replicate header-inline seed code, so only the
// context lookup may stay out of line.
__attribute__((always_inline)) inline double seed_eval(
    resilience::fsefi::OpKind kind, double a, double b) {
  using resilience::fsefi::OpKind;
  switch (kind) {
    case OpKind::Add:
      return a + b;
    case OpKind::Mul:
      return a * b;
    default:
      std::abort();  // the axpy loop only dispatches Add and Mul
  }
}

/// One instrumented op exactly as the seed's Real::binary performed it.
__attribute__((always_inline)) inline Real seed_binary(
    resilience::fsefi::OpKind kind, Real a, Real b) {
  double av = a.value(), bv = b.value();
  if (FaultContext* ctx = seed_context_lookup()) {
    ctx->on_op(kind, av, bv);
    const Real r = Real::corrupted(seed_eval(kind, av, bv),
                                   seed_eval(kind, a.shadow(), b.shadow()));
    ctx->observe_result(r.value(), r.shadow());
    return r;
  }
  return Real::corrupted(seed_eval(kind, av, bv),
                         seed_eval(kind, a.shadow(), b.shadow()));
}

void BM_RealAxpySeedPath(benchmark::State& state) {
  using resilience::fsefi::OpKind;
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FastRealMode mode(false);
  FaultContext ctx;
  ctx.reset();
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = seed_binary(OpKind::Add,
                         seed_binary(OpKind::Mul, Real(1.000001), x[i]), y[i]);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpySeedPath)->Repetitions(9);

void BM_RealAxpySeedPathArmed(benchmark::State& state) {
  using resilience::fsefi::OpKind;
  const std::size_t n = 1024;  // L1-resident: measures instrumentation, not cache
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FastRealMode mode(false);
  FaultContext ctx;
  resilience::fsefi::InjectionPlan plan;
  plan.points = {{.op_index = ~0ULL, .operand = 0, .bit = 0}};  // never fires
  ctx.arm(std::move(plan));
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = seed_binary(OpKind::Add,
                         seed_binary(OpKind::Mul, Real(1.000001), x[i]), y[i]);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpySeedPathArmed)->Repetitions(9);

void BM_DotPlainDouble(benchmark::State& state) {
  const std::size_t n = 4096;  // matches the LocalDot legs below
  std::vector<double> a(n, 1.5), b(n, 0.75);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DotPlainDouble);

/// The blocked local_dot kernel under an unarmed context (the golden
/// pre-pass configuration): quiet windows run as raw double arithmetic.
void BM_LocalDotUnderContext(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> a(n, Real(1.5)), b(n, Real(0.75));
  FaultContext ctx;
  ctx.reset();
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    Real acc = resilience::apps::local_dot(a, b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_LocalDotUnderContext)->Repetitions(9);

/// Same kernel with a never-firing plan armed: the campaign configuration
/// between injections.
void BM_LocalDotArmedPlan(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> a(n, Real(1.5)), b(n, Real(0.75));
  FaultContext ctx;
  resilience::fsefi::InjectionPlan plan;
  plan.points = {{.op_index = ~0ULL, .operand = 0, .bit = 0}};
  ctx.arm(std::move(plan));
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    Real acc = resilience::apps::local_dot(a, b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_LocalDotArmedPlan)->Repetitions(9);

/// The seed behavior: quiet_ops() is 0 on the reference path, so the same
/// kernel degrades to per-op instrumented arithmetic.
void BM_LocalDotReference(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> a(n, Real(1.5)), b(n, Real(0.75));
  FastRealMode mode(false);
  FaultContext ctx;
  ctx.reset();
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    Real acc = resilience::apps::local_dot(a, b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_LocalDotReference)->Repetitions(9);

// Per-trial job launch latency on the pooled rank teams. Both legs pin
// the threads core — the team pool is its launch path; under the fiber
// core a job's thread footprint is the worker count, not nranks, so the
// pooled-vs-unpooled ratio would degenerate. Compare against
// BM_JobSpawnJoinUnpooled at the same rank count: the acceptance bar is
// >= 2x at nranks >= 8, computed by tools/merge_bench.py as
// launch_speedup in BENCH_substrate.json.
void BM_JobSpawnJoin(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  resilience::simmpi::detail::set_scheduler_fibers_enabled(false);
  RankTeamPool::set_enabled(true);
  RankTeamPool::instance().prewarm(ranks, 1);
  for (auto _ : state) {
    const auto result = Runtime::run(ranks, [](Comm&) {});
    benchmark::DoNotOptimize(result.ok);
  }
  resilience::simmpi::detail::reset_scheduler_fibers_enabled();
}
BENCHMARK(BM_JobSpawnJoin)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

/// The seed behavior: spawn and join nranks fresh std::threads per job.
void BM_JobSpawnJoinUnpooled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  resilience::simmpi::detail::set_scheduler_fibers_enabled(false);
  RankTeamPool::set_enabled(false);
  for (auto _ : state) {
    const auto result = Runtime::run(ranks, [](Comm&) {});
    benchmark::DoNotOptimize(result.ok);
  }
  RankTeamPool::set_enabled(true);
  resilience::simmpi::detail::reset_scheduler_fibers_enabled();
}
BENCHMARK(BM_JobSpawnJoinUnpooled)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t count = bytes / sizeof(double);
  std::uint64_t allocs = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto result = Runtime::run(2, [count](Comm& comm) {
      std::vector<double> buf(count, 1.0);
      for (int round = 0; round < 16; ++round) {
        if (comm.rank() == 0) {
          comm.send(1, 0, std::span<const double>(buf));
          comm.recv(1, 1, std::span<double>(buf));
        } else {
          comm.recv(0, 0, std::span<double>(buf));
          comm.send(0, 1, std::span<const double>(buf));
        }
      }
    });
    allocs += result.pool_allocs;
    messages += result.messages_sent;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32 *
                          static_cast<std::int64_t>(bytes));
  // The envelope-pool acceptance metric: payload allocations per message
  // (the seed allocated 1.0; the freelist drives it toward 1/messages).
  state.counters["allocs_per_msg"] =
      benchmark::Counter(static_cast<double>(allocs) /
                         static_cast<double>(messages ? messages : 1));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(65536);

// ---- execution cores (DESIGN.md §11) ---------------------------------------
// The legs below compare the fiber scheduler (fused collectives, the
// production configuration) against the threads reference core.
// tools/merge_bench.py derives:
//   collective_speedup.<n>   fused fiber allreduce vs the threads-core
//                            mailbox decomposition (bar: >= 1.0x at every
//                            benched rank count)
//   scheduler_speedup.collective.<n> and .p2p.<n>
//                            whole-job fibers-vs-threads wall time at
//                            16..1024 ranks

/// Scoped execution-core selection; restores env/default resolution.
struct SchedulerMode {
  explicit SchedulerMode(bool fibers) {
    resilience::simmpi::detail::set_scheduler_fibers_enabled(fibers);
  }
  ~SchedulerMode() {
    resilience::simmpi::detail::reset_scheduler_fibers_enabled();
  }
};

void allreduce_rounds(Comm& comm) {
  double acc = 0.0;
  for (int round = 0; round < 16; ++round) {
    acc += comm.allreduce_value(1.0 + comm.rank());
  }
  benchmark::DoNotOptimize(acc);
}

void BM_AllreduceRound(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  SchedulerMode mode(/*fibers=*/true);
  resilience::simmpi::detail::set_fused_collectives_enabled(true);
  for (auto _ : state) {
    Runtime::run(ranks, allreduce_rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AllreduceRound)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

/// The seed behavior: the threads core decomposing the same collective
/// into mailbox p2p messages.
void BM_AllreduceRoundMailbox(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  SchedulerMode mode(/*fibers=*/false);
  for (auto _ : state) {
    Runtime::run(ranks, allreduce_rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AllreduceRoundMailbox)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

// Whole-job scheduler legs at campaign scale. Collective-heavy and
// point-to-point-heavy bodies, 16 to 1024 ranks: the rank counts where
// thread-per-rank first strains (64) and then drowns (1024) a small
// host. Each pair runs the identical body, so the ratio is purely the
// execution core.

void sched_collective_body(Comm& comm) {
  double acc = 0.0;
  for (int round = 0; round < 4; ++round) {
    acc += comm.allreduce_value(1.0 + comm.rank());
    comm.barrier();
  }
  benchmark::DoNotOptimize(acc);
}

void sched_p2p_body(Comm& comm) {
  const int right = (comm.rank() + 1) % comm.size();
  const int left = (comm.rank() + comm.size() - 1) % comm.size();
  double token = comm.rank();
  for (int round = 0; round < 4; ++round) {
    double from_left = 0.0;
    comm.sendrecv(right, 1, std::span<const double>(&token, 1), left, 1,
                  std::span<double>(&from_left, 1));
    token = from_left;
  }
  benchmark::DoNotOptimize(token);
}

void run_sched_leg(benchmark::State& state, bool fibers,
                   void (*body)(Comm&)) {
  const int ranks = static_cast<int>(state.range(0));
  SchedulerMode mode(fibers);
  for (auto _ : state) {
    const auto result = Runtime::run(ranks, body);
    benchmark::DoNotOptimize(result.ok);
  }
}

void BM_SchedCollectiveFibers(benchmark::State& state) {
  run_sched_leg(state, /*fibers=*/true, sched_collective_body);
}
BENCHMARK(BM_SchedCollectiveFibers)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SchedCollectiveThreads(benchmark::State& state) {
  run_sched_leg(state, /*fibers=*/false, sched_collective_body);
}
BENCHMARK(BM_SchedCollectiveThreads)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SchedPointToPointFibers(benchmark::State& state) {
  run_sched_leg(state, /*fibers=*/true, sched_p2p_body);
}
BENCHMARK(BM_SchedPointToPointFibers)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SchedPointToPointThreads(benchmark::State& state) {
  run_sched_leg(state, /*fibers=*/false, sched_p2p_body);
}
BENCHMARK(BM_SchedPointToPointThreads)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): default the JSON dump to
// BENCH_micro_substrate.json (tools/merge_bench.py folds it into
// BENCH_substrate.json) while keeping every --benchmark_* flag working.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_substrate.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  // The stock library_build_type context field describes how the
  // google-benchmark *library* was compiled, not this binary; stamp the
  // binary's own optimization level so merge_bench.py can refuse
  // unoptimized dumps regardless of how the prebuilt library was built.
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("binary_build_type", "release");
#else
  benchmark::AddCustomContext("binary_build_type", "debug");
#endif
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
