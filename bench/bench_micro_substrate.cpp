// Micro-benchmarks of the substrates (google-benchmark): the cost of the
// instrumented Real relative to plain double, the injector's hot path,
// and simmpi messaging/collective latency across job sizes — the numbers
// that determine how long a fault-injection campaign takes.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "fsefi/real.hpp"
#include "fsefi/transport.hpp"
#include "simmpi/rank_team.hpp"
#include "simmpi/rendezvous.hpp"
#include "simmpi/runtime.hpp"

namespace {

using resilience::fsefi::ContextGuard;
using resilience::fsefi::FaultContext;
using resilience::fsefi::Real;
using resilience::simmpi::Comm;
using resilience::simmpi::RankTeamPool;
using resilience::simmpi::Runtime;

void BM_DoubleAxpy(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<double> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += 1.000001 * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DoubleAxpy);

void BM_RealAxpyUninstrumented(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyUninstrumented);

void BM_RealAxpyUnderContext(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FaultContext ctx;
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyUnderContext);

void BM_RealAxpyArmedPlan(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<Real> x(n, Real(1.5)), y(n, Real(0.5));
  FaultContext ctx;
  resilience::fsefi::InjectionPlan plan;
  plan.points = {{.op_index = ~0ULL, .operand = 0, .bit = 0}};  // never fires
  ctx.arm(std::move(plan));
  ContextGuard guard(&ctx);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += Real(1.000001) * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RealAxpyArmedPlan);

// Per-trial job launch latency on the pooled rank teams (the production
// path). Compare against BM_JobSpawnJoinUnpooled at the same rank count:
// the ISSUE's acceptance bar is >= 2x at nranks >= 8, computed by
// tools/merge_bench.py as launch_speedup in BENCH_substrate.json.
void BM_JobSpawnJoin(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  RankTeamPool::set_enabled(true);
  RankTeamPool::instance().prewarm(ranks, 1);
  for (auto _ : state) {
    const auto result = Runtime::run(ranks, [](Comm&) {});
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_JobSpawnJoin)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

/// The seed behavior: spawn and join nranks fresh std::threads per job.
void BM_JobSpawnJoinUnpooled(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  RankTeamPool::set_enabled(false);
  for (auto _ : state) {
    const auto result = Runtime::run(ranks, [](Comm&) {});
    benchmark::DoNotOptimize(result.ok);
  }
  RankTeamPool::set_enabled(true);
}
BENCHMARK(BM_JobSpawnJoinUnpooled)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t count = bytes / sizeof(double);
  std::uint64_t allocs = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto result = Runtime::run(2, [count](Comm& comm) {
      std::vector<double> buf(count, 1.0);
      for (int round = 0; round < 16; ++round) {
        if (comm.rank() == 0) {
          comm.send(1, 0, std::span<const double>(buf));
          comm.recv(1, 1, std::span<double>(buf));
        } else {
          comm.recv(0, 0, std::span<double>(buf));
          comm.send(0, 1, std::span<const double>(buf));
        }
      }
    });
    allocs += result.buffer_allocs;
    messages += result.messages_sent;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32 *
                          static_cast<std::int64_t>(bytes));
  // The envelope-pool acceptance metric: payload allocations per message
  // (the seed allocated 1.0; the freelist drives it toward 1/messages).
  state.counters["allocs_per_msg"] =
      benchmark::Counter(static_cast<double>(allocs) /
                         static_cast<double>(messages ? messages : 1));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(65536);

void BM_AllreduceRound(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  resilience::simmpi::detail::set_fast_collectives_enabled(true);
  for (auto _ : state) {
    Runtime::run(ranks, [](Comm& comm) {
      double acc = 0.0;
      for (int round = 0; round < 16; ++round) {
        acc += comm.allreduce_value(1.0 + comm.rank());
      }
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AllreduceRound)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

/// The seed behavior: the same collective decomposed into mailbox p2p
/// messages (RESILIENCE_FAST_COLLECTIVES=0).
void BM_AllreduceRoundMailbox(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  resilience::simmpi::detail::set_fast_collectives_enabled(false);
  for (auto _ : state) {
    Runtime::run(ranks, [](Comm& comm) {
      double acc = 0.0;
      for (int round = 0; round < 16; ++round) {
        acc += comm.allreduce_value(1.0 + comm.rank());
      }
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
  resilience::simmpi::detail::set_fast_collectives_enabled(true);
}
BENCHMARK(BM_AllreduceRoundMailbox)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): default the JSON dump to
// BENCH_micro_substrate.json (tools/merge_bench.py folds it into
// BENCH_substrate.json) while keeping every --benchmark_* flag working.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_substrate.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
