// Reproduces the Section 1 motivation numbers: parallel execution runs
// more dynamic instructions than serial execution of the same input
// problem, and fault-injection time grows accordingly — the cost argument
// for modeling instead of measuring at large scale.
//
// Paper (NPB CG, F-SEFI): 4 MPI processes execute +74.5% instructions vs
// serial; fault-injection time +58%; plain execution time differs by 15%.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "apps/ft.hpp"
#include "bench_common.hpp"
#include "harness/campaign.hpp"
#include "harness/checkpoint.hpp"
#include "harness/executor.hpp"
#include "harness/golden_store.hpp"
#include "shard/coordinator.hpp"
#include "shard/protocol.hpp"
#include "shard/worker.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

/// External wall-clock of one campaign run (the executor's own
/// wall_seconds reports serial-equivalent cost, which by design does not
/// show the speedup).
double time_campaign(const resilience::apps::App& app,
                     resilience::harness::DeploymentConfig dep) {
  const auto start = std::chrono::steady_clock::now();
  (void)resilience::harness::CampaignRunner::run(app, dep);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace resilience;
  // The sharded leg's coordinator re-execs this binary as its worker
  // processes; the worker hook must run before anything else.
  if (const int rc = shard::maybe_worker_main(argc, argv); rc >= 0) {
    return rc;
  }
  const auto cfg = util::BenchConfig::from_env(/*default_trials=*/200);
  bench::print_header(
      "Section 1 motivation: instruction and fault-injection-time growth "
      "with scale (CG)",
      cfg);

  const auto app = apps::make_app(apps::AppId::CG);

  util::TablePrinter table({"deployment", "dynamic FP ops", "vs serial",
                            "messages/run", "FI wall time", "vs serial"});
  util::JsonArray deployments;
  double serial_ops = 0.0, serial_time = 0.0;
  for (int ranks : {1, 4, 8}) {
    harness::DeploymentConfig dep;
    dep.nranks = ranks;
    dep.trials = cfg.trials;
    dep.seed = cfg.seed;
    const auto campaign = harness::CampaignRunner::run(*app, dep);
    double total_ops = 0.0;
    for (const auto& prof : campaign.golden.profiles) {
      total_ops += static_cast<double>(prof.total());
    }
    // One clean run's transport volume (the other cost that scales).
    const auto probe = harness::run_app_once(*app, ranks, /*plans=*/{});
    if (ranks == 1) {
      serial_ops = total_ops;
      serial_time = campaign.wall_seconds;
    }
    table.add_row(
        {std::to_string(ranks) + (ranks == 1 ? " rank (serial)" : " ranks"),
         bench::fmt(total_ops, 0),
         ranks == 1 ? "-" : "+" + bench::pct(total_ops / serial_ops - 1.0),
         std::to_string(probe.runtime.messages_sent),
         bench::fmt(campaign.wall_seconds, 2) + " s",
         ranks == 1
             ? "-"
             : "+" + bench::pct(campaign.wall_seconds / serial_time - 1.0)});
    util::JsonObject dep_json;
    dep_json["nranks"] = util::Json(ranks);
    dep_json["dynamic_fp_ops"] = util::Json(total_ops);
    dep_json["messages_per_run"] = util::Json(probe.runtime.messages_sent);
    dep_json["bytes_per_run"] = util::Json(probe.runtime.bytes_sent);
    dep_json["buffer_allocs_per_run"] = util::Json(probe.runtime.pool_allocs);
    dep_json["buffer_reuses_per_run"] = util::Json(probe.runtime.pool_reuses);
    dep_json["fi_wall_seconds"] = util::Json(campaign.wall_seconds);
    deployments.push_back(util::Json(std::move(dep_json)));
  }
  table.print();

  // Campaign-executor speedup: the same deployment on 1 worker vs the
  // auto worker count (RESILIENCE_THREADS / hardware concurrency).
  // Results are bit-identical; only the wall clock moves.
  util::JsonObject executor_json;
  {
    harness::DeploymentConfig dep;
    dep.nranks = 4;
    dep.trials = std::min<std::size_t>(cfg.trials, 200);
    dep.seed = cfg.seed;
    dep.max_workers = 1;
    const double serial_wall = time_campaign(*app, dep);
    dep.max_workers = 0;
    const double parallel_wall = time_campaign(*app, dep);
    const int workers = harness::Executor::resolve_workers(0);
    std::cout << "\nCampaign executor (CG, 4 ranks, " << dep.trials
              << " trials): " << bench::fmt(serial_wall, 2)
              << " s serial vs " << bench::fmt(parallel_wall, 2) << " s on "
              << workers << " workers — "
              << bench::fmt(serial_wall / parallel_wall, 1)
              << "x speedup, bit-identical results.\n";
    executor_json["trials"] = util::Json(dep.trials);
    executor_json["serial_wall_seconds"] = util::Json(serial_wall);
    executor_json["parallel_wall_seconds"] = util::Json(parallel_wall);
    executor_json["workers"] = util::Json(workers);
    executor_json["speedup"] = util::Json(serial_wall / parallel_wall);
  }

  // Golden-checkpoint fast path (DESIGN.md §9): the same single-flip
  // trials with checkpoint fast-forward + early-exit pruning on vs the
  // RESILIENCE_CHECKPOINT=0 kill switch. The late mix draws every flip
  // from the last quarter of the target rank's filtered stream — the
  // regime where skipping the fault-free prefix pays most — the early
  // mix from the whole stream. Results are bit-identical either way
  // (tests/integration/test_checkpoint_diff.cpp); only the wall moves.
  util::JsonArray checkpoint_json;
  {
    harness::set_checkpoint_enabled(true);
    std::vector<std::unique_ptr<apps::App>> ckpt_apps;
    ckpt_apps.push_back(apps::make_app(apps::AppId::CG));
    // FT's stock S class runs a single iteration (no interior boundaries
    // to checkpoint); a 4-iteration variant represents the sweep apps.
    ckpt_apps.push_back(std::make_unique<apps::FtApp>(
        apps::FtApp::Config{.n = 64, .iterations = 4}, "S4"));
    const int nranks = 4;
    const std::size_t trials = std::min<std::size_t>(cfg.trials, 200);
    std::cout << "\nCheckpoint fast path (" << trials
              << " single-flip trials, " << nranks << " ranks):\n";
    for (const auto& ckpt_app : ckpt_apps) {
      const auto golden =
          harness::profile_app(*ckpt_app, nranks,
                               std::chrono::milliseconds(10'000),
                               /*capture_checkpoints=*/true);
      for (const bool late : {true, false}) {
        std::vector<std::vector<fsefi::InjectionPlan>> all_plans;
        all_plans.reserve(trials);
        util::Xoshiro256 rng(
            util::derive_seed(cfg.seed, late ? 0x1a7eu : 0xea51u));
        for (std::size_t t = 0; t < trials; ++t) {
          std::vector<fsefi::InjectionPlan> plans(
              static_cast<std::size_t>(nranks));
          auto& plan = plans[t % static_cast<std::size_t>(nranks)];
          const std::uint64_t matching =
              golden.profiles[t % static_cast<std::size_t>(nranks)].matching(
                  plan.kinds, plan.regions);
          const std::uint64_t lo = late ? matching - matching / 4 : 0;
          plan.points = {
              {.op_index = static_cast<std::uint64_t>(rng.uniform_int(
                   static_cast<std::int64_t>(lo),
                   static_cast<std::int64_t>(matching - 1))),
               .operand = 0,
               .bit = static_cast<std::uint8_t>(rng.uniform_int(0, 63))}};
          all_plans.push_back(std::move(plans));
        }
        struct Leg {
          double wall = 0.0;
          std::size_t restores = 0;
          std::size_t early_exits = 0;
        };
        auto run_leg = [&](bool enabled) {
          Leg leg;
          const auto start = std::chrono::steady_clock::now();
          for (const auto& plans : all_plans) {
            harness::RunOptions opts;
            if (enabled) opts.checkpoints = golden.checkpoints.get();
            const auto out =
                harness::run_app_once(*ckpt_app, nranks, plans, opts);
            leg.restores += out.checkpoint_restored ? 1 : 0;
            leg.early_exits += out.early_exit ? 1 : 0;
          }
          leg.wall = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
          return leg;
        };
        const Leg off = run_leg(false);
        const Leg on = run_leg(true);
        const char* mix = late ? "late" : "uniform";
        std::cout << "  " << ckpt_app->label() << " " << mix << " mix: "
                  << bench::fmt(off.wall, 2) << " s off vs "
                  << bench::fmt(on.wall, 2) << " s on — "
                  << bench::fmt(off.wall / on.wall, 1) << "x ("
                  << on.restores << " restores, " << on.early_exits
                  << " early exits)\n";
        util::JsonObject leg_json;
        leg_json["app"] = util::Json(ckpt_app->label());
        leg_json["mix"] = util::Json(std::string(mix));
        leg_json["nranks"] = util::Json(nranks);
        leg_json["trials"] = util::Json(trials);
        leg_json["off_wall_seconds"] = util::Json(off.wall);
        leg_json["on_wall_seconds"] = util::Json(on.wall);
        leg_json["restores"] = util::Json(on.restores);
        leg_json["early_exits"] = util::Json(on.early_exits);
        checkpoint_json.push_back(util::Json(std::move(leg_json)));
      }
    }
  }

  // Adaptive campaign engine (DESIGN.md §12): the same trial budget with
  // CI-driven early stopping + stratified sampling vs running the fixed
  // budget to the end. The adaptive leg stops once every outcome rate is
  // pinned to ±5% at 95%, so the ratio requested/executed is the trial
  // reduction the engine buys at that envelope (merge_bench.py bar:
  // >= 3x mean across legs), and the fixed run's rates must land inside
  // the reported intervals.
  util::JsonArray adaptive_json;
  {
    const std::size_t cap = cfg.trials * 10;
    std::vector<std::unique_ptr<apps::App>> ad_apps;
    ad_apps.push_back(apps::make_app(apps::AppId::CG));
    ad_apps.push_back(std::make_unique<apps::FtApp>(
        apps::FtApp::Config{.n = 64, .iterations = 4}, "S4"));
    std::cout << "\nAdaptive campaigns (" << cap
              << "-trial budget, 4 ranks, +-5% CI at 95%):\n";
    for (const auto& ad_app : ad_apps) {
      harness::DeploymentConfig dep;
      dep.nranks = 4;
      dep.trials = cap;
      dep.seed = cfg.seed;
      const auto fixed_start = std::chrono::steady_clock::now();
      const auto fixed = harness::CampaignRunner::run(*ad_app, dep);
      const double fixed_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        fixed_start)
              .count();
      dep.adaptive.enabled = true;
      dep.adaptive.ci_half_width = 0.05;
      const auto adaptive_start = std::chrono::steady_clock::now();
      const auto adaptive = harness::CampaignRunner::run(*ad_app, dep);
      const double adaptive_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        adaptive_start)
              .count();
      const auto& stats = *adaptive.adaptive;
      const double fixed_rate = fixed.overall.success_rate();
      const bool in_ci = stats.success.contains(fixed_rate);
      std::cout << "  " << ad_app->label() << ": " << stats.trials_executed
                << " of " << stats.trials_requested << " trials ("
                << bench::fmt(stats.trial_reduction(), 1) << "x fewer, "
                << to_string(stats.stop_reason) << ", " << stats.strata
                << " strata), " << bench::fmt(fixed_wall, 2) << " s fixed vs "
                << bench::fmt(adaptive_wall, 2)
                << " s adaptive; fixed success rate "
                << bench::pct(fixed_rate) << " is "
                << (in_ci ? "inside" : "** OUTSIDE **")
                << " the adaptive CI [" << bench::pct(stats.success.lo)
                << ", " << bench::pct(stats.success.hi) << "]\n";
      util::JsonObject leg_json;
      leg_json["app"] = util::Json(ad_app->label());
      leg_json["nranks"] = util::Json(dep.nranks);
      leg_json["ci_half_width"] = util::Json(dep.adaptive.ci_half_width);
      leg_json["trials_requested"] = util::Json(stats.trials_requested);
      leg_json["trials_executed"] = util::Json(stats.trials_executed);
      leg_json["stop_reason"] =
          util::Json(std::string(to_string(stats.stop_reason)));
      leg_json["strata"] = util::Json(stats.strata);
      leg_json["fixed_wall_seconds"] = util::Json(fixed_wall);
      leg_json["adaptive_wall_seconds"] = util::Json(adaptive_wall);
      leg_json["fixed_success_rate"] = util::Json(fixed_rate);
      leg_json["success_rate"] = util::Json(stats.success.rate);
      leg_json["success_ci_lo"] = util::Json(stats.success.lo);
      leg_json["success_ci_hi"] = util::Json(stats.success.hi);
      leg_json["fixed_rate_in_ci"] = util::Json(in_ci);
      adaptive_json.push_back(util::Json(std::move(leg_json)));
    }
  }

  // Sharded campaign execution (DESIGN.md §13): the same deployment run
  // in-process on one worker vs fanned out across coordinator-spawned
  // worker processes (this binary re-exec'd with --shard-worker).
  // Results are bit-identical (tests/shard/test_shard.cpp); only the
  // wall clock moves (merge_bench.py bar: >= 2x at 4 shards). The
  // store-reuse leg runs the same sharded campaign twice against a
  // persistent golden store: the second invocation re-profiles nothing
  // and serves the coordinator and every worker from disk.
  util::JsonObject shard_json;
  {
    harness::DeploymentConfig dep;
    dep.nranks = 4;
    dep.trials = std::min<std::size_t>(cfg.trials, 200);
    dep.seed = cfg.seed;
    dep.max_workers = 1;  // trials-per-process are serial in both legs
    const double serial_wall = time_campaign(*app, dep);

    const auto time_sharded = [&](int shards, const std::string& store) {
      shard::ShardOptions opts;
      opts.shards = shards;
      opts.golden_store_dir = store;
      const auto start = std::chrono::steady_clock::now();
      auto result = shard::run_sharded_campaign(*app, dep, opts);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      return std::pair<double, harness::CampaignResult>(wall,
                                                        std::move(result));
    };

    const double one_wall = time_sharded(1, "").first;
    const double four_wall = time_sharded(4, "").first;
    const double speedup = serial_wall / four_wall;
    std::cout << "\nSharded campaigns (CG, 4 ranks, " << dep.trials
              << " trials): " << bench::fmt(serial_wall, 2)
              << " s in-process serial vs " << bench::fmt(one_wall, 2)
              << " s on 1 shard vs " << bench::fmt(four_wall, 2)
              << " s on 4 shards — " << bench::fmt(speedup, 1)
              << "x speedup, bit-identical results.\n";

    const std::string store_dir =
        (std::filesystem::temp_directory_path() /
         ("resilience-bench-store-" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(store_dir);
    (void)time_sharded(4, store_dir);  // fills the store
    const auto [reuse_wall, reuse] = time_sharded(4, store_dir);
    std::filesystem::remove_all(store_dir);
    const auto hits = reuse.metrics.value(telemetry::Counter::GoldenStoreHits);
    const auto misses =
        reuse.metrics.value(telemetry::Counter::GoldenStoreMisses);
    const auto profiles =
        reuse.metrics.value(telemetry::Counter::HarnessGoldenProfiles);
    const double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    std::cout << "  Golden-store reuse: second 4-shard run took "
              << bench::fmt(reuse_wall, 2) << " s with " << hits
              << " store hits / " << misses << " misses ("
              << bench::pct(hit_rate) << " hit rate, " << profiles
              << " re-profiles).\n";

    shard_json["trials"] = util::Json(dep.trials);
    shard_json["nranks"] = util::Json(dep.nranks);
    shard_json["serial_wall_seconds"] = util::Json(serial_wall);
    shard_json["one_shard_wall_seconds"] = util::Json(one_wall);
    shard_json["shards"] = util::Json(4);
    shard_json["sharded_wall_seconds"] = util::Json(four_wall);
    shard_json["speedup"] = util::Json(speedup);
    shard_json["reuse_wall_seconds"] = util::Json(reuse_wall);
    shard_json["reuse_store_hits"] = util::Json(hits);
    shard_json["reuse_store_misses"] = util::Json(misses);
    shard_json["reuse_profiles"] = util::Json(profiles);
    shard_json["store_hit_rate"] = util::Json(hit_rate);
  }

  // Binary substrate (DESIGN.md §15): golden-store save/load and shard
  // frame encode/decode in both serialization formats. The store numbers
  // time the full disk round trip (serialize + atomic rename, open +
  // validate + materialize); the frame numbers time the payload codecs
  // alone. merge_bench.py derives serialization_speedup from these legs
  // (bar: >= 3x binary vs JSON on the golden load) and records the
  // per-format file sizes as golden_store_bytes.
  util::JsonObject serialization_json;
  {
    // FT S4's checkpoint state (the full per-rank grid at each stored
    // boundary) gives the store a realistically sized golden run — on a
    // CG (S) file the fixed open/stat cost hides the codec difference.
    const apps::FtApp store_app(apps::FtApp::Config{.n = 64, .iterations = 4},
                                "S4");
    const int nranks = 4;
    const auto golden =
        harness::profile_app(store_app, nranks,
                             std::chrono::milliseconds(10'000),
                             /*capture_checkpoints=*/true);
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("resilience-bench-serialize-" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);

    constexpr int kStoreIters = 20;
    std::cout << "\nSerialization substrate (FT S4 golden run, " << nranks
              << " ranks, checkpoints included; " << kStoreIters
              << " iterations):\n";
    struct StoreLeg {
      double save_seconds = 0.0;
      double load_seconds = 0.0;
      std::uintmax_t file_bytes = 0;
    };
    const auto time_store = [&](harness::StoreFormat format) {
      StoreLeg leg;
      harness::GoldenStore store(dir, format);
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kStoreIters; ++i) store.put(store_app, nranks, golden);
      leg.save_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count() /
                         kStoreIters;
      leg.file_bytes = std::filesystem::file_size(store.path_for(store_app, nranks));
      start = std::chrono::steady_clock::now();
      for (int i = 0; i < kStoreIters; ++i) {
        if (store.load(store_app, nranks) == nullptr) std::abort();
      }
      leg.load_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count() /
                         kStoreIters;
      return leg;
    };
    const StoreLeg json_leg = time_store(harness::StoreFormat::JsonV1);
    const StoreLeg bin_leg = time_store(harness::StoreFormat::BinaryV2);
    std::filesystem::remove_all(dir);
    std::cout << "  golden store save: " << bench::fmt(json_leg.save_seconds * 1e3, 2)
              << " ms JSON vs " << bench::fmt(bin_leg.save_seconds * 1e3, 2)
              << " ms binary — "
              << bench::fmt(json_leg.save_seconds / bin_leg.save_seconds, 1)
              << "x\n  golden store load: "
              << bench::fmt(json_leg.load_seconds * 1e3, 2) << " ms JSON vs "
              << bench::fmt(bin_leg.load_seconds * 1e3, 2) << " ms binary — "
              << bench::fmt(json_leg.load_seconds / bin_leg.load_seconds, 1)
              << "x\n  file size: " << json_leg.file_bytes << " bytes JSON vs "
              << bin_leg.file_bytes << " bytes binary ("
              << bench::fmt(static_cast<double>(json_leg.file_bytes) /
                                static_cast<double>(bin_leg.file_bytes),
                            1)
              << "x smaller)\n";

    // Frame codecs over a representative result frame: one 64-trial unit's
    // outcomes plus the full metrics snapshot it carries home.
    constexpr int kFrameIters = 2000;
    shard::ResultMsg result;
    result.id = 7;
    util::Xoshiro256 rng(cfg.seed);
    for (int i = 0; i < 64; ++i) {
      result.outcomes.push_back(
          {static_cast<harness::Outcome>(rng.uniform_int(0, 2)),
           static_cast<int>(rng.uniform_int(0, 4))});
    }
    result.wall_seconds = 1.5;
    for (std::size_t c = 0; c < telemetry::kCounterCount; ++c) {
      result.metrics.counters[c] = rng.next();
    }
    const shard::Message message{result};
    struct FrameLeg {
      double encode_seconds = 0.0;
      double decode_seconds = 0.0;
      std::size_t bytes = 0;
    };
    const auto time_frames = [&](shard::WireFormat format) {
      FrameLeg leg;
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kFrameIters; ++i) {
        leg.bytes = shard::encode_message(message, format).size();
      }
      leg.encode_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count() /
                           kFrameIters;
      const auto payload = shard::encode_message(message, format);
      start = std::chrono::steady_clock::now();
      for (int i = 0; i < kFrameIters; ++i) {
        (void)shard::decode_message(payload, format);
      }
      leg.decode_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count() /
                           kFrameIters;
      return leg;
    };
    const FrameLeg json_frames = time_frames(shard::WireFormat::Json);
    const FrameLeg bin_frames = time_frames(shard::WireFormat::Binary);
    std::cout << "  result frame encode: "
              << bench::fmt(json_frames.encode_seconds * 1e6, 1)
              << " us JSON vs " << bench::fmt(bin_frames.encode_seconds * 1e6, 1)
              << " us binary — "
              << bench::fmt(json_frames.encode_seconds / bin_frames.encode_seconds,
                            1)
              << "x\n  result frame decode: "
              << bench::fmt(json_frames.decode_seconds * 1e6, 1)
              << " us JSON vs " << bench::fmt(bin_frames.decode_seconds * 1e6, 1)
              << " us binary — "
              << bench::fmt(json_frames.decode_seconds / bin_frames.decode_seconds,
                            1)
              << "x\n";

    const auto store_json = [](const StoreLeg& leg) {
      util::JsonObject o;
      o["save_seconds"] = util::Json(leg.save_seconds);
      o["load_seconds"] = util::Json(leg.load_seconds);
      o["file_bytes"] = util::Json(static_cast<std::size_t>(leg.file_bytes));
      return util::Json(std::move(o));
    };
    const auto frames_json = [](const FrameLeg& leg) {
      util::JsonObject o;
      o["encode_seconds"] = util::Json(leg.encode_seconds);
      o["decode_seconds"] = util::Json(leg.decode_seconds);
      o["payload_bytes"] = util::Json(leg.bytes);
      return util::Json(std::move(o));
    };
    util::JsonObject golden_json;
    golden_json["iterations"] = util::Json(kStoreIters);
    golden_json["nranks"] = util::Json(nranks);
    golden_json["json"] = store_json(json_leg);
    golden_json["binary"] = store_json(bin_leg);
    util::JsonObject frame_json;
    frame_json["iterations"] = util::Json(kFrameIters);
    frame_json["outcomes"] = util::Json(64);
    frame_json["json"] = frames_json(json_frames);
    frame_json["binary"] = frames_json(bin_frames);
    serialization_json["golden_store"] = util::Json(std::move(golden_json));
    serialization_json["result_frame"] = util::Json(std::move(frame_json));
  }

  // Machine-readable mirror of the numbers above, merged into
  // BENCH_substrate.json by tools/merge_bench.py.
  {
    util::JsonObject root;
    root["bench"] = util::Json("intro_overhead");
    root["app"] = util::Json(app->label());
    root["trials"] = util::Json(cfg.trials);
    root["seed"] = util::Json(cfg.seed);
    root["deployments"] = util::Json(std::move(deployments));
    root["executor"] = util::Json(std::move(executor_json));
    root["checkpoint"] = util::Json(std::move(checkpoint_json));
    root["adaptive"] = util::Json(std::move(adaptive_json));
    root["shard"] = util::Json(std::move(shard_json));
    root["serialization"] = util::Json(std::move(serialization_json));
    // Host-load stamp: merge_bench.py flags dumps taken on a saturated
    // host, where wall-clock ratios are unreliable.
    double loads[1] = {0.0};
    if (::getloadavg(loads, 1) == 1) {
      root["load_avg"] = util::Json(loads[0]);
    }
    root["num_cpus"] =
        util::Json(static_cast<int>(std::thread::hardware_concurrency()));
    std::ofstream out("BENCH_intro_overhead.json");
    out << util::Json(std::move(root)).dump(2) << "\n";
  }

  std::cout
      << "\nPaper reference (NPB CG on F-SEFI): 4 ranks ran +74.5% "
         "instructions and +58% fault-injection time vs serial.\n"
         "In this reproduction the instrumented app-level FP work is nearly "
         "scale-invariant (MPI-internal work is uninstrumented), so the FI "
         "time growth is driven by the per-run messaging and scheduling "
         "volume shown in the messages column.\n";
  return 0;
}
