// Reproduces the Section 1 motivation numbers: parallel execution runs
// more dynamic instructions than serial execution of the same input
// problem, and fault-injection time grows accordingly — the cost argument
// for modeling instead of measuring at large scale.
//
// Paper (NPB CG, F-SEFI): 4 MPI processes execute +74.5% instructions vs
// serial; fault-injection time +58%; plain execution time differs by 15%.
#include "bench_common.hpp"
#include "harness/campaign.hpp"

int main() {
  using namespace resilience;
  const auto cfg = util::BenchConfig::from_env(/*default_trials=*/200);
  bench::print_header(
      "Section 1 motivation: instruction and fault-injection-time growth "
      "with scale (CG)",
      cfg);

  const auto app = apps::make_app(apps::AppId::CG);

  util::TablePrinter table({"deployment", "dynamic FP ops", "vs serial",
                            "messages/run", "FI wall time", "vs serial"});
  double serial_ops = 0.0, serial_time = 0.0;
  for (int ranks : {1, 4, 8}) {
    harness::DeploymentConfig dep;
    dep.nranks = ranks;
    dep.trials = cfg.trials;
    dep.seed = cfg.seed;
    const auto campaign = harness::CampaignRunner::run(*app, dep);
    double total_ops = 0.0;
    for (const auto& prof : campaign.golden.profiles) {
      total_ops += static_cast<double>(prof.total());
    }
    // One clean run's transport volume (the other cost that scales).
    const auto probe = harness::run_app_once(*app, ranks, /*plans=*/{});
    if (ranks == 1) {
      serial_ops = total_ops;
      serial_time = campaign.wall_seconds;
    }
    table.add_row(
        {std::to_string(ranks) + (ranks == 1 ? " rank (serial)" : " ranks"),
         bench::fmt(total_ops, 0),
         ranks == 1 ? "-" : "+" + bench::pct(total_ops / serial_ops - 1.0),
         std::to_string(probe.runtime.messages_sent),
         bench::fmt(campaign.wall_seconds, 2) + " s",
         ranks == 1
             ? "-"
             : "+" + bench::pct(campaign.wall_seconds / serial_time - 1.0)});
  }
  table.print();
  std::cout
      << "\nPaper reference (NPB CG on F-SEFI): 4 ranks ran +74.5% "
         "instructions and +58% fault-injection time vs serial.\n"
         "In this reproduction the instrumented app-level FP work is nearly "
         "scale-invariant (MPI-internal work is uninstrumented), so the FI "
         "time growth is driven by the per-run messaging and scheduling "
         "volume shown in the messages column.\n";
  return 0;
}
