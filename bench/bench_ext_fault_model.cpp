// Extension study: sensitivity of the fault-injection result to the fault
// model — the paper fixes single-bit flips in FP add/mul operands but
// notes the methodology generalizes. Two sweeps on the 8-rank deployment:
//   1. fault pattern: single-bit vs double-bit vs burst-4 flips, and
//   2. instruction type: add+mul (paper default) vs each kind alone —
//      the sensitivity that motivated distinguishing instruction types in
//      Section 2.
#include "bench_common.hpp"
#include "harness/campaign.hpp"

int main() {
  using namespace resilience;
  const auto base = util::BenchConfig::from_env();
  util::BenchConfig cfg = base;
  cfg.trials = std::max<std::size_t>(base.trials / 2, 50);
  bench::print_header("Extension: fault-model sensitivity (8 ranks)", cfg);

  std::cout << "-- fault pattern sweep (FP add/mul operands) --\n";
  util::TablePrinter patterns({"Benchmark", "single-bit", "double-bit",
                               "burst-4"});
  for (const auto& app : bench::paper_apps()) {
    std::vector<std::string> row{app->label()};
    for (auto pattern : {fsefi::FaultPattern::SingleBit,
                         fsefi::FaultPattern::DoubleBit,
                         fsefi::FaultPattern::Burst4}) {
      harness::DeploymentConfig dep;
      dep.nranks = 8;
      dep.trials = cfg.trials;
      dep.seed = cfg.seed;
      dep.scenario.pattern = pattern;
      const auto campaign = harness::CampaignRunner::run(*app, dep);
      row.push_back(bench::pct(campaign.overall.success_rate()));
    }
    patterns.add_row(row);
  }
  patterns.print();

  std::cout << "\n-- instruction-type sweep (single-bit flips) --\n";
  util::TablePrinter kinds({"Benchmark", "add+mul (paper)", "add", "mul",
                            "div", "sqrt"});
  for (const auto& app : bench::paper_apps()) {
    std::vector<std::string> row{app->label()};
    for (auto mask : {fsefi::KindMask::AddMul, fsefi::KindMask::Add,
                      fsefi::KindMask::Mul, fsefi::KindMask::Div,
                      fsefi::KindMask::Sqrt}) {
      harness::DeploymentConfig dep;
      dep.nranks = 8;
      dep.trials = cfg.trials;
      dep.seed = cfg.seed;
      dep.scenario.kinds = mask;
      // Some apps execute no ops of a given kind: report "-" rather than
      // fail the deployment.
      try {
        const auto campaign = harness::CampaignRunner::run(*app, dep);
        row.push_back(bench::pct(campaign.overall.success_rate()));
      } catch (const std::runtime_error&) {
        row.push_back("-");
      }
    }
    kinds.add_row(row);
  }
  kinds.print();
  std::cout << "\nSuccess rates; \"-\" marks kinds the benchmark never "
               "executes. Wider faults and higher-impact kinds lower the "
               "success rate, confirming the paper's instruction-type "
               "sensitivity observation.\n";
  return 0;
}
