// Reproduces Figure 5: modeling accuracy when a small-scale execution of
// FOUR ranks plus serial execution predicts the fault-injection result of
// 64 ranks, for all six benchmarks.
//
// Paper: average success prediction error 8%, worst 27%.
#include "bench_predict_common.hpp"

int main() {
  const auto cfg = resilience::util::BenchConfig::from_env();
  resilience::bench::print_header(
      "Figure 5: predict 64 ranks from serial + 4 ranks", cfg);
  resilience::bench::prediction_figure(/*small_p=*/4, /*large_p=*/64, cfg);
  std::cout << "Paper: average error 8%, worst 27%.\n";
  return 0;
}
