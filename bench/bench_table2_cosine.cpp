// Reproduces Table 2: cosine similarity between small-scale and
// large-scale error-propagation profiles — 4 vs 64 ranks and 8 vs 64
// ranks for all six benchmarks.
//
// Paper shape: every 8V64 value ~1.0; 4V64 low for CG (0.122) and LU
// (0.638) because four ranks propagate in almost every test while 64
// ranks often do not.
#include "bench_common.hpp"
#include "harness/campaign.hpp"

int main() {
  using namespace resilience;
  const auto cfg = util::BenchConfig::from_env();
  bench::print_header("Table 2: propagation cosine similarity (4V64, 8V64)",
                      cfg);

  const char* paper[6][2] = {{"0.122", "0.999"}, {"0.905", "0.999"},
                             {"0.999", "1.000"}, {"0.638", "1.000"},
                             {"0.981", "1.000"}, {"0.979", "0.999"}};

  util::TablePrinter table({"Benchmark", "4V64", "8V64", "paper 4V64",
                            "paper 8V64"});
  int row = 0;
  for (const auto& app : bench::paper_apps()) {
    harness::DeploymentConfig dep;
    dep.trials = cfg.trials;
    dep.seed = cfg.seed;

    dep.nranks = 64;
    const auto large = core::PropagationProfile::from_campaign(
        harness::CampaignRunner::run(*app, dep));

    std::string cells[2];
    int col = 0;
    for (int small_p : {4, 8}) {
      dep.nranks = small_p;
      const auto small = core::PropagationProfile::from_campaign(
          harness::CampaignRunner::run(*app, dep));
      cells[col++] = bench::fmt(core::propagation_similarity(small, large));
    }
    table.add_row({app->label(), cells[0], cells[1], paper[row][0],
                   paper[row][1]});
    ++row;
  }
  table.print();
  return 0;
}
