// Shared plumbing for the table/figure reproduction harnesses.
//
// Every binary regenerates one table or figure of the paper on stdout.
// Campaign sizes default to workstation-friendly counts; set
// RESILIENCE_TRIALS=4000 to reproduce at the paper's statistical scale
// and RESILIENCE_SEED to vary the random stream.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/similarity.hpp"
#include "core/study.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace resilience::bench {

/// The paper's benchmark list in presentation order.
inline std::vector<std::unique_ptr<apps::App>> paper_apps() {
  std::vector<std::unique_ptr<apps::App>> list;
  for (const auto id : apps::all_app_ids()) list.push_back(apps::make_app(id));
  return list;
}

inline void print_header(const std::string& what, const util::BenchConfig& cfg) {
  std::cout << "=== " << what << " ===\n"
            << "trials per deployment: " << cfg.trials
            << " (RESILIENCE_TRIALS to change; paper uses 4000), seed: "
            << cfg.seed << "\n\n";
}

inline std::string pct(double fraction, int precision = 1) {
  return util::TablePrinter::pct(fraction, precision);
}

inline std::string fmt(double v, int precision = 3) {
  return util::TablePrinter::fmt(v, precision);
}

}  // namespace resilience::bench
