// Reproduces Table 1: percentage of parallel-unique computation in the
// total execution of a 4-rank parallel run, for every benchmark and both
// input problems where the paper lists two.
//
// The paper measures the time share of parallel-unique code; this
// reproduction measures the dynamic FP-operation share (the quantity the
// injector samples from). Expected shape: FT by far the largest, CG and
// MiniFE small, MG / LU / PENNANT none.
#include "bench_common.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace resilience;
  const auto cfg = util::BenchConfig::from_env();
  bench::print_header("Table 1: parallel-unique computation share (4 ranks)",
                      cfg);

  struct Row {
    apps::AppId id;
    std::string size_class;
    std::string paper_value;
  };
  // CG uses its NPB-style 2D decomposition here: the paper's CG numbers
  // come from the partial-sum merge that only the 2D layout performs.
  const std::vector<Row> rows = {
      {apps::AppId::CG, "2D", "1.6%"},
      {apps::AppId::CG, "B2D", "0.27%"},
      {apps::AppId::FT, "S", "10.4%"},
      {apps::AppId::FT, "B", "17.7%"},
      {apps::AppId::MG, "S", "none"},
      {apps::AppId::LU, "W", "none"},
      {apps::AppId::MiniFE, "S", "1.54%"},
      {apps::AppId::MiniFE, "B", "0.68%"},
      {apps::AppId::PENNANT, "leblanc", "none"},
  };

  util::TablePrinter table({"Benchmark", "parallel-unique share (this repro)",
                            "paper (time share)"});
  for (const auto& row : rows) {
    const auto app = apps::make_app(row.id, row.size_class);
    const auto golden = harness::profile_app(*app, 4);
    const double frac = golden.unique_fraction();
    table.add_row({app->label(),
                   frac == 0.0 ? "none" : bench::pct(frac, 2),
                   row.paper_value});
  }
  table.print();
  std::cout << "\nCG's share comes from its 2D decomposition's row-group "
               "partial-sum merge; the 1D CG variant used elsewhere has "
               "none. See EXPERIMENTS.md.\n";
  return 0;
}
