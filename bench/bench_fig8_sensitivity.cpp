// Reproduces Figure 8: the tradeoff between modeling accuracy and fault-
// injection cost as the small-scale size S grows (4, 8, 16, 32 ranks,
// predicting 64). Reports
//   - RMSE (paper Eq. 9) of the success-rate prediction over all six
//     benchmarks, and
//   - the fault-injection wall time of the small-scale campaign,
//     normalized by the serial (one-error) campaign's, averaged over
//     benchmarks.
//
// Paper shape: RMSE falls and time rises with S; S = 16 balances the two.
//
// Serial sweep campaigns are cached across S values (their sample points
// overlap), and the measured 64-rank campaign runs once per benchmark.
#include <map>

#include "bench_common.hpp"
#include "util/rng.hpp"
#include "harness/campaign.hpp"
#include "util/stats.hpp"

int main() {
  using namespace resilience;
  const auto base = util::BenchConfig::from_env();
  util::BenchConfig cfg = base;
  cfg.trials = std::max<std::size_t>(base.trials / 2, 50);
  bench::print_header(
      "Figure 8: modeling accuracy vs fault-injection time, S in {4, 8, 16, "
      "32} predicting 64",
      cfg);

  constexpr int kLargeP = 64;
  const std::vector<int> small_sizes = {4, 8, 16, 32};

  struct PerApp {
    double measured = 0.0;
    std::map<int, double> predicted;       // by S
    std::map<int, double> small_seconds;   // by S
    double serial_seconds = 0.0;           // one-error serial campaign
  };
  std::vector<PerApp> per_app;

  for (const auto& app : bench::paper_apps()) {
    PerApp data;

    // Measured large-scale campaign (once).
    harness::DeploymentConfig large_dep;
    large_dep.nranks = kLargeP;
    large_dep.trials = cfg.trials;
    large_dep.seed = cfg.seed;
    const auto large = harness::CampaignRunner::run(*app, large_dep);
    data.measured = large.overall.success_rate();
    const double prob_unique = large.golden.unique_fraction();

    // Serial sweep cache: x errors -> campaign result.
    std::map<int, harness::FaultInjectionResult> serial_cache;
    auto serial_result = [&](int x) -> const harness::FaultInjectionResult& {
      auto it = serial_cache.find(x);
      if (it == serial_cache.end()) {
        harness::DeploymentConfig dep;
        dep.nranks = 1;
        dep.errors_per_test = x;
        dep.scenario.regions = fsefi::RegionMask::Common;
        dep.trials = cfg.trials;
        dep.seed = util::derive_seed(cfg.seed, 100 + static_cast<std::uint64_t>(x));
        const auto campaign = harness::CampaignRunner::run(*app, dep);
        if (x == 1) data.serial_seconds = campaign.wall_seconds;
        it = serial_cache.emplace(x, campaign.overall).first;
      }
      return it->second;
    };

    for (int s : small_sizes) {
      // Small-scale campaign at S ranks.
      harness::DeploymentConfig small_dep;
      small_dep.nranks = s;
      small_dep.trials = cfg.trials;
      small_dep.seed = cfg.seed;
      const auto small_campaign = harness::CampaignRunner::run(*app, small_dep);
      data.small_seconds[s] = small_campaign.wall_seconds;

      core::SerialSweep sweep;
      sweep.large_p = kLargeP;
      sweep.sample_x = core::SerialSweep::sample_points(kLargeP, s);
      for (int x : sweep.sample_x) sweep.results.push_back(serial_result(x));

      core::PredictorOptions opts;
      if (prob_unique > 0.02) {
        harness::DeploymentConfig unique_dep = small_dep;
        unique_dep.scenario.regions = fsefi::RegionMask::ParallelUnique;
        unique_dep.seed = util::derive_seed(cfg.seed, 200 + static_cast<std::uint64_t>(s));
        opts.prob_unique = prob_unique;
        opts.unique_result =
            harness::CampaignRunner::run(*app, unique_dep).overall;
      }
      const core::ResiliencePredictor predictor(
          sweep, core::SmallScaleObservation::from_campaign(small_campaign),
          opts);
      data.predicted[s] = predictor.predict(kLargeP).combined.success;
    }
    per_app.push_back(std::move(data));
  }

  util::TablePrinter table({"small scale S", "RMSE (success rate)",
                            "small-scale FI time / serial FI time (avg)"});
  util::CsvWriter csv("fig8_sensitivity.csv");
  csv.write_row({"S", "rmse", "normalized_time"});
  for (int s : small_sizes) {
    std::vector<double> measured, predicted;
    double norm_time = 0.0;
    for (const auto& data : per_app) {
      measured.push_back(data.measured);
      predicted.push_back(data.predicted.at(s));
      norm_time += data.small_seconds.at(s) / data.serial_seconds;
    }
    norm_time /= static_cast<double>(per_app.size());
    const double rmse = util::rmse(measured, predicted);
    table.add_row({std::to_string(s), bench::fmt(rmse),
                   bench::fmt(norm_time, 2) + "x"});
    csv.write_row({std::to_string(s), bench::fmt(rmse, 6),
                   bench::fmt(norm_time, 4)});
  }
  table.print();
  std::cout << "\n(also written to fig8_sensitivity.csv)\n"
            << "Paper shape: RMSE falls and FI time rises with S; S = 16 "
               "balances accuracy against cost.\n";
  return 0;
}
