// Reproduces Figure 7: modeling accuracy for a 128-rank execution of CG
// and FT, predicted from serial + 4 ranks and from serial + 8 ranks.
//
// Paper: prediction error <= 7% with four ranks, <= 6% with eight.
// FT needs its larger input (Class B, 128x128 grid) to decompose over
// 128 ranks; CG uses Class S as elsewhere. Trial counts are halved by
// default because 128-rank campaigns are the most expensive (the paper
// could not validate beyond 128 for the same reason).
#include "bench_common.hpp"

int main() {
  using namespace resilience;
  const auto base = util::BenchConfig::from_env();
  util::BenchConfig cfg = base;
  cfg.trials = std::max<std::size_t>(base.trials / 2, 50);
  bench::print_header("Figure 7: predict 128 ranks (CG class S, FT class B)",
                      cfg);

  util::TablePrinter table({"Benchmark", "predictor", "measured success",
                            "predicted success", "error"});
  for (const auto& [id, size_class] :
       std::vector<std::pair<apps::AppId, std::string>>{
           {apps::AppId::CG, "S"}, {apps::AppId::FT, "B"}}) {
    const auto app = apps::make_app(id, size_class);
    for (int small_p : {4, 8}) {
      core::StudyConfig study_cfg;
      study_cfg.small_p = small_p;
      study_cfg.large_p = 128;
      study_cfg.trials = cfg.trials;
      study_cfg.seed = cfg.seed;
      const auto study = core::run_study(*app, study_cfg);
      table.add_row({app->label(),
                     "serial + " + std::to_string(small_p) + " ranks",
                     bench::pct(study.measured_success()),
                     bench::pct(study.predicted_success()),
                     bench::pct(study.success_error())});
    }
  }
  table.print();
  std::cout << "\nPaper: error <= 7% (serial+4), <= 6% (serial+8).\n";
  return 0;
}
