// Ablation of the model's design choices (DESIGN.md Section 5):
//   1. alpha fine-tuning on vs off (Section 4.2's correction for poor
//      serial emulation),
//   2. the parallel-unique term of Eq. 1 on vs off (matters for FT), and
//   3. target-selection policy during profiling campaigns
//      (uniform-over-instructions vs uniform-over-ranks).
// Reported as the success-rate prediction error at 64 ranks per benchmark.
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "harness/campaign.hpp"

namespace {

using namespace resilience;

constexpr int kSmallP = 8;
constexpr int kLargeP = 64;

/// Everything the model variants consume, collected once per (app,
/// selection policy): the same campaigns feed every ablation column.
struct Inputs {
  double measured = 0.0;
  double prob_unique = 0.0;
  core::SerialSweep sweep;
  core::SmallScaleObservation small;
  std::optional<harness::FaultInjectionResult> unique_result;
};

Inputs collect(const apps::App& app, const util::BenchConfig& cfg,
               harness::TargetSelection selection) {
  Inputs in;
  harness::DeploymentConfig large_dep;
  large_dep.nranks = kLargeP;
  large_dep.trials = cfg.trials;
  large_dep.seed = cfg.seed;
  large_dep.selection = selection;
  const auto large = harness::CampaignRunner::run(app, large_dep);
  in.measured = large.overall.success_rate();
  in.prob_unique = large.golden.unique_fraction();

  in.sweep.large_p = kLargeP;
  in.sweep.sample_x = core::SerialSweep::sample_points(kLargeP, kSmallP);
  for (int x : in.sweep.sample_x) {
    harness::DeploymentConfig dep;
    dep.nranks = 1;
    dep.errors_per_test = x;
    dep.scenario.regions = fsefi::RegionMask::Common;
    dep.trials = cfg.trials;
    dep.seed = util::derive_seed(cfg.seed, static_cast<std::uint64_t>(x));
    dep.selection = selection;
    in.sweep.results.push_back(harness::CampaignRunner::run(app, dep).overall);
  }

  harness::DeploymentConfig small_dep;
  small_dep.nranks = kSmallP;
  small_dep.trials = cfg.trials;
  small_dep.seed = cfg.seed;
  small_dep.selection = selection;
  in.small = core::SmallScaleObservation::from_campaign(
      harness::CampaignRunner::run(app, small_dep));

  if (in.prob_unique > 0.02) {
    harness::DeploymentConfig unique_dep = small_dep;
    unique_dep.scenario.regions = fsefi::RegionMask::ParallelUnique;
    in.unique_result = harness::CampaignRunner::run(app, unique_dep).overall;
  }
  return in;
}

double predict_error(const Inputs& in, bool fine_tune, bool unique_term) {
  core::PredictorOptions opts;
  opts.allow_fine_tune = fine_tune;
  if (unique_term && in.unique_result.has_value()) {
    opts.prob_unique = in.prob_unique;
    opts.unique_result = in.unique_result;
  }
  const core::ResiliencePredictor predictor(in.sweep, in.small, opts);
  const double predicted = predictor.predict(kLargeP).combined.success;
  return std::abs(in.measured - predicted);
}

}  // namespace

int main() {
  const auto base = util::BenchConfig::from_env();
  util::BenchConfig cfg = base;
  cfg.trials = std::max<std::size_t>(base.trials / 2, 50);
  bench::print_header(
      "Ablation: model components (predicting 64 ranks from serial + 8)",
      cfg);

  util::TablePrinter table({"Benchmark", "full model",
                            "no alpha fine-tune", "no unique term",
                            "uniform-rank targeting"});
  for (const auto& app : bench::paper_apps()) {
    const Inputs by_instruction =
        collect(*app, cfg, harness::TargetSelection::UniformInstruction);
    const Inputs by_rank_inputs =
        collect(*app, cfg, harness::TargetSelection::UniformRank);
    const double full = predict_error(by_instruction, true, true);
    const double no_tune = predict_error(by_instruction, false, true);
    const double no_unique = predict_error(by_instruction, true, false);
    const double by_rank = predict_error(by_rank_inputs, true, true);
    table.add_row({app->label(), bench::pct(full), bench::pct(no_tune),
                   bench::pct(no_unique), bench::pct(by_rank)});
  }
  table.print();
  std::cout << "\nColumns are |measured - predicted| success rates: lower is "
               "better. Fine-tuning is the load-bearing component in this "
               "reproduction; the unique term matters for FT.\n";
  return 0;
}
