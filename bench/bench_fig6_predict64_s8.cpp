// Reproduces Figure 6: modeling accuracy when a small-scale execution of
// EIGHT ranks plus serial execution predicts the fault-injection result
// of 64 ranks, for all six benchmarks.
//
// Paper: average success prediction error 7%, worst 19% — better than the
// four-rank predictor of Figure 5.
#include "bench_predict_common.hpp"

int main() {
  const auto cfg = resilience::util::BenchConfig::from_env();
  resilience::bench::print_header(
      "Figure 6: predict 64 ranks from serial + 8 ranks", cfg);
  resilience::bench::prediction_figure(/*small_p=*/8, /*large_p=*/64, cfg);
  std::cout << "Paper: average error 7%, worst 19%.\n";
  return 0;
}
