// Extension study: scale extrapolation with uncertainty — the "future
// extreme scale" use the paper's conclusion points at. One set of serial
// sweeps (sampled for the largest scale) plus one 8-rank campaign
// predicts every scale from 16 to 128; bootstrap resampling puts a 95%
// confidence interval on each prediction, and three scales are validated
// by measurement.
#include "bench_common.hpp"
#include "core/bootstrap.hpp"
#include "harness/campaign.hpp"
#include "util/rng.hpp"

int main() {
  using namespace resilience;
  const auto base = util::BenchConfig::from_env();
  util::BenchConfig cfg = base;
  cfg.trials = std::max<std::size_t>(base.trials / 2, 50);
  bench::print_header(
      "Extension: multi-scale extrapolation with bootstrap 95% CIs (CG, "
      "serial + 8 ranks)",
      cfg);

  const auto app = apps::make_app(apps::AppId::CG);
  constexpr int kSmallP = 8;
  constexpr int kMaxP = 128;

  // One serial sweep for the largest scale serves every target scale.
  core::SerialSweep sweep;
  sweep.large_p = kMaxP;
  sweep.sample_x = core::SerialSweep::sample_points(kMaxP, kSmallP);
  for (int x : sweep.sample_x) {
    harness::DeploymentConfig dep;
    dep.nranks = 1;
    dep.errors_per_test = x;
    dep.scenario.regions = fsefi::RegionMask::Common;
    dep.trials = cfg.trials;
    dep.seed = util::derive_seed(cfg.seed, static_cast<std::uint64_t>(x));
    sweep.results.push_back(harness::CampaignRunner::run(*app, dep).overall);
  }

  harness::DeploymentConfig small_dep;
  small_dep.nranks = kSmallP;
  small_dep.trials = cfg.trials;
  small_dep.seed = cfg.seed;
  const auto small = core::SmallScaleObservation::from_campaign(
      harness::CampaignRunner::run(*app, small_dep));

  util::TablePrinter table({"scale p", "predicted success", "95% CI",
                            "measured"});
  for (int p : {16, 32, 64, 128}) {
    const auto rescaled = core::rescale_sweep(sweep, p);
    const core::ResiliencePredictor predictor(rescaled, small, {});
    const double predicted = predictor.predict(p).combined.success;
    const auto ci = core::bootstrap_prediction(rescaled, small, {}, p);

    std::string measured = "-";
    if (p == 16 || p == 64 || p == 128) {
      harness::DeploymentConfig dep;
      dep.nranks = p;
      dep.trials = cfg.trials;
      dep.seed = cfg.seed;
      measured = bench::pct(
          harness::CampaignRunner::run(*app, dep).overall.success_rate());
    }
    table.add_row({std::to_string(p), bench::pct(predicted),
                   "[" + bench::pct(ci.lo) + ", " + bench::pct(ci.hi) + "]",
                   measured});
  }
  table.print();
  std::cout << "\nThe prediction cost is constant in p (the paper's core "
               "claim); only the validation campaigns grow with scale.\n";
  return 0;
}
