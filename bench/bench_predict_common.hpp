// Shared driver for the modeling-accuracy figures (5, 6, 7): run the full
// study pipeline per benchmark and print predicted vs measured success
// rates with the prediction error.
#pragma once

#include "bench_common.hpp"

namespace resilience::bench {

/// Run studies for every paper benchmark at (small_p -> large_p) and print
/// the figure table. Returns the per-benchmark success prediction errors.
inline std::vector<double> prediction_figure(int small_p, int large_p,
                                             const util::BenchConfig& cfg) {
  util::TablePrinter table({"Benchmark", "measured success",
                            "predicted success", "error", "fine-tuned",
                            "prob_unique"});
  std::vector<double> errors;
  for (const auto& app : paper_apps()) {
    core::StudyConfig study_cfg;
    study_cfg.small_p = small_p;
    study_cfg.large_p = large_p;
    study_cfg.trials = cfg.trials;
    study_cfg.seed = cfg.seed;
    const auto study = core::run_study(*app, study_cfg);
    errors.push_back(study.success_error());
    table.add_row({app->label(), pct(study.measured_success()),
                   pct(study.predicted_success()), pct(study.success_error()),
                   study.prediction.fine_tuned ? "yes" : "no",
                   study.prob_unique > 0 ? pct(study.prob_unique, 2) : "none"});
  }
  table.print();
  double mean = 0.0, worst = 0.0;
  for (double e : errors) {
    mean += e;
    worst = std::max(worst, e);
  }
  mean /= static_cast<double>(errors.size());
  std::cout << "\naverage success prediction error: " << pct(mean)
            << ", worst: " << pct(worst) << "\n";
  return errors;
}

}  // namespace resilience::bench
