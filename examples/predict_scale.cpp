// predict_scale: the paper's full methodology on one benchmark.
//
// Uses fault injection in serial execution (multi-error sweeps at sampled
// error counts) plus one small-scale campaign to PREDICT the fault
// injection result of a large-scale execution — then measures the large
// scale directly and reports the prediction error (the Figure 5/6
// pipeline).
//
//   ./predict_scale [app] [small_p] [large_p] [trials]
#include <cstdlib>
#include <iostream>

#include "resilience.hpp"

int main(int argc, char** argv) {
  using namespace resilience;

  const std::string app_name = (argc > 1) ? argv[1] : "CG";
  core::StudyConfig cfg;
  cfg.small_p = (argc > 2) ? std::atoi(argv[2]) : 4;
  cfg.large_p = (argc > 3) ? std::atoi(argv[3]) : 64;
  cfg.trials = (argc > 4) ? std::strtoull(argv[4], nullptr, 10) : 200;

  const auto app = apps::make_app(apps::parse_app_id(app_name));
  std::cout << "Predicting " << app->label() << " at " << cfg.large_p
            << " ranks from serial + " << cfg.small_p << "-rank executions ("
            << cfg.trials << " trials per deployment)\n\n";

  const auto study = core::run_study(*app, cfg);

  util::TablePrinter sweep({"serial errors x", "FI_ser_x success"});
  for (std::size_t i = 0; i < study.sweep.sample_x.size(); ++i) {
    sweep.add_row({std::to_string(study.sweep.sample_x[i]),
                   util::TablePrinter::pct(study.sweep.results[i].success_rate())});
  }
  sweep.print();

  std::cout << "\nSmall-scale propagation r'_x (" << cfg.small_p
            << " ranks):\n";
  util::TablePrinter prop({"x ranks contaminated", "r'_x", "conditional success"});
  for (int x = 1; x <= cfg.small_p; ++x) {
    const auto& cond = study.small.conditional[static_cast<std::size_t>(x - 1)];
    prop.add_row(
        {std::to_string(x),
         util::TablePrinter::pct(
             study.small.propagation.r[static_cast<std::size_t>(x - 1)]),
         cond.trials > 0 ? util::TablePrinter::pct(cond.success_rate()) : "-"});
  }
  prop.print();

  std::cout << "\nParallel-unique fraction (large scale): "
            << util::TablePrinter::pct(study.prob_unique, 2) << "\n";
  std::cout << "Fine-tuned (alpha): " << (study.prediction.fine_tuned ? "yes" : "no")
            << "  (serial-vs-small divergence "
            << util::TablePrinter::pct(study.prediction.divergence) << ")\n\n";

  util::TablePrinter verdict({"", "success", "SDC", "failure"});
  verdict.add_row({"predicted",
                   util::TablePrinter::pct(study.prediction.combined.success),
                   util::TablePrinter::pct(study.prediction.combined.sdc),
                   util::TablePrinter::pct(study.prediction.combined.failure)});
  if (study.measured_large) {
    verdict.add_row({"measured",
                     util::TablePrinter::pct(study.measured_large->success_rate()),
                     util::TablePrinter::pct(study.measured_large->sdc_rate()),
                     util::TablePrinter::pct(study.measured_large->failure_rate())});
  }
  verdict.print();
  std::cout << "\nSuccess prediction error: "
            << util::TablePrinter::pct(study.success_error()) << "\n";
  std::cout << "Injection wall time: serial "
            << study.serial_injection_seconds << " s, small "
            << study.small_injection_seconds << " s, large (validation) "
            << study.large_injection_seconds << " s\n";
  return 0;
}
