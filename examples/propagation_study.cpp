// propagation_study: the paper's Section 3 characterization workflow.
//
// For one benchmark, profiles error propagation across MPI processes at
// several scales, prints each profile, groups the larger scales down to
// the smallest, and reports the cosine similarities — the analysis behind
// Figures 1/2 and Table 2 that justifies using a small scale to predict a
// large one.
//
//   ./propagation_study [app] [trials]
#include <cstdlib>
#include <iostream>

#include "resilience.hpp"

int main(int argc, char** argv) {
  using namespace resilience;

  const std::string app_name = (argc > 1) ? argv[1] : "MG";
  const std::size_t trials =
      (argc > 2) ? std::strtoull(argv[2], nullptr, 10) : 200;
  const auto app = apps::make_app(apps::parse_app_id(app_name));

  const std::vector<int> scales = {4, 8, 16, 32, 64};
  std::cout << "Error-propagation study: " << app->label() << ", " << trials
            << " one-error trials per scale\n\n";

  std::vector<core::PropagationProfile> profiles;
  for (int p : scales) {
    if (!app->supports(p)) {
      std::cout << p << " ranks unsupported; skipping\n";
      continue;
    }
    harness::DeploymentConfig dep;
    dep.nranks = p;
    dep.trials = trials;
    const auto campaign = harness::CampaignRunner::run(*app, dep);
    const auto prof = core::PropagationProfile::from_campaign(campaign);

    std::cout << "-- " << p << " ranks --  (success "
              << util::TablePrinter::pct(campaign.overall.success_rate())
              << ", SDC "
              << util::TablePrinter::pct(campaign.overall.sdc_rate())
              << ", failure "
              << util::TablePrinter::pct(campaign.overall.failure_rate())
              << ")\n   propagation: ";
    for (int x = 1; x <= p; ++x) {
      const double r = prof.r[static_cast<std::size_t>(x - 1)];
      if (r > 0.0) {
        std::cout << x << ":" << util::TablePrinter::pct(r) << " ";
      }
    }
    std::cout << "\n";
    profiles.push_back(prof);
  }

  std::cout << "\nCosine similarity of each small scale vs the largest "
               "(grouped as in paper Fig. 1c):\n";
  util::TablePrinter table({"comparison", "cosine similarity"});
  const auto& largest = profiles.back();
  for (std::size_t i = 0; i + 1 < profiles.size(); ++i) {
    table.add_row({std::to_string(profiles[i].nranks) + "V" +
                       std::to_string(largest.nranks),
                   util::TablePrinter::fmt(
                       core::propagation_similarity(profiles[i], largest))});
  }
  table.print();
  return 0;
}
