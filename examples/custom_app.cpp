// custom_app: integrating YOUR application with the framework.
//
// Everything the harness needs from an application is the apps::App
// interface: SPMD `run(comm)` over fsefi::Real arithmetic, an output
// signature, and a checker tolerance. This example defines a 1D explicit
// heat-diffusion stencil from scratch (the kind of kernel the paper's
// "common HPC applications" assumption targets), runs a fault-injection
// campaign on it, and predicts its resilience at 32 ranks from serial +
// 4-rank executions.
#include <iostream>

#include "resilience.hpp"

namespace {

using namespace resilience;
using fsefi::Real;

/// Explicit heat diffusion on a 1D rod with fixed ends: block-partitioned
/// cells, one halo exchange per step, and a final global energy norm.
class HeatApp final : public apps::App {
 public:
  struct Config {
    int cells = 192;
    int steps = 120;
    double alpha = 0.2;  ///< diffusion number (stable below 0.5)
  };

  HeatApp() : config_(Config{}) {}
  explicit HeatApp(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "HEAT"; }
  [[nodiscard]] std::string size_class() const override { return "demo"; }
  [[nodiscard]] bool supports(int nranks) const override {
    return nranks >= 1 && nranks <= config_.cells;
  }
  [[nodiscard]] double checker_tolerance() const override { return 1e-9; }

  apps::AppResult run(simmpi::Comm& comm) const override {
    const auto block =
        simmpi::block_partition(config_.cells, comm.size(), comm.rank());
    const int n = static_cast<int>(block.count());
    const int prev = comm.rank() > 0 ? comm.rank() - 1 : -1;
    const int next = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;

    // Hot spot in the middle of the rod.
    std::vector<Real> u(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto g = static_cast<double>(block.lo + i);
      const double x = g / config_.cells - 0.5;
      u[static_cast<std::size_t>(i)] = Real(1.0 / (1.0 + 50.0 * x * x));
    }

    const Real a(config_.alpha);
    std::vector<Real> unew(u.size());
    for (int step = 0; step < config_.steps; ++step) {
      Real from_prev(0.0), from_next(0.0);
      if (comm.size() > 1 && n > 0) {
        apps::exchange_halo_rows(comm, 10 + step,
                                 std::span<const Real>(&u.front(), 1),
                                 std::span<const Real>(&u.back(), 1),
                                 std::span<Real>(&from_prev, 1),
                                 std::span<Real>(&from_next, 1), prev, next);
      }
      for (int i = 0; i < n; ++i) {
        const Real left = i > 0 ? u[static_cast<std::size_t>(i - 1)]
                                : (block.lo > 0 ? from_prev : Real(0.0));
        const Real right =
            i + 1 < n ? u[static_cast<std::size_t>(i + 1)]
                      : (block.lo + n < config_.cells ? from_next : Real(0.0));
        const Real here = u[static_cast<std::size_t>(i)];
        unew[static_cast<std::size_t>(i)] =
            here + a * (left - Real(2.0) * here + right);
      }
      u.swap(unew);
    }

    const Real energy = apps::global_dot(comm, u, u);
    apps::guard_finite(energy, "heat energy");
    apps::AppResult result;
    result.iterations = config_.steps;
    result.signature = {energy.value()};
    return result;
  }

 private:
  Config config_;
};

}  // namespace

int main() {
  const HeatApp app;

  std::cout << "Custom-application integration demo: " << app.label()
            << "\n\n1) direct fault-injection campaign at 8 ranks:\n";
  harness::DeploymentConfig dep;
  dep.nranks = 8;
  dep.trials = 200;
  const auto campaign = harness::CampaignRunner::run(app, dep);
  util::TablePrinter outcomes({"outcome", "rate"});
  outcomes.add_row({"Success",
                    util::TablePrinter::pct(campaign.overall.success_rate())});
  outcomes.add_row({"SDC", util::TablePrinter::pct(campaign.overall.sdc_rate())});
  outcomes.add_row(
      {"Failure", util::TablePrinter::pct(campaign.overall.failure_rate())});
  outcomes.print();

  std::cout << "\n2) predict 32 ranks from serial + 4 ranks "
               "(the paper's methodology):\n";
  core::StudyConfig cfg;
  cfg.small_p = 4;
  cfg.large_p = 32;
  cfg.trials = 200;
  const auto study = core::run_study(app, cfg);
  util::TablePrinter verdict({"", "success rate"});
  verdict.add_row(
      {"predicted", util::TablePrinter::pct(study.predicted_success())});
  verdict.add_row(
      {"measured", util::TablePrinter::pct(study.measured_success())});
  verdict.add_row({"error", util::TablePrinter::pct(study.success_error())});
  verdict.print();
  return 0;
}
