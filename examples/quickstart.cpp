// Quickstart: inject faults into one benchmark and read the results.
//
// Runs a small fault-injection campaign against the CG benchmark at 8 MPI
// (simulated) ranks, prints the fault-injection result (Success/SDC/
// Failure rates), and the error-propagation histogram across ranks.
//
//   ./quickstart [app] [ranks] [trials]
//
// e.g. `./quickstart FT 8 200`.
#include <cstdlib>
#include <iostream>

#include "resilience.hpp"

int main(int argc, char** argv) {
  using namespace resilience;

  const std::string app_name = (argc > 1) ? argv[1] : "CG";
  const int ranks = (argc > 2) ? std::atoi(argv[2]) : 8;
  const std::size_t trials = (argc > 3) ? std::strtoull(argv[3], nullptr, 10) : 200;

  const auto app = apps::make_app(apps::parse_app_id(app_name));
  if (!app->supports(ranks)) {
    std::cerr << app->label() << " does not support " << ranks << " ranks\n";
    return 1;
  }

  std::cout << "Fault-injection campaign: " << app->label() << " on " << ranks
            << " ranks, " << trials << " trials\n"
            << "(single-bit flips in FP add/mul operands, as in the paper)\n\n";

  harness::DeploymentConfig dep;
  dep.nranks = ranks;
  dep.trials = trials;
  const auto campaign = harness::CampaignRunner::run(*app, dep);

  std::cout << "Golden signature:";
  for (double v : campaign.golden.signature) std::cout << ' ' << v;
  std::cout << "\nDynamic FP ops (max rank): " << campaign.golden.max_rank_ops
            << "\nParallel-unique op fraction: "
            << util::TablePrinter::pct(campaign.golden.unique_fraction(), 2)
            << "\n\n";

  util::TablePrinter outcomes({"Outcome", "Tests", "Rate", "95% CI"});
  const auto row = [&](const char* name, std::size_t count) {
    const auto ci = util::wilson_interval(count, campaign.overall.trials);
    outcomes.add_row({name, std::to_string(count),
                      util::TablePrinter::pct(ci.center),
                      "[" + util::TablePrinter::pct(ci.lo) + ", " +
                          util::TablePrinter::pct(ci.hi) + "]"});
  };
  row("Success", campaign.overall.success);
  row("SDC", campaign.overall.sdc);
  row("Failure", campaign.overall.failure);
  outcomes.print();

  std::cout << "\nError propagation (ranks contaminated per test):\n";
  util::TablePrinter prop({"#ranks", "tests", "r_x"});
  const auto r = campaign.propagation_probabilities();
  for (int x = 1; x <= ranks; ++x) {
    const std::size_t count =
        campaign.contamination_hist[static_cast<std::size_t>(x)];
    if (count == 0) continue;
    prop.add_row({std::to_string(x), std::to_string(count),
                  util::TablePrinter::pct(r[static_cast<std::size_t>(x - 1)])});
  }
  prop.print();

  std::cout << "\nFault-injection wall time: " << campaign.wall_seconds
            << " s\n";
  return 0;
}
