#include "core/similarity.hpp"

#include <gtest/gtest.h>

namespace resilience::core {
namespace {

PropagationProfile profile(int nranks, std::vector<double> r) {
  PropagationProfile p;
  p.nranks = nranks;
  p.r = std::move(r);
  return p;
}

TEST(GroupPropagation, MatchesFigure1cConstruction) {
  // 64 propagation cases evenly split into 8 groups of 8 (Figure 1c).
  std::vector<double> large(64, 0.0);
  large[0] = 0.77;   // one rank contaminated
  large[63] = 0.22;  // all 64 contaminated
  large[31] = 0.01;
  const auto grouped = group_propagation(large, 8);
  ASSERT_EQ(grouped.size(), 8u);
  EXPECT_DOUBLE_EQ(grouped[0], 0.77);
  EXPECT_DOUBLE_EQ(grouped[3], 0.01);
  EXPECT_DOUBLE_EQ(grouped[7], 0.22);
}

TEST(GroupPropagation, RejectsUnevenSplit) {
  EXPECT_THROW(group_propagation(std::vector<double>(10), 4),
               std::invalid_argument);
  EXPECT_THROW(group_propagation({}, 1), std::invalid_argument);
}

TEST(PropagationSimilarity, IdenticalShapesScoreNearOne) {
  // Small scale bimodal at {1, 8}; large scale bimodal at {1, 64} with the
  // same proportions: the paper's 8V64 case.
  const auto small = profile(8, {0.77, 0, 0, 0, 0, 0, 0.01, 0.22});
  std::vector<double> large_r(64, 0.0);
  large_r[0] = 0.75;
  large_r[55] = 0.01;
  large_r[63] = 0.24;
  const auto large = profile(64, large_r);
  EXPECT_GT(propagation_similarity(small, large), 0.99);
}

TEST(PropagationSimilarity, DissimilarShapesScoreLow) {
  // The paper's CG 4V64 anomaly: the small scale almost always propagates
  // to everyone, the large scale almost never does.
  const auto small = profile(4, {0.02, 0.0, 0.0, 0.98});
  std::vector<double> large_r(64, 0.0);
  large_r[0] = 0.95;
  large_r[63] = 0.05;
  const auto large = profile(64, large_r);
  EXPECT_LT(propagation_similarity(small, large), 0.3);
}

TEST(PropagationSimilarity, RequiresCompatibleScales) {
  const auto small = profile(3, {1.0, 0.0, 0.0});
  const auto large = profile(64, std::vector<double>(64, 1.0 / 64));
  EXPECT_THROW(propagation_similarity(small, large), std::invalid_argument);
}

TEST(PropagationSimilarity, SelfSimilarityIsOne) {
  const auto p = profile(8, {0.5, 0.1, 0.05, 0.05, 0.05, 0.05, 0.1, 0.1});
  EXPECT_NEAR(propagation_similarity(p, p), 1.0, 1e-12);
}

}  // namespace
}  // namespace resilience::core
