// Randomized property tests of the model algebra: for arbitrary valid
// campaign statistics, predictions must be well-formed probability
// distributions and respect the model's structural identities.
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "util/rng.hpp"

namespace resilience::core {
namespace {

harness::FaultInjectionResult random_result(util::Xoshiro256& rng,
                                            std::size_t trials) {
  harness::FaultInjectionResult r;
  for (std::size_t t = 0; t < trials; ++t) {
    const double u = rng.uniform01();
    r.add(u < 0.6   ? harness::Outcome::Success
          : u < 0.9 ? harness::Outcome::SDC
                    : harness::Outcome::Failure);
  }
  return r;
}

struct Inputs {
  SerialSweep sweep;
  SmallScaleObservation small;
};

Inputs random_inputs(std::uint64_t seed, int p, int s) {
  util::Xoshiro256 rng(seed);
  Inputs in;
  in.sweep.large_p = p;
  in.sweep.sample_x = SerialSweep::sample_points(p, s);
  for (int i = 0; i < s; ++i) {
    in.sweep.results.push_back(random_result(rng, 100));
  }
  in.small.nranks = s;
  in.small.conditional.resize(static_cast<std::size_t>(s));
  std::size_t total = 0;
  for (int g = 0; g < s; ++g) {
    // Some groups may be unobserved (zero trials), as in real campaigns.
    const std::size_t trials = rng.uniform_below(3) == 0
                                   ? 0
                                   : 20 + rng.uniform_below(80);
    in.small.conditional[static_cast<std::size_t>(g)] =
        random_result(rng, trials);
    total += trials;
  }
  // Guarantee at least one observed group.
  if (total == 0) {
    in.small.conditional[0] = random_result(rng, 50);
    total = 50;
  }
  in.small.propagation.nranks = s;
  in.small.propagation.r.assign(static_cast<std::size_t>(s), 0.0);
  for (int g = 0; g < s; ++g) {
    in.small.overall.merge(in.small.conditional[static_cast<std::size_t>(g)]);
    in.small.propagation.r[static_cast<std::size_t>(g)] =
        static_cast<double>(
            in.small.conditional[static_cast<std::size_t>(g)].trials) /
        static_cast<double>(total);
  }
  return in;
}

class ModelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelFuzz, PredictionsAreProbabilityDistributions) {
  for (const auto& [p, s] : {std::pair{64, 4}, std::pair{64, 8},
                            std::pair{32, 8}, std::pair{16, 2}}) {
    const Inputs in = random_inputs(GetParam() * 1000 + static_cast<std::uint64_t>(p) + static_cast<std::uint64_t>(s), p, s);
    const ResiliencePredictor predictor(in.sweep, in.small, {});
    const auto pred = predictor.predict(p);
    for (const Rates& rates : {pred.common, pred.combined}) {
      EXPECT_GE(rates.success, -1e-12);
      EXPECT_GE(rates.sdc, -1e-12);
      EXPECT_GE(rates.failure, -1e-12);
      EXPECT_LE(rates.success + rates.sdc + rates.failure, 1.0 + 1e-9);
    }
    // Propagation weights sum to 1, so the rates sum to exactly 1 when
    // every observed group contributes (a distribution in, a
    // distribution out).
    EXPECT_NEAR(pred.common.success + pred.common.sdc + pred.common.failure,
                1.0, 1e-9);
  }
}

TEST_P(ModelFuzz, FineTuneNeverWorsensAgainstSmallScale) {
  // By construction, fine-tuned group rates equal the small-scale
  // conditional rates; the weighted prediction therefore matches the
  // small scale's overall success exactly when projected at S == groups.
  const Inputs in = random_inputs(GetParam() ^ 0xabcdef, 64, 8);
  PredictorOptions force;
  force.fine_tune_threshold = -1.0;  // always fine-tune
  const ResiliencePredictor predictor(in.sweep, in.small, force);
  const auto pred = predictor.predict(64);
  EXPECT_TRUE(pred.fine_tuned);
  double expected = 0.0;
  for (int g = 0; g < 8; ++g) {
    const auto& cond = in.small.conditional[static_cast<std::size_t>(g)];
    const double weight = in.small.propagation.r[static_cast<std::size_t>(g)];
    const double rate = cond.trials > 0
                            ? cond.success_rate()
                            : in.sweep.results[static_cast<std::size_t>(g)]
                                  .success_rate();
    expected += weight * rate;
  }
  EXPECT_NEAR(pred.common.success, expected, 1e-9);
}

TEST_P(ModelFuzz, RescaleIsConsistentWithGroupMapping) {
  const Inputs in = random_inputs(GetParam() + 17, 64, 4);
  for (int target : {4, 8, 16, 32, 64}) {
    const auto rescaled = rescale_sweep(in.sweep, target);
    ASSERT_EQ(rescaled.sample_x.size(), 4u);
    for (std::size_t i = 0; i < rescaled.sample_x.size(); ++i) {
      EXPECT_DOUBLE_EQ(
          rescaled.results[i].success_rate(),
          in.sweep.result_for(rescaled.sample_x[i]).success_rate());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace resilience::core
