#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "apps/app.hpp"

namespace resilience::core {
namespace {

StudyResult small_study() {
  const auto app = apps::make_app(apps::AppId::LU);
  StudyConfig cfg;
  cfg.small_p = 2;
  cfg.large_p = 4;
  cfg.trials = 15;
  return run_study(*app, cfg);
}

TEST(Report, ContainsAllSections) {
  const auto study = small_study();
  const std::string md = render_report("LU (W)", study);
  EXPECT_NE(md.find("# Resilience prediction report: LU (W)"),
            std::string::npos);
  EXPECT_NE(md.find("## Serial sweeps"), std::string::npos);
  EXPECT_NE(md.find("## Small-scale propagation"), std::string::npos);
  EXPECT_NE(md.find("## Model decisions"), std::string::npos);
  EXPECT_NE(md.find("## Prediction"), std::string::npos);
  EXPECT_NE(md.find("FI_par (Eq. 1)"), std::string::npos);
  EXPECT_NE(md.find("measured ("), std::string::npos);
  EXPECT_NE(md.find("Success prediction error"), std::string::npos);
  EXPECT_NE(md.find("## Cost"), std::string::npos);
}

TEST(Report, OmitsValidationWhenNotMeasured) {
  const auto app = apps::make_app(apps::AppId::LU);
  StudyConfig cfg;
  cfg.small_p = 2;
  cfg.large_p = 4;
  cfg.trials = 10;
  cfg.measure_large = false;
  const auto study = run_study(*app, cfg);
  const std::string md = render_report("LU (W)", study);
  EXPECT_EQ(md.find("measured ("), std::string::npos);
  EXPECT_EQ(md.find("Success prediction error"), std::string::npos);
}

TEST(Report, WritesToFile) {
  const auto study = small_study();
  const std::string path = ::testing::TempDir() + "/resilience_report_test.md";
  write_report(path, "LU (W)", study);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "# Resilience prediction report: LU (W)");
  std::remove(path.c_str());
}

TEST(Report, BadPathThrows) {
  const auto study = small_study();
  EXPECT_THROW(write_report("/nonexistent_dir_xyz/report.md", "LU", study),
               std::runtime_error);
}

}  // namespace
}  // namespace resilience::core
