#include "core/bootstrap.hpp"

#include <gtest/gtest.h>

namespace resilience::core {
namespace {

harness::FaultInjectionResult make_result(std::size_t success,
                                          std::size_t sdc,
                                          std::size_t failure) {
  harness::FaultInjectionResult r;
  r.trials = success + sdc + failure;
  r.success = success;
  r.sdc = sdc;
  r.failure = failure;
  return r;
}

SerialSweep make_sweep(int p, int s,
                       std::vector<harness::FaultInjectionResult> results) {
  SerialSweep sweep;
  sweep.large_p = p;
  sweep.sample_x = SerialSweep::sample_points(p, s);
  sweep.results = std::move(results);
  return sweep;
}

SmallScaleObservation make_small(
    int s, std::vector<harness::FaultInjectionResult> cond) {
  SmallScaleObservation small;
  small.nranks = s;
  small.conditional = std::move(cond);
  std::size_t total = 0;
  for (const auto& c : small.conditional) total += c.trials;
  small.propagation.nranks = s;
  small.propagation.r.assign(static_cast<std::size_t>(s), 0.0);
  for (std::size_t g = 0; g < small.conditional.size(); ++g) {
    small.overall.merge(small.conditional[g]);
    small.propagation.r[g] =
        static_cast<double>(small.conditional[g].trials) /
        static_cast<double>(total);
  }
  return small;
}

TEST(Bootstrap, IntervalContainsPointPrediction) {
  const auto sweep =
      make_sweep(8, 2, {make_result(180, 20, 0), make_result(40, 150, 10)});
  const auto small =
      make_small(2, {make_result(90, 10, 0), make_result(20, 75, 5)});
  PredictorOptions opts;
  const double point =
      ResiliencePredictor(sweep, small, opts).predict(8).combined.success;
  const auto interval = bootstrap_prediction(sweep, small, opts, 8);
  EXPECT_LE(interval.lo, point + 0.02);
  EXPECT_GE(interval.hi, point - 0.02);
  EXPECT_GT(interval.width(), 0.0);
  EXPECT_LT(interval.width(), 0.5);
}

TEST(Bootstrap, DeterministicInSeed) {
  const auto sweep =
      make_sweep(8, 2, {make_result(90, 10, 0), make_result(20, 80, 0)});
  const auto small =
      make_small(2, {make_result(45, 5, 0), make_result(10, 40, 0)});
  const auto a = bootstrap_prediction(sweep, small, {}, 8);
  const auto b = bootstrap_prediction(sweep, small, {}, 8);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_DOUBLE_EQ(a.median, b.median);
}

TEST(Bootstrap, MoreTrialsNarrowTheInterval) {
  PredictorOptions opts;
  const auto small_n =
      make_small(2, {make_result(18, 2, 0), make_result(4, 16, 0)});
  const auto sweep_n =
      make_sweep(8, 2, {make_result(18, 2, 0), make_result(4, 16, 0)});
  const auto big = make_small(
      2, {make_result(1800, 200, 0), make_result(400, 1600, 0)});
  const auto sweep_big = make_sweep(
      8, 2, {make_result(1800, 200, 0), make_result(400, 1600, 0)});
  const auto wide = bootstrap_prediction(sweep_n, small_n, opts, 8);
  const auto narrow = bootstrap_prediction(sweep_big, big, opts, 8);
  EXPECT_LT(narrow.width(), wide.width());
}

TEST(Bootstrap, ValidatesLikeThePredictor) {
  const auto sweep =
      make_sweep(8, 2, {make_result(1, 0, 0), make_result(1, 0, 0)});
  const auto bad_small = make_small(4, {make_result(1, 0, 0),
                                        make_result(1, 0, 0),
                                        make_result(1, 0, 0),
                                        make_result(1, 0, 0)});
  EXPECT_THROW(bootstrap_prediction(sweep, bad_small, {}, 8),
               std::invalid_argument);
}

TEST(RescaleSweep, FillsTargetSamplesViaGroupMapping) {
  // Sweep sampled for p = 64 with S = 4: samples {1, 32, 48, 64}.
  const auto sweep = make_sweep(64, 4,
                                {make_result(90, 10, 0), make_result(50, 50, 0),
                                 make_result(30, 70, 0), make_result(10, 90, 0)});
  const auto rescaled = rescale_sweep(sweep, 16);
  EXPECT_EQ(rescaled.large_p, 16);
  EXPECT_EQ(rescaled.sample_x, (std::vector<int>{1, 8, 12, 16}));
  // x = 1 -> group 1; x = 8 -> ceil(8*4/64) = 1; x = 12 -> 1; x = 16 -> 1.
  for (const auto& r : rescaled.results) {
    EXPECT_DOUBLE_EQ(r.success_rate(), 0.9);
  }
}

TEST(RescaleSweep, IdentityAtSameScale) {
  const auto sweep =
      make_sweep(8, 2, {make_result(9, 1, 0), make_result(1, 9, 0)});
  const auto same = rescale_sweep(sweep, 8);
  EXPECT_EQ(same.sample_x, sweep.sample_x);
  EXPECT_DOUBLE_EQ(same.results[1].success_rate(),
                   sweep.results[1].success_rate());
}

TEST(RescaleSweep, RejectsUpscaling) {
  const auto sweep =
      make_sweep(8, 2, {make_result(1, 0, 0), make_result(1, 0, 0)});
  EXPECT_THROW(rescale_sweep(sweep, 16), std::invalid_argument);
  EXPECT_THROW(rescale_sweep(sweep, 0), std::invalid_argument);
}

}  // namespace
}  // namespace resilience::core
