#include "core/model.hpp"

#include <gtest/gtest.h>

namespace resilience::core {
namespace {

harness::FaultInjectionResult make_result(std::size_t success,
                                          std::size_t sdc,
                                          std::size_t failure) {
  harness::FaultInjectionResult r;
  r.trials = success + sdc + failure;
  r.success = success;
  r.sdc = sdc;
  r.failure = failure;
  return r;
}

TEST(SamplePoints, MatchesPaperExample) {
  // Section 4.2: S = 4, p = 64 -> {1, 32, 48, 64}.
  EXPECT_EQ(SerialSweep::sample_points(64, 4), (std::vector<int>{1, 32, 48, 64}));
}

TEST(SamplePoints, EightSamples) {
  EXPECT_EQ(SerialSweep::sample_points(64, 8),
            (std::vector<int>{1, 16, 24, 32, 40, 48, 56, 64}));
}

TEST(SamplePoints, DegenerateSingleSample) {
  EXPECT_EQ(SerialSweep::sample_points(8, 1), (std::vector<int>{1}));
}

TEST(SamplePoints, FullSampling) {
  EXPECT_EQ(SerialSweep::sample_points(4, 4), (std::vector<int>{1, 2, 3, 4}));
}

TEST(SamplePoints, BadArgumentsThrow) {
  EXPECT_THROW(SerialSweep::sample_points(64, 0), std::invalid_argument);
  EXPECT_THROW(SerialSweep::sample_points(4, 8), std::invalid_argument);
  EXPECT_THROW(SerialSweep::sample_points(64, 5), std::invalid_argument);
}

TEST(GroupOf, MatchesPaperEquation7) {
  // S = 4, p = 64: x in [1, 16] -> group 1, [17, 32] -> 2, [33, 48] -> 3,
  // [49, 64] -> 4 (Eq. 7's bracketing).
  SerialSweep sweep;
  sweep.large_p = 64;
  sweep.sample_x = SerialSweep::sample_points(64, 4);
  sweep.results.resize(4);
  EXPECT_EQ(sweep.group_of(1), 1);
  EXPECT_EQ(sweep.group_of(16), 1);
  EXPECT_EQ(sweep.group_of(17), 2);
  EXPECT_EQ(sweep.group_of(32), 2);
  EXPECT_EQ(sweep.group_of(33), 3);
  EXPECT_EQ(sweep.group_of(48), 3);
  EXPECT_EQ(sweep.group_of(49), 4);
  EXPECT_EQ(sweep.group_of(64), 4);
  EXPECT_THROW((void)sweep.group_of(0), std::invalid_argument);
  EXPECT_THROW((void)sweep.group_of(65), std::invalid_argument);
}

TEST(GroupOf, ResultForUsesGroupSample) {
  SerialSweep sweep;
  sweep.large_p = 8;
  sweep.sample_x = SerialSweep::sample_points(8, 2);  // {1, 8}
  sweep.results = {make_result(9, 1, 0), make_result(1, 9, 0)};
  EXPECT_DOUBLE_EQ(sweep.result_for(2).success_rate(), 0.9);   // group 1
  EXPECT_DOUBLE_EQ(sweep.result_for(5).success_rate(), 0.1);   // group 2
}

TEST(Projection, PreservesGroupMass) {
  PropagationProfile small;
  small.nranks = 4;
  small.r = {0.5, 0.1, 0.1, 0.3};
  const auto projected = small.project(64);
  ASSERT_EQ(projected.size(), 64u);
  // Mass of x in [1, 16] equals r'_1, etc.
  double g1 = 0.0, g4 = 0.0;
  for (int x = 1; x <= 16; ++x) g1 += projected[static_cast<std::size_t>(x - 1)];
  for (int x = 49; x <= 64; ++x) g4 += projected[static_cast<std::size_t>(x - 1)];
  EXPECT_NEAR(g1, 0.5, 1e-12);
  EXPECT_NEAR(g4, 0.3, 1e-12);
  double total = 0.0;
  for (double v : projected) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Projection, IdentityWhenScalesEqual) {
  PropagationProfile prof;
  prof.nranks = 4;
  prof.r = {0.25, 0.25, 0.25, 0.25};
  EXPECT_EQ(prof.project(4), prof.r);
}

TEST(Projection, RejectsNonDividingScales) {
  PropagationProfile prof;
  prof.nranks = 4;
  prof.r = {1.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(prof.project(6), std::invalid_argument);
  EXPECT_THROW(prof.project(2), std::invalid_argument);
}

// ---- predictor algebra on hand-built inputs --------------------------------

SerialSweep make_sweep(int p, int s,
                       std::vector<harness::FaultInjectionResult> results) {
  SerialSweep sweep;
  sweep.large_p = p;
  sweep.sample_x = SerialSweep::sample_points(p, s);
  sweep.results = std::move(results);
  return sweep;
}

SmallScaleObservation make_small(int s, std::vector<double> r,
                                 std::vector<harness::FaultInjectionResult> cond) {
  SmallScaleObservation small;
  small.nranks = s;
  small.propagation.nranks = s;
  small.propagation.r = std::move(r);
  small.conditional = std::move(cond);
  for (const auto& c : small.conditional) small.overall.merge(c);
  return small;
}

TEST(Predictor, EquationEightWeightedSum) {
  // Two groups: r' = {0.6, 0.4}; serial success rates {0.9, 0.1}.
  // FI_par_common = 0.6 * 0.9 + 0.4 * 0.1 = 0.58 (no fine-tuning).
  const auto sweep =
      make_sweep(8, 2, {make_result(90, 10, 0), make_result(10, 85, 5)});
  // Conditionals match the serial results so fine-tuning stays off.
  const auto small = make_small(
      2, {0.6, 0.4}, {make_result(54, 6, 0), make_result(4, 34, 2)});
  PredictorOptions opts;
  const ResiliencePredictor predictor(sweep, small, opts);
  const auto pred = predictor.predict(8);
  EXPECT_FALSE(pred.fine_tuned);
  EXPECT_NEAR(pred.common.success, 0.58, 1e-12);
  EXPECT_NEAR(pred.common.sdc, 0.6 * 0.1 + 0.4 * 0.85, 1e-12);
  EXPECT_NEAR(pred.common.failure, 0.4 * 0.05, 1e-12);
  // Rates stay a distribution when inputs are distributions.
  EXPECT_NEAR(pred.common.success + pred.common.sdc + pred.common.failure,
              1.0, 1e-12);
  EXPECT_EQ(pred.combined.success, pred.common.success);
}

TEST(Predictor, FineTuneTriggersOnDivergence) {
  // Serial says 90% success; the small scale's conditional says 20%:
  // divergence 0.7 > 0.2 -> alpha fine-tuning replaces the samples.
  const auto sweep =
      make_sweep(8, 2, {make_result(90, 10, 0), make_result(80, 20, 0)});
  const auto small = make_small(
      2, {0.5, 0.5}, {make_result(20, 80, 0), make_result(10, 90, 0)});
  const ResiliencePredictor predictor(sweep, small, {});
  const auto pred = predictor.predict(8);
  EXPECT_TRUE(pred.fine_tuned);
  EXPECT_NEAR(pred.divergence, 0.5 * 0.7 + 0.5 * 0.7, 1e-12);
  // Fine-tuned samples are the small scale's conditionals.
  EXPECT_NEAR(pred.common.success, 0.5 * 0.2 + 0.5 * 0.1, 1e-12);
  // alpha_g = small_g / serial_g.
  EXPECT_NEAR(pred.alpha[0], 0.2 / 0.9, 1e-12);
  EXPECT_NEAR(pred.alpha[1], 0.1 / 0.8, 1e-12);
}

TEST(Predictor, FineTuneCanBeDisabled) {
  const auto sweep =
      make_sweep(8, 2, {make_result(90, 10, 0), make_result(80, 20, 0)});
  const auto small = make_small(
      2, {0.5, 0.5}, {make_result(20, 80, 0), make_result(10, 90, 0)});
  PredictorOptions opts;
  opts.allow_fine_tune = false;
  const ResiliencePredictor predictor(sweep, small, opts);
  const auto pred = predictor.predict(8);
  EXPECT_FALSE(pred.fine_tuned);
  EXPECT_NEAR(pred.common.success, 0.5 * 0.9 + 0.5 * 0.8, 1e-12);
}

TEST(Predictor, UnobservedGroupsKeepSerialResults) {
  // The small scale never saw 2 ranks contaminated: conditional has zero
  // trials, so even under fine-tuning group 2 keeps the serial sample.
  const auto sweep =
      make_sweep(8, 2, {make_result(90, 10, 0), make_result(30, 70, 0)});
  const auto small =
      make_small(2, {1.0, 0.0}, {make_result(10, 90, 0), make_result(0, 0, 0)});
  const ResiliencePredictor predictor(sweep, small, {});
  const auto pred = predictor.predict(8);
  EXPECT_TRUE(pred.fine_tuned);
  // Group 2 has zero weight anyway; prediction is group 1's conditional.
  EXPECT_NEAR(pred.common.success, 0.1, 1e-12);
}

TEST(Predictor, UniqueTermBlendsPerEquationOne) {
  const auto sweep = make_sweep(8, 2, {make_result(100, 0, 0),
                                       make_result(100, 0, 0)});
  const auto small = make_small(2, {1.0, 0.0},
                                {make_result(100, 0, 0), make_result(0, 0, 0)});
  PredictorOptions opts;
  opts.prob_unique = 0.2;
  opts.unique_result = make_result(0, 100, 0);  // unique region always SDCs
  const ResiliencePredictor predictor(sweep, small, opts);
  const auto pred = predictor.predict(8);
  EXPECT_NEAR(pred.combined.success, 0.8 * 1.0, 1e-12);
  EXPECT_NEAR(pred.combined.sdc, 0.2, 1e-12);
}

TEST(Predictor, ValidationErrors) {
  const auto good_sweep =
      make_sweep(8, 2, {make_result(1, 0, 0), make_result(1, 0, 0)});
  const auto good_small =
      make_small(2, {1.0, 0.0}, {make_result(1, 0, 0), make_result(0, 0, 0)});

  // Sample count != small scale size.
  const auto bad_small =
      make_small(4, {1, 0, 0, 0},
                 {make_result(1, 0, 0), make_result(0, 0, 0),
                  make_result(0, 0, 0), make_result(0, 0, 0)});
  EXPECT_THROW(ResiliencePredictor(good_sweep, bad_small, {}),
               std::invalid_argument);

  // Samples not starting at 1.
  auto bad_sweep = good_sweep;
  bad_sweep.sample_x = {2, 8};
  EXPECT_THROW(ResiliencePredictor(bad_sweep, good_small, {}),
               std::invalid_argument);

  // prob_unique without a unique result.
  PredictorOptions opts;
  opts.prob_unique = 0.5;
  EXPECT_THROW(ResiliencePredictor(good_sweep, good_small, opts),
               std::invalid_argument);

  // predict at the wrong scale.
  const ResiliencePredictor predictor(good_sweep, good_small, {});
  EXPECT_THROW(predictor.predict(16), std::invalid_argument);
}

TEST(Rates, FromAndScale) {
  const auto r = Rates::from(make_result(5, 3, 2));
  EXPECT_DOUBLE_EQ(r.success, 0.5);
  EXPECT_DOUBLE_EQ(r.sdc, 0.3);
  EXPECT_DOUBLE_EQ(r.failure, 0.2);
  const auto half = r.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.success, 0.25);
  Rates acc = half;
  acc += half;
  EXPECT_DOUBLE_EQ(acc.success, 0.5);
}

TEST(SmallScaleObservation, FromCampaignExtractsConditionals) {
  harness::CampaignResult campaign;
  campaign.config.nranks = 2;
  campaign.contamination_hist = {0, 6, 4};
  campaign.by_contamination.assign(3, harness::FaultInjectionResult{});
  campaign.by_contamination[1] = make_result(6, 0, 0);
  campaign.by_contamination[2] = make_result(1, 3, 0);
  campaign.overall = make_result(7, 3, 0);
  const auto obs = SmallScaleObservation::from_campaign(campaign);
  EXPECT_EQ(obs.nranks, 2);
  EXPECT_NEAR(obs.propagation.r[0], 0.6, 1e-12);
  EXPECT_NEAR(obs.propagation.r[1], 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(obs.conditional[0].success_rate(), 1.0);
  EXPECT_DOUBLE_EQ(obs.conditional[1].success_rate(), 0.25);
}

}  // namespace
}  // namespace resilience::core
