#include "core/study.hpp"

#include <gtest/gtest.h>

#include "apps/app.hpp"

namespace resilience::core {
namespace {

TEST(Study, EndToEndPipelineProducesPrediction) {
  const auto app = apps::make_app(apps::AppId::LU);
  StudyConfig cfg;
  cfg.small_p = 2;
  cfg.large_p = 8;
  cfg.trials = 30;
  const auto study = run_study(*app, cfg);
  ASSERT_TRUE(study.measured_large.has_value());
  EXPECT_EQ(study.sweep.sample_x, (std::vector<int>{1, 8}));
  EXPECT_EQ(study.sweep.results.size(), 2u);
  // A prediction is a rate.
  EXPECT_GE(study.predicted_success(), 0.0);
  EXPECT_LE(study.predicted_success(), 1.0 + 1e-9);
  EXPECT_GE(study.measured_success(), 0.0);
  // Sanity: the model should not be wildly wrong even at tiny trial counts.
  EXPECT_LT(study.success_error(), 0.5);
  EXPECT_GT(study.serial_injection_seconds, 0.0);
  EXPECT_GT(study.small_injection_seconds, 0.0);
}

TEST(Study, DeterministicInSeed) {
  const auto app = apps::make_app(apps::AppId::LU);
  StudyConfig cfg;
  cfg.small_p = 2;
  cfg.large_p = 4;
  cfg.trials = 15;
  cfg.seed = 42;
  const auto a = run_study(*app, cfg);
  const auto b = run_study(*app, cfg);
  EXPECT_EQ(a.predicted_success(), b.predicted_success());
  EXPECT_EQ(a.measured_success(), b.measured_success());
}

TEST(Study, ParallelStudyBitIdenticalToSerial) {
  // Overlapped phases + parallel trials + the golden cache must not
  // change a single number of the study.
  const auto app = apps::make_app(apps::AppId::LU);
  StudyConfig cfg;
  cfg.small_p = 2;
  cfg.large_p = 8;
  cfg.trials = 20;
  cfg.seed = 31337;
  cfg.max_workers = 1;
  const auto serial = run_study(*app, cfg);
  cfg.max_workers = 8;
  const auto parallel = run_study(*app, cfg);
  EXPECT_EQ(parallel.predicted_success(), serial.predicted_success());
  EXPECT_EQ(parallel.prediction.combined.sdc, serial.prediction.combined.sdc);
  EXPECT_EQ(parallel.prob_unique, serial.prob_unique);
  ASSERT_EQ(parallel.sweep.results.size(), serial.sweep.results.size());
  for (std::size_t i = 0; i < serial.sweep.results.size(); ++i) {
    EXPECT_EQ(parallel.sweep.results[i].success,
              serial.sweep.results[i].success)
        << "sweep point " << i;
  }
  EXPECT_EQ(parallel.small.overall.success, serial.small.overall.success);
  EXPECT_EQ(parallel.small.propagation.r, serial.small.propagation.r);
  ASSERT_TRUE(parallel.measured_large && serial.measured_large);
  EXPECT_EQ(parallel.measured_large->success, serial.measured_large->success);
  EXPECT_EQ(parallel.measured_large->failure, serial.measured_large->failure);
}

TEST(Study, MeasureLargeCanBeSkipped) {
  const auto app = apps::make_app(apps::AppId::LU);
  StudyConfig cfg;
  cfg.small_p = 2;
  cfg.large_p = 4;
  cfg.trials = 10;
  cfg.measure_large = false;
  const auto study = run_study(*app, cfg);
  EXPECT_FALSE(study.measured_large.has_value());
  EXPECT_EQ(study.large_injection_seconds, 0.0);
  EXPECT_EQ(study.success_error(), 0.0);
}

TEST(Study, FtEngagesUniqueTerm) {
  const auto app = apps::make_app(apps::AppId::FT);
  StudyConfig cfg;
  cfg.small_p = 4;
  cfg.large_p = 8;
  cfg.trials = 15;
  cfg.measure_large = false;
  const auto study = run_study(*app, cfg);
  // FT's transpose work exceeds the threshold, so prob_unique is modeled.
  EXPECT_GT(study.prob_unique, cfg.unique_fraction_threshold);
}

TEST(Study, RejectsIncompatibleScales) {
  const auto app = apps::make_app(apps::AppId::LU);
  StudyConfig cfg;
  cfg.small_p = 3;
  cfg.large_p = 8;
  EXPECT_THROW(run_study(*app, cfg), std::invalid_argument);
  cfg.small_p = 0;
  EXPECT_THROW(run_study(*app, cfg), std::invalid_argument);
}

TEST(Study, RejectsUnsupportedApp) {
  const auto app = apps::make_app(apps::AppId::FT);  // needs p | 64
  StudyConfig cfg;
  cfg.small_p = 5;
  cfg.large_p = 10;
  EXPECT_THROW(run_study(*app, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace resilience::core
