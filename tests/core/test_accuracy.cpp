#include "core/accuracy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace resilience::core {
namespace {

TEST(Accuracy, PredictionErrorIsAbsolute) {
  EXPECT_NEAR(prediction_error(0.8, 0.7), 0.1, 1e-12);
  EXPECT_NEAR(prediction_error(0.7, 0.8), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(prediction_error(0.5, 0.5), 0.0);
}

TEST(Accuracy, RmseMatchesEquationNine) {
  // Paper Eq. 9 over n benchmarks.
  const std::vector<double> measured{0.8, 0.6, 0.9};
  const std::vector<double> predicted{0.7, 0.6, 0.8};
  EXPECT_NEAR(rmse(measured, predicted), std::sqrt(0.02 / 3.0), 1e-12);
}

}  // namespace
}  // namespace resilience::core
