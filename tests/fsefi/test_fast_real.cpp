// Differential tests of the countdown fast path against the pre-countdown
// reference implementation (RESILIENCE_FAST_REAL=0). The two paths must
// agree bit for bit on every observable: op-count profiles, filtered-
// stream indices, injection traces, contamination, and the exact op at
// which the hang budget throws. Integration-level coverage (whole apps,
// campaigns) lives in tests/integration/test_fast_real_diff.cpp.
#include <gtest/gtest.h>

#include <bit>
#include <utility>

#include "fsefi/fault_context.hpp"
#include "fsefi/real.hpp"

namespace resilience::fsefi {
namespace {

/// Restores the production default on scope exit so later tests in this
/// binary see the ordinary configuration.
struct FastRealRestore {
  ~FastRealRestore() { set_fast_real_enabled(true); }
};

/// One context per mode, armed with the same plan.
struct ModePair {
  FaultContext fast;
  FaultContext ref;

  void arm_both(const InjectionPlan& plan) {
    set_fast_real_enabled(true);
    fast.arm(plan);
    set_fast_real_enabled(false);
    ref.arm(plan);
  }

  void budget_both(std::uint64_t budget) {
    fast.set_op_budget(budget);
    ref.set_op_budget(budget);
  }
};

/// Run one instrumented op on `ctx` in `region`, returning the (possibly
/// flipped) operand values the context left behind.
std::pair<double, double> step(FaultContext& ctx, Region region, OpKind kind,
                               double a, double b) {
  ContextGuard guard(&ctx);
  RegionScope scope(region);
  ctx.on_op(kind, a, b);
  return {a, b};
}

void expect_same_state(const ModePair& pair, const char* where) {
  EXPECT_EQ(pair.fast.profile(), pair.ref.profile()) << where;
  EXPECT_EQ(pair.fast.ops_total(), pair.ref.ops_total()) << where;
  EXPECT_EQ(pair.fast.filtered_ops(), pair.ref.filtered_ops()) << where;
  EXPECT_EQ(pair.fast.injections_done(), pair.ref.injections_done()) << where;
  EXPECT_EQ(pair.fast.injection_events(), pair.ref.injection_events()) << where;
  EXPECT_EQ(pair.fast.contaminated(), pair.ref.contaminated()) << where;
  if (pair.fast.contaminated() && pair.ref.contaminated()) {
    EXPECT_EQ(pair.fast.first_contamination_op(),
              pair.ref.first_contamination_op())
        << where;
  }
}

TEST(FastRealDiff, MixedOpStreamMatchesReferenceBitForBit) {
  FastRealRestore restore;
  InjectionPlan plan;
  plan.kinds = KindMask::AddMul;
  plan.regions = RegionMask::All;
  // Duplicate index 7 exercises the multi-flip loop; 23 lands mid-stream;
  // 3000 is never reached (the plan stays partially armed).
  plan.points = {{.op_index = 0, .operand = 0, .bit = 52},
                 {.op_index = 7, .operand = 1, .bit = 30},
                 {.op_index = 7, .operand = 1, .bit = 3, .width = 4},
                 {.op_index = 23, .operand = 0, .bit = 61},
                 {.op_index = 3000, .operand = 0, .bit = 1}};
  ModePair pair;
  pair.arm_both(plan);

  constexpr OpKind kKinds[] = {OpKind::Add, OpKind::Mul, OpKind::Sub,
                               OpKind::Add, OpKind::Div, OpKind::Mul,
                               OpKind::Sqrt, OpKind::Add};
  for (int i = 0; i < 400; ++i) {
    const OpKind kind = kKinds[i % 8];
    // Region alternates in runs of 5 so both (region, kind) lanes are hit.
    const Region region =
        (i / 5) % 3 == 1 ? Region::ParallelUnique : Region::Common;
    const double a = 1.0 + 0.5 * i;
    const double b = 2.0 - 0.25 * i;
    const auto [fa, fb] = step(pair.fast, region, kind, a, b);
    const auto [ra, rb] = step(pair.ref, region, kind, a, b);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fa),
              std::bit_cast<std::uint64_t>(ra))
        << "op " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fb),
              std::bit_cast<std::uint64_t>(rb))
        << "op " << i;
    EXPECT_EQ(pair.fast.filtered_ops(), pair.ref.filtered_ops()) << "op " << i;
  }
  expect_same_state(pair, "after stream");
  EXPECT_EQ(pair.fast.injections_done(), 4u);  // idx 3000 still pending
}

TEST(FastRealDiff, BudgetThrowsAtTheSameOpInBothModes) {
  FastRealRestore restore;
  InjectionPlan plan;  // armed with no points: filter accounting still runs
  ModePair pair;
  pair.arm_both(plan);
  pair.budget_both(50);

  for (auto* ctx : {&pair.fast, &pair.ref}) {
    std::uint64_t threw_at = 0;
    for (int i = 0; i < 60 && threw_at == 0; ++i) {
      double a = 1.0, b = 2.0;
      try {
        step(*ctx, Region::Common, OpKind::Add, a, b);
      } catch (const HangBudgetExceeded&) {
        threw_at = ctx->ops_total();
      }
    }
    // The guard throws during the op that makes ops_total exceed budget.
    EXPECT_EQ(threw_at, 51u);
  }
  expect_same_state(pair, "after budget throw");

  // Catch-and-continue: every further op keeps throwing, and the states
  // keep agreeing (the fast path must re-arm its countdown each time).
  for (int i = 0; i < 3; ++i) {
    double a = 1.0, b = 2.0;
    EXPECT_THROW(step(pair.fast, Region::Common, OpKind::Mul, a, b),
                 HangBudgetExceeded);
    EXPECT_THROW(step(pair.ref, Region::Common, OpKind::Mul, a, b),
                 HangBudgetExceeded);
  }
  expect_same_state(pair, "after continued throws");
}

TEST(FastRealDiff, QuietWindowNeverCoversAnEvent) {
  FastRealRestore restore;
  InjectionPlan plan;
  plan.kinds = KindMask::AddMul;
  plan.points = {{.op_index = 10, .operand = 0, .bit = 51}};
  set_fast_real_enabled(true);
  FaultContext ctx;
  ctx.arm(plan);

  // 10 filtered ops must pass before the injection can fire, so exactly 10
  // ops are quiet (and a smaller ask is honored as-is).
  EXPECT_EQ(ctx.quiet_ops(1000), 10u);
  EXPECT_EQ(ctx.quiet_ops(4), 4u);

  {
    ContextGuard guard(&ctx);
    ctx.on_block(OpKind::Add, 6);
    ctx.on_block(OpKind::Mul, 4);
  }
  EXPECT_EQ(ctx.filtered_ops(), 10u);
  EXPECT_EQ(ctx.quiet_ops(1000), 0u);  // the next op is the injection

  double a = 2.0, b = 3.0;
  step(ctx, Region::Common, OpKind::Add, a, b);
  ASSERT_EQ(ctx.injection_events().size(), 1u);
  EXPECT_EQ(ctx.injection_events()[0].op_filtered, 10u);
  EXPECT_EQ(ctx.injection_events()[0].op_total, 11u);
  EXPECT_TRUE(ctx.contaminated());

  // Non-matching kinds never advance the filtered stream in bulk either.
  const std::uint64_t filtered = ctx.filtered_ops();
  {
    ContextGuard guard(&ctx);
    ctx.on_block(OpKind::Sqrt, 8);
  }
  EXPECT_EQ(ctx.filtered_ops(), filtered);
  EXPECT_EQ(ctx.profile().counts[0][static_cast<int>(OpKind::Sqrt)], 8u);
}

TEST(FastRealDiff, ReferenceModeDisablesBlocking) {
  FastRealRestore restore;
  set_fast_real_enabled(false);
  FaultContext ctx;
  ctx.reset();
  // quiet_ops == 0 forces kernels through per-op instrumentation, which is
  // what makes RESILIENCE_FAST_REAL=0 a faithful reference configuration.
  EXPECT_EQ(ctx.quiet_ops(1000), 0u);

  set_fast_real_enabled(true);
  ctx.reset();  // the toggle is latched at reset/arm time
  EXPECT_GT(ctx.quiet_ops(1000), 0u);
}

TEST(FastRealDiff, UnarmedFastContextCountsLikeReference) {
  FastRealRestore restore;
  ModePair pair;
  set_fast_real_enabled(true);
  pair.fast.reset();
  set_fast_real_enabled(false);
  pair.ref.reset();
  for (int i = 0; i < 100; ++i) {
    double a = 0.5 * i, b = 1.5;
    step(pair.fast, Region::Common, OpKind::Mul, a, b);
    a = 0.5 * i;
    b = 1.5;
    step(pair.ref, Region::Common, OpKind::Mul, a, b);
  }
  expect_same_state(pair, "unarmed counting");
  // Unarmed contexts advance no filtered stream in either mode.
  EXPECT_EQ(pair.fast.filtered_ops(), 0u);
}

}  // namespace
}  // namespace resilience::fsefi
