// Tests for the extended fault model: multi-bit flips, burst flips, and
// the injection event trace.
#include <gtest/gtest.h>

#include <bit>

#include "fsefi/real.hpp"
#include "harness/campaign.hpp"

namespace resilience::fsefi {
namespace {

TEST(FlipBits, WidthOneMatchesFlipBit) {
  for (int bit : {0, 13, 52, 63}) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(flip_bits(1.5, bit, 1)),
              std::bit_cast<std::uint64_t>(flip_bit(1.5, bit)));
  }
}

TEST(FlipBits, BurstTogglesAdjacentRange) {
  const double v = 3.25;
  const auto before = std::bit_cast<std::uint64_t>(v);
  const auto after = std::bit_cast<std::uint64_t>(flip_bits(v, 8, 4));
  EXPECT_EQ(before ^ after, 0xFULL << 8);
}

TEST(FlipBits, ClipsAtBit63) {
  const auto before = std::bit_cast<std::uint64_t>(1.0);
  const auto after = std::bit_cast<std::uint64_t>(flip_bits(1.0, 62, 4));
  EXPECT_EQ(before ^ after, (1ULL << 62) | (1ULL << 63));
}

TEST(FlipBits, SelfInverse) {
  const double once = flip_bits(2.75, 20, 3);
  EXPECT_DOUBLE_EQ(flip_bits(once, 20, 3), 2.75);
}

TEST(FaultPatternNames, AllNamed) {
  EXPECT_STREQ(to_string(FaultPattern::SingleBit), "single-bit");
  EXPECT_STREQ(to_string(FaultPattern::DoubleBit), "double-bit");
  EXPECT_STREQ(to_string(FaultPattern::Burst4), "burst-4");
}

class PatternContextTest : public ::testing::Test {
 protected:
  void SetUp() override { install_context(&ctx_); }
  void TearDown() override { install_context(nullptr); }
  FaultContext ctx_;
};

TEST_F(PatternContextTest, BurstPointFlipsFourBits) {
  InjectionPlan plan;
  plan.points = {{.op_index = 0, .operand = 0, .bit = 4, .width = 4}};
  ctx_.arm(std::move(plan));
  Real a = 1.0, b = 0.0;
  const Real r = a + b;
  ASSERT_EQ(ctx_.injection_events().size(), 1u);
  const auto& ev = ctx_.injection_events()[0];
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ev.value_before) ^
                std::bit_cast<std::uint64_t>(ev.value_after),
            0xFULL << 4);
  EXPECT_TRUE(r.tainted());
}

TEST_F(PatternContextTest, EventTraceRecordsWhatHappened) {
  InjectionPlan plan;
  plan.kinds = KindMask::Mul;
  plan.points = {{.op_index = 1, .operand = 1, .bit = 52, .width = 1}};
  ctx_.arm(std::move(plan));
  const Real a = 3.0, b = 2.0;
  (void)(a + b);  // uncounted by the filter
  (void)(a * b);  // filtered op 0
  (void)(a * b);  // filtered op 1: injected, operand b, bit 52 (2 -> 4)
  ASSERT_EQ(ctx_.injection_events().size(), 1u);
  const auto& ev = ctx_.injection_events()[0];
  EXPECT_EQ(ev.op_filtered, 1u);
  EXPECT_EQ(ev.kind, OpKind::Mul);
  EXPECT_EQ(ev.region, Region::Common);
  EXPECT_EQ(ev.operand, 1);
  EXPECT_EQ(ev.bit, 52);
  EXPECT_DOUBLE_EQ(ev.value_before, 2.0);
  EXPECT_DOUBLE_EQ(ev.value_after, 4.0);
  EXPECT_EQ(ev.op_total, 3u);  // the third instrumented op overall
}

TEST_F(PatternContextTest, ResetClearsEvents) {
  InjectionPlan plan;
  plan.points = {{.op_index = 0}};
  ctx_.arm(std::move(plan));
  (void)(Real(1.0) + Real(1.0));
  EXPECT_EQ(ctx_.injection_events().size(), 1u);
  ctx_.reset();
  EXPECT_TRUE(ctx_.injection_events().empty());
}

TEST(PatternCampaign, DoubleBitInjectsTwoFlipsPerError) {
  const auto app = apps::make_app(apps::AppId::LU);
  harness::DeploymentConfig cfg;
  cfg.nranks = 1;
  cfg.trials = 10;
  cfg.scenario.pattern = FaultPattern::DoubleBit;
  const auto result = harness::CampaignRunner::run(*app, cfg);
  EXPECT_EQ(result.overall.trials, 10u);
}

TEST(PatternCampaign, PatternsShiftTheOutcomeDistribution) {
  // Wider faults corrupt more aggressively: burst-4 success should not
  // exceed single-bit success by more than noise.
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig cfg;
  cfg.nranks = 1;
  cfg.trials = 80;
  cfg.scenario.pattern = FaultPattern::SingleBit;
  const auto single = harness::CampaignRunner::run(*app, cfg);
  cfg.scenario.pattern = FaultPattern::Burst4;
  const auto burst = harness::CampaignRunner::run(*app, cfg);
  EXPECT_LE(burst.overall.success_rate(),
            single.overall.success_rate() + 0.15);
}

}  // namespace
}  // namespace resilience::fsefi
