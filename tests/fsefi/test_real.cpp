#include "fsefi/real.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace resilience::fsefi {
namespace {

// These tests run without an installed FaultContext: Real must behave
// exactly like double and keep its shadow in lockstep.

TEST(Real, ArithmeticMatchesDouble) {
  const Real a = 3.5, b = -1.25;
  EXPECT_DOUBLE_EQ((a + b).value(), 2.25);
  EXPECT_DOUBLE_EQ((a - b).value(), 4.75);
  EXPECT_DOUBLE_EQ((a * b).value(), -4.375);
  EXPECT_DOUBLE_EQ((a / b).value(), -2.8);
  EXPECT_DOUBLE_EQ(sqrt(Real(2.0)).value(), std::sqrt(2.0));
}

TEST(Real, CompoundAssignments) {
  Real x = 10.0;
  x += 5.0;
  EXPECT_DOUBLE_EQ(x.value(), 15.0);
  x -= 3.0;
  EXPECT_DOUBLE_EQ(x.value(), 12.0);
  x *= 2.0;
  EXPECT_DOUBLE_EQ(x.value(), 24.0);
  x /= 4.0;
  EXPECT_DOUBLE_EQ(x.value(), 6.0);
}

TEST(Real, UntaintedByDefault) {
  const Real a = 1.0;
  EXPECT_FALSE(a.tainted());
  EXPECT_FALSE((a * 2.0 + 3.0).tainted());
  EXPECT_DOUBLE_EQ(a.shadow(), a.value());
}

TEST(Real, CorruptedCarriesDivergence) {
  const Real c = Real::corrupted(2.0, 1.0);
  EXPECT_TRUE(c.tainted());
  EXPECT_DOUBLE_EQ(c.value(), 2.0);
  EXPECT_DOUBLE_EQ(c.shadow(), 1.0);
}

TEST(Real, ShadowPropagatesThroughArithmetic) {
  const Real c = Real::corrupted(2.0, 1.0);
  const Real r = c * 3.0 + 1.0;
  EXPECT_DOUBLE_EQ(r.value(), 7.0);
  EXPECT_DOUBLE_EQ(r.shadow(), 4.0);
  EXPECT_TRUE(r.tainted());
}

TEST(Real, CorruptionCancelsWhenValuesReconverge) {
  // 0 * corrupted is 0 in both executions: the corruption is absorbed,
  // exactly as a memory-diffing injector would observe.
  const Real c = Real::corrupted(2.0, 1.0);
  const Real r = c * 0.0;
  EXPECT_FALSE(r.tainted());
}

TEST(Real, RoundingAbsorptionClearsTaint) {
  // A divergence far below the accumulator's ulp disappears when added.
  const Real small = Real::corrupted(1e-40, 1.1e-40);
  const Real acc = Real(1.0) + small;
  EXPECT_FALSE(acc.tainted());
  EXPECT_DOUBLE_EQ(acc.value(), 1.0);
}

TEST(Real, UntaintedCollapsesShadow) {
  const Real c = Real::corrupted(2.0, 1.0);
  const Real u = c.untainted();
  EXPECT_FALSE(u.tainted());
  EXPECT_DOUBLE_EQ(u.value(), 2.0);
  EXPECT_DOUBLE_EQ(u.shadow(), 2.0);
}

TEST(Real, ComparisonsFollowCorruptedValue) {
  const Real c = Real::corrupted(5.0, 1.0);
  EXPECT_TRUE(c > Real(4.0));   // primary 5 > 4 even though shadow is 1
  EXPECT_FALSE(c < Real(4.0));
  EXPECT_TRUE(c == Real(5.0));
  EXPECT_TRUE(c != Real(1.0));
  EXPECT_TRUE(c >= Real(5.0));
  EXPECT_TRUE(c <= Real(5.0));
}

TEST(Real, NegationAndAbs) {
  const Real c = Real::corrupted(-3.0, -2.0);
  EXPECT_DOUBLE_EQ((-c).value(), 3.0);
  EXPECT_DOUBLE_EQ((-c).shadow(), 2.0);
  EXPECT_DOUBLE_EQ(abs(c).value(), 3.0);
  EXPECT_DOUBLE_EQ(abs(c).shadow(), 2.0);
  EXPECT_TRUE(abs(c).tainted());
}

TEST(Real, MinMaxSelectByPrimary) {
  const Real a = Real::corrupted(1.0, 100.0);  // primary small, shadow big
  const Real b = 2.0;
  EXPECT_DOUBLE_EQ(min(a, b).value(), 1.0);
  EXPECT_DOUBLE_EQ(min(a, b).shadow(), 100.0);  // keeps its own shadow
  EXPECT_DOUBLE_EQ(max(a, b).value(), 2.0);
}

TEST(Real, FiniteAndNanPredicates) {
  EXPECT_TRUE(isfinite(Real(1.0)));
  EXPECT_FALSE(isfinite(Real(1.0) / Real(0.0)));
  EXPECT_TRUE(isnan(Real(0.0) / Real(0.0)));
  EXPECT_FALSE(isnan(Real(3.0)));
}

TEST(Real, NanDoesNotSelfTaint) {
  // NaN in both executions compares bit-equal: not corruption.
  const Real n = Real(0.0) / Real(0.0);
  EXPECT_FALSE(n.tainted());
}

TEST(FlipBit, TogglesExactlyOneBit) {
  const double x = 1.0;
  for (int bit = 0; bit < 64; ++bit) {
    const double flipped = flip_bit(x, bit);
    EXPECT_NE(std::bit_cast<std::uint64_t>(flipped),
              std::bit_cast<std::uint64_t>(x));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(flip_bit(flipped, bit)),
              std::bit_cast<std::uint64_t>(x));
  }
}

TEST(FlipBit, SignBit) {
  EXPECT_DOUBLE_EQ(flip_bit(1.0, 63), -1.0);
}

TEST(FlipBit, ClampsBitIndex) {
  EXPECT_DOUBLE_EQ(flip_bit(1.0, 200), flip_bit(1.0, 63));
  EXPECT_DOUBLE_EQ(flip_bit(1.0, -5), flip_bit(1.0, 0));
}

TEST(Real, ImplicitConversionFromLiteralsReadsNaturally) {
  const Real x = 2.0;
  const Real y = 3.0 * x + 1.0;  // double literals promote to Real
  EXPECT_DOUBLE_EQ(y.value(), 7.0);
}

}  // namespace
}  // namespace resilience::fsefi
