#include "fsefi/transport.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simmpi/runtime.hpp"

namespace resilience::fsefi {
namespace {

using simmpi::Comm;
using simmpi::Runtime;

/// Helper running a 2..n-rank job with one FaultContext per rank.
struct Job {
  explicit Job(int nranks) : contexts(static_cast<std::size_t>(nranks)) {
    for (auto& c : contexts) c = std::make_unique<FaultContext>();
  }

  simmpi::RunResult run(int nranks, const std::function<void(Comm&)>& body) {
    simmpi::RunOptions opts;
    opts.on_rank_start = [this](int rank) {
      contexts[static_cast<std::size_t>(rank)]->reset();
      install_context(contexts[static_cast<std::size_t>(rank)].get());
    };
    opts.on_rank_exit = [](int) { install_context(nullptr); };
    return Runtime::run(nranks, body, opts);
  }

  [[nodiscard]] bool contaminated(int rank) const {
    return contexts[static_cast<std::size_t>(rank)]->contaminated();
  }

  std::vector<std::unique_ptr<FaultContext>> contexts;
};

TEST(Transport, CorruptedPayloadContaminatesReceiver) {
  Job job(2);
  const auto result = job.run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const Real bad = Real::corrupted(2.0, 1.0);
      comm.send_value(1, 0, bad);
    } else {
      (void)comm.recv_value<Real>(0, 0);
    }
  });
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(job.contaminated(1));
}

TEST(Transport, CleanPayloadDoesNotContaminate) {
  Job job(2);
  const auto result = job.run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, Real(1.5));
    } else {
      (void)comm.recv_value<Real>(0, 0);
    }
  });
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(job.contaminated(0));
  EXPECT_FALSE(job.contaminated(1));
}

TEST(Transport, CorruptionSpreadsThroughAllreduce) {
  Job job(4);
  const auto result = job.run(4, [](Comm& comm) {
    Real mine = Real(1.0);
    if (comm.rank() == 2) mine = Real::corrupted(5.0, 1.0);
    (void)comm.allreduce_value(mine);
  });
  EXPECT_TRUE(result.ok);
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(job.contaminated(r)) << "rank " << r;
}

TEST(Transport, AbsorbedCorruptionDoesNotSpread) {
  Job job(2);
  const auto result = job.run(2, [](Comm& comm) {
    // The corruption is annihilated locally (times zero) before sending.
    Real mine = Real(1.0);
    if (comm.rank() == 0) {
      mine = Real::corrupted(7.0, 3.0) * Real(0.0) + Real(1.0);
    }
    if (comm.rank() == 0) {
      comm.send_value(1, 0, mine);
    } else {
      (void)comm.recv_value<Real>(0, 0);
    }
  });
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(job.contaminated(1));
}

TEST(Transport, ReduceCombineIsUninstrumented) {
  // The combine adds inside allreduce are MPI-library arithmetic: ranks
  // must not count them as application operations.
  Job job(4);
  const auto result = job.run(4, [](Comm& comm) {
    (void)comm.allreduce_value(Real(1.0));
  });
  EXPECT_TRUE(result.ok);
  for (const auto& ctx : job.contexts) {
    EXPECT_EQ(ctx->ops_total(), 0u);
  }
}

TEST(Transport, CorruptionStillFlowsThroughLibraryCombine) {
  // Even though combines are uninstrumented, a corrupted contribution must
  // corrupt the reduced value delivered to every rank.
  Job job(3);
  std::vector<int> tainted_result(3, 0);
  const auto result = job.run(3, [&](Comm& comm) {
    Real mine = Real(1.0);
    if (comm.rank() == 1) mine = Real::corrupted(100.0, 1.0);
    const Real sum = comm.allreduce_value(mine);
    tainted_result[static_cast<std::size_t>(comm.rank())] = sum.tainted();
  });
  EXPECT_TRUE(result.ok);
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(tainted_result[static_cast<std::size_t>(r)]);
}

TEST(Transport, LibraryGuardSuspendsAndRestores) {
  FaultContext ctx;
  ContextGuard outer(&ctx);
  {
    simmpi::TransportTraits<Real>::LibraryGuard guard{};
    EXPECT_EQ(current_context(), nullptr);
    (void)(Real(1.0) + Real(2.0));  // uncounted
  }
  EXPECT_EQ(current_context(), &ctx);
  EXPECT_EQ(ctx.ops_total(), 0u);
  (void)(Real(1.0) + Real(2.0));
  EXPECT_EQ(ctx.ops_total(), 1u);
}

TEST(Transport, InjectionInOneRankContaminatesDownstreamChain) {
  // rank 0 -> rank 1 -> rank 2 pipeline; injection at rank 0 contaminates
  // the whole chain through the forwarded values.
  Job job(3);
  const auto result = job.run(3, [&](Comm& comm) {
    if (comm.rank() == 0) {
      InjectionPlan plan;
      plan.points = {{.op_index = 0, .operand = 0, .bit = 52}};
      current_context()->arm(std::move(plan));
      const Real v = Real(2.0) * Real(3.0);  // injected here
      comm.send_value(1, 0, v);
    } else {
      const Real v = comm.recv_value<Real>(comm.rank() - 1, 0);
      if (comm.rank() + 1 < comm.size()) {
        comm.send_value(comm.rank() + 1, 0, v + Real(1.0));
      }
    }
  });
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(job.contaminated(0));
  EXPECT_TRUE(job.contaminated(1));
  EXPECT_TRUE(job.contaminated(2));
}

}  // namespace
}  // namespace resilience::fsefi
