#include "fsefi/fault_context.hpp"

#include <gtest/gtest.h>

#include "fsefi/real.hpp"

namespace resilience::fsefi {
namespace {

/// Fixture installing a fresh context on the test thread.
class ContextTest : public ::testing::Test {
 protected:
  void SetUp() override { install_context(&ctx_); }
  void TearDown() override { install_context(nullptr); }
  FaultContext ctx_;
};

TEST_F(ContextTest, CountsOpsByKind) {
  const Real a = 2.0, b = 3.0;
  (void)(a + b);
  (void)(a + b);
  (void)(a - b);
  (void)(a * b);
  (void)(a / b);
  (void)sqrt(a);
  const auto& prof = ctx_.profile();
  const int common = static_cast<int>(Region::Common);
  EXPECT_EQ(prof.counts[common][static_cast<int>(OpKind::Add)], 2u);
  EXPECT_EQ(prof.counts[common][static_cast<int>(OpKind::Sub)], 1u);
  EXPECT_EQ(prof.counts[common][static_cast<int>(OpKind::Mul)], 1u);
  EXPECT_EQ(prof.counts[common][static_cast<int>(OpKind::Div)], 1u);
  EXPECT_EQ(prof.counts[common][static_cast<int>(OpKind::Sqrt)], 1u);
  EXPECT_EQ(ctx_.ops_total(), 6u);
  EXPECT_EQ(prof.total(), 6u);
}

TEST_F(ContextTest, UncountedOperationsStayUncounted) {
  const Real a = -2.0;
  (void)(-a);
  (void)abs(a);
  (void)(a < Real(0.0));
  (void)min(a, Real(1.0));
  EXPECT_EQ(ctx_.ops_total(), 0u);
}

TEST_F(ContextTest, RegionScopeAttributesOps) {
  const Real a = 1.0, b = 2.0;
  (void)(a + b);  // common
  {
    RegionScope unique(Region::ParallelUnique);
    EXPECT_EQ(ctx_.current_region(), Region::ParallelUnique);
    (void)(a * b);
    (void)(a * b);
  }
  EXPECT_EQ(ctx_.current_region(), Region::Common);
  (void)(a + b);  // common again
  const auto& prof = ctx_.profile();
  EXPECT_EQ(prof.in_region(Region::Common), 2u);
  EXPECT_EQ(prof.in_region(Region::ParallelUnique), 2u);
}

TEST_F(ContextTest, RegionScopesNest) {
  {
    RegionScope outer(Region::ParallelUnique);
    {
      RegionScope inner(Region::Common);
      EXPECT_EQ(ctx_.current_region(), Region::Common);
    }
    EXPECT_EQ(ctx_.current_region(), Region::ParallelUnique);
  }
  EXPECT_EQ(ctx_.current_region(), Region::Common);
}

TEST_F(ContextTest, InjectsAtExactDynamicIndex) {
  InjectionPlan plan;
  plan.kinds = KindMask::AddMul;
  plan.points = {{.op_index = 2, .operand = 0, .bit = 52}};  // third add/mul
  ctx_.arm(std::move(plan));

  Real acc = 0.0;
  for (int i = 0; i < 5; ++i) acc += Real(1.0);  // adds 0..4; flip at #2
  EXPECT_EQ(ctx_.injections_done(), 1u);
  EXPECT_TRUE(ctx_.contaminated());
  EXPECT_TRUE(acc.tainted());
  // Bit 52 of the accumulator (value 2.0) doubles it to 4.0 at add #2:
  // corrupted 4+1+1 = 6, shadow 2+1+1 = 4... trace the exact arithmetic:
  EXPECT_DOUBLE_EQ(acc.shadow(), 5.0);
  EXPECT_NE(acc.value(), acc.shadow());
}

TEST_F(ContextTest, KindFilterSkipsOtherOps) {
  InjectionPlan plan;
  plan.kinds = KindMask::Mul;  // only multiplies are eligible
  plan.points = {{.op_index = 0, .operand = 0, .bit = 1}};
  ctx_.arm(std::move(plan));

  const Real a = 1.5, b = 2.5;
  (void)(a + b);  // not eligible: no injection
  EXPECT_EQ(ctx_.injections_done(), 0u);
  (void)(a * b);  // first eligible op: injected
  EXPECT_EQ(ctx_.injections_done(), 1u);
}

TEST_F(ContextTest, RegionFilterTargetsUniqueOnly) {
  InjectionPlan plan;
  plan.regions = RegionMask::ParallelUnique;
  plan.points = {{.op_index = 0, .operand = 1, .bit = 3}};
  ctx_.arm(std::move(plan));

  const Real a = 1.0, b = 2.0;
  (void)(a + b);  // common: skipped
  EXPECT_EQ(ctx_.injections_done(), 0u);
  {
    RegionScope unique(Region::ParallelUnique);
    (void)(a + b);  // first unique op: injected
  }
  EXPECT_EQ(ctx_.injections_done(), 1u);
}

TEST_F(ContextTest, MultiErrorPlanFiresAllPoints) {
  InjectionPlan plan;
  plan.points = {{.op_index = 1, .operand = 0, .bit = 5},
                 {.op_index = 3, .operand = 1, .bit = 7},
                 {.op_index = 4, .operand = 0, .bit = 9}};
  ctx_.arm(std::move(plan));
  const Real a = 1.0, b = 2.0;
  for (int i = 0; i < 6; ++i) (void)(a + b);
  EXPECT_EQ(ctx_.injections_done(), 3u);
}

TEST_F(ContextTest, TwoFlipsAtSameIndexBothFire) {
  InjectionPlan plan;
  plan.points = {{.op_index = 0, .operand = 0, .bit = 4},
                 {.op_index = 0, .operand = 0, .bit = 4}};
  ctx_.arm(std::move(plan));
  const Real a = 1.0, b = 2.0;
  const Real r = a + b;
  EXPECT_EQ(ctx_.injections_done(), 2u);
  // Double flip of the same bit cancels: no corruption in the result.
  EXPECT_FALSE(r.tainted());
  // ...but the injected rank still counts as contaminated (it was hit).
  EXPECT_TRUE(ctx_.contaminated());
}

TEST_F(ContextTest, UnsortedPlanRejected) {
  InjectionPlan plan;
  plan.points = {{.op_index = 5}, {.op_index = 2}};
  EXPECT_THROW(ctx_.arm(std::move(plan)), std::invalid_argument);
}

TEST_F(ContextTest, OpBudgetThrowsHang) {
  ctx_.set_op_budget(10);
  const Real a = 1.0, b = 2.0;
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) (void)(a + b);
      },
      HangBudgetExceeded);
  EXPECT_LE(ctx_.ops_total(), 11u);
}

TEST_F(ContextTest, ZeroBudgetDisablesGuard) {
  ctx_.set_op_budget(0);
  const Real a = 1.0, b = 2.0;
  for (int i = 0; i < 1000; ++i) (void)(a + b);
  EXPECT_EQ(ctx_.ops_total(), 1000u);
}

TEST_F(ContextTest, ResetClearsEverything) {
  InjectionPlan plan;
  plan.points = {{.op_index = 0}};
  ctx_.arm(std::move(plan));
  (void)(Real(1.0) + Real(2.0));
  EXPECT_TRUE(ctx_.contaminated());
  ctx_.reset();
  EXPECT_FALSE(ctx_.contaminated());
  EXPECT_EQ(ctx_.ops_total(), 0u);
  EXPECT_EQ(ctx_.injections_done(), 0u);
  (void)(Real(1.0) + Real(2.0));
  EXPECT_FALSE(ctx_.contaminated());  // plan is gone
}

TEST_F(ContextTest, FirstContaminationOpRecorded) {
  InjectionPlan plan;
  plan.points = {{.op_index = 4, .operand = 0, .bit = 10}};
  ctx_.arm(std::move(plan));
  const Real a = 1.0, b = 2.0;
  for (int i = 0; i < 10; ++i) (void)(a + b);
  EXPECT_TRUE(ctx_.contaminated());
  EXPECT_EQ(ctx_.first_contamination_op(), 5u);  // during the 5th op
}

TEST_F(ContextTest, ExternalTaintMarksContamination) {
  EXPECT_FALSE(ctx_.contaminated());
  ctx_.note_external_taint();
  EXPECT_TRUE(ctx_.contaminated());
}

TEST_F(ContextTest, MatchingCountsRespectFilters) {
  const Real a = 1.0, b = 2.0;
  (void)(a + b);
  (void)(a * b);
  (void)(a / b);
  {
    RegionScope unique(Region::ParallelUnique);
    (void)(a + b);
  }
  const auto& prof = ctx_.profile();
  EXPECT_EQ(prof.matching(KindMask::AddMul, RegionMask::All), 3u);
  EXPECT_EQ(prof.matching(KindMask::AddMul, RegionMask::Common), 2u);
  EXPECT_EQ(prof.matching(KindMask::All, RegionMask::All), 4u);
  EXPECT_EQ(prof.matching(KindMask::Div, RegionMask::All), 1u);
  EXPECT_EQ(prof.matching(KindMask::None, RegionMask::All), 0u);
}

TEST(ContextFree, OpsWithoutContextAreUninstrumented) {
  ASSERT_EQ(current_context(), nullptr);
  const Real r = Real(1.0) + Real(2.0);
  EXPECT_DOUBLE_EQ(r.value(), 3.0);
}

TEST(ContextGuardTest, InstallsAndRestores) {
  FaultContext outer, inner;
  install_context(&outer);
  {
    ContextGuard guard(&inner);
    EXPECT_EQ(current_context(), &inner);
  }
  EXPECT_EQ(current_context(), &outer);
  install_context(nullptr);
}

}  // namespace
}  // namespace resilience::fsefi
