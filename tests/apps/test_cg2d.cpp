// Tests of CG's NPB-style 2D decomposition: numerical agreement with the
// serial run, the process-grid constraints, and the parallel-unique
// partial-sum merge that Table 1 of the paper reports for CG.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cg.hpp"
#include "harness/campaign.hpp"

namespace resilience::apps {
namespace {

TEST(Cg2d, SupportsOnlySquareGridsDividingN) {
  const auto app = make_app(AppId::CG, "2D");
  EXPECT_TRUE(app->supports(1));
  EXPECT_TRUE(app->supports(4));
  EXPECT_TRUE(app->supports(16));
  EXPECT_TRUE(app->supports(64));
  EXPECT_FALSE(app->supports(8));   // not a perfect square
  EXPECT_FALSE(app->supports(2));
  EXPECT_FALSE(app->supports(9));   // square but 256 % 9 != 0
  EXPECT_FALSE(app->supports(256 * 2));
}

class Cg2dScales : public ::testing::TestWithParam<int> {};

TEST_P(Cg2dScales, MatchesSerialWithinCheckerTolerance) {
  const auto app = make_app(AppId::CG, "2D");
  const auto serial = harness::profile_app(*app, 1);
  const auto parallel = harness::profile_app(*app, GetParam());
  const double dev =
      harness::signature_deviation(parallel.signature, serial.signature);
  EXPECT_LT(dev, app->checker_tolerance());
}

TEST_P(Cg2dScales, BitReproducible) {
  const auto app = make_app(AppId::CG, "2D");
  const auto a = harness::profile_app(*app, GetParam());
  const auto b = harness::profile_app(*app, GetParam());
  EXPECT_EQ(a.signature, b.signature);
}

INSTANTIATE_TEST_SUITE_P(Grids, Cg2dScales, ::testing::Values(4, 16, 64));

TEST(Cg2d, HasSmallParallelUniqueShare) {
  // The row-group merge additions are the parallel-unique computation;
  // Table 1 reports a small share for CG (1.6% Class S, 0.27% Class B).
  const auto app = make_app(AppId::CG, "2D");
  const auto golden = harness::profile_app(*app, 4);
  const double frac = golden.unique_fraction();
  EXPECT_GT(frac, 0.001);
  EXPECT_LT(frac, 0.10);
  // The denser "B2D" matrix has a smaller share (the paper's B < S trend).
  const auto app_b = make_app(AppId::CG, "B2D");
  const auto golden_b = harness::profile_app(*app_b, 4);
  EXPECT_LT(golden_b.unique_fraction(), frac);
}

TEST(Cg2d, SerialHasNoUniqueShare) {
  const auto app = make_app(AppId::CG, "2D");
  const auto golden = harness::profile_app(*app, 1);
  EXPECT_EQ(golden.unique_fraction(), 0.0);
}

TEST(Cg2d, CampaignRunsAndPropagates) {
  const auto app = make_app(AppId::CG, "2D");
  harness::DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 40;
  const auto result = harness::CampaignRunner::run(*app, cfg);
  EXPECT_EQ(result.overall.trials, 40u);
  // Propagation reaches beyond one rank in at least some trials (the dot
  // products are global).
  std::size_t beyond_one = 0;
  for (std::size_t x = 2; x < result.contamination_hist.size(); ++x) {
    beyond_one += result.contamination_hist[x];
  }
  EXPECT_GT(beyond_one, 0u);
}

TEST(Cg2d, UniqueRegionDeploymentTargetsTheMerge) {
  const auto app = make_app(AppId::CG, "2D");
  harness::DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 20;
  cfg.scenario.regions = fsefi::RegionMask::ParallelUnique;
  const auto result = harness::CampaignRunner::run(*app, cfg);
  EXPECT_EQ(result.overall.trials, 20u);
}

TEST(Cg2d, ZetaMatchesOneDVariantClosely) {
  // "2D" uses a denser matrix than "S", so compare 2D-serial against
  // 2D-parallel zeta rather than across classes; but the estimate itself
  // must be in the physical band (above the diagonal shift).
  const auto app = make_app(AppId::CG, "2D");
  const auto golden = harness::profile_app(*app, 16);
  EXPECT_GT(golden.signature[0], 12.0);
  EXPECT_TRUE(std::isfinite(golden.signature[1]));
}

}  // namespace
}  // namespace resilience::apps
