// Direct numerical validation of the FFT kernel behind FT: agreement with
// a naive O(n^2) DFT, linearity, round-trip identity, and Parseval's
// theorem — swept across sizes with a parameterized suite.
#include "apps/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "util/rng.hpp"

namespace resilience::apps {
namespace {

std::vector<RComplex> random_signal(int n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<RComplex> signal(static_cast<std::size_t>(n));
  for (auto& c : signal) {
    c.re = fsefi::Real(rng.uniform_real(-1.0, 1.0));
    c.im = fsefi::Real(rng.uniform_real(-1.0, 1.0));
  }
  return signal;
}

/// Reference DFT: X_k = sum_j x_j exp(-2 pi i j k / n).
std::vector<std::complex<double>> naive_dft(const std::vector<RComplex>& x) {
  const int n = static_cast<int>(x.size());
  std::vector<std::complex<double>> out(x.size());
  for (int k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (int j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * j * k / n;
      acc += std::complex<double>(x[static_cast<std::size_t>(j)].re.value(),
                                  x[static_cast<std::size_t>(j)].im.value()) *
             std::polar(1.0, angle);
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  return out;
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const int n = GetParam();
  const FftPlan plan(n);
  auto signal = random_signal(n, 42);
  const auto reference = naive_dft(signal);
  plan.transform(std::span<RComplex>(signal), /*inverse=*/false);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(signal[static_cast<std::size_t>(k)].re.value(),
                reference[static_cast<std::size_t>(k)].real(), 1e-9 * n);
    EXPECT_NEAR(signal[static_cast<std::size_t>(k)].im.value(),
                reference[static_cast<std::size_t>(k)].imag(), 1e-9 * n);
  }
}

TEST_P(FftSizes, RoundTripIsIdentityUpToScale) {
  const int n = GetParam();
  const FftPlan plan(n);
  const auto original = random_signal(n, 7);
  auto signal = original;
  plan.transform(std::span<RComplex>(signal), false);
  plan.transform(std::span<RComplex>(signal), true);
  // forward + inverse without normalization multiplies by n.
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(signal[static_cast<std::size_t>(i)].re.value(),
                n * original[static_cast<std::size_t>(i)].re.value(), 1e-9 * n);
    EXPECT_NEAR(signal[static_cast<std::size_t>(i)].im.value(),
                n * original[static_cast<std::size_t>(i)].im.value(), 1e-9 * n);
  }
}

TEST_P(FftSizes, ParsevalHolds) {
  const int n = GetParam();
  const FftPlan plan(n);
  auto signal = random_signal(n, 99);
  double time_energy = 0.0;
  for (const auto& c : signal) {
    time_energy += c.re.value() * c.re.value() + c.im.value() * c.im.value();
  }
  plan.transform(std::span<RComplex>(signal), false);
  double freq_energy = 0.0;
  for (const auto& c : signal) {
    freq_energy += c.re.value() * c.re.value() + c.im.value() * c.im.value();
  }
  EXPECT_NEAR(freq_energy, n * time_energy, 1e-8 * n * time_energy);
}

TEST_P(FftSizes, Linearity) {
  const int n = GetParam();
  const FftPlan plan(n);
  auto a = random_signal(n, 1);
  auto b = random_signal(n, 2);
  std::vector<RComplex> sum(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    sum[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] +
                                       b[static_cast<std::size_t>(i)];
  }
  plan.transform(std::span<RComplex>(a), false);
  plan.transform(std::span<RComplex>(b), false);
  plan.transform(std::span<RComplex>(sum), false);
  for (int i = 0; i < n; ++i) {
    const auto expected = a[static_cast<std::size_t>(i)] +
                          b[static_cast<std::size_t>(i)];
    EXPECT_NEAR(sum[static_cast<std::size_t>(i)].re.value(),
                expected.re.value(), 1e-9 * n);
    EXPECT_NEAR(sum[static_cast<std::size_t>(i)].im.value(),
                expected.im.value(), 1e-9 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwo, FftSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(FftPlan, DeltaTransformsToConstant) {
  const FftPlan plan(8);
  std::vector<RComplex> delta(8);
  delta[0].re = fsefi::Real(1.0);
  plan.transform(std::span<RComplex>(delta), false);
  for (const auto& c : delta) {
    EXPECT_NEAR(c.re.value(), 1.0, 1e-12);
    EXPECT_NEAR(c.im.value(), 0.0, 1e-12);
  }
}

TEST(FftPlan, RejectsBadSizes) {
  EXPECT_THROW(FftPlan(0), std::invalid_argument);
  EXPECT_THROW(FftPlan(1), std::invalid_argument);
  EXPECT_THROW(FftPlan(12), std::invalid_argument);
  EXPECT_THROW(FftPlan(-8), std::invalid_argument);
}

TEST(FftPlan, RejectsWrongRowLength) {
  const FftPlan plan(8);
  std::vector<RComplex> wrong(4);
  EXPECT_THROW(plan.transform(std::span<RComplex>(wrong), false),
               std::invalid_argument);
}

TEST(FftPlan, OperationsAreInstrumented) {
  fsefi::FaultContext ctx;
  fsefi::ContextGuard guard(&ctx);
  const FftPlan plan(16);
  auto signal = random_signal(16, 3);
  plan.transform(std::span<RComplex>(signal), false);
  // (n/2) log2(n) butterflies, each one complex mul (4 mul + 2 add/sub)
  // and two complex add/sub (4 add/sub) = 10 instrumented ops.
  EXPECT_EQ(ctx.ops_total(), 8u * 4u * 10u);  // butterflies * ops each
}

}  // namespace
}  // namespace resilience::apps
