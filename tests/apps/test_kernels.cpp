// Direct tests of the shared distributed kernels the mini-apps build on.
#include "apps/kernels.hpp"

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "simmpi/runtime.hpp"

namespace resilience::apps {
namespace {

using simmpi::Comm;
using simmpi::Runtime;

TEST(Kernels, LocalDotMatchesHandComputation) {
  const std::vector<Real> a{1.0, 2.0, 3.0};
  const std::vector<Real> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(local_dot(a, b).value(), 32.0);
  EXPECT_DOUBLE_EQ(local_dot({}, {}).value(), 0.0);
}

TEST(Kernels, GlobalDotSumsAcrossRanks) {
  const auto result = Runtime::run(4, [](Comm& comm) {
    const std::vector<Real> mine{Real(comm.rank() + 1.0)};
    const Real dot = global_dot(comm, mine, mine);
    // 1 + 4 + 9 + 16
    EXPECT_DOUBLE_EQ(dot.value(), 30.0);
  });
  EXPECT_TRUE(result.ok);
}

TEST(Kernels, AxpyAndXpby) {
  std::vector<Real> x{1.0, 2.0};
  std::vector<Real> y{10.0, 20.0};
  axpy(Real(2.0), x, y);
  EXPECT_DOUBLE_EQ(y[0].value(), 12.0);
  EXPECT_DOUBLE_EQ(y[1].value(), 24.0);
  xpby(x, Real(0.5), y);
  EXPECT_DOUBLE_EQ(y[0].value(), 7.0);   // 1 + 0.5*12
  EXPECT_DOUBLE_EQ(y[1].value(), 14.0);  // 2 + 0.5*24
}

TEST(Kernels, GlobalNorm2) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    const std::vector<Real> mine{Real(3.0 * (comm.rank() + 1))};  // 3, 6
    EXPECT_NEAR(global_norm2(comm, mine).value(), std::sqrt(45.0), 1e-12);
  });
  EXPECT_TRUE(result.ok);
}

TEST(Kernels, AllgatherBlocksEvenPartition) {
  const auto result = Runtime::run(4, [](Comm& comm) {
    const auto range = simmpi::block_partition(8, comm.size(), comm.rank());
    std::vector<Real> mine;
    for (auto i = range.lo; i < range.hi; ++i) mine.push_back(Real(i * 1.5));
    const auto full = allgather_blocks(comm, mine, 8);
    ASSERT_EQ(full.size(), 8u);
    for (int i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(i)].value(), i * 1.5);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(Kernels, AllgatherBlocksUnevenPartition) {
  // 7 elements over 3 ranks: blocks of 3, 2, 2 — exercises the padding.
  const auto result = Runtime::run(3, [](Comm& comm) {
    const auto range = simmpi::block_partition(7, comm.size(), comm.rank());
    std::vector<Real> mine;
    for (auto i = range.lo; i < range.hi; ++i) mine.push_back(Real(100.0 + i));
    const auto full = allgather_blocks(comm, mine, 7);
    ASSERT_EQ(full.size(), 7u);
    for (int i = 0; i < 7; ++i) {
      EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(i)].value(), 100.0 + i);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(Kernels, HaloExchangeChain) {
  const auto result = Runtime::run(4, [](Comm& comm) {
    const int prev = comm.rank() > 0 ? comm.rank() - 1 : -1;
    const int next = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
    const std::vector<Real> top{Real(comm.rank() * 10.0)};
    const std::vector<Real> bottom{Real(comm.rank() * 10.0 + 1.0)};
    std::vector<Real> from_prev{Real(-1.0)}, from_next{Real(-1.0)};
    exchange_halo_rows(comm, 5, top, bottom, from_prev, from_next, prev, next);
    if (prev >= 0) {
      EXPECT_DOUBLE_EQ(from_prev[0].value(), prev * 10.0 + 1.0);
    } else {
      EXPECT_DOUBLE_EQ(from_prev[0].value(), -1.0);  // untouched at the end
    }
    if (next >= 0) {
      EXPECT_DOUBLE_EQ(from_next[0].value(), next * 10.0);
    } else {
      EXPECT_DOUBLE_EQ(from_next[0].value(), -1.0);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(Kernels, HaloExchangePropagatesCorruption) {
  // A corrupted halo row contaminates the receiving neighbour.
  std::vector<std::unique_ptr<fsefi::FaultContext>> contexts;
  for (int r = 0; r < 3; ++r) {
    contexts.push_back(std::make_unique<fsefi::FaultContext>());
  }
  simmpi::RunOptions opts;
  opts.on_rank_start = [&](int rank) {
    contexts[static_cast<std::size_t>(rank)]->reset();
    fsefi::install_context(contexts[static_cast<std::size_t>(rank)].get());
  };
  opts.on_rank_exit = [](int) { fsefi::install_context(nullptr); };
  const auto result = Runtime::run(
      3,
      [](Comm& comm) {
        const int prev = comm.rank() > 0 ? comm.rank() - 1 : -1;
        const int next = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
        std::vector<Real> row{comm.rank() == 1
                                  ? Real::corrupted(5.0, 1.0)
                                  : Real(0.0)};
        std::vector<Real> from_prev{Real(0.0)}, from_next{Real(0.0)};
        exchange_halo_rows(comm, 3, row, row, from_prev, from_next, prev,
                           next);
      },
      opts);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(contexts[0]->contaminated());  // received rank 1's halo
  EXPECT_TRUE(contexts[2]->contaminated());
}

TEST(Kernels, GuardFiniteThrowsOnBadValues) {
  EXPECT_NO_THROW(guard_finite(Real(1.0), "x"));
  EXPECT_THROW(guard_finite(Real(1.0) / Real(0.0), "x"), NumericalError);
  EXPECT_THROW(guard_finite(Real(0.0) / Real(0.0), "x"), NumericalError);
}

}  // namespace
}  // namespace resilience::apps
