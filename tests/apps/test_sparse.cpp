#include "apps/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace resilience::apps {
namespace {

TEST(SpdMatrix, IsDeterministic) {
  const auto a = make_spd_matrix(64, 4, 10.0, 7);
  const auto b = make_spd_matrix(64, 4, 10.0, 7);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.values, b.values);
}

TEST(SpdMatrix, DifferentSeedsDiffer) {
  const auto a = make_spd_matrix(64, 4, 10.0, 7);
  const auto b = make_spd_matrix(64, 4, 10.0, 8);
  EXPECT_NE(a.col_idx, b.col_idx);
}

TEST(SpdMatrix, IsSymmetric) {
  const auto m = make_spd_matrix(48, 5, 10.0, 3);
  std::map<std::pair<std::int64_t, std::int64_t>, double> entries;
  for (std::int64_t i = 0; i < m.n; ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      entries[{i, cols[k]}] = vals[k];
    }
  }
  for (const auto& [key, value] : entries) {
    const auto it = entries.find({key.second, key.first});
    ASSERT_NE(it, entries.end()) << key.first << "," << key.second;
    EXPECT_DOUBLE_EQ(it->second, value);
  }
}

TEST(SpdMatrix, IsStrictlyDiagonallyDominant) {
  const auto m = make_spd_matrix(80, 6, 2.0, 11);
  for (std::int64_t i = 0; i < m.n; ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    double diag = 0.0, off = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        diag = vals[k];
      } else {
        off += std::abs(vals[k]);
      }
    }
    EXPECT_GT(diag, off);  // diag = shift + off with shift > 0
    EXPECT_NEAR(diag, 2.0 + off, 1e-12);
  }
}

TEST(SpdMatrix, RowDensityNearTarget) {
  const auto m = make_spd_matrix(256, 6, 10.0, 5);
  const double avg_offdiag =
      static_cast<double>(m.nnz() - m.n) / static_cast<double>(m.n);
  EXPECT_NEAR(avg_offdiag, 6.0, 2.0);
}

TEST(SpdMatrix, RowPointersAreConsistent) {
  const auto m = make_spd_matrix(32, 3, 10.0, 1);
  ASSERT_EQ(m.row_ptr.size(), 33u);
  EXPECT_EQ(m.row_ptr.front(), 0);
  EXPECT_EQ(m.row_ptr.back(), m.nnz());
  for (std::size_t i = 0; i + 1 < m.row_ptr.size(); ++i) {
    EXPECT_LE(m.row_ptr[i], m.row_ptr[i + 1]);
  }
  // Columns sorted within each row (std::map iteration order).
  for (std::int64_t i = 0; i < m.n; ++i) {
    const auto cols = m.row_cols(i);
    for (std::size_t k = 1; k < cols.size(); ++k) {
      EXPECT_LT(cols[k - 1], cols[k]);
    }
  }
}

TEST(SpdMatrix, EveryRowHasDiagonal) {
  const auto m = make_spd_matrix(40, 2, 5.0, 9);
  for (std::int64_t i = 0; i < m.n; ++i) {
    const auto cols = m.row_cols(i);
    bool has_diag = false;
    for (auto c : cols) has_diag |= (c == i);
    EXPECT_TRUE(has_diag) << "row " << i;
  }
}

TEST(SpdMatrix, BadArgumentsThrow) {
  EXPECT_THROW(make_spd_matrix(0, 2, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(make_spd_matrix(8, -1, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace resilience::apps
