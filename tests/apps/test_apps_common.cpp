// Properties every benchmark must satisfy, swept over (app, rank count)
// with a parameterized suite: clean golden runs, bit-reproducibility,
// scale consistency (strong scaling computes the same answer), and honest
// supports() declarations.
#include <cmath>
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/campaign.hpp"

namespace resilience::apps {
namespace {

struct Case {
  AppId id;
  int nranks;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto app = make_app(info.param.id);
  return app->name() + "_" + std::to_string(info.param.nranks) + "ranks";
}

class AppContract : public ::testing::TestWithParam<Case> {};

TEST_P(AppContract, GoldenRunSucceedsWithFiniteSignature) {
  const auto app = make_app(GetParam().id);
  ASSERT_TRUE(app->supports(GetParam().nranks));
  const auto golden = harness::profile_app(*app, GetParam().nranks);
  ASSERT_FALSE(golden.signature.empty());
  for (double v : golden.signature) EXPECT_TRUE(std::isfinite(v)) << v;
  EXPECT_GT(golden.max_rank_ops, 0u);
}

TEST_P(AppContract, GoldenRunIsBitReproducible) {
  const auto app = make_app(GetParam().id);
  const auto a = harness::profile_app(*app, GetParam().nranks);
  const auto b = harness::profile_app(*app, GetParam().nranks);
  EXPECT_EQ(a.signature, b.signature);  // exact bit equality
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (std::size_t r = 0; r < a.profiles.size(); ++r) {
    EXPECT_EQ(a.profiles[r].total(), b.profiles[r].total()) << "rank " << r;
  }
}

TEST_P(AppContract, NoContaminationWithoutInjection) {
  const auto app = make_app(GetParam().id);
  const auto out =
      harness::run_app_once(*app, GetParam().nranks, /*plans=*/{});
  ASSERT_TRUE(out.runtime.ok);
  for (std::size_t r = 0; r < out.contaminated.size(); ++r) {
    EXPECT_FALSE(out.contaminated[r]) << "rank " << r;
  }
}

TEST_P(AppContract, StrongScalingMatchesSerialWithinTolerance) {
  // Different scales reduce in different orders, so signatures differ in
  // low bits but must agree far within the app's checker tolerance.
  const auto app = make_app(GetParam().id);
  const auto serial = harness::profile_app(*app, 1);
  const auto parallel = harness::profile_app(*app, GetParam().nranks);
  ASSERT_EQ(serial.signature.size(), parallel.signature.size());
  const double dev =
      harness::signature_deviation(parallel.signature, serial.signature);
  EXPECT_LT(dev, app->checker_tolerance())
      << "serial vs " << GetParam().nranks << " ranks";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AppContract,
    ::testing::Values(Case{AppId::CG, 1}, Case{AppId::CG, 4}, Case{AppId::CG, 8},
                      Case{AppId::CG, 13}, Case{AppId::CG, 64},
                      Case{AppId::FT, 1}, Case{AppId::FT, 4}, Case{AppId::FT, 8},
                      Case{AppId::FT, 16},
                      Case{AppId::MG, 1}, Case{AppId::MG, 4}, Case{AppId::MG, 8},
                      Case{AppId::MG, 32},
                      Case{AppId::LU, 1}, Case{AppId::LU, 4}, Case{AppId::LU, 8},
                      Case{AppId::LU, 10},
                      Case{AppId::MiniFE, 1}, Case{AppId::MiniFE, 4},
                      Case{AppId::MiniFE, 8},
                      Case{AppId::PENNANT, 1}, Case{AppId::PENNANT, 4},
                      Case{AppId::PENNANT, 8}),
    case_name);

TEST(AppRegistry, AllAppsConstructible) {
  for (const auto id : all_app_ids()) {
    const auto app = make_app(id);
    EXPECT_FALSE(app->name().empty());
    EXPECT_FALSE(app->size_class().empty());
    EXPECT_TRUE(app->supports(1));
    EXPECT_GT(app->checker_tolerance(), 0.0);
  }
  EXPECT_EQ(all_app_ids().size(), 6u);
}

TEST(AppRegistry, ParseRoundTrips) {
  EXPECT_EQ(parse_app_id("CG"), AppId::CG);
  EXPECT_EQ(parse_app_id("ft"), AppId::FT);
  EXPECT_EQ(parse_app_id("MiniFE"), AppId::MiniFE);
  EXPECT_EQ(parse_app_id("pennant"), AppId::PENNANT);
  EXPECT_THROW(parse_app_id("NOPE"), std::invalid_argument);
}

TEST(AppRegistry, SizeClassesResolve) {
  EXPECT_EQ(make_app(AppId::CG, "B")->size_class(), "B");
  EXPECT_EQ(make_app(AppId::FT, "B")->size_class(), "B");
  EXPECT_EQ(make_app(AppId::LU)->size_class(), "W");
  EXPECT_EQ(make_app(AppId::PENNANT)->size_class(), "leblanc");
  EXPECT_THROW(make_app(AppId::MG, "XXL"), std::invalid_argument);
}

TEST(AppSupports, HonestDeclarations) {
  EXPECT_FALSE(make_app(AppId::CG)->supports(0));
  EXPECT_FALSE(make_app(AppId::CG)->supports(-4));
  EXPECT_TRUE(make_app(AppId::CG)->supports(128));
  // FT requires the rank count to divide the grid.
  const auto ft = make_app(AppId::FT);
  EXPECT_TRUE(ft->supports(64));
  EXPECT_FALSE(ft->supports(3));
  EXPECT_FALSE(ft->supports(65));
  // MG requires divisibility of the finest level.
  const auto mg = make_app(AppId::MG);
  EXPECT_TRUE(mg->supports(64));
  EXPECT_FALSE(mg->supports(3));
}

TEST(AppSupports, RunnerRejectsUnsupportedScale) {
  const auto ft = make_app(AppId::FT);
  EXPECT_THROW(harness::run_app_once(*ft, 3, {}), simmpi::UsageError);
}

TEST(ParallelUniqueFractions, MatchTable1Shape) {
  // Table 1's qualitative shape: FT has by far the largest parallel-unique
  // fraction; MiniFE a small one; MG, LU and PENNANT none.
  const auto frac = [](AppId id, int p) {
    const auto app = make_app(id);
    return harness::profile_app(*app, p).unique_fraction();
  };
  const double ft = frac(AppId::FT, 4);
  const double minife = frac(AppId::MiniFE, 4);
  EXPECT_GT(ft, 0.02);
  EXPECT_GT(minife, 0.0);
  EXPECT_LT(minife, ft);
  EXPECT_EQ(frac(AppId::MG, 4), 0.0);
  EXPECT_EQ(frac(AppId::LU, 4), 0.0);
  EXPECT_EQ(frac(AppId::PENNANT, 4), 0.0);
  // Serial execution has no parallel-unique computation by definition.
  EXPECT_EQ(frac(AppId::FT, 1), 0.0);
  EXPECT_EQ(frac(AppId::MiniFE, 1), 0.0);
}

}  // namespace
}  // namespace resilience::apps
