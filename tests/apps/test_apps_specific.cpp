// Numerical sanity of each benchmark's algorithm: the solvers must
// actually solve (residuals small / decreasing), the hydro must conserve,
#include <cmath>
// and the configurations must match their declared input problems.
#include <gtest/gtest.h>

#include "apps/cg.hpp"
#include "apps/ft.hpp"
#include "apps/lu.hpp"
#include "apps/mg.hpp"
#include "apps/minife.hpp"
#include "apps/pennant.hpp"
#include "harness/runner.hpp"

namespace resilience::apps {
namespace {

std::vector<double> run_signature(const App& app, int nranks) {
  return harness::profile_app(app, nranks).signature;
}

TEST(Cg, ConvergesToSmallResidual) {
  const CgApp app(CgApp::config_for_class("S"), "S");
  const auto sig = run_signature(app, 1);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_GT(sig[0], app.config().shift);  // zeta = shift + 1/(x.z) > shift
  EXPECT_LT(sig[1], 1e-4);                // CG residual after the solves
}

TEST(Cg, ZetaApproximatesSmallestEigenvalueBand) {
  // The matrix is diagonally dominant with diagonal shift + rowsum, so its
  // smallest eigenvalue is at least `shift`; inverse power iteration's
  // zeta must land above it and within a plausible band.
  const CgApp app(CgApp::config_for_class("S"), "S");
  const auto sig = run_signature(app, 1);
  EXPECT_GT(sig[0], app.config().shift);
  EXPECT_LT(sig[0], app.config().shift + 40.0);
}

TEST(Cg, ClassBIsLarger) {
  const auto s = CgApp::config_for_class("S");
  const auto b = CgApp::config_for_class("B");
  EXPECT_GT(b.n, s.n);
  EXPECT_THROW(CgApp::config_for_class("Z"), std::invalid_argument);
}

TEST(Ft, RequiresPowerOfTwoGrid) {
  FtApp::Config cfg;
  cfg.n = 48;
  EXPECT_THROW(FtApp(cfg, "S"), std::invalid_argument);
}

TEST(Ft, TransformEnergyIsReasonable) {
  // The evolve factor is unit-modulus and the transform pair normalizes,
  // so the checksum must stay O(grid) — not blow up or vanish.
  const FtApp app(FtApp::config_for_class("S"), "S");
  const auto sig = run_signature(app, 1);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_GT(std::abs(sig[0]) + std::abs(sig[1]), 1e-3);
  EXPECT_LT(std::abs(sig[0]) + std::abs(sig[1]), 1e4);
}

TEST(Ft, SerialAndParallelTransposePathsAgree) {
  // The serial local-transpose path and the parallel alltoall path are
  // different code; they must compute the same transform.
  const FtApp app(FtApp::config_for_class("S"), "S");
  const auto serial = run_signature(app, 1);
  const auto parallel = run_signature(app, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], parallel[i],
                1e-9 * (std::abs(serial[i]) + 1.0));
  }
}

TEST(Mg, VcyclesReduceResidual) {
  // The residual after the V-cycles must be far below the initial
  // ||f|| (u0 = 0 makes the initial residual exactly ||f||).
  MgApp::Config cfg = MgApp::config_for_class("S");
  const MgApp app(cfg, "S");
  const auto sig = run_signature(app, 1);
  ASSERT_EQ(sig.size(), 2u);
  const double rnorm = sig[0];
  EXPECT_LT(rnorm, 2.0);   // initial ||f|| is ~sqrt(rows*cols/3) ~ 20
  EXPECT_GT(sig[1], 0.0);  // nonzero solution
}

TEST(Mg, MoreCyclesReduceResidualFurther) {
  MgApp::Config few = MgApp::config_for_class("S");
  few.vcycles = 1;
  MgApp::Config many = MgApp::config_for_class("S");
  many.vcycles = 4;
  const double r_few = run_signature(MgApp(few, "S"), 1)[0];
  const double r_many = run_signature(MgApp(many, "S"), 1)[0];
  EXPECT_LT(r_many, r_few);
}

TEST(Mg, AgglomeratedScaleMatchesSerial) {
  // At 64 ranks the coarse levels are solved redundantly; the answer must
  // match the serial one to reduction-order accuracy.
  const MgApp app(MgApp::config_for_class("S"), "S");
  const auto serial = run_signature(app, 1);
  const auto wide = run_signature(app, 64);
  EXPECT_NEAR(serial[0], wide[0], 1e-9 * (std::abs(serial[0]) + 1.0));
}

TEST(Mg, BadLevelConfigurationThrows) {
  MgApp::Config cfg;
  cfg.rows = 4;
  cfg.coarsest_rows = 8;
  EXPECT_THROW(MgApp(cfg, "S"), std::invalid_argument);
}

TEST(Lu, SsorIterationsReduceResidual) {
  LuApp::Config one = LuApp::config_for_class("W");
  one.iterations = 1;
  LuApp::Config three = LuApp::config_for_class("W");
  three.iterations = 3;
  const double r1 = run_signature(LuApp(one, "W"), 1)[0];
  const double r3 = run_signature(LuApp(three, "W"), 1)[0];
  EXPECT_LT(r3, r1);
  EXPECT_GT(r1, 0.0);
}

TEST(Lu, PipelineMatchesSerial) {
  const LuApp app(LuApp::config_for_class("W"), "W");
  const auto serial = run_signature(app, 1);
  const auto piped = run_signature(app, 8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], piped[i], 1e-9 * (std::abs(serial[i]) + 1.0));
  }
}

TEST(MiniFe, ReferenceStiffnessHasFiniteElementStructure) {
  const MiniFeApp app(MiniFeApp::config_for_class("S"), "S");
  const auto& k = app.reference_stiffness();
  // Symmetric, rows sum to zero (rigid-body mode), positive diagonal.
  for (int a = 0; a < 8; ++a) {
    double row_sum = 0.0;
    for (int b = 0; b < 8; ++b) {
      row_sum += k[static_cast<std::size_t>(a * 8 + b)];
      EXPECT_NEAR(k[static_cast<std::size_t>(a * 8 + b)],
                  k[static_cast<std::size_t>(b * 8 + a)], 1e-12);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
    EXPECT_GT(k[static_cast<std::size_t>(a * 8 + a)], 0.0);
  }
}

TEST(MiniFe, CgDrivesResidualDown) {
  const MiniFeApp app(MiniFeApp::config_for_class("S"), "S");
  const auto sig = run_signature(app, 1);
  ASSERT_EQ(sig.size(), 3u);
  // The varying RHS forces CG to iterate: the residual falls below 1.
  EXPECT_LT(sig[0], 1.0);
  EXPECT_GT(sig[1], 0.0);  // solution norm
  EXPECT_GT(sig[2], 0.0);  // b . x > 0 for an SPD system
}

TEST(MiniFe, DistributedAssemblyMatchesSerial) {
  // Remote-contribution exchange must assemble the same matrix: the CG
  // answers agree to reduction-order accuracy.
  const MiniFeApp app(MiniFeApp::config_for_class("S"), "S");
  const auto serial = run_signature(app, 1);
  const auto parallel = run_signature(app, 8);
  for (std::size_t i = 1; i < serial.size(); ++i) {  // skip near-zero rnorm
    EXPECT_NEAR(serial[i], parallel[i], 1e-8 * (std::abs(serial[i]) + 1.0));
  }
}

TEST(Pennant, RunsToFinalTime) {
  const PennantApp app(PennantApp::config_for_class("leblanc"), "leblanc");
  const auto out = harness::run_app_once(app, 1, {});
  ASSERT_TRUE(out.runtime.ok);
  EXPECT_GT(out.result->iterations, 10);
  EXPECT_LT(out.result->iterations, app.config().max_steps);
}

TEST(Pennant, ShockTubeConservesEnergyApproximately) {
  const PennantApp app(PennantApp::config_for_class("leblanc"), "leblanc");
  const auto& cfg = app.config();
  // Initial total energy: sum over zones of m * e (no kinetic energy).
  const double zones_left = cfg.interface / (cfg.tube_length / cfg.zones);
  const double gm1 = cfg.gamma - 1.0;
  const double dx = cfg.tube_length / cfg.zones;
  const double e_init = zones_left * dx * cfg.p_left / gm1 +
                        (cfg.zones - zones_left) * dx * cfg.p_right / gm1;
  const auto sig = run_signature(app, 1);
  // Staggered-grid hydro with artificial viscosity conserves total energy
  // approximately (work terms are not exactly symmetrized).
  EXPECT_NEAR(sig[0], e_init, 0.05 * e_init);
}

TEST(Pennant, MomentumStaysNearZero) {
  // Walls at both ends: total momentum must remain small relative to the
  // momentum scale of the shock.
  const PennantApp app(PennantApp::config_for_class("leblanc"), "leblanc");
  const auto sig = run_signature(app, 1);
  EXPECT_LT(std::abs(sig[1]), 1.0);
}

TEST(Pennant, StepBudgetTooSmallIsAFailure) {
  PennantApp::Config cfg = PennantApp::config_for_class("leblanc");
  cfg.max_steps = 3;  // cannot reach t_final
  const PennantApp app(cfg, "leblanc");
  const auto out = harness::run_app_once(app, 1, {});
  EXPECT_FALSE(out.runtime.ok);
}

TEST(Pennant, ParallelHydroMatchesSerial) {
  const PennantApp app(PennantApp::config_for_class("leblanc"), "leblanc");
  const auto serial = run_signature(app, 1);
  const auto parallel = run_signature(app, 8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], parallel[i], 1e-9 * (std::abs(serial[i]) + 1.0));
  }
}

}  // namespace
}  // namespace resilience::apps
