#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

/// Collective tests run across a sweep of job sizes, including non-powers
/// of two, via a parameterized suite.
class Collectives : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] int nranks() const { return GetParam(); }
};

TEST_P(Collectives, BarrierCompletes) {
  const auto result = Runtime::run(nranks(), [](Comm& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, BcastFromEveryRoot) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<double> buf(3, comm.rank() == root ? root + 0.5 : -1.0);
      comm.bcast(std::span<double>(buf), root);
      for (double v : buf) EXPECT_DOUBLE_EQ(v, root + 0.5);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, ReduceSumsToRoot) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    const std::vector<double> in{static_cast<double>(comm.rank()), 1.0};
    std::vector<double> out(2, 0.0);
    comm.reduce(std::span<const double>(in), std::span<double>(out), 0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(out[0], p * (p - 1) / 2.0);
      EXPECT_DOUBLE_EQ(out[1], static_cast<double>(p));
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, AllreduceSumVisibleEverywhere) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    const double v = comm.allreduce_value(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(v, p * (p + 1) / 2.0);
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, AllreduceMinAndMax) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    const double mine = static_cast<double>(comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduce_value(mine, Min{}), 0.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_value(mine, Max{}),
                     static_cast<double>(p - 1));
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, GatherCollectsInRankOrder) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    const std::vector<int> mine{comm.rank() * 2, comm.rank() * 2 + 1};
    std::vector<int> all(comm.rank() == 0 ? 2 * static_cast<std::size_t>(p) : 0);
    comm.gather(std::span<const int>(mine), std::span<int>(all), 0);
    if (comm.rank() == 0) {
      for (int i = 0; i < 2 * p; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, AllgatherGivesEveryoneEverything) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    const std::vector<int> mine{comm.rank()};
    std::vector<int> all(static_cast<std::size_t>(p));
    comm.allgather(std::span<const int>(mine), std::span<int>(all));
    for (int i = 0; i < p; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, ScatterDistributesBlocks) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    std::vector<int> all;
    if (comm.rank() == 0) {
      all.resize(static_cast<std::size_t>(p) * 2);
      std::iota(all.begin(), all.end(), 0);
    }
    std::vector<int> mine(2);
    comm.scatter(std::span<const int>(all), std::span<int>(mine), 0);
    EXPECT_EQ(mine[0], comm.rank() * 2);
    EXPECT_EQ(mine[1], comm.rank() * 2 + 1);
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, AlltoallTransposesBlocks) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    // Block j of rank i carries the value i * p + j.
    std::vector<int> in(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      in[static_cast<std::size_t>(j)] = comm.rank() * p + j;
    }
    std::vector<int> out(static_cast<std::size_t>(p));
    comm.alltoall(std::span<const int>(in), std::span<int>(out));
    // Block i of the output must be the block our rank index selects of
    // rank i's input: i * p + my_rank.
    for (int i = 0; i < p; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)], i * p + comm.rank());
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, ScanComputesInclusivePrefix) {
  const int p = nranks();
  const auto result = Runtime::run(p, [](Comm& comm) {
    const std::vector<double> in{1.0};
    std::vector<double> out(1);
    comm.scan(std::span<const double>(in), std::span<double>(out));
    EXPECT_DOUBLE_EQ(out[0], comm.rank() + 1.0);
  });
  EXPECT_TRUE(result.ok);
}

TEST_P(Collectives, BackToBackCollectivesDoNotCrossMatch) {
  const int p = nranks();
  const auto result = Runtime::run(p, [p](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      const double sum =
          comm.allreduce_value(static_cast<double>(comm.rank() + round));
      EXPECT_DOUBLE_EQ(sum, p * (p - 1) / 2.0 + round * p);
      const int b = comm.bcast_value(comm.rank() == 0 ? round : -1, 0);
      EXPECT_EQ(b, round);
    }
  });
  EXPECT_TRUE(result.ok);
}

INSTANTIATE_TEST_SUITE_P(JobSizes, Collectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(CollectiveDeterminism, AllreduceBitReproducible) {
  // Floating-point reduction order is fixed, so results are bit-identical
  // across runs — the property the injector's profiling pre-pass needs.
  auto run_once = [] {
    double out = 0.0;
    Runtime::run(7, [&](Comm& comm) {
      // Values chosen so different summation orders round differently.
      const double mine = 1.0 + 1e-16 * comm.rank() + 0.1 * comm.rank();
      const double sum = comm.allreduce_value(mine);
      if (comm.rank() == 0) out = sum;
    });
    return out;
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);  // exact bit equality
}

TEST(CollectiveErrors, AllreduceSizeMismatchThrows) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    const std::vector<double> in(2);
    std::vector<double> out(3);
    if (comm.rank() == 0) {
      EXPECT_THROW(
          comm.allreduce(std::span<const double>(in), std::span<double>(out)),
          UsageError);
    }
  });
  // Rank 1 may be torn down by rank 0's missing collective; both endings
  // are acceptable as long as rank 0's throw was observed (EXPECT above).
  (void)result;
}

TEST(CollectiveErrors, AlltoallRequiresDivisibleBuffers) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    const std::vector<int> in(3);  // not divisible by 2 ranks
    std::vector<int> out(3);
    EXPECT_THROW(comm.alltoall(std::span<const int>(in), std::span<int>(out)),
                 UsageError);
  });
  (void)result;
}

}  // namespace
}  // namespace resilience::simmpi
