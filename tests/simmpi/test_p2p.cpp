#include <gtest/gtest.h>

#include <vector>

#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

TEST(PointToPoint, SendRecvValue) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 7, 42.5);
    } else {
      EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 7), 42.5);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, SendRecvArray) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    std::vector<int> data{1, 2, 3, 4};
    if (comm.rank() == 0) {
      comm.send(1, 0, std::span<const int>(data));
    } else {
      std::vector<int> got(4);
      const int src = comm.recv(0, 0, std::span<int>(got));
      EXPECT_EQ(src, 0);
      EXPECT_EQ(got, data);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, TagMatchingSelectsCorrectMessage) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 100);
      comm.send_value(1, 2, 200);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 100);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, NonOvertakingPerSourceAndTag) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_value(1, 5, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(comm.recv_value<int>(0, 5), i);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, AnySourceReceives) {
  const auto result = Runtime::run(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(0, 3, comm.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        comm.recv(kAnySource, 3, std::span<int>(&v, 1));
        sum += v;
      }
      EXPECT_EQ(sum, 3);  // ranks 1 + 2
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, AnyTagReceives) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 9, 1.25f);
    } else {
      float v = 0;
      comm.recv(0, kAnyTag, std::span<float>(&v, 1));
      EXPECT_FLOAT_EQ(v, 1.25f);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, SendRecvExchangesWithoutDeadlock) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    const double mine = comm.rank() + 1.0;
    double theirs = 0.0;
    comm.sendrecv(peer, 4, std::span<const double>(&mine, 1), peer, 4,
                  std::span<double>(&theirs, 1));
    EXPECT_DOUBLE_EQ(theirs, peer + 1.0);
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, ProbeSeesQueuedMessage) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 6, 1);
      comm.send_value(1, 0, 2);  // release message: rank 1 may now probe
    } else {
      (void)comm.recv_value<int>(0, 0);
      EXPECT_TRUE(comm.probe(0, 6));
      EXPECT_FALSE(comm.probe(0, 99));
      (void)comm.recv_value<int>(0, 6);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, SizeMismatchIsAnError) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, 1);
    } else {
      std::vector<int> too_big(2);
      comm.recv(0, 0, std::span<int>(too_big));  // throws UsageError
    }
  });
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.failed_rank, 1);
}

TEST(PointToPoint, BadPeerThrows) {
  const auto result = Runtime::run(1, [](Comm& comm) {
    EXPECT_THROW(comm.send_value(5, 0, 1), UsageError);
    EXPECT_THROW(comm.send_value(-1, 0, 1), UsageError);
    int v;
    EXPECT_THROW(comm.recv(7, 0, std::span<int>(&v, 1)), UsageError);
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, ReservedTagRejected) {
  const auto result = Runtime::run(1, [](Comm& comm) {
    EXPECT_THROW(comm.send_value(0, kMaxUserTag + 1, 1), UsageError);
    EXPECT_THROW(comm.send_value(0, -5, 1), UsageError);
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, EmptyMessageRoundTrips) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    std::vector<double> nothing;
    if (comm.rank() == 0) {
      comm.send(1, 0, std::span<const double>(nothing));
    } else {
      comm.recv(0, 0, std::span<double>(nothing));
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(PointToPoint, SelfSendIsDelivered) {
  const auto result = Runtime::run(1, [](Comm& comm) {
    comm.send_value(0, 1, 3.5);
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 1), 3.5);
  });
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace resilience::simmpi
