// Scheduler edge cases, exercised in both execution cores (fibers and
// threads) via a value-parameterized fixture: deterministic deadlock with
// zero runnable fibers, abort teardown mid-collective, a 512-rank smoke
// job (the scale the thread-per-rank core existed to avoid), and pooled
// resource reuse across an aborted job.
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <vector>

#include "simmpi/collective.hpp"
#include "simmpi/rank_team.hpp"
#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

class SchedulerModes : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    detail::set_scheduler_fibers_enabled(GetParam());
  }
  void TearDown() override {
    detail::reset_scheduler_fibers_enabled();
    detail::set_scheduler_workers(-1);
    detail::set_fiber_stack_kb(0);
  }
  [[nodiscard]] static bool fibers() { return GetParam(); }
};

std::string mode_name(const ::testing::TestParamInfo<bool>& param) {
  return param.param ? "fibers" : "threads";
}

INSTANTIATE_TEST_SUITE_P(Cores, SchedulerModes, ::testing::Bool(), mode_name);

TEST_P(SchedulerModes, ZeroRunnableRanksIsDeadlock) {
  // Both ranks block receiving a message nobody will send. The fiber
  // scheduler must declare the deadlock the moment its run queue drains;
  // the threads core falls back to its timeout.
  RunOptions opts;
  opts.deadlock_timeout = milliseconds(200);
  const auto start = steady_clock::now();
  const auto result = Runtime::run(
      2,
      [](Comm& comm) { comm.recv_value<int>(1 - comm.rank(), 0); },
      opts);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_TRUE(result.aborted);
  EXPECT_GE(result.failed_rank, 0);
  if (fibers()) {
    // Event-driven detection: no fraction of the timeout was consumed.
    EXPECT_LT(steady_clock::now() - start, milliseconds(150));
  }
}

TEST_P(SchedulerModes, AbortMidCollectiveTearsDownEveryParkedRank) {
  const auto result = Runtime::run(16, [](Comm& comm) {
    if (comm.rank() == 5) throw std::runtime_error("rank 5 dies");
    const double sum = comm.allreduce_value(1.0);
    (void)sum;
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.failed_rank, 5);
  EXPECT_EQ(result.error, "rank 5 dies");

  // The job's scheduler state dies with the job: a follow-up job on the
  // same process must be unaffected.
  const auto clean = Runtime::run(16, [](Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_value(1.0), 16.0);
  });
  EXPECT_TRUE(clean.ok);
}

TEST_P(SchedulerModes, AbortRacingActiveCombinesStaysCoherent) {
  // Regression for a TLS-borrow race: a job abort used to wake fibers
  // parked on a fused collective while the combiner was replaying their
  // instrumentation under BorrowFiberTls, letting two threads swap one
  // fiber's thread-local bank concurrently. Abort wakeups for
  // group-parked fibers are now deferred to the combiner's complete()
  // or the no-runnable sweep. The dying rank lives *outside* the
  // collective's sub-communicator, so its abort lands while the group's
  // combines are genuinely in flight; multiple workers make the stale
  // resume physically possible and the tsan run of this suite watches
  // the TLS swaps.
  detail::set_scheduler_workers(4);
  for (int round = 0; round < 8; ++round) {
    const auto result = Runtime::run(12, [](Comm& comm) {
      const int killer = comm.size() - 1;
      Comm sub = comm.split(comm.rank() == killer ? 1 : 0, comm.rank());
      if (comm.rank() == killer) {
        // Give the workers' group time to stream collectives, then die
        // at a scheduling-dependent point of their combine pipeline.
        for (int i = 0; i < 200; ++i) FiberScheduler::yield_current();
        throw std::runtime_error("outsider dies");
      }
      std::vector<double> buf(256, comm.rank() + 1.0);
      std::vector<double> sum(256);
      for (int i = 0;; ++i) {
        sub.allreduce(std::span<const double>(buf), std::span<double>(sum));
        sub.bcast(std::span<double>(sum), i % sub.size());
      }
    });
    EXPECT_TRUE(result.aborted);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_EQ(result.failed_rank, 11);
    EXPECT_EQ(result.error, "outsider dies");
  }
  const auto clean = Runtime::run(12, [](Comm& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_value(1.0), 12.0);
  });
  EXPECT_TRUE(clean.ok) << clean.error;
}

TEST(FusedGroup, StaleEpochArrivalIsRejectedBeforeRecordingState) {
  // A rank re-arriving with an already-completed epoch has diverged from
  // the SPMD sequence. It must be rejected up front: recording the
  // arrival would pin current_epoch_ to the stale value and misreport
  // the divergence at a healthy rank's next collective.
  detail::FusedGroup group;
  FiberScheduler sched(0, 64 * 1024);
  const detail::Arrival arrival;
  std::unique_lock lock(group.mutex());
  EXPECT_EQ(group.arrive(0, 1, arrival, 2),
            detail::FusedGroup::ArriveOutcome::Waiter);
  EXPECT_EQ(group.arrive(1, 1, arrival, 2),
            detail::FusedGroup::ArriveOutcome::Combiner);
  group.complete(1, sched);
  EXPECT_EQ(group.arrive(0, 1, arrival, 2),
            detail::FusedGroup::ArriveOutcome::EpochMismatch);
  // Group state stayed clean: the next epoch still completes normally.
  EXPECT_EQ(group.arrive(0, 2, arrival, 2),
            detail::FusedGroup::ArriveOutcome::Waiter);
  EXPECT_EQ(group.arrive(1, 2, arrival, 2),
            detail::FusedGroup::ArriveOutcome::Combiner);
  group.complete(2, sched);
  EXPECT_EQ(group.done_epoch(), 2u);
}

TEST_P(SchedulerModes, FiveTwelveRankSmoke) {
  // 512 ranks: collectives, a ring exchange and a reduction. Under the
  // fiber core this costs a handful of worker threads; under the threads
  // core it is the old 512-thread job and doubles as its regression
  // check.
  const auto result = Runtime::run(512, [](Comm& comm) {
    comm.barrier();
    const int total = comm.allreduce_value(1);
    EXPECT_EQ(total, comm.size());
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    const int mine = comm.rank();
    int from_left = -1;
    comm.sendrecv(right, 3, std::span<const int>(&mine, 1), left, 3,
                  std::span<int>(&from_left, 1));
    EXPECT_EQ(from_left, left);
    const long r = comm.rank();
    long sum = 0;
    comm.allreduce(std::span<const long>(&r, 1), std::span<long>(&sum, 1));
    EXPECT_EQ(sum, 512L * 511L / 2L);
  });
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(SchedulerModes, PooledResourcesSurviveAnAbortedJob) {
  // An abort tears a job down mid-flight with ranks parked and pooled
  // resources (fiber stacks / team threads / envelope buffers) checked
  // out. The pools must hand all of it back: follow-up jobs of the same
  // and larger widths run clean.
  const auto aborted = Runtime::run(32, [](Comm& comm) {
    if (comm.rank() == 31) throw std::runtime_error("late rank dies");
    comm.barrier();
    comm.recv_value<int>(comm.rank(), 0);  // unreachable: abort wakes us
  });
  EXPECT_TRUE(aborted.aborted);
  EXPECT_EQ(aborted.failed_rank, 31);

  for (const int nranks : {32, 64}) {
    const auto clean = Runtime::run(nranks, [](Comm& comm) {
      const int total = comm.allreduce_value(1);
      EXPECT_EQ(total, comm.size());
      comm.barrier();
    });
    EXPECT_TRUE(clean.ok) << nranks << " ranks: " << clean.error;
  }
}

TEST(FiberScheduler, WorkerCountDoesNotChangeResults) {
  // The same job body must produce identical values no matter how many
  // workers multiplex the fibers (including more workers than ranks ask
  // for, which the resolver clamps).
  detail::set_scheduler_fibers_enabled(true);
  std::vector<double> baseline;
  for (const int workers : {1, 2, 4, 64}) {
    detail::set_scheduler_workers(workers);
    std::vector<double> out;
    const auto result = Runtime::run(8, [&out](Comm& comm) {
      std::vector<double> v(3, 1.5 * (comm.rank() + 1));
      std::vector<double> sum(3);
      comm.allreduce(std::span<const double>(v), std::span<double>(sum));
      if (comm.rank() == 0) out = sum;
    });
    EXPECT_TRUE(result.ok);
    if (baseline.empty()) {
      baseline = out;
    } else {
      EXPECT_EQ(out, baseline) << workers << " workers";
    }
  }
  detail::set_scheduler_workers(-1);
  detail::reset_scheduler_fibers_enabled();
}

TEST(FiberScheduler, TinyStacksStillRunLeafWork) {
  // The configured floor (16 KiB) plus guard page must be enough for a
  // rank that only does transport calls — the scheduler's own frames and
  // the mailbox path must not assume a deep stack.
  detail::set_scheduler_fibers_enabled(true);
  detail::set_fiber_stack_kb(16);
  const auto result = Runtime::run(4, [](Comm& comm) {
    EXPECT_EQ(comm.allreduce_value(1), 4);
  });
  EXPECT_TRUE(result.ok) << result.error;
  detail::set_fiber_stack_kb(0);
  detail::reset_scheduler_fibers_enabled();
}

}  // namespace
}  // namespace resilience::simmpi
