#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), UsageError);
}

TEST(Runtime, SerialRunsInline) {
  // nranks == 1 executes on the calling thread (cheap serial campaigns).
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  const auto result = Runtime::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    body_thread = std::this_thread::get_id();
  });
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(body_thread == caller);
}

TEST(Runtime, ReportsRankAndSize) {
  std::atomic<int> rank_sum{0};
  const auto result = Runtime::run(5, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    rank_sum += comm.rank();
  });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(rank_sum.load(), 10);
}

TEST(Runtime, ExceptionAbortsJobAndRecordsRank) {
  const auto result = Runtime::run(4, [](Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("rank 2 died");
    // Other ranks block forever; the abort must wake them.
    double v;
    comm.recv((comm.rank() + 1) % 4, 1, std::span<double>(&v, 1));
  });
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.aborted);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.failed_rank, 2);
  EXPECT_EQ(result.error, "rank 2 died");
}

TEST(Runtime, DeadlockTimesOutAndIsFlagged) {
  RunOptions opts;
  opts.deadlock_timeout = std::chrono::milliseconds(100);
  const auto result = Runtime::run(
      2,
      [](Comm& comm) {
        // Both ranks wait for a message that never arrives.
        double v;
        comm.recv(1 - comm.rank(), 0, std::span<double>(&v, 1));
      },
      opts);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.deadlocked);
}

TEST(Runtime, FirstFailureWins) {
  // Many ranks fail; exactly one root cause is recorded.
  const auto result = Runtime::run(6, [](Comm& comm) {
    throw std::runtime_error("rank " + std::to_string(comm.rank()));
  });
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.failed_rank, 0);
  EXPECT_LT(result.failed_rank, 6);
  EXPECT_EQ(result.error, "rank " + std::to_string(result.failed_rank));
}

TEST(Runtime, HooksRunOnEveryRank) {
  std::atomic<int> starts{0}, exits{0};
  RunOptions opts;
  opts.on_rank_start = [&](int) { ++starts; };
  opts.on_rank_exit = [&](int) { ++exits; };
  const auto result = Runtime::run(3, [](Comm&) {}, opts);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(starts.load(), 3);
  EXPECT_EQ(exits.load(), 3);
}

TEST(Runtime, ExitHookRunsEvenWhenBodyThrows) {
  std::atomic<int> exits{0};
  RunOptions opts;
  opts.on_rank_exit = [&](int) { ++exits; };
  const auto result = Runtime::run(
      2, [](Comm& comm) { if (comm.rank() == 0) throw std::runtime_error("x"); },
      opts);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(exits.load(), 2);
}

TEST(Runtime, NonStdExceptionIsCaptured) {
  const auto result = Runtime::run(1, [](Comm&) { throw 42; });
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "unknown exception");
}

TEST(Runtime, ManyRanksComplete) {
  // A 64-rank job — the paper's large scale — runs to completion.
  const auto result = Runtime::run(64, [](Comm& comm) {
    const double sum = comm.allreduce_value(1.0);
    EXPECT_DOUBLE_EQ(sum, 64.0);
  });
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace resilience::simmpi
