// Unit tests of the persistent rank-team pool that backs Runtime::run.
#include "simmpi/rank_team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

TEST(RankTeam, RunsEveryRankExactlyOnce) {
  RankTeam team(8);
  std::vector<std::atomic<int>> hits(8);
  team.run([&](int rank) { hits[static_cast<std::size_t>(rank)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RankTeam, ReusesThreadsAcrossJobs) {
  RankTeam team(4);
  std::mutex mu;
  std::set<std::thread::id> first_job;
  std::set<std::thread::id> second_job;
  team.run([&](int) {
    std::lock_guard lock(mu);
    first_job.insert(std::this_thread::get_id());
  });
  team.run([&](int) {
    std::lock_guard lock(mu);
    second_job.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(first_job.size(), 4u);
  EXPECT_EQ(second_job, first_job);  // parked threads, not fresh spawns
}

TEST(RankTeam, ManySequentialJobsComplete) {
  RankTeam team(3);
  std::atomic<int> total{0};
  for (int job = 0; job < 200; ++job) {
    team.run([&](int rank) { total += rank + 1; });
  }
  EXPECT_EQ(total.load(), 200 * (1 + 2 + 3));
}

TEST(RankTeamPool, LeaseReturnsTeamForReuse) {
  auto& pool = RankTeamPool::instance();
  pool.clear();
  const auto created_before = pool.teams_created();
  for (int i = 0; i < 5; ++i) {
    RankTeamPool::Lease lease = pool.acquire(6);
    std::atomic<int> hits{0};
    lease.team().run([&](int) { hits++; });
    EXPECT_EQ(hits.load(), 6);
  }
  // Sequential checkouts reuse one cached team: threads are spawned for
  // the first job only.
  EXPECT_EQ(pool.teams_created() - created_before, 1u);
  pool.clear();
}

TEST(RankTeamPool, ConcurrentCheckoutsGetDistinctTeams) {
  auto& pool = RankTeamPool::instance();
  pool.clear();
  RankTeamPool::Lease a = pool.acquire(2);
  RankTeamPool::Lease b = pool.acquire(2);
  std::atomic<int> hits{0};
  a.team().run([&](int) { hits++; });
  b.team().run([&](int) { hits++; });
  EXPECT_NE(&a.team(), &b.team());
  EXPECT_EQ(hits.load(), 4);
  pool.clear();
}

TEST(RankTeamPool, PrewarmStocksIdleTeams) {
  auto& pool = RankTeamPool::instance();
  pool.clear();
  pool.prewarm(4, 3);
  EXPECT_GE(pool.idle_teams(), 3u);
  const auto created = pool.teams_created();
  { RankTeamPool::Lease lease = pool.acquire(4); }
  EXPECT_EQ(pool.teams_created(), created);  // served from the warm stock
  pool.clear();
}

TEST(RankTeamPool, RuntimeJobsShareOnePooledTeam) {
  // Pin the threads core: this test is about rank-width team reuse, and
  // the fibers core only checks teams out at worker width (often 1).
  detail::set_scheduler_fibers_enabled(false);
  RankTeamPool::set_enabled(true);
  auto& pool = RankTeamPool::instance();
  pool.clear();
  const auto created_before = pool.teams_created();
  for (int job = 0; job < 20; ++job) {
    const auto result = Runtime::run(5, [](Comm& comm) {
      const double sum = comm.allreduce_value(1.0);
      EXPECT_DOUBLE_EQ(sum, 5.0);
    });
    EXPECT_TRUE(result.ok);
  }
  EXPECT_EQ(pool.teams_created() - created_before, 1u);
  pool.clear();
  detail::reset_scheduler_fibers_enabled();
}

TEST(RankTeamPool, FiberWorkersShareOnePooledTeam) {
  // The fibers core reuses the same pool for its worker threads, at
  // worker width instead of rank width.
  detail::set_scheduler_fibers_enabled(true);
  detail::set_scheduler_workers(3);
  RankTeamPool::set_enabled(true);
  auto& pool = RankTeamPool::instance();
  pool.clear();
  const auto created_before = pool.teams_created();
  const auto checkouts_before = pool.checkouts();
  for (int job = 0; job < 20; ++job) {
    const auto result = Runtime::run(8, [](Comm& comm) {
      const double sum = comm.allreduce_value(1.0);
      EXPECT_DOUBLE_EQ(sum, 8.0);
    });
    EXPECT_TRUE(result.ok);
  }
  EXPECT_EQ(pool.teams_created() - created_before, 1u);
  EXPECT_EQ(pool.checkouts() - checkouts_before, 20u);
  pool.clear();
  detail::set_scheduler_workers(-1);
  detail::reset_scheduler_fibers_enabled();
}

TEST(RankTeamPool, DisabledFallsBackToSpawnedThreads) {
  RankTeamPool::set_enabled(false);
  const auto checkouts_before = RankTeamPool::instance().checkouts();
  const auto result = Runtime::run(3, [](Comm& comm) {
    EXPECT_EQ(comm.allreduce_value(comm.rank(), Max{}), 2);
  });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(RankTeamPool::instance().checkouts(), checkouts_before);
  RankTeamPool::set_enabled(true);
}

TEST(RankTeamPool, HooksRunEveryJobOnPooledThreads) {
  // Thread reuse must be invisible to the fault injector: the per-rank
  // hooks fire on every job, not just the one that spawned the threads.
  RankTeamPool::set_enabled(true);
  RankTeamPool::instance().clear();
  std::atomic<int> starts{0};
  std::atomic<int> exits{0};
  RunOptions options;
  options.on_rank_start = [&](int) { starts++; };
  options.on_rank_exit = [&](int) { exits++; };
  for (int job = 0; job < 3; ++job) {
    const auto result =
        Runtime::run(4, [](Comm& comm) { comm.barrier(); }, options);
    EXPECT_TRUE(result.ok);
  }
  EXPECT_EQ(starts.load(), 12);
  EXPECT_EQ(exits.load(), 12);
  RankTeamPool::instance().clear();
}

}  // namespace
}  // namespace resilience::simmpi
