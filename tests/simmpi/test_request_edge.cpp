// Edge cases of the nonblocking Request machinery.
#include <gtest/gtest.h>

#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

TEST(RequestEdge, DefaultRequestIsComplete) {
  Request req;
  EXPECT_FALSE(req.pending());
  EXPECT_EQ(req.wait(), -1);
  EXPECT_TRUE(req.test());
}

TEST(RequestEdge, MoveTransfersPendingState) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, 5);
    } else {
      int v = 0;
      Request a = comm.irecv(0, 0, std::span<int>(&v, 1));
      Request b = std::move(a);
      EXPECT_FALSE(a.pending());  // NOLINT(bugprone-use-after-move)
      EXPECT_TRUE(b.pending());
      b.wait();
      EXPECT_EQ(v, 5);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(RequestEdge, SizeMismatchSurfacesAtWait) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> two{1, 2};
      comm.send(1, 0, std::span<const int>(two));
    } else {
      int v = 0;  // too small for the incoming message
      Request req = comm.irecv(0, 0, std::span<int>(&v, 1));
      EXPECT_THROW(req.wait(), UsageError);
      EXPECT_FALSE(req.pending());  // failed request is complete
    }
  });
  EXPECT_TRUE(result.ok);  // the throw was caught inside the body
}

TEST(RequestEdge, AnySourceIrecvResolvesActualSender) {
  const auto result = Runtime::run(3, [](Comm& comm) {
    if (comm.rank() == 2) {
      comm.send_value(0, 4, 7.0);
    } else if (comm.rank() == 0) {
      double v = 0.0;
      Request req = comm.irecv(kAnySource, 4, std::span<double>(&v, 1));
      EXPECT_EQ(req.wait(), 2);
      EXPECT_DOUBLE_EQ(v, 7.0);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(RequestEdge, IrecvPostedBeforeSendDoesNotBlock) {
  // Regression guard for the post-before-send pattern: irecv must defer
  // its matching to wait(). An eager irecv would block rank 1 here before
  // it reaches the barrier, deadlocking the job.
  const auto result = Runtime::run(
      2,
      [](Comm& comm) {
        if (comm.rank() == 1) {
          double v = 0.0;
          Request req = comm.irecv(0, 3, std::span<double>(&v, 1));
          comm.barrier();  // reachable only if irecv did not receive eagerly
          EXPECT_EQ(req.wait(), 0);
          EXPECT_DOUBLE_EQ(v, 2.5);
        } else {
          comm.barrier();
          comm.send_value(1, 3, 2.5);
        }
      },
      RunOptions{.deadlock_timeout = std::chrono::milliseconds(2000)});
  EXPECT_TRUE(result.ok);
}

TEST(RequestEdge, WaitIsIdempotent) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 0, 1);
    } else {
      int v = 0;
      Request req = comm.irecv(0, 0, std::span<int>(&v, 1));
      req.wait();
      EXPECT_EQ(req.wait(), -1);  // second wait is a no-op
      EXPECT_TRUE(req.test());
    }
  });
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace resilience::simmpi
