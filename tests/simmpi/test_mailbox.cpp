// Direct unit tests of the mailbox transport primitive.
#include "simmpi/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace resilience::simmpi {
namespace {

Envelope make_envelope(int source, int tag, std::size_t bytes = 8) {
  Envelope env;
  env.source = source;
  env.tag = tag;
  env.bytes.assign(bytes, std::byte{0x5a});
  return env;
}

TEST(Mailbox, PopMatchesSourceAndTag) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  box.push(make_envelope(1, 10));
  box.push(make_envelope(2, 20));
  const Envelope got = box.pop_matching(2, 20);
  EXPECT_EQ(got.source, 2);
  EXPECT_EQ(got.tag, 20);
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, WildcardsMatchAnything) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  box.push(make_envelope(3, 30));
  EXPECT_EQ(box.pop_matching(kAnySource, kAnyTag).source, 3);
}

TEST(Mailbox, FifoWithinMatchingMessages) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  for (int i = 0; i < 3; ++i) {
    Envelope env = make_envelope(1, 7, 1);
    env.bytes[0] = static_cast<std::byte>(i);
    box.push(std::move(env));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(static_cast<int>(box.pop_matching(1, 7).bytes[0]), i);
  }
}

TEST(Mailbox, NonMatchingMessagesAreSkippedNotConsumed) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  box.push(make_envelope(1, 1));
  box.push(make_envelope(1, 2));
  EXPECT_EQ(box.pop_matching(1, 2).tag, 2);
  EXPECT_EQ(box.pop_matching(1, 1).tag, 1);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, ProbeDoesNotConsume) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  EXPECT_FALSE(box.probe(1, 1));
  box.push(make_envelope(1, 1));
  EXPECT_TRUE(box.probe(1, 1));
  EXPECT_TRUE(box.probe(kAnySource, kAnyTag));
  EXPECT_FALSE(box.probe(2, 1));
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, BlockedPopWakesOnPush) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(5000));
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push(make_envelope(0, 9));
  });
  const Envelope got = box.pop_matching(0, 9);
  EXPECT_EQ(got.tag, 9);
  producer.join();
}

TEST(Mailbox, TimeoutRaisesDeadlock) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(30));
  EXPECT_THROW(box.pop_matching(0, 0), DeadlockError);
}

TEST(Mailbox, AbortWakesBlockedPop) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(5000));
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.trigger();
    box.interrupt();
  });
  EXPECT_THROW(box.pop_matching(0, 0), AbortError);
  aborter.join();
}

TEST(Mailbox, AbortedBoxThrowsImmediately) {
  AbortToken abort;
  abort.trigger();
  Mailbox box(&abort, std::chrono::milliseconds(5000));
  EXPECT_THROW(box.pop_matching(kAnySource, kAnyTag), AbortError);
}

}  // namespace
}  // namespace resilience::simmpi
