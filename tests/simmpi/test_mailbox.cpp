// Direct unit tests of the mailbox transport primitive.
#include "simmpi/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace resilience::simmpi {
namespace {

Envelope make_envelope(int source, int tag, std::size_t bytes = 8) {
  Envelope env;
  env.source = source;
  env.tag = tag;
  env.bytes.assign(bytes, std::byte{0x5a});
  return env;
}

TEST(Mailbox, PopMatchesSourceAndTag) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  box.push(make_envelope(1, 10));
  box.push(make_envelope(2, 20));
  const Envelope got = box.pop_matching(2, 20);
  EXPECT_EQ(got.source, 2);
  EXPECT_EQ(got.tag, 20);
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, WildcardsMatchAnything) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  box.push(make_envelope(3, 30));
  EXPECT_EQ(box.pop_matching(kAnySource, kAnyTag).source, 3);
}

TEST(Mailbox, FifoWithinMatchingMessages) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  for (int i = 0; i < 3; ++i) {
    Envelope env = make_envelope(1, 7, 1);
    env.bytes[0] = static_cast<std::byte>(i);
    box.push(std::move(env));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(static_cast<int>(box.pop_matching(1, 7).bytes[0]), i);
  }
}

TEST(Mailbox, NonMatchingMessagesAreSkippedNotConsumed) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  box.push(make_envelope(1, 1));
  box.push(make_envelope(1, 2));
  EXPECT_EQ(box.pop_matching(1, 2).tag, 2);
  EXPECT_EQ(box.pop_matching(1, 1).tag, 1);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, ProbeDoesNotConsume) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  EXPECT_FALSE(box.probe(1, 1));
  box.push(make_envelope(1, 1));
  EXPECT_TRUE(box.probe(1, 1));
  EXPECT_TRUE(box.probe(kAnySource, kAnyTag));
  EXPECT_FALSE(box.probe(2, 1));
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, BlockedPopWakesOnPush) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(5000));
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push(make_envelope(0, 9));
  });
  const Envelope got = box.pop_matching(0, 9);
  EXPECT_EQ(got.tag, 9);
  producer.join();
}

TEST(Mailbox, TimeoutRaisesDeadlock) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(30));
  EXPECT_THROW(box.pop_matching(0, 0), DeadlockError);
}

TEST(Mailbox, AbortWakesBlockedPop) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(5000));
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    abort.trigger();
    box.interrupt();
  });
  EXPECT_THROW(box.pop_matching(0, 0), AbortError);
  aborter.join();
}

TEST(Mailbox, AbortedBoxThrowsImmediately) {
  AbortToken abort;
  abort.trigger();
  Mailbox box(&abort, std::chrono::milliseconds(5000));
  EXPECT_THROW(box.pop_matching(kAnySource, kAnyTag), AbortError);
}

TEST(Mailbox, WildcardTakesEarliestArrivalAcrossSubQueues) {
  // Matching is indexed by (source, tag); a wildcard receive must still
  // see global arrival order, not per-sub-queue order.
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  box.push(make_envelope(2, 20));
  box.push(make_envelope(1, 10));
  box.push(make_envelope(2, 20));
  EXPECT_EQ(box.pop_matching(kAnySource, kAnyTag).source, 2);
  EXPECT_EQ(box.pop_matching(kAnySource, kAnyTag).source, 1);
  EXPECT_EQ(box.pop_matching(kAnySource, kAnyTag).source, 2);
}

TEST(Mailbox, WildcardSourceWithExactTag) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  box.push(make_envelope(5, 7));
  box.push(make_envelope(3, 9));
  box.push(make_envelope(4, 7));
  EXPECT_EQ(box.pop_matching(kAnySource, 7).source, 5);
  EXPECT_EQ(box.pop_matching(kAnySource, 7).source, 4);
  EXPECT_EQ(box.pop_matching(3, kAnyTag).tag, 9);
}

TEST(Mailbox, HealthyTrafficDoesNotTriggerDeadlock) {
  // A receive waiting behind a slow stream of non-matching messages must
  // not be declared a deadlock just because the stream outlasts one
  // timeout period: every arrival resets the deadline.
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(150));
  std::thread producer([&box] {
    for (int i = 0; i < 10; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      box.push(make_envelope(0, 1));  // non-matching traffic
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    box.push(make_envelope(0, 2));  // the match, ~480ms after entry
  });
  // Total wait (~480ms) is far beyond the 150ms timeout; only silence
  // longer than the timeout may count.
  EXPECT_EQ(box.pop_matching(0, 2).tag, 2);
  producer.join();
}

TEST(Mailbox, SilenceAfterTrafficStillDeadlocks) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(50));
  box.push(make_envelope(0, 1));
  EXPECT_THROW(box.pop_matching(0, 2), DeadlockError);
}

TEST(Mailbox, BufferPoolRecyclesCapacity) {
  AbortToken abort;
  Mailbox box(&abort, std::chrono::milliseconds(1000));
  Envelope env;
  env.source = 0;
  env.tag = 0;
  env.bytes = box.acquire_buffer(64);
  EXPECT_EQ(env.bytes.size(), 64u);
  box.push(std::move(env));
  box.recycle(box.pop_matching(0, 0));
  // Second acquisition must come from the freelist, even at another size.
  const auto buf = box.acquire_buffer(32);
  EXPECT_EQ(buf.size(), 32u);
  const auto stats = box.pool_stats();
  EXPECT_EQ(stats.allocs, 1u);
  EXPECT_EQ(stats.reuses, 1u);
}

}  // namespace
}  // namespace resilience::simmpi
