// Tests for the extended communication surface: nonblocking requests,
// variable-count collectives, reduce_scatter, communicator split, and
// transport statistics.
#include <gtest/gtest.h>

#include <numeric>

#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

TEST(Nonblocking, IrecvCompletesOnWait) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 3, 7.5);
    } else {
      double v = 0.0;
      Request req = comm.irecv(0, 3, std::span<double>(&v, 1));
      EXPECT_EQ(req.wait(), 0);
      EXPECT_DOUBLE_EQ(v, 7.5);
      EXPECT_FALSE(req.pending());
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(Nonblocking, TestPollsWithoutBlocking) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Delay the payload behind a handshake so rank 1's first test()
      // reliably sees nothing.
      (void)comm.recv_value<int>(1, 9);
      comm.send_value(1, 4, 42);
    } else {
      int v = 0;
      Request req = comm.irecv(0, 4, std::span<int>(&v, 1));
      EXPECT_FALSE(req.test());  // nothing sent yet
      comm.send_value(0, 9, 1);  // release rank 0
      while (!req.test()) {
      }
      EXPECT_EQ(v, 42);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(Nonblocking, WaitAllCompletesMultipleReceives) {
  const auto result = Runtime::run(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(0, 5, comm.rank() * 10);
    } else {
      int a = 0, b = 0;
      std::vector<Request> reqs;
      reqs.push_back(comm.irecv(1, 5, std::span<int>(&a, 1)));
      reqs.push_back(comm.irecv(2, 5, std::span<int>(&b, 1)));
      Comm::wait_all(std::span<Request>(reqs));
      EXPECT_EQ(a, 10);
      EXPECT_EQ(b, 20);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(Nonblocking, IsendIsImmediatelyComplete) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 1.0;
      Request req = comm.isend(1, 0, std::span<const double>(&v, 1));
      EXPECT_FALSE(req.pending());
      req.wait();  // no-op
    } else {
      EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 0), 1.0);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(Nonblocking, HaloExchangeOverlapPattern) {
  // The canonical irecv-first halo pattern: post receives, send, wait.
  const auto result = Runtime::run(4, [](Comm& comm) {
    const int prev = comm.rank() > 0 ? comm.rank() - 1 : -1;
    const int next = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
    double from_prev = -1.0, from_next = -1.0;
    std::vector<Request> reqs;
    if (prev >= 0) reqs.push_back(comm.irecv(prev, 1, std::span<double>(&from_prev, 1)));
    if (next >= 0) reqs.push_back(comm.irecv(next, 2, std::span<double>(&from_next, 1)));
    const double mine = static_cast<double>(comm.rank());
    if (prev >= 0) comm.send_value(prev, 2, mine);
    if (next >= 0) comm.send_value(next, 1, mine);
    Comm::wait_all(std::span<Request>(reqs));
    if (prev >= 0) {
      EXPECT_DOUBLE_EQ(from_prev, prev);
    }
    if (next >= 0) {
      EXPECT_DOUBLE_EQ(from_next, next);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(VariableCollectives, GathervCollectsRaggedBlocks) {
  const auto result = Runtime::run(3, [](Comm& comm) {
    // Rank r contributes r + 1 values of value r.
    const std::vector<std::size_t> counts{1, 2, 3};
    std::vector<double> mine(static_cast<std::size_t>(comm.rank()) + 1,
                             static_cast<double>(comm.rank()));
    std::vector<double> all(comm.rank() == 0 ? 6 : 0);
    comm.gatherv(std::span<const double>(mine), std::span<double>(all),
                 std::span<const std::size_t>(counts), 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, (std::vector<double>{0, 1, 1, 2, 2, 2}));
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(VariableCollectives, AllgathervGivesEveryoneEverything) {
  const auto result = Runtime::run(4, [](Comm& comm) {
    const std::vector<std::size_t> counts{2, 1, 1, 2};
    std::vector<int> mine(counts[static_cast<std::size_t>(comm.rank())],
                          comm.rank());
    std::vector<int> all(6);
    comm.allgatherv(std::span<const int>(mine), std::span<int>(all),
                    std::span<const std::size_t>(counts));
    EXPECT_EQ(all, (std::vector<int>{0, 0, 1, 2, 3, 3}));
  });
  EXPECT_TRUE(result.ok);
}

TEST(VariableCollectives, GathervValidatesCounts) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    const std::vector<std::size_t> wrong_len{1};
    std::vector<double> mine{1.0};
    std::vector<double> out(2);
    EXPECT_THROW(comm.gatherv(std::span<const double>(mine),
                              std::span<double>(out),
                              std::span<const std::size_t>(wrong_len), 0),
                 UsageError);
    const std::vector<std::size_t> bad_mine{2, 2};
    EXPECT_THROW(comm.gatherv(std::span<const double>(mine),
                              std::span<double>(out),
                              std::span<const std::size_t>(bad_mine), 0),
                 UsageError);
  });
  (void)result;
}

TEST(VariableCollectives, AlltoallvExchangesRaggedBlocks) {
  const auto result = Runtime::run(3, [](Comm& comm) {
    // Rank r sends r + c values of r*10 + c to rank c... keep it simple:
    // rank r sends one value to every higher rank, none to lower.
    const int p = comm.size();
    std::vector<std::size_t> send_counts(static_cast<std::size_t>(p), 0);
    std::vector<std::size_t> recv_counts(static_cast<std::size_t>(p), 0);
    for (int c = 0; c < p; ++c) {
      if (c > comm.rank()) send_counts[static_cast<std::size_t>(c)] = 1;
      if (c < comm.rank()) recv_counts[static_cast<std::size_t>(c)] = 1;
    }
    std::vector<int> in;
    for (int c = comm.rank() + 1; c < p; ++c) in.push_back(comm.rank() * 10 + c);
    std::vector<int> out(static_cast<std::size_t>(comm.rank()));
    comm.alltoallv(std::span<const int>(in),
                   std::span<const std::size_t>(send_counts),
                   std::span<int>(out),
                   std::span<const std::size_t>(recv_counts));
    for (int c = 0; c < comm.rank(); ++c) {
      EXPECT_EQ(out[static_cast<std::size_t>(c)], c * 10 + comm.rank());
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(ReduceScatter, DistributesBlocksOfReduction) {
  const auto result = Runtime::run(4, [](Comm& comm) {
    // Every rank contributes [rank, rank, rank, rank] (one element/rank).
    std::vector<double> in(4, static_cast<double>(comm.rank()));
    double out = -1.0;
    comm.reduce_scatter(std::span<const double>(in), std::span<double>(&out, 1));
    EXPECT_DOUBLE_EQ(out, 0.0 + 1.0 + 2.0 + 3.0);
  });
  EXPECT_TRUE(result.ok);
}

TEST(ReduceScatter, ValidatesSizes) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    std::vector<double> in(3);  // not 2 * block
    std::vector<double> out(1);
    EXPECT_THROW(
        comm.reduce_scatter(std::span<const double>(in), std::span<double>(out)),
        UsageError);
  });
  (void)result;
}

TEST(Split, PartitionsByColorOrderedByKey) {
  const auto result = Runtime::run(6, [](Comm& comm) {
    // Even ranks vs odd ranks; key reverses the order within each group.
    Comm sub = comm.split(comm.rank() % 2, -comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // Highest world rank gets local rank 0 (smallest key).
    const int expected_local = (comm.size() - 1 - comm.rank()) / 2;
    EXPECT_EQ(sub.rank(), expected_local);
    EXPECT_EQ(sub.world_rank(), comm.rank());
    // The sub-communicator works: sum of members' world ranks.
    const int total = sub.allreduce_value(comm.rank());
    EXPECT_EQ(total, comm.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
  EXPECT_TRUE(result.ok);
}

TEST(Split, SubCommunicatorTrafficDoesNotCrossGroups) {
  const auto result = Runtime::run(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 2, comm.rank());
    // Both groups run the same tag pattern concurrently.
    if (sub.rank() == 0) {
      sub.send_value(1, 7, comm.rank() * 100);
    } else {
      const int v = sub.recv_value<int>(0, 7);
      // Must come from my group's rank 0, not the other group's.
      EXPECT_EQ(v, (comm.rank() / 2) * 2 * 100);
    }
    // World-communicator traffic with the same tag is also isolated.
    if (comm.rank() == 0) {
      comm.send_value(3, 7, -1);
    } else if (comm.rank() == 3) {
      EXPECT_EQ(comm.recv_value<int>(0, 7), -1);
    }
  });
  EXPECT_TRUE(result.ok);
}

TEST(Split, CollectivesInSubCommunicators) {
  const auto result = Runtime::run(8, [](Comm& comm) {
    Comm row = comm.split(comm.rank() / 4, comm.rank());
    Comm col = comm.split(comm.rank() % 4, comm.rank());
    EXPECT_EQ(row.size(), 4);
    EXPECT_EQ(col.size(), 2);
    const double row_sum = row.allreduce_value(1.0);
    const double col_sum = col.allreduce_value(1.0);
    EXPECT_DOUBLE_EQ(row_sum, 4.0);
    EXPECT_DOUBLE_EQ(col_sum, 2.0);
    row.barrier();
    col.barrier();
  });
  EXPECT_TRUE(result.ok);
}

TEST(Split, NestedSplitRejected) {
  const auto result = Runtime::run(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_THROW(sub.split(0, 0), UsageError);
  });
  EXPECT_TRUE(result.ok);
}

TEST(Split, AnySourceRejectedOnSubCommunicator) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    Comm sub = comm.split(0, comm.rank());
    double v;
    EXPECT_THROW(sub.recv(kAnySource, 0, std::span<double>(&v, 1)), UsageError);
  });
  EXPECT_TRUE(result.ok);
}

TEST(TransportStats, CountsMessagesAndBytes) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> buf(10, 1.0);
      comm.send(1, 0, std::span<const double>(buf));
    } else {
      std::vector<double> buf(10);
      comm.recv(0, 0, std::span<double>(buf));
    }
  });
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.messages_sent, 1u);
  EXPECT_EQ(result.bytes_sent, 10u * sizeof(double));
}

TEST(TransportStats, CollectivesAccountTheirMessages) {
  const auto a = Runtime::run(4, [](Comm& comm) {
    (void)comm.allreduce_value(1.0);
  });
  const auto b = Runtime::run(8, [](Comm& comm) {
    (void)comm.allreduce_value(1.0);
  });
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  EXPECT_GT(a.messages_sent, 0u);
  EXPECT_GT(b.messages_sent, a.messages_sent);  // more ranks, more traffic
}

}  // namespace
}  // namespace resilience::simmpi
