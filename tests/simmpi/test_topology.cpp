#include "simmpi/topology.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace resilience::simmpi {
namespace {

TEST(BlockPartition, EvenSplit) {
  EXPECT_EQ(block_partition(8, 4, 0), (BlockRange{0, 2}));
  EXPECT_EQ(block_partition(8, 4, 3), (BlockRange{6, 8}));
}

TEST(BlockPartition, UnevenSplitFrontLoaded) {
  // 10 over 4: sizes 3, 3, 2, 2.
  EXPECT_EQ(block_partition(10, 4, 0).count(), 3);
  EXPECT_EQ(block_partition(10, 4, 1).count(), 3);
  EXPECT_EQ(block_partition(10, 4, 2).count(), 2);
  EXPECT_EQ(block_partition(10, 4, 3).count(), 2);
}

TEST(BlockPartition, MorePartsThanElements) {
  EXPECT_EQ(block_partition(2, 4, 0).count(), 1);
  EXPECT_EQ(block_partition(2, 4, 1).count(), 1);
  EXPECT_EQ(block_partition(2, 4, 2).count(), 0);
  EXPECT_EQ(block_partition(2, 4, 3).count(), 0);
}

TEST(BlockPartition, BadArgumentsThrow) {
  EXPECT_THROW(block_partition(4, 0, 0), UsageError);
  EXPECT_THROW(block_partition(4, 2, 2), UsageError);
  EXPECT_THROW(block_partition(4, 2, -1), UsageError);
  EXPECT_THROW(block_partition(-1, 2, 0), UsageError);
}

/// Property sweep over (n, parts): blocks tile [0, n) exactly, sizes
/// differ by at most one, and block_owner inverts block_partition.
class PartitionProperty
    : public ::testing::TestWithParam<std::pair<std::int64_t, int>> {};

TEST_P(PartitionProperty, TilesAndInverts) {
  const auto [n, parts] = GetParam();
  std::int64_t covered = 0;
  std::int64_t min_count = n, max_count = 0;
  for (int r = 0; r < parts; ++r) {
    const auto range = block_partition(n, parts, r);
    EXPECT_EQ(range.lo, covered);
    covered = range.hi;
    min_count = std::min(min_count, range.count());
    max_count = std::max(max_count, range.count());
    for (std::int64_t i = range.lo; i < range.hi; ++i) {
      EXPECT_EQ(block_owner(n, parts, i), r);
      EXPECT_TRUE(range.contains(i));
    }
  }
  EXPECT_EQ(covered, n);
  EXPECT_LE(max_count - min_count, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PartitionProperty,
    ::testing::Values(std::pair<std::int64_t, int>{1, 1},
                      std::pair<std::int64_t, int>{10, 3},
                      std::pair<std::int64_t, int>{128, 64},
                      std::pair<std::int64_t, int>{127, 64},
                      std::pair<std::int64_t, int>{343, 64},
                      std::pair<std::int64_t, int>{5, 8},
                      std::pair<std::int64_t, int>{256, 128}));

TEST(BlockOwner, OutOfRangeThrows) {
  EXPECT_THROW(block_owner(4, 2, 4), UsageError);
  EXPECT_THROW(block_owner(4, 2, -1), UsageError);
}

TEST(DimsCreate, ProductEqualsRanks) {
  for (int p : {1, 2, 6, 12, 64, 100, 128, 97}) {
    for (int d : {1, 2, 3}) {
      const auto dims = dims_create(p, d);
      EXPECT_EQ(static_cast<int>(dims.size()), d);
      int prod = 1;
      for (int v : dims) prod *= v;
      EXPECT_EQ(prod, p);
    }
  }
}

TEST(DimsCreate, NearCubic) {
  const auto dims = dims_create(64, 3);
  EXPECT_EQ(dims, (std::vector<int>{4, 4, 4}));
  const auto dims2 = dims_create(12, 2);
  EXPECT_EQ(dims2, (std::vector<int>{4, 3}));
}

TEST(DimsCreate, BadArgumentsThrow) {
  EXPECT_THROW(dims_create(0, 2), UsageError);
  EXPECT_THROW(dims_create(4, 0), UsageError);
}

TEST(CartGrid, RankCoordsRoundTrip) {
  const CartGrid grid({3, 4}, {false, false});
  EXPECT_EQ(grid.size(), 12);
  for (int r = 0; r < grid.size(); ++r) {
    EXPECT_EQ(grid.rank_of(grid.coords_of(r)), r);
  }
}

TEST(CartGrid, ShiftNonPeriodicHitsBoundary) {
  const CartGrid grid({2, 2}, {false, false});
  // rank 0 is (0, 0): shifting -1 along either dim falls off.
  EXPECT_EQ(grid.shift(0, 0, -1), -1);
  EXPECT_EQ(grid.shift(0, 1, -1), -1);
  EXPECT_EQ(grid.shift(0, 0, +1), grid.rank_of({1, 0}));
}

TEST(CartGrid, ShiftPeriodicWrapsAround) {
  const CartGrid grid({4}, {true});
  EXPECT_EQ(grid.shift(0, 0, -1), 3);
  EXPECT_EQ(grid.shift(3, 0, +1), 0);
  EXPECT_EQ(grid.shift(1, 0, +9), 2);  // large displacement wraps
}

TEST(CartGrid, BalancedFactoryMatchesDimsCreate) {
  const auto grid = CartGrid::balanced(12, 2, false);
  EXPECT_EQ(grid.dims(), dims_create(12, 2));
  EXPECT_EQ(grid.size(), 12);
}

TEST(CartGrid, InvalidConstructionThrows) {
  EXPECT_THROW(CartGrid({}, {}), UsageError);
  EXPECT_THROW(CartGrid({2}, {true, false}), UsageError);
  EXPECT_THROW(CartGrid({0}, {false}), UsageError);
}

TEST(CartGrid, InvalidQueriesThrow) {
  const CartGrid grid({2, 2}, {false, false});
  EXPECT_THROW((void)grid.rank_of({5, 0}), UsageError);
  EXPECT_THROW((void)grid.rank_of({0}), UsageError);
  EXPECT_THROW((void)grid.coords_of(99), UsageError);
  EXPECT_THROW((void)grid.shift(0, 7, 1), UsageError);
}

}  // namespace
}  // namespace resilience::simmpi
