// Failure-delivery and equivalence tests for the fused fiber-mode
// collectives and the envelope pool.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "simmpi/collective.hpp"
#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Forces one scheduler configuration for the enclosing scope and drops
/// every override on destruction (back to env/default resolution).
struct SchedulerGuard {
  explicit SchedulerGuard(bool fibers, int workers = -1) {
    detail::set_scheduler_fibers_enabled(fibers);
    if (workers >= 0) detail::set_scheduler_workers(workers);
  }
  ~SchedulerGuard() {
    detail::reset_scheduler_fibers_enabled();
    detail::set_scheduler_workers(-1);
    detail::set_fused_collectives_enabled(true);
  }
};

/// Run `body` on the fiber scheduler with fused collectives on.
RunResult run_fused(int nranks, const std::function<void(Comm&)>& body) {
  SchedulerGuard guard(/*fibers=*/true);
  detail::set_fused_collectives_enabled(true);
  return Runtime::run(nranks, body);
}

TEST(FusedCollectives, AbortMidAllreduceWakesParkedPeers) {
  // A rank that throws while its peers are parked at the fused meeting
  // point must wake them promptly — abort teardown unparks every fiber,
  // so no timeout is involved at all.
  const auto start = steady_clock::now();
  const auto result = run_fused(4, [](Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("injected failure");
    double v = 1.0;
    double out = 0.0;
    comm.allreduce(std::span<const double>(&v, 1),
                   std::span<double>(&out, 1));
  });
  const auto elapsed = steady_clock::now() - start;
  EXPECT_TRUE(result.aborted);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.failed_rank, 2);
  EXPECT_EQ(result.error, "injected failure");
  EXPECT_LT(elapsed, milliseconds(2500));  // peers woke, not timed out
}

TEST(FusedCollectives, AbortMidBarrierWakesParkedPeers) {
  const auto start = steady_clock::now();
  const auto result = run_fused(8, [](Comm& comm) {
    if (comm.rank() == 7) throw std::runtime_error("boom");
    comm.barrier();
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.failed_rank, 7);
  EXPECT_LT(steady_clock::now() - start, milliseconds(2500));
}

TEST(FusedCollectives, MissingRankDeadlocksDeterministically) {
  // One rank never joins the collective. The fiber scheduler declares the
  // deadlock the moment no fiber is runnable — deterministically, without
  // consuming the threads-mode timeout.
  const auto start = steady_clock::now();
  const auto result = run_fused(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.barrier();  // rank 1 never arrives
  });
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.failed_rank, 0);
  // Far below the 10 s default deadlock_timeout: detection was
  // event-driven, not timer-driven.
  EXPECT_LT(steady_clock::now() - start, milliseconds(2500));
}

TEST(FusedCollectives, CollectiveSizeMismatchAbortsJob) {
  // The combiner detects the mismatch, so the reporting rank depends on
  // arrival order (unlike the mailbox path, where the receiver reports);
  // the job-level verdict is what matters.
  const auto result = run_fused(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.bcast_value(1.0, 0);
    } else {
      std::vector<double> buf(3);  // wrong size for the published payload
      comm.bcast(std::span<double>(buf), 0);
    }
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.error.find("size mismatch"), std::string::npos)
      << result.error;
}

TEST(FusedCollectives, ResultsAndStatsMatchMailboxAndThreadPaths) {
  // Differential run of a mixed collective sequence: the fused fiber
  // path, the mailbox fiber path and the threads path must all produce
  // bit-identical values and identical logical transport stats.
  const auto body = [](std::vector<double>* out) {
    return [out](Comm& comm) {
      std::vector<double> v(4, 0.25 * (comm.rank() + 1));
      std::vector<double> sum(4);
      comm.allreduce(std::span<const double>(v), std::span<double>(sum));
      comm.barrier();
      double top = comm.rank() == 1 ? sum[0] * 3 : 0.0;
      comm.bcast(std::span<double>(&top, 1), 1);
      std::vector<double> reduced(comm.rank() == 0 ? 4 : 0);
      comm.reduce(std::span<const double>(sum), std::span<double>(reduced),
                  0, Prod{});
      if (comm.rank() == 0) {
        *out = reduced;
        out->push_back(top);
      }
    };
  };

  SchedulerGuard guard(/*fibers=*/true);
  detail::set_fused_collectives_enabled(true);
  std::vector<double> fused_out;
  const auto fused = Runtime::run(6, body(&fused_out));

  detail::set_fused_collectives_enabled(false);
  std::vector<double> mailbox_out;
  const auto mailbox = Runtime::run(6, body(&mailbox_out));
  detail::set_fused_collectives_enabled(true);

  detail::set_scheduler_fibers_enabled(false);
  std::vector<double> threads_out;
  const auto threads = Runtime::run(6, body(&threads_out));
  detail::set_scheduler_fibers_enabled(true);

  EXPECT_TRUE(fused.ok);
  EXPECT_TRUE(mailbox.ok);
  EXPECT_TRUE(threads.ok);
  EXPECT_EQ(fused_out, mailbox_out);  // bit-identical values
  EXPECT_EQ(fused_out, threads_out);
  EXPECT_EQ(fused.messages_sent, mailbox.messages_sent);
  EXPECT_EQ(fused.messages_sent, threads.messages_sent);
  EXPECT_EQ(fused.bytes_sent, mailbox.bytes_sent);
  EXPECT_EQ(fused.bytes_sent, threads.bytes_sent);
}

TEST(FusedCollectives, SplitCommunicatorsUseDistinctFusedGroups) {
  const auto result = run_fused(8, [](Comm& comm) {
    Comm row = comm.split(comm.rank() / 4, comm.rank() % 4);
    const int row_sum = row.allreduce_value(1);
    EXPECT_EQ(row_sum, 4);
    row.barrier();
    const int world_sum = comm.allreduce_value(1);
    EXPECT_EQ(world_sum, 8);
  });
  EXPECT_TRUE(result.ok);
}

TEST(FusedGroupUnit, DivergedEpochIsReportedNotCollected) {
  // A rank arriving with an epoch other than the one the first arriver
  // pinned has diverged from SPMD order; arrive() reports it instead of
  // mixing two collectives in one slot table.
  detail::FusedGroup group;
  std::byte payload{};
  detail::Arrival arrival{&payload, &payload, 1, nullptr};
  std::unique_lock lock(group.mutex());
  EXPECT_EQ(group.arrive(0, 7, arrival, 3),
            detail::FusedGroup::ArriveOutcome::Waiter);
  EXPECT_EQ(group.arrive(1, 8, arrival, 3),
            detail::FusedGroup::ArriveOutcome::EpochMismatch);
  // The diverged arrival was not recorded: epoch 7 still completes when
  // its real participants show up.
  EXPECT_EQ(group.arrive(1, 7, arrival, 3),
            detail::FusedGroup::ArriveOutcome::Waiter);
  EXPECT_EQ(group.arrive(2, 7, arrival, 3),
            detail::FusedGroup::ArriveOutcome::Combiner);
}

TEST(EnvelopePool, SteadyTrafficRecyclesBuffers) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    double v = comm.rank();
    for (int round = 0; round < 50; ++round) {
      if (comm.rank() == 0) {
        comm.send_value(1, 0, v);
        v = comm.recv_value<double>(1, 1);
      } else {
        v = comm.recv_value<double>(0, 0);
        comm.send_value(0, 1, v + 1);
      }
    }
  });
  EXPECT_TRUE(result.ok);
  // 100 point-to-point messages in two buffers: everything past the first
  // envelope per mailbox reuses pooled capacity.
  EXPECT_EQ(result.messages_sent, 100u);
  EXPECT_LE(result.pool_allocs, 4u);
  EXPECT_GE(result.pool_reuses, 96u);
}

TEST(EnvelopePool, ReusesBuffersAfterAbortedJob) {
  // A job that aborts leaves envelopes queued and buffers checked out;
  // the next job must still pool cleanly (fresh JobState, fresh pools)
  // and the aborted job's stats must still be reported.
  const auto aborted = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 8; ++i) comm.send_value(1, 0, i);
      throw std::runtime_error("die with traffic in flight");
    }
    // Depending on scheduling the receiver sees either queued values
    // followed by the abort, or AbortError straight out of the first
    // blocking receive; both teardowns are legal.
    comm.recv_value<int>(0, 0);
    comm.recv_value<int>(0, 0);
    EXPECT_THROW(comm.recv_value<int>(0, 1), AbortError);
    throw AbortError();
  });
  EXPECT_TRUE(aborted.aborted);
  EXPECT_EQ(aborted.failed_rank, 0);
  EXPECT_GE(aborted.pool_allocs, 1u);

  const auto clean = Runtime::run(2, [](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      const double sum = comm.allreduce_value(1.0);
      EXPECT_DOUBLE_EQ(sum, 2.0);
    }
  });
  EXPECT_TRUE(clean.ok);
}

}  // namespace
}  // namespace resilience::simmpi
