// Failure-delivery and equivalence tests for the collective rendezvous
// fast path and the envelope pool.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "simmpi/rendezvous.hpp"
#include "simmpi/runtime.hpp"

namespace resilience::simmpi {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Run `body` with the rendezvous fast path forced on, restoring the
/// default afterwards.
RunResult run_fast(int nranks, const std::function<void(Comm&)>& body,
                   milliseconds timeout = milliseconds(10'000)) {
  detail::set_fast_collectives_enabled(true);
  RunOptions opts;
  opts.deadlock_timeout = timeout;
  return Runtime::run(nranks, body, opts);
}

TEST(FastPath, AbortMidAllreduceWakesParkedPeers) {
  // A rank that throws while its peers are parked inside the rendezvous
  // tree must wake them promptly — well before the deadlock timeout —
  // or an abort would cost a full timeout period per campaign trial.
  const auto start = steady_clock::now();
  const auto result = run_fast(
      4,
      [](Comm& comm) {
        if (comm.rank() == 2) throw std::runtime_error("injected failure");
        double v = 1.0;
        double out = 0.0;
        comm.allreduce(std::span<const double>(&v, 1),
                       std::span<double>(&out, 1));
      },
      milliseconds(5000));
  const auto elapsed = steady_clock::now() - start;
  EXPECT_TRUE(result.aborted);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.failed_rank, 2);
  EXPECT_EQ(result.error, "injected failure");
  EXPECT_LT(elapsed, milliseconds(2500));  // peers woke, not timed out
}

TEST(FastPath, AbortMidBarrierWakesParkedPeers) {
  const auto start = steady_clock::now();
  const auto result = run_fast(
      8,
      [](Comm& comm) {
        if (comm.rank() == 7) throw std::runtime_error("boom");
        comm.barrier();
      },
      milliseconds(5000));
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.failed_rank, 7);
  EXPECT_LT(steady_clock::now() - start, milliseconds(2500));
}

TEST(FastPath, MissingRankDeadlocksInsteadOfHangingForever) {
  // One rank never joins the collective: the parked peers must time out
  // with the deadlock verdict, exactly like a blocked mailbox receive.
  const auto result = run_fast(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) comm.barrier();  // rank 1 never arrives
      },
      milliseconds(200));
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.failed_rank, 0);
}

TEST(FastPath, CollectiveSizeMismatchAbortsJob) {
  const auto result = run_fast(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.bcast_value(1.0, 0);
    } else {
      std::vector<double> buf(3);  // wrong size for the published payload
      comm.bcast(std::span<double>(buf), 0);
    }
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.failed_rank, 1);
}

TEST(FastPath, ResultsAndStatsMatchMailboxPath) {
  // Differential run of a mixed collective sequence: both transports must
  // produce bit-identical values and identical logical transport stats.
  const auto body = [](std::vector<double>* out) {
    return [out](Comm& comm) {
      std::vector<double> v(4, 0.25 * (comm.rank() + 1));
      std::vector<double> sum(4);
      comm.allreduce(std::span<const double>(v), std::span<double>(sum));
      comm.barrier();
      double top = comm.rank() == 1 ? sum[0] * 3 : 0.0;
      comm.bcast(std::span<double>(&top, 1), 1);
      std::vector<double> reduced(comm.rank() == 0 ? 4 : 0);
      comm.reduce(std::span<const double>(sum), std::span<double>(reduced),
                  0, Prod{});
      if (comm.rank() == 0) {
        *out = reduced;
        out->push_back(top);
      }
    };
  };

  std::vector<double> fast_out;
  detail::set_fast_collectives_enabled(true);
  const auto fast = Runtime::run(6, body(&fast_out));
  std::vector<double> slow_out;
  detail::set_fast_collectives_enabled(false);
  const auto slow = Runtime::run(6, body(&slow_out));
  detail::set_fast_collectives_enabled(true);

  EXPECT_TRUE(fast.ok);
  EXPECT_TRUE(slow.ok);
  EXPECT_EQ(fast_out, slow_out);  // bit-identical values
  EXPECT_EQ(fast.messages_sent, slow.messages_sent);
  EXPECT_EQ(fast.bytes_sent, slow.bytes_sent);
}

TEST(FastPath, SplitCommunicatorsUseDistinctRendezvousGroups) {
  const auto result = run_fast(8, [](Comm& comm) {
    Comm row = comm.split(comm.rank() / 4, comm.rank() % 4);
    const int row_sum = row.allreduce_value(1);
    EXPECT_EQ(row_sum, 4);
    row.barrier();
    const int world_sum = comm.allreduce_value(1);
    EXPECT_EQ(world_sum, 8);
  });
  EXPECT_TRUE(result.ok);
}

TEST(EnvelopePool, SteadyTrafficRecyclesBuffers) {
  const auto result = Runtime::run(2, [](Comm& comm) {
    double v = comm.rank();
    for (int round = 0; round < 50; ++round) {
      if (comm.rank() == 0) {
        comm.send_value(1, 0, v);
        v = comm.recv_value<double>(1, 1);
      } else {
        v = comm.recv_value<double>(0, 0);
        comm.send_value(0, 1, v + 1);
      }
    }
  });
  EXPECT_TRUE(result.ok);
  // 100 point-to-point messages in two buffers: everything past the first
  // envelope per mailbox reuses pooled capacity.
  EXPECT_EQ(result.messages_sent, 100u);
  EXPECT_LE(result.pool_allocs, 4u);
  EXPECT_GE(result.pool_reuses, 96u);
}

TEST(EnvelopePool, ReusesBuffersAfterAbortedJob) {
  // A job that aborts leaves envelopes queued and buffers checked out;
  // the next job must still pool cleanly (fresh JobState, fresh pools)
  // and the aborted job's stats must still be reported.
  const auto aborted = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 8; ++i) comm.send_value(1, 0, i);
      throw std::runtime_error("die with traffic in flight");
    }
    comm.recv_value<int>(0, 0);
    comm.recv_value<int>(0, 0);
    // Park until the abort wakes us.
    EXPECT_THROW(comm.recv_value<int>(0, 1), AbortError);
    throw AbortError();
  });
  EXPECT_TRUE(aborted.aborted);
  EXPECT_EQ(aborted.failed_rank, 0);
  EXPECT_GE(aborted.pool_allocs, 1u);

  const auto clean = Runtime::run(2, [](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      const double sum = comm.allreduce_value(1.0);
      EXPECT_DOUBLE_EQ(sum, 2.0);
    }
  });
  EXPECT_TRUE(clean.ok);
}

}  // namespace
}  // namespace resilience::simmpi
