// Telemetry subsystem unit tests: counter/histogram registry semantics
// (scopes, rollup, cross-thread adoption, enable/disable), the trace
// session with each sink, and the deprecated counter-field accessors
// that forward into the registry (DESIGN.md §10).
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "harness/campaign.hpp"
#include "simmpi/runtime.hpp"
#include "telemetry/sinks.hpp"
#include "util/json.hpp"

namespace resilience::telemetry {
namespace {

TEST(MetricScope, CountsLandInActiveScope) {
  MetricScope scope;
  {
    ScopeGuard guard(&scope);
    count(Counter::HarnessTrials);
    count(Counter::HarnessTrials, 4);
    record(Histogram::HarnessContaminatedRanks, 3);
  }
  const MetricsSnapshot snap = scope.snapshot();
  EXPECT_EQ(snap.value(Counter::HarnessTrials), 5u);
  EXPECT_EQ(snap.histogram(Histogram::HarnessContaminatedRanks).buckets[3],
            1u);
  EXPECT_EQ(snap.histogram(Histogram::HarnessContaminatedRanks).total(), 1u);
  EXPECT_FALSE(snap.empty());
}

TEST(MetricScope, CountsOutsideAnyScopeAreDropped) {
  // No guard on this thread: count() must be a safe no-op.
  count(Counter::HarnessTrials);
  MetricScope scope;
  EXPECT_TRUE(scope.snapshot().empty());
}

TEST(MetricScope, NestedScopesCountOnceThroughTheFoldChain) {
  // The production shape: a phase thread holds the study guard, and the
  // campaign pushes its own guard above it on the same thread. The count
  // must reach the study exactly once (via the fold at ~campaign), not
  // twice (stack walk + fold).
  MetricScope study;
  {
    ScopeGuard study_guard(&study);
    MetricScope campaign(&study);
    {
      ScopeGuard campaign_guard(&campaign);
      count(Counter::HarnessTrials, 7);
      // Only the innermost scope observes the count directly.
      EXPECT_EQ(campaign.snapshot().value(Counter::HarnessTrials), 7u);
      EXPECT_EQ(study.snapshot().value(Counter::HarnessTrials), 0u);
    }
    // Counts outside the campaign guard land in the study again.
    count(Counter::HarnessCampaigns);
  }
  EXPECT_EQ(study.snapshot().value(Counter::HarnessTrials), 7u);
  EXPECT_EQ(study.snapshot().value(Counter::HarnessCampaigns), 1u);
}

TEST(MetricScope, ChildScopeAloneRollsUpAtDestruction) {
  MetricScope study;
  {
    MetricScope campaign(&study);
    ScopeGuard guard(&campaign);  // only the campaign is on the stack
    count(Counter::HarnessEarlyExits, 3);
    EXPECT_EQ(study.snapshot().value(Counter::HarnessEarlyExits), 0u);
  }
  EXPECT_EQ(study.snapshot().value(Counter::HarnessEarlyExits), 3u);
}

TEST(MetricScope, ManyThreadsCountLockFree) {
  MetricScope scope;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&scope] {
      ScopeGuard guard(&scope);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        count(Counter::FsefiInjections);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(scope.snapshot().value(Counter::FsefiInjections),
            kThreads * kPerThread);
}

TEST(MetricScope, RankThreadsAdoptTheLaunchersScopeStack) {
  // The simmpi runtime propagates the launching thread's scope stack onto
  // its rank threads, so per-rank activity lands in the campaign/study
  // scopes. SimmpiJobs is counted by the runtime itself.
  MetricScope scope;
  {
    ScopeGuard guard(&scope);
    const auto result = simmpi::Runtime::run(4, [](simmpi::Comm& comm) {
      count(Counter::CoreStudyPhases);  // arbitrary counter, one per rank
      (void)comm.allreduce_value(1.0);
    });
    ASSERT_TRUE(result.ok);
  }
  const MetricsSnapshot snap = scope.snapshot();
  EXPECT_EQ(snap.value(Counter::CoreStudyPhases), 4u);
  EXPECT_EQ(snap.value(Counter::SimmpiJobs), 1u);
}

TEST(MetricsEnabled, DisabledPathDropsCounts) {
  MetricScope scope;
  ScopeGuard guard(&scope);
  set_metrics_enabled(false);
  count(Counter::HarnessTrials);
  record(Histogram::HarnessTrialOps, 100);
  set_metrics_enabled(true);
  count(Counter::HarnessTrials);
  const MetricsSnapshot snap = scope.snapshot();
  EXPECT_EQ(snap.value(Counter::HarnessTrials), 1u);
  EXPECT_EQ(snap.histogram(Histogram::HarnessTrialOps).total(), 0u);
}

TEST(MetricsSnapshot, NameLookupAndAdd) {
  MetricsSnapshot a;
  a.counters[static_cast<std::size_t>(Counter::HarnessTrials)] = 3;
  EXPECT_EQ(a.value("harness.trials"), 3u);
  EXPECT_EQ(a.value("no.such.counter"), 0u);
  MetricsSnapshot b;
  b.counters[static_cast<std::size_t>(Counter::HarnessTrials)] = 2;
  b.histograms[0].buckets[5] = 1;
  a.add(b);
  EXPECT_EQ(a.value(Counter::HarnessTrials), 5u);
  EXPECT_EQ(a.histograms[0].buckets[5], 1u);
}

TEST(MetricsSnapshot, LogicalEqualIgnoresTimingBornCounters) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  a.counters[static_cast<std::size_t>(Counter::HarnessTrials)] = 10;
  b.counters[static_cast<std::size_t>(Counter::HarnessTrials)] = 10;
  // Timing-born diagnostics may differ between identical logical runs.
  ASSERT_FALSE(is_logical(Counter::SimmpiMailboxWaits));
  a.counters[static_cast<std::size_t>(Counter::SimmpiMailboxWaits)] = 1;
  b.counters[static_cast<std::size_t>(Counter::SimmpiMailboxWaits)] = 99;
  EXPECT_TRUE(a.logical_equal(b));
  ASSERT_TRUE(is_logical(Counter::HarnessTrials));
  b.counters[static_cast<std::size_t>(Counter::HarnessTrials)] = 11;
  EXPECT_FALSE(a.logical_equal(b));
}

TEST(HistogramBuckets, TrialOpsUsesLog2AndContaminationIsLinear) {
  EXPECT_EQ(bucket_of(Histogram::HarnessTrialOps, 0), 0u);
  EXPECT_EQ(bucket_of(Histogram::HarnessTrialOps, 1), 1u);
  EXPECT_EQ(bucket_of(Histogram::HarnessTrialOps, 3), 2u);
  EXPECT_EQ(bucket_of(Histogram::HarnessTrialOps, 1024), 11u);
  EXPECT_EQ(bucket_of(Histogram::HarnessContaminatedRanks, 5), 5u);
  EXPECT_EQ(bucket_of(Histogram::HarnessContaminatedRanks, 1 << 20),
            kHistogramBuckets - 1);
}

TEST(CounterNames, AreStableAndDistinct) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const char* n = name(static_cast<Counter>(i));
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(seen.insert(n).second) << "duplicate counter name " << n;
    EXPECT_NE(std::string(n).find('.'), std::string::npos) << n;
  }
  EXPECT_STREQ(name(Histogram::HarnessTrialOps), "harness.trial_ops");
}

// ---- tracing ---------------------------------------------------------------

TEST(TraceSession, MemorySinkSeesBalancedSpansAndInstantArgs) {
  auto sink = std::make_shared<MemorySink>();
  EXPECT_FALSE(trace_enabled());
  TraceSession::start(sink);
  EXPECT_TRUE(trace_enabled());
  {
    TraceSpan span("core", "study", "trials", 42);
    trace_instant("fsefi", "injection", "op", 7);
  }
  TraceSession::stop();
  EXPECT_FALSE(trace_enabled());

  ASSERT_EQ(sink->events().size(), 3u);
  const auto& begin = sink->events()[0];
  const auto& instant = sink->events()[1];
  const auto& end = sink->events()[2];
  EXPECT_EQ(begin.type, TraceEvent::Type::SpanBegin);
  EXPECT_STREQ(begin.name, "study");
  ASSERT_NE(begin.arg_name, nullptr);
  EXPECT_EQ(begin.arg, 42u);
  EXPECT_EQ(instant.type, TraceEvent::Type::Instant);
  EXPECT_STREQ(instant.category, "fsefi");
  EXPECT_EQ(instant.arg, 7u);
  EXPECT_EQ(end.type, TraceEvent::Type::SpanEnd);
  EXPECT_LE(begin.ts_ns, instant.ts_ns);
  EXPECT_LE(instant.ts_ns, end.ts_ns);
}

TEST(TraceSession, SpanStartedBeforeSessionStaysSilent) {
  auto sink = std::make_shared<MemorySink>();
  {
    TraceSpan span("core", "study");  // not armed: no session yet
    TraceSession::start(sink);
    trace_instant("harness", "early_exit");
    TraceSession::stop();
  }  // destructor must not emit an unbalanced end
  ASSERT_EQ(sink->events().size(), 1u);
  EXPECT_EQ(sink->events()[0].type, TraceEvent::Type::Instant);
}

TEST(TraceSession, DisabledTracingEmitsNothing) {
  auto sink = std::make_shared<MemorySink>();
  {
    TraceSpan span("core", "study");
    trace_instant("fsefi", "injection");
  }
  TraceSession::start(sink);
  TraceSession::stop();
  EXPECT_TRUE(sink->events().empty());
}

TEST(TraceSession, JsonLinesSinkWritesParseableLines) {
  const std::string path = ::testing::TempDir() + "trace_test.jsonl";
  TraceSession::start(std::make_shared<JsonLinesSink>(path));
  {
    TraceSpan span("harness", "trial", "index", 3);
    trace_instant("harness", "checkpoint_restore", "resume_iteration", 12);
  }
  TraceSession::stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<util::Json> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(util::Json::parse(line));
  }
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].at("ph").as_string(), "B");
  EXPECT_EQ(lines[0].at("name").as_string(), "trial");
  EXPECT_EQ(lines[0].at("index").as_int(), 3);
  EXPECT_EQ(lines[1].at("ph").as_string(), "i");
  EXPECT_EQ(lines[1].at("resume_iteration").as_int(), 12);
  EXPECT_EQ(lines[2].at("ph").as_string(), "E");
  EXPECT_GE(lines[2].at("ts_ns").as_int(), lines[0].at("ts_ns").as_int());
}

TEST(TraceSession, ChromeTraceSinkWritesOneDocument) {
  const std::string path = ::testing::TempDir() + "trace_test.json";
  TraceSession::start(std::make_shared<ChromeTraceSink>(path));
  {
    TraceSpan span("core", "study");
    trace_instant("simmpi", "team_pool_prewarm", "teams", 4);
  }
  TraceSession::stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const util::Json doc = util::Json::parse(buf.str());
  std::remove(path.c_str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("ph").as_string(), "B");
  EXPECT_EQ(events[1].at("ph").as_string(), "i");
  EXPECT_EQ(events[1].at("s").as_string(), "t");
  EXPECT_EQ(events[1].at("args").at("teams").as_int(), 4);
  EXPECT_EQ(events[2].at("ph").as_string(), "E");
  for (const auto& e : events) EXPECT_EQ(e.at("pid").as_int(), 1);
}

TEST(MetricsJson, SchemaHasNonZeroCountersAndNonEmptyHistograms) {
  MetricsSnapshot snap;
  snap.counters[static_cast<std::size_t>(Counter::HarnessTrials)] = 25;
  snap.histograms[static_cast<std::size_t>(Histogram::HarnessTrialOps)]
      .buckets[10] = 25;
  const util::Json doc = metrics_to_json(snap);
  EXPECT_EQ(doc.at("schema").as_string(), "resilience-metrics/1");
  const auto& counters = doc.at("counters").as_object();
  EXPECT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters.at("harness.trials").as_int(), 25);
  const auto& hist = doc.at("histograms").as_object();
  ASSERT_EQ(hist.size(), 1u);
  const auto& ops = hist.at("harness.trial_ops");
  EXPECT_EQ(ops.at("total").as_int(), 25);
  EXPECT_EQ(ops.at("buckets").as_array().size(), kHistogramBuckets);
  EXPECT_EQ(ops.at("buckets").as_array()[10].as_int(), 25);
}

// ---- registry-backed result fields -----------------------------------------

TEST(ResultFields, PoolCountersAndMetricsValues) {
  simmpi::RunResult run;
  run.pool_allocs = 3;
  run.pool_reuses = 97;
  EXPECT_EQ(run.pool_allocs, 3u);
  EXPECT_EQ(run.pool_reuses, 97u);

  harness::CampaignResult campaign;
  campaign.metrics
      .counters[static_cast<std::size_t>(Counter::HarnessCheckpointRestores)] =
      11;
  campaign.metrics
      .counters[static_cast<std::size_t>(Counter::HarnessEarlyExits)] = 5;
  EXPECT_EQ(campaign.metrics.value(Counter::HarnessCheckpointRestores), 11u);
  EXPECT_EQ(campaign.metrics.value(Counter::HarnessEarlyExits), 5u);
}

}  // namespace
}  // namespace resilience::telemetry
