#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace resilience::util {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, SimpleAverage) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Variance, FewerThanTwoSamplesIsZero) {
  const std::vector<double> one{5.0};
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(variance(one), 0.0);
}

TEST(Variance, MatchesHandComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with Bessel's correction: 32 / 7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Rmse, ZeroForIdenticalSeries) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(xs, xs), 0.0);
}

TEST(Rmse, MatchesHandComputation) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{2.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), std::sqrt((1.0 + 4.0) / 2.0));
}

TEST(Rmse, MismatchedLengthsThrow) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
  EXPECT_THROW(rmse({}, {}), std::invalid_argument);
}

TEST(Mae, MatchesHandComputation) {
  const std::vector<double> a{1.0, 5.0};
  const std::vector<double> b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(mae(a, b), 1.5);
}

TEST(CosineSimilarity, ParallelVectorsGiveOne) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(CosineSimilarity, OrthogonalVectorsGiveZero) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(CosineSimilarity, ZeroVectorGivesZero) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(CosineSimilarity, MismatchedLengthsThrow) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(cosine_similarity(a, b), std::invalid_argument);
}

TEST(CosineSimilarity, PaperStyleProfilesAreSimilar) {
  // Two bimodal propagation profiles like Figure 1a vs 1c.
  const std::vector<double> small{0.77, 0.002, 0.003, 0.001, 0.0, 0.002, 0.0, 0.22};
  const std::vector<double> grouped{0.75, 0.004, 0.002, 0.002, 0.001, 0.001, 0.01, 0.23};
  EXPECT_GT(cosine_similarity(small, grouped), 0.99);
}

TEST(WilsonInterval, ZeroTrialsIsDegenerate) {
  const auto w = wilson_interval(0, 0);
  EXPECT_EQ(w.lo, 0.0);
  EXPECT_EQ(w.hi, 1.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  for (std::size_t successes : {0u, 10u, 50u, 99u, 100u}) {
    const auto w = wilson_interval(successes, 100);
    EXPECT_LE(w.lo, w.center + 1e-12);
    EXPECT_GE(w.hi, w.center - 1e-12);
    EXPECT_GE(w.lo, 0.0);
    EXPECT_LE(w.hi, 1.0);
  }
}

TEST(WilsonInterval, ShrinksWithMoreTrials) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(WilsonInterval, MatchesReferenceValues) {
  // 7 successes in 10 trials at z = 1.96: the standard worked example.
  const auto w = wilson_interval(7, 10);
  EXPECT_NEAR(w.center, 0.7, 1e-12);
  EXPECT_NEAR(w.lo, 0.3968, 1e-3);
  EXPECT_NEAR(w.hi, 0.8922, 1e-3);
  EXPECT_NEAR(w.half_width(), (w.hi - w.lo) / 2.0, 1e-15);
}

TEST(NormalCdf, ReferenceValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.96), 1.0 - normal_cdf(1.96), 1e-12);
}

TEST(RegularizedIncompleteBeta, ClosedForms) {
  // I_x(1, 1) = x (uniform CDF).
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
  // Symmetry at the midpoint of a symmetric Beta.
  EXPECT_NEAR(regularized_incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(regularized_incomplete_beta(3.0, 7.0, 0.3),
              1.0 - regularized_incomplete_beta(7.0, 3.0, 0.7), 1e-12);
  EXPECT_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(ClopperPearson, MatchesReferenceValues) {
  // 7 successes in 10 trials at 95%: the textbook exact interval.
  const auto cp = clopper_pearson_interval(7, 10);
  EXPECT_NEAR(cp.center, 0.7, 1e-12);
  EXPECT_NEAR(cp.lo, 0.3475, 2e-3);
  EXPECT_NEAR(cp.hi, 0.9333, 2e-3);
}

TEST(ClopperPearson, ZeroAndFullCountsUseClosedForms) {
  // k = 0: lo = 0, hi = 1 - (alpha/2)^(1/n); k = n mirrors it.
  const double alpha = 2.0 * (1.0 - normal_cdf(1.96));
  const auto none = clopper_pearson_interval(0, 10);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_NEAR(none.hi, 1.0 - std::pow(alpha / 2.0, 0.1), 1e-9);
  const auto all = clopper_pearson_interval(10, 10);
  EXPECT_EQ(all.hi, 1.0);
  EXPECT_NEAR(all.lo, std::pow(alpha / 2.0, 0.1), 1e-9);
}

TEST(ClopperPearson, SymmetricUnderComplement) {
  const auto a = clopper_pearson_interval(3, 20);
  const auto b = clopper_pearson_interval(17, 20);
  EXPECT_NEAR(a.lo, 1.0 - b.hi, 1e-9);
  EXPECT_NEAR(a.hi, 1.0 - b.lo, 1e-9);
}

TEST(ClopperPearson, CoversWilsonOnTheRareTail) {
  // The exact interval is at least as wide as Wilson where the normal
  // approximation under-covers (tiny counts) — the property the adaptive
  // engine relies on.
  const auto cp = clopper_pearson_interval(1, 200);
  const auto w = wilson_interval(1, 200);
  EXPECT_GE(cp.hi - cp.lo, 0.9 * (w.hi - w.lo));
  EXPECT_EQ(clopper_pearson_interval(0, 0).hi, 1.0);
}

TEST(Normalize, SumsToOne) {
  const std::vector<std::size_t> counts{1, 2, 3, 4};
  const auto probs = normalize(counts);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(probs[3], 0.4);
}

TEST(Normalize, AllZeroStaysZero) {
  const std::vector<std::size_t> counts{0, 0};
  const auto probs = normalize(counts);
  EXPECT_EQ(probs[0], 0.0);
  EXPECT_EQ(probs[1], 0.0);
}

TEST(GroupSum, PreservesTotalMass) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const auto grouped = group_sum(xs, 4);
  ASSERT_EQ(grouped.size(), 4u);
  EXPECT_DOUBLE_EQ(grouped[0], 3.0);
  EXPECT_DOUBLE_EQ(grouped[3], 15.0);
}

TEST(GroupSum, IdentityWhenGroupsEqualSize) {
  const std::vector<double> xs{1, 2, 3};
  const auto grouped = group_sum(xs, 3);
  EXPECT_EQ(grouped, xs);
}

TEST(GroupSum, BadGroupCountThrows) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_THROW(group_sum(xs, 2), std::invalid_argument);
  EXPECT_THROW(group_sum(xs, 0), std::invalid_argument);
}

/// Property: grouping a 64-wide profile into 8 preserves mass for every
/// split that divides evenly.
class GroupSumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupSumProperty, MassPreservedAcrossSplits) {
  const std::size_t groups = GetParam();
  std::vector<double> xs(64);
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>((i * 37 + 11) % 101) / 100.0;
    total += xs[i];
  }
  const auto grouped = group_sum(xs, groups);
  double grouped_total = 0.0;
  for (double g : grouped) grouped_total += g;
  EXPECT_NEAR(grouped_total, total, 1e-9);
  EXPECT_EQ(grouped.size(), groups);
}

INSTANTIATE_TEST_SUITE_P(Splits, GroupSumProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace resilience::util
