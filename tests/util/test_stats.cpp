#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace resilience::util {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, SimpleAverage) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Variance, FewerThanTwoSamplesIsZero) {
  const std::vector<double> one{5.0};
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(variance(one), 0.0);
}

TEST(Variance, MatchesHandComputation) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with Bessel's correction: 32 / 7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Rmse, ZeroForIdenticalSeries) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(xs, xs), 0.0);
}

TEST(Rmse, MatchesHandComputation) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{2.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), std::sqrt((1.0 + 4.0) / 2.0));
}

TEST(Rmse, MismatchedLengthsThrow) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
  EXPECT_THROW(rmse({}, {}), std::invalid_argument);
}

TEST(Mae, MatchesHandComputation) {
  const std::vector<double> a{1.0, 5.0};
  const std::vector<double> b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(mae(a, b), 1.5);
}

TEST(CosineSimilarity, ParallelVectorsGiveOne) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(CosineSimilarity, OrthogonalVectorsGiveZero) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(CosineSimilarity, ZeroVectorGivesZero) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(CosineSimilarity, MismatchedLengthsThrow) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(cosine_similarity(a, b), std::invalid_argument);
}

TEST(CosineSimilarity, PaperStyleProfilesAreSimilar) {
  // Two bimodal propagation profiles like Figure 1a vs 1c.
  const std::vector<double> small{0.77, 0.002, 0.003, 0.001, 0.0, 0.002, 0.0, 0.22};
  const std::vector<double> grouped{0.75, 0.004, 0.002, 0.002, 0.001, 0.001, 0.01, 0.23};
  EXPECT_GT(cosine_similarity(small, grouped), 0.99);
}

TEST(WilsonInterval, ZeroTrialsIsDegenerate) {
  const auto w = wilson_interval(0, 0);
  EXPECT_EQ(w.lo, 0.0);
  EXPECT_EQ(w.hi, 1.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  for (std::size_t successes : {0u, 10u, 50u, 99u, 100u}) {
    const auto w = wilson_interval(successes, 100);
    EXPECT_LE(w.lo, w.center + 1e-12);
    EXPECT_GE(w.hi, w.center - 1e-12);
    EXPECT_GE(w.lo, 0.0);
    EXPECT_LE(w.hi, 1.0);
  }
}

TEST(WilsonInterval, ShrinksWithMoreTrials) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Normalize, SumsToOne) {
  const std::vector<std::size_t> counts{1, 2, 3, 4};
  const auto probs = normalize(counts);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(probs[3], 0.4);
}

TEST(Normalize, AllZeroStaysZero) {
  const std::vector<std::size_t> counts{0, 0};
  const auto probs = normalize(counts);
  EXPECT_EQ(probs[0], 0.0);
  EXPECT_EQ(probs[1], 0.0);
}

TEST(GroupSum, PreservesTotalMass) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const auto grouped = group_sum(xs, 4);
  ASSERT_EQ(grouped.size(), 4u);
  EXPECT_DOUBLE_EQ(grouped[0], 3.0);
  EXPECT_DOUBLE_EQ(grouped[3], 15.0);
}

TEST(GroupSum, IdentityWhenGroupsEqualSize) {
  const std::vector<double> xs{1, 2, 3};
  const auto grouped = group_sum(xs, 3);
  EXPECT_EQ(grouped, xs);
}

TEST(GroupSum, BadGroupCountThrows) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_THROW(group_sum(xs, 2), std::invalid_argument);
  EXPECT_THROW(group_sum(xs, 0), std::invalid_argument);
}

/// Property: grouping a 64-wide profile into 8 preserves mass for every
/// split that divides evenly.
class GroupSumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupSumProperty, MassPreservedAcrossSplits) {
  const std::size_t groups = GetParam();
  std::vector<double> xs(64);
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>((i * 37 + 11) % 101) / 100.0;
    total += xs[i];
  }
  const auto grouped = group_sum(xs, groups);
  double grouped_total = 0.0;
  for (double g : grouped) grouped_total += g;
  EXPECT_NEAR(grouped_total, total, 1e-9);
  EXPECT_EQ(grouped.size(), groups);
}

INSTANTIATE_TEST_SUITE_P(Splits, GroupSumProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace resilience::util
