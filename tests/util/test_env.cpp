#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace resilience::util {
namespace {

TEST(EnvInt, FallsBackWhenUnset) {
  ::unsetenv("RESILIENCE_TEST_UNSET");
  EXPECT_EQ(env_int("RESILIENCE_TEST_UNSET", 42), 42);
}

TEST(EnvInt, ParsesValue) {
  ::setenv("RESILIENCE_TEST_INT", "123", 1);
  EXPECT_EQ(env_int("RESILIENCE_TEST_INT", 42), 123);
  ::unsetenv("RESILIENCE_TEST_INT");
}

TEST(EnvInt, RejectsGarbage) {
  ::setenv("RESILIENCE_TEST_BAD", "12abc", 1);
  EXPECT_EQ(env_int("RESILIENCE_TEST_BAD", 42), 42);
  ::setenv("RESILIENCE_TEST_BAD", "", 1);
  EXPECT_EQ(env_int("RESILIENCE_TEST_BAD", 42), 42);
  ::unsetenv("RESILIENCE_TEST_BAD");
}

TEST(EnvInt, WarnsOnGarbage) {
  ::setenv("RESILIENCE_TEST_BAD", "threads=4", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_int("RESILIENCE_TEST_BAD", 42), 42);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("warning"), std::string::npos);
  EXPECT_NE(err.find("RESILIENCE_TEST_BAD"), std::string::npos);
  EXPECT_NE(err.find("threads=4"), std::string::npos);
  ::unsetenv("RESILIENCE_TEST_BAD");
}

TEST(EnvInt, WarnsOnOutOfRangeValue) {
  // Far beyond the int64 range: strtoll reports ERANGE, and the value is
  // rejected rather than silently saturated.
  ::setenv("RESILIENCE_TEST_HUGE", "99999999999999999999999999", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_int("RESILIENCE_TEST_HUGE", 7), 7);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("warning"), std::string::npos);
  ::unsetenv("RESILIENCE_TEST_HUGE");
}

TEST(EnvInt, ClampsToMinimum) {
  ::setenv("RESILIENCE_TEST_MIN", "0", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_int("RESILIENCE_TEST_MIN", 42, 10), 10);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("below the minimum"), std::string::npos);
  ::unsetenv("RESILIENCE_TEST_MIN");
}

TEST(EnvFlag, ParsesZeroAndOne) {
  ::unsetenv("RESILIENCE_TEST_FLAG");
  EXPECT_TRUE(env_flag("RESILIENCE_TEST_FLAG", true));
  EXPECT_FALSE(env_flag("RESILIENCE_TEST_FLAG", false));
  ::setenv("RESILIENCE_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("RESILIENCE_TEST_FLAG", true));
  ::setenv("RESILIENCE_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("RESILIENCE_TEST_FLAG", false));
  ::unsetenv("RESILIENCE_TEST_FLAG");
}

TEST(EnvFlag, WarnsOnInvalidValue) {
  ::setenv("RESILIENCE_TEST_FLAG", "yes", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_TRUE(env_flag("RESILIENCE_TEST_FLAG", true));
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("warning"), std::string::npos);
  EXPECT_NE(err.find("expected 0 or 1"), std::string::npos);
  ::unsetenv("RESILIENCE_TEST_FLAG");
}

TEST(EnvStr, FallbackAndValue) {
  ::unsetenv("RESILIENCE_TEST_STR");
  EXPECT_EQ(env_str("RESILIENCE_TEST_STR", "dflt"), "dflt");
  ::setenv("RESILIENCE_TEST_STR", "hello", 1);
  EXPECT_EQ(env_str("RESILIENCE_TEST_STR", "dflt"), "hello");
  ::unsetenv("RESILIENCE_TEST_STR");
}

TEST(BenchConfig, ReadsTrialsAndSeed) {
  ::setenv("RESILIENCE_TRIALS", "777", 1);
  ::setenv("RESILIENCE_SEED", "9", 1);
  const auto cfg = BenchConfig::from_env();
  EXPECT_EQ(cfg.trials, 777u);
  EXPECT_EQ(cfg.seed, 9u);
  ::unsetenv("RESILIENCE_TRIALS");
  ::unsetenv("RESILIENCE_SEED");
}

TEST(BenchConfig, DefaultTrials) {
  ::unsetenv("RESILIENCE_TRIALS");
  ::unsetenv("RESILIENCE_SEED");
  const auto cfg = BenchConfig::from_env(123);
  EXPECT_EQ(cfg.trials, 123u);
}

}  // namespace
}  // namespace resilience::util
