#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace resilience::util {
namespace {

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| 22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.str().find("| x"), std::string::npos);
}

TEST(TablePrinter, RejectsWideRows) {
  TablePrinter t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::pct(0.123, 1), "12.3%");
  EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

TEST(CsvWriter, WritesAndEscapes) {
  const std::string path = ::testing::TempDir() + "/resilience_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"plain", "with,comma", "with\"quote"});
    csv.write_row({"second"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "plain,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(line2, "second");
  std::remove(path.c_str());
}

TEST(CsvWriter, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace resilience::util
