// RuntimeOptions: the one place every RESILIENCE_* knob is resolved
// (src/util/options.cpp is the only translation unit allowed to read the
// process environment). These tests cover env resolution, defaults,
// malformed-value warnings, and the set_global/reset_global injection
// hooks the other suites use to run with known options.
#include "util/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace resilience::util {
namespace {

const char* const kAllVars[] = {
    "RESILIENCE_THREADS",        "RESILIENCE_TEAM_POOL",
    "RESILIENCE_SCHEDULER",      "RESILIENCE_SCHED_WORKERS",
    "RESILIENCE_FIBER_STACK_KB", "RESILIENCE_FAST_REAL",
    "RESILIENCE_CHECKPOINT",     "RESILIENCE_CHECKPOINT_BUDGET",
    "RESILIENCE_TRACE",          "RESILIENCE_METRICS",
};

/// Clears every knob before and after each test so the suite is immune
/// to the invoking shell's environment.
class RuntimeOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override {
    clear();
    RuntimeOptions::reset_global();
  }
  static void clear() {
    for (const char* var : kAllVars) ::unsetenv(var);
  }
};

TEST_F(RuntimeOptionsTest, DefaultsWhenNothingSet) {
  const RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_EQ(opts.threads, 0);
  EXPECT_TRUE(opts.team_pool);
  EXPECT_TRUE(opts.scheduler_fibers);
  EXPECT_EQ(opts.sched_workers, 0);
  EXPECT_EQ(opts.fiber_stack_kb, 256u);
  EXPECT_TRUE(opts.fast_real);
  EXPECT_TRUE(opts.checkpoint);
  EXPECT_EQ(opts.checkpoint_budget, 8u);
  EXPECT_TRUE(opts.trace_path.empty());
  EXPECT_TRUE(opts.metrics_path.empty());
}

TEST_F(RuntimeOptionsTest, ResolvesEveryVariable) {
  ::setenv("RESILIENCE_THREADS", "6", 1);
  ::setenv("RESILIENCE_TEAM_POOL", "0", 1);
  ::setenv("RESILIENCE_SCHEDULER", "threads", 1);
  ::setenv("RESILIENCE_SCHED_WORKERS", "4", 1);
  ::setenv("RESILIENCE_FIBER_STACK_KB", "512", 1);
  ::setenv("RESILIENCE_FAST_REAL", "0", 1);
  ::setenv("RESILIENCE_CHECKPOINT", "0", 1);
  ::setenv("RESILIENCE_CHECKPOINT_BUDGET", "3", 1);
  ::setenv("RESILIENCE_TRACE", "trace.jsonl", 1);
  ::setenv("RESILIENCE_METRICS", "metrics.json", 1);
  const RuntimeOptions opts = RuntimeOptions::from_env();
  EXPECT_EQ(opts.threads, 6);
  EXPECT_FALSE(opts.team_pool);
  EXPECT_FALSE(opts.scheduler_fibers);
  EXPECT_EQ(opts.sched_workers, 4);
  EXPECT_EQ(opts.fiber_stack_kb, 512u);
  EXPECT_FALSE(opts.fast_real);
  EXPECT_FALSE(opts.checkpoint);
  EXPECT_EQ(opts.checkpoint_budget, 3u);
  EXPECT_EQ(opts.trace_path, "trace.jsonl");
  EXPECT_EQ(opts.metrics_path, "metrics.json");
}

TEST_F(RuntimeOptionsTest, WarnsAndFallsBackOnMalformedValues) {
  ::setenv("RESILIENCE_THREADS", "many", 1);
  ::setenv("RESILIENCE_TEAM_POOL", "yes", 1);
  ::setenv("RESILIENCE_SCHEDULER", "coroutines", 1);
  ::setenv("RESILIENCE_CHECKPOINT_BUDGET", "lots", 1);
  ::testing::internal::CaptureStderr();
  const RuntimeOptions opts = RuntimeOptions::from_env();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(opts.threads, 0);
  EXPECT_TRUE(opts.team_pool);
  EXPECT_TRUE(opts.scheduler_fibers);  // unrecognised mode keeps default
  EXPECT_EQ(opts.checkpoint_budget, 8u);
  EXPECT_NE(err.find("warning"), std::string::npos);
  EXPECT_NE(err.find("RESILIENCE_THREADS"), std::string::npos);
  EXPECT_NE(err.find("RESILIENCE_TEAM_POOL"), std::string::npos);
  EXPECT_NE(err.find("RESILIENCE_SCHEDULER"), std::string::npos);
  EXPECT_NE(err.find("RESILIENCE_CHECKPOINT_BUDGET"), std::string::npos);
}

TEST_F(RuntimeOptionsTest, BelowMinimumValuesClamp) {
  ::setenv("RESILIENCE_THREADS", "-4", 1);
  ::setenv("RESILIENCE_CHECKPOINT_BUDGET", "0", 1);
  ::setenv("RESILIENCE_FIBER_STACK_KB", "4", 1);
  ::testing::internal::CaptureStderr();
  const RuntimeOptions opts = RuntimeOptions::from_env();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(opts.threads, 0);            // clamped to the 0 = auto floor
  EXPECT_EQ(opts.checkpoint_budget, 1u); // at least one snapshot
  EXPECT_EQ(opts.fiber_stack_kb, 16u);   // floor keeps fibers viable
  EXPECT_NE(err.find("below the minimum"), std::string::npos);
}

TEST_F(RuntimeOptionsTest, GlobalInjectionForTests) {
  RuntimeOptions opts;
  opts.threads = 3;
  opts.checkpoint_budget = 2;
  RuntimeOptions::set_global(opts);
  EXPECT_EQ(RuntimeOptions::global().threads, 3);
  EXPECT_EQ(RuntimeOptions::global().checkpoint_budget, 2u);

  // reset_global() re-resolves from the (cleared) environment.
  RuntimeOptions::reset_global();
  EXPECT_EQ(RuntimeOptions::global().threads, 0);
  EXPECT_EQ(RuntimeOptions::global().checkpoint_budget, 8u);
}

TEST_F(RuntimeOptionsTest, GlobalPicksUpEnvironmentOnReset) {
  ::setenv("RESILIENCE_TRACE", "/tmp/t.json", 1);
  RuntimeOptions::reset_global();
  EXPECT_EQ(RuntimeOptions::global().trace_path, "/tmp/t.json");
}

}  // namespace
}  // namespace resilience::util
