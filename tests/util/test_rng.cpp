#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace resilience::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(DeriveSeed, DistinctStreamsGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) seeds.insert(derive_seed(7, s));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, ChildDiffersFromParent) {
  EXPECT_NE(derive_seed(12345, 0), 12345u);
}

TEST(DeriveSeed, TwoLevelSubstreamsAreDistinct) {
  // (outer, inner) substream pairs must neither collide with each other
  // nor with the single-level streams adaptive campaigns share a parent
  // seed with.
  std::set<std::uint64_t> seeds;
  std::size_t total = 0;
  for (std::uint64_t outer = 0; outer < 32; ++outer) {
    for (std::uint64_t inner = 0; inner < 32; ++inner) {
      seeds.insert(derive_seed(7, outer, inner));
      ++total;
    }
  }
  for (std::uint64_t s = 0; s < 1024; ++s) {
    seeds.insert(derive_seed(7, s));
    ++total;
  }
  EXPECT_EQ(seeds.size(), total);
  // Two-level derivation composes the single-level one.
  EXPECT_EQ(derive_seed(7, 3, 5), derive_seed(derive_seed(7, 3), 5));
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_below(bound), bound);
  }
}

TEST(Xoshiro256, UniformBelowZeroThrows) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.uniform_below(0), std::invalid_argument);
}

TEST(Xoshiro256, UniformBelowOneIsAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Xoshiro256, UniformIntCoversInclusiveRange) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 2000 draws
}

TEST(Xoshiro256, UniformIntBadRangeThrows) {
  Xoshiro256 rng(11);
  EXPECT_THROW(rng.uniform_int(1, 0), std::invalid_argument);
}

TEST(Xoshiro256, Uniform01InHalfOpenUnitInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanIsAboutHalf) {
  Xoshiro256 rng(17);
  double acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / kN, 0.5, 0.02);
}

TEST(Xoshiro256, SampleDistinctHasNoDuplicates) {
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.sample_distinct(100, 10);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), sample.size());
    for (auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Xoshiro256, SampleDistinctFullRangeIsPermutationOfAll) {
  Xoshiro256 rng(29);
  auto sample = rng.sample_distinct(16, 16);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Xoshiro256, SampleDistinctKGreaterThanNThrows) {
  Xoshiro256 rng(31);
  EXPECT_THROW(rng.sample_distinct(3, 4), std::invalid_argument);
}

TEST(Xoshiro256, SampleDistinctZeroKIsEmpty) {
  Xoshiro256 rng(37);
  EXPECT_TRUE(rng.sample_distinct(10, 0).empty());
}

/// Property sweep: Floyd sampling is uniform enough that every element of
/// a small universe appears with roughly equal frequency.
class SampleDistinctUniformity : public ::testing::TestWithParam<int> {};

TEST_P(SampleDistinctUniformity, AllElementsRoughlyEquallyLikely) {
  const int k = GetParam();
  constexpr int kUniverse = 10;
  constexpr int kTrials = 5000;
  std::array<int, kUniverse> counts{};
  Xoshiro256 rng(1234 + static_cast<std::uint64_t>(k));
  for (int t = 0; t < kTrials; ++t) {
    for (auto v : rng.sample_distinct(kUniverse, static_cast<std::uint64_t>(k))) {
      counts[static_cast<std::size_t>(v)] += 1;
    }
  }
  const double expected = static_cast<double>(kTrials) * k / kUniverse;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, SampleDistinctUniformity,
                         ::testing::Values(1, 2, 5, 9));

}  // namespace
}  // namespace resilience::util
