// Binary I/O substrate (DESIGN.md §15): CRC32, bounds-checked reader,
// writer round trips, patching, and the mmap loader.
#include "util/binio.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace resilience {
namespace {

std::vector<std::byte> as_bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(Crc32, MatchesIeeeReferenceVectors) {
  // Standard check values for the IEEE 802.3 polynomial.
  EXPECT_EQ(util::crc32({}), 0u);
  EXPECT_EQ(util::crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(util::crc32(as_bytes("a")), 0xE8B7BE43u);
}

TEST(Crc32, SeedChainsIncrementalComputation) {
  const auto whole = as_bytes("hello, world");
  const auto head = as_bytes("hello, ");
  const auto tail = as_bytes("world");
  EXPECT_EQ(util::crc32(whole), util::crc32(tail, util::crc32(head)));
}

TEST(Crc32, DetectsSingleBitFlip) {
  auto data = as_bytes("the quick brown fox");
  const std::uint32_t before = util::crc32(data);
  data[7] ^= std::byte{0x10};
  EXPECT_NE(util::crc32(data), before);
}

TEST(BinWriter, ScalarAndArrayRoundTrip) {
  util::BinWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.141592653589793);
  w.str("golden");
  const std::uint64_t u64s[] = {1, 2, 3};
  w.u64_array(u64s);
  const double f64s[] = {-1.5, 0.0, 2.25};
  w.f64_array(f64s);

  util::BinReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "golden");
  std::uint64_t u_out[3] = {};
  r.u64_array(u_out);
  EXPECT_EQ(u_out[2], 3u);
  double f_out[3] = {};
  r.f64_array(f_out);
  EXPECT_EQ(f_out[0], -1.5);
  EXPECT_EQ(f_out[2], 2.25);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinWriter, ScalarsAreLittleEndianOnTheWire) {
  util::BinWriter w;
  w.u32(0x01020304u);
  const auto buf = w.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], std::byte{0x04});
  EXPECT_EQ(buf[3], std::byte{0x01});
}

TEST(BinWriter, PatchRewritesPlaceholders) {
  util::BinWriter w;
  const std::size_t at32 = w.size();
  w.u32(0);
  const std::size_t at64 = w.size();
  w.u64(0);
  w.str("tail");
  w.patch_u32(at32, 7u);
  w.patch_u64(at64, 99u);
  util::BinReader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 99u);
  EXPECT_EQ(r.str(), "tail");
}

TEST(BinReader, ThrowsPastTheEnd) {
  util::BinWriter w;
  w.u32(5);
  util::BinReader r(w.buffer());
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), util::BinError);
  util::BinReader r2(w.buffer());
  EXPECT_THROW((void)r2.u64(), util::BinError);
  util::BinReader r3(w.buffer());
  EXPECT_THROW((void)r3.bytes(5), util::BinError);
}

TEST(BinReader, StrRejectsLengthBeyondBuffer) {
  util::BinWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  util::BinReader r(w.buffer());
  EXPECT_THROW((void)r.str(), util::BinError);
}

TEST(BinReader, BytesBorrowsFromTheUnderlyingBuffer) {
  util::BinWriter w;
  w.str("abcdef");
  const auto buf = w.buffer();
  util::BinReader r(buf);
  (void)r.u32();
  const auto span = r.bytes(6);
  EXPECT_EQ(span.data(), buf.data() + 4);  // a view, not a copy
}

TEST(MappedFile, MapsWrittenBytesAndOutlivesTheUnlink) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("binio_map_" + std::to_string(::getpid()) + ".bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "mapped-bytes";
  }
  const auto map = util::MappedFile::open(path.string());
  ASSERT_NE(map, nullptr);
  std::filesystem::remove(path);  // the mapping keeps the inode alive
  const auto bytes = map->bytes();
  ASSERT_EQ(bytes.size(), 12u);
  EXPECT_EQ(std::memcmp(bytes.data(), "mapped-bytes", 12), 0);
}

TEST(MappedFile, MissingFileReturnsNull) {
  EXPECT_EQ(util::MappedFile::open("/nonexistent/binio/nope.bin"), nullptr);
}

TEST(MappedFile, EmptyFileMapsToEmptySpan) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("binio_empty_" + std::to_string(::getpid()) + ".bin");
  { std::ofstream out(path, std::ios::binary); }
  const auto map = util::MappedFile::open(path.string());
  ASSERT_NE(map, nullptr);
  EXPECT_TRUE(map->bytes().empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace resilience
