#include "util/json.hpp"

#include <gtest/gtest.h>

namespace resilience::util {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("123").as_int(), 123);
  EXPECT_TRUE(Json::parse("123").is_int());
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e3").as_double(), -2500.0);
  EXPECT_TRUE(Json::parse("1.0").is_double());
  EXPECT_EQ(Json::parse("\"abc\"").as_string(), "abc");
}

TEST(Json, IntAndDoubleInterconvert) {
  EXPECT_DOUBLE_EQ(Json(7).as_double(), 7.0);
  EXPECT_EQ(Json(7.9).as_int(), 7);
}

TEST(Json, ObjectsAndArrays) {
  JsonObject obj;
  obj["list"] = Json(JsonArray{Json(1), Json(2), Json(3)});
  obj["name"] = Json("x");
  const Json value(std::move(obj));
  const std::string compact = value.dump();
  EXPECT_EQ(compact, R"({"list":[1,2,3],"name":"x"})");
  const Json parsed = Json::parse(compact);
  EXPECT_EQ(parsed.at("name").as_string(), "x");
  EXPECT_EQ(parsed.at("list").as_array().size(), 3u);
  EXPECT_EQ(parsed.at("list").as_array()[2].as_int(), 3);
}

TEST(Json, PrettyPrintParsesBack) {
  JsonObject obj;
  obj["a"] = Json(JsonArray{Json(true), Json(nullptr)});
  obj["b"] = Json(JsonObject{{"nested", Json(1)}});
  const Json value(std::move(obj));
  const std::string pretty = value.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const Json parsed = Json::parse(pretty);
  EXPECT_EQ(parsed.at("b").at("nested").as_int(), 1);
  EXPECT_TRUE(parsed.at("a").as_array()[1].is_null());
}

TEST(Json, StringEscapes) {
  const std::string nasty = "quote\" slash\\ newline\n tab\t";
  const std::string dumped = Json(nasty).dump();
  EXPECT_EQ(Json::parse(dumped).as_string(), nasty);
}

TEST(Json, UnicodeEscapeDecodes) {
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // e-acute
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // euro
}

TEST(Json, ControlCharactersEscapedOnDump) {
  const std::string with_control = std::string("a") + '\x01' + "b";
  EXPECT_EQ(Json(with_control).dump(), "\"a\\u0001b\"");
  EXPECT_EQ(Json::parse(Json(with_control).dump()).as_string(), with_control);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json(JsonArray{}).dump(), "[]");
  EXPECT_EQ(Json(JsonObject{}).dump(), "{}");
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
  EXPECT_TRUE(Json::parse(" [ ] ").as_array().empty());
}

TEST(Json, WhitespaceTolerated) {
  const Json parsed = Json::parse("  {\n \"k\" :\t[ 1 , 2 ]\n} ");
  EXPECT_EQ(parsed.at("k").as_array()[1].as_int(), 2);
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,"), JsonError);
  EXPECT_THROW(Json::parse("[1] junk"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("truish"), JsonError);
  EXPECT_THROW(Json::parse("{1: 2}"), JsonError);
  EXPECT_THROW(Json::parse("-"), JsonError);
  EXPECT_THROW(Json::parse("\"\\u12g4\""), JsonError);
}

TEST(Json, TypeMismatchesThrow) {
  const Json number(5);
  EXPECT_THROW((void)number.as_string(), JsonError);
  EXPECT_THROW((void)number.as_array(), JsonError);
  EXPECT_THROW((void)number.at("key"), JsonError);
  const Json obj = Json::parse("{\"a\": 1}");
  EXPECT_THROW((void)obj.at("missing"), JsonError);
}

TEST(Json, LargeIntegersSurviveExactly) {
  const std::int64_t big = 9007199254740993;  // not representable in double
  EXPECT_EQ(Json::parse(Json(big).dump()).as_int(), big);
}

TEST(Json, DoublePrecisionSurvives) {
  const double precise = 0.1234567890123456789;
  const Json parsed = Json::parse(Json(precise).dump());
  EXPECT_DOUBLE_EQ(parsed.as_double(), precise);
}

}  // namespace
}  // namespace resilience::util
