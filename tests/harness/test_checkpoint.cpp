// Unit tests of the golden-checkpoint layer (DESIGN.md §9): state
// digest/serialize/restore round trips, checkpoint-store lookup and
// resume selection, capture budget thinning, and FaultContext counter
// fast-forward parity (including the hang-budget throw at a restored
// boundary) on both the countdown fast path and the reference path.
#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "apps/app.hpp"
#include "harness/checkpoint.hpp"
#include "harness/runner.hpp"

namespace resilience {
namespace {

using apps::StateView;
using fsefi::Real;

struct FastRealRestore {
  ~FastRealRestore() { fsefi::set_fast_real_enabled(true); }
};

TEST(CheckpointState, SerializeRestoreRoundTrip) {
  std::vector<Real> xs = {Real(1.5), Real(-2.0), Real(1e-300)};
  double t = 3.25;
  const auto views = std::array<StateView, 2>{StateView::reals(xs),
                                              StateView::scalar(t)};
  const auto digest0 = harness::digest_views(views);
  const auto bytes = harness::serialize_views(views);
  EXPECT_EQ(bytes.size(), xs.size() * sizeof(Real) + sizeof(double));

  xs[1] = Real(7.0);
  t = 0.0;
  EXPECT_NE(harness::digest_views(views), digest0);

  harness::restore_views(bytes, views);
  EXPECT_EQ(harness::digest_views(views), digest0);
  EXPECT_EQ(xs[1].value(), -2.0);
  EXPECT_EQ(t, 3.25);
}

TEST(CheckpointState, DigestDistinguishesOrderAndSign) {
  std::vector<Real> a = {Real(1.0), Real(2.0)};
  std::vector<Real> b = {Real(2.0), Real(1.0)};
  const auto va = std::array<StateView, 1>{StateView::reals(a)};
  const auto vb = std::array<StateView, 1>{StateView::reals(b)};
  EXPECT_NE(harness::digest_views(va), harness::digest_views(vb));

  // +0 vs -0 differ bitwise, exactly as the memory-diff taint model does.
  std::vector<Real> z1 = {Real(0.0)};
  std::vector<Real> z2 = {Real(-0.0)};
  const auto vz1 = std::array<StateView, 1>{StateView::reals(z1)};
  const auto vz2 = std::array<StateView, 1>{StateView::reals(z2)};
  EXPECT_NE(harness::digest_views(vz1), harness::digest_views(vz2));
}

TEST(CheckpointState, TaintScanAndShadowPreservingRestore) {
  std::vector<Real> xs = {Real(1.0), Real(2.0)};
  const auto views = std::array<StateView, 1>{StateView::reals(xs)};
  EXPECT_FALSE(harness::views_tainted(views));

  xs[0] = Real::corrupted(5.0, 1.0);
  EXPECT_TRUE(harness::views_tainted(views));

  // A snapshot keeps primaries *and* shadows, so restoring a tainted
  // snapshot reproduces the divergence exactly.
  const auto bytes = harness::serialize_views(views);
  xs[0] = Real(1.0);
  EXPECT_FALSE(harness::views_tainted(views));
  harness::restore_views(bytes, views);
  EXPECT_TRUE(harness::views_tainted(views));
  EXPECT_EQ(xs[0].value(), 5.0);
  EXPECT_EQ(xs[0].shadow(), 1.0);
}

TEST(CheckpointState, RestoreRejectsShapeMismatch) {
  std::vector<Real> xs = {Real(1.0), Real(2.0)};
  const auto views = std::array<StateView, 1>{StateView::reals(xs)};
  const auto bytes = harness::serialize_views(views);
  std::vector<Real> smaller = {Real(1.0)};
  const auto mismatched = std::array<StateView, 1>{StateView::reals(smaller)};
  EXPECT_THROW(harness::restore_views(bytes, mismatched), std::runtime_error);
}

harness::CheckpointData three_boundary_store() {
  // Boundaries after iterations 0, 1, 2; filtered (AddMul/All) counts 10,
  // 20, 30; full state stored at resume iters 1 and 3 only.
  harness::CheckpointData data;
  data.nranks = 1;
  for (int i = 0; i < 3; ++i) {
    harness::BoundaryRecord rec;
    rec.iter = i + 1;
    fsefi::OpCountProfile prof;
    prof.counts[0][0] = static_cast<std::uint64_t>(10 * (i + 1));
    rec.profiles = {prof};
    rec.digests = {0x1234u + static_cast<std::uint64_t>(i)};
    if (i != 1) {
      rec.state = {harness::StateBytes(std::vector<std::byte>{std::byte{0}})};
    }
    data.boundaries.push_back(std::move(rec));
  }
  return data;
}

TEST(CheckpointStore, FindByResumeIteration) {
  const auto data = three_boundary_store();
  ASSERT_NE(data.find(2), nullptr);
  EXPECT_EQ(data.find(2)->iter, 2);
  EXPECT_EQ(data.find(0), nullptr);
  EXPECT_EQ(data.find(4), nullptr);
}

TEST(CheckpointStore, SelectResumePicksLatestStoredEligibleBoundary) {
  const auto data = three_boundary_store();
  std::vector<fsefi::InjectionPlan> plans(1);

  // Injection at filtered index 25: boundary 3 (30 filtered ops) is past
  // it, boundary 2 (20) is eligible but unstored, so boundary 1 wins.
  plans[0].points = {{.op_index = 25, .operand = 0, .bit = 1}};
  const auto* rec = harness::select_resume(data, plans);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->iter, 1);

  // Injection at 35: every boundary is in the fault-free prefix.
  plans[0].points[0].op_index = 35;
  rec = harness::select_resume(data, plans);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->iter, 3);

  // Injection at 5: it fires before the first boundary completes.
  plans[0].points[0].op_index = 5;
  EXPECT_EQ(harness::select_resume(data, plans), nullptr);

  // A boundary is eligible only if *every* armed rank clears it.
  harness::CheckpointData two = three_boundary_store();
  two.nranks = 2;
  for (auto& b : two.boundaries) {
    b.profiles.push_back(b.profiles[0]);
    b.digests.push_back(b.digests[0]);
    if (b.stored()) b.state.push_back(b.state[0]);
  }
  std::vector<fsefi::InjectionPlan> two_plans(2);
  two_plans[0].points = {{.op_index = 35, .operand = 0, .bit = 1}};
  two_plans[1].points = {{.op_index = 12, .operand = 0, .bit = 1}};
  rec = harness::select_resume(two, two_plans);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->iter, 1);
}

TEST(CheckpointCaptureTest, BudgetThinningKeepsStridedSubset) {
  const auto app = apps::make_app(apps::AppId::CG);
  harness::CheckpointCapture cap;
  cap.budget = 2;
  harness::RunOptions opts;
  opts.capture = &cap;
  const std::vector<fsefi::InjectionPlan> plans(2);
  const auto out = harness::run_app_once(*app, 2, plans, opts);
  ASSERT_TRUE(out.runtime.ok);

  const auto data = harness::assemble_checkpoints(std::move(cap));
  ASSERT_NE(data, nullptr);
  ASSERT_FALSE(data->boundaries.empty());

  // Every boundary keeps profiles + digests; at most `budget` keep state,
  // and the kept resume iterations are multiples of one power-of-two
  // stride (the deterministic thinning rule).
  std::size_t stored = 0;
  int min_stored_iter = 0;
  for (std::size_t i = 0; i < data->boundaries.size(); ++i) {
    const auto& rec = data->boundaries[i];
    EXPECT_EQ(rec.iter, static_cast<int>(i) + 1);
    EXPECT_EQ(rec.profiles.size(), 2u);
    EXPECT_EQ(rec.digests.size(), 2u);
    if (rec.stored()) {
      ++stored;
      if (min_stored_iter == 0 || rec.iter < min_stored_iter) {
        min_stored_iter = rec.iter;
      }
    }
  }
  EXPECT_GE(stored, 1u);
  EXPECT_LE(stored, cap.budget);
  for (const auto& rec : data->boundaries) {
    if (rec.stored()) {
      EXPECT_EQ(rec.iter % min_stored_iter, 0);
    }
  }

  // Profiles are the golden run's absolute counts: strictly increasing.
  for (std::size_t i = 1; i < data->boundaries.size(); ++i) {
    EXPECT_GT(data->boundaries[i].profiles[0].total(),
              data->boundaries[i - 1].profiles[0].total());
  }
}

TEST(CheckpointCaptureTest, AssembleRejectsDisagreeingRanks) {
  harness::CheckpointCapture cap;
  cap.ranks.resize(2);
  cap.ranks[0].push_back({.iter = 1, .profile = {}, .state = {}});
  cap.ranks[1].push_back({.iter = 2, .profile = {}, .state = {}});
  EXPECT_THROW(harness::assemble_checkpoints(std::move(cap)),
               std::runtime_error);
}

/// 2 instrumented ops (Mul + Add) per call, identical on every run.
Real advance(Real a) { return a * Real(1.0000001) + Real(0.5); }

TEST(FaultContextFastForward, CountersInjectionsAndBudgetMatchFullRun) {
  FastRealRestore restore;
  for (const bool fast : {true, false}) {
    fsefi::set_fast_real_enabled(fast);

    fsefi::InjectionPlan plan;
    plan.kinds = fsefi::KindMask::All;
    plan.points = {{.op_index = 150, .operand = 0, .bit = 40}};

    // Golden pass: unarmed, snapshot state + profile at the boundary
    // after 50 calls (100 ops).
    fsefi::FaultContext golden;
    golden.reset();
    Real g(1.0);
    {
      fsefi::ContextGuard guard(&golden);
      for (int i = 0; i < 50; ++i) g = advance(g);
    }
    const Real snapshot = g;
    const fsefi::OpCountProfile at_boundary = golden.profile();
    EXPECT_EQ(at_boundary.total(), 100u);

    // Full armed run: 100 calls (200 ops), injection fires at op 150.
    fsefi::FaultContext full;
    full.arm(plan);
    Real a(1.0);
    {
      fsefi::ContextGuard guard(&full);
      for (int i = 0; i < 100; ++i) a = advance(a);
    }
    ASSERT_EQ(full.injections_done(), 1u);

    // Fast-forwarded run: restore the snapshot, jump the counters, run
    // only the remaining 50 calls.
    fsefi::FaultContext ff;
    ff.arm(plan);
    ff.fast_forward(at_boundary);
    Real b = snapshot;
    {
      fsefi::ContextGuard guard(&ff);
      for (int i = 0; i < 50; ++i) b = advance(b);
    }

    EXPECT_EQ(ff.ops_total(), full.ops_total()) << "fast=" << fast;
    EXPECT_EQ(ff.filtered_ops(), full.filtered_ops()) << "fast=" << fast;
    EXPECT_EQ(ff.profile(), full.profile()) << "fast=" << fast;
    ASSERT_EQ(ff.injections_done(), 1u) << "fast=" << fast;
    EXPECT_EQ(ff.injection_events(), full.injection_events())
        << "fast=" << fast;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(b.value()),
              std::bit_cast<std::uint64_t>(a.value()))
        << "fast=" << fast;

    // Hang-budget parity: with a budget between the restored boundary and
    // the end, both runs throw at the same absolute op count.
    auto run_budget = [&](bool forwarded) {
      fsefi::FaultContext ctx;
      ctx.arm(plan);
      if (forwarded) ctx.fast_forward(at_boundary);
      ctx.set_op_budget(160);
      Real v = forwarded ? snapshot : Real(1.0);
      std::uint64_t at_throw = 0;
      fsefi::ContextGuard guard(&ctx);
      try {
        for (int i = 0; i < 100; ++i) v = advance(v);
        ADD_FAILURE() << "budget did not throw (fast=" << fast << ")";
      } catch (const fsefi::HangBudgetExceeded&) {
        at_throw = ctx.ops_total();
      }
      return at_throw;
    };
    EXPECT_EQ(run_budget(true), run_budget(false)) << "fast=" << fast;
  }
}

}  // namespace
}  // namespace resilience
