#include "harness/runner.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "apps/pennant.hpp"

namespace resilience::harness {
namespace {

TEST(Runner, ProfileCountsAreStable) {
  const auto app = apps::make_app(apps::AppId::LU);
  const auto a = profile_app(*app, 4);
  const auto b = profile_app(*app, 4);
  ASSERT_EQ(a.profiles.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a.profiles[r].total(), b.profiles[r].total());
    EXPECT_GT(a.profiles[r].total(), 0u);
  }
  EXPECT_EQ(a.max_rank_ops, b.max_rank_ops);
}

TEST(Runner, PlansMustMatchRankCount) {
  const auto app = apps::make_app(apps::AppId::LU);
  std::vector<fsefi::InjectionPlan> plans(3);  // wrong: job has 4 ranks
  EXPECT_THROW(run_app_once(*app, 4, plans), simmpi::UsageError);
}

TEST(Runner, ArmedPlanInjectsAndContaminatesTarget) {
  const auto app = apps::make_app(apps::AppId::LU);
  std::vector<fsefi::InjectionPlan> plans(4);
  plans[2].points = {{.op_index = 100, .operand = 0, .bit = 62}};  // exponent
  const auto out = run_app_once(*app, 4, plans);
  EXPECT_TRUE(out.contaminated[2]);
  EXPECT_GE(out.contaminated_ranks(), 1);
}

TEST(Runner, ExponentFlipEarlyUsuallyChangesOutput) {
  const auto app = apps::make_app(apps::AppId::CG);
  const auto golden = profile_app(*app, 1);
  std::vector<fsefi::InjectionPlan> plans(1);
  plans[0].points = {{.op_index = 10, .operand = 0, .bit = 62}};
  const auto out = run_app_once(*app, 1, plans);
  if (out.runtime.ok) {
    EXPECT_NE(out.result->signature, golden.signature);
  }
}

TEST(Runner, LowBitFlipLateOftenLeavesOutputIdentical) {
  const auto app = apps::make_app(apps::AppId::CG);
  const auto golden = profile_app(*app, 1);
  // Flip bit 0 of an operand in the last 1% of the run: almost always
  // rounded away before it can reach the signature.
  std::vector<fsefi::InjectionPlan> plans(1);
  const auto target = golden.profiles[0].matching(fsefi::KindMask::AddMul,
                                                  fsefi::RegionMask::All) -
                      5;
  plans[0].points = {{.op_index = target, .operand = 1, .bit = 0}};
  const auto out = run_app_once(*app, 1, plans);
  ASSERT_TRUE(out.runtime.ok);
  // The run itself must have performed the injection.
  EXPECT_TRUE(out.contaminated[0]);
}

TEST(Runner, OpBudgetTurnsRunawayIntoHang) {
  const auto app = apps::make_app(apps::AppId::LU);
  RunOptions opts;
  opts.op_budget = 100;  // far below the real op count
  const auto out = run_app_once(*app, 1, {}, opts);
  EXPECT_FALSE(out.runtime.ok);
  EXPECT_TRUE(out.hang);
}

TEST(Runner, GoldenRunFailureThrows) {
  const auto app = apps::make_app(apps::AppId::PENNANT);
  // PENNANT with an impossible step budget cannot produce a golden run.
  apps::PennantApp::Config cfg =
      apps::PennantApp::config_for_class("leblanc");
  cfg.max_steps = 1;
  const apps::PennantApp broken(cfg, "leblanc");
  EXPECT_THROW(profile_app(broken, 1), std::runtime_error);
}

TEST(Runner, SerialProfileHasOneRank) {
  const auto app = apps::make_app(apps::AppId::MG);
  const auto golden = profile_app(*app, 1);
  EXPECT_EQ(golden.profiles.size(), 1u);
  EXPECT_EQ(golden.profiles[0].total(), golden.max_rank_ops);
  EXPECT_EQ(golden.unique_fraction(), 0.0);
}

TEST(Runner, MatchingTotalHonorsFilters) {
  const auto app = apps::make_app(apps::AppId::FT);
  const auto golden = profile_app(*app, 4);
  const auto all = golden.matching_total(fsefi::KindMask::All,
                                         fsefi::RegionMask::All);
  const auto addmul = golden.matching_total(fsefi::KindMask::AddMul,
                                            fsefi::RegionMask::All);
  const auto unique_only = golden.matching_total(
      fsefi::KindMask::All, fsefi::RegionMask::ParallelUnique);
  EXPECT_GT(all, addmul);   // FT has divisions (none? it has sqrt... adds/muls dominate)
  EXPECT_GT(unique_only, 0u);
  EXPECT_LT(unique_only, all);
}

}  // namespace
}  // namespace resilience::harness
