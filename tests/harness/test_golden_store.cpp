// Golden-run serialization + the on-disk GoldenStore: full-fidelity
// round trips (profiles, signature, checkpoints with base64 rank state),
// byte-stable re-serialization, and the store's miss/fill/hit and
// corruption-recovery behavior.
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/campaign.hpp"
#include "harness/checkpoint.hpp"
#include "harness/golden_cache.hpp"
#include "harness/golden_store.hpp"
#include "harness/runner.hpp"
#include "harness/serialize.hpp"
#include "telemetry/telemetry.hpp"
#include "util/encoding.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace resilience;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("resilience-test-" + tag + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

harness::GoldenRun profile_cg(int nranks) {
  const auto app = apps::make_app(apps::AppId::CG);
  return harness::profile_app(*app, nranks);
}

TEST(GoldenJson, RoundTripPreservesEverything) {
  const harness::GoldenRun golden = profile_cg(2);
  ASSERT_NE(golden.checkpoints, nullptr);  // CG has boundary hooks

  const util::Json json = harness::golden_to_json(golden);
  const harness::GoldenRun back =
      harness::golden_from_json(util::Json::parse(json.dump()));

  EXPECT_EQ(back.signature, golden.signature);  // bit-exact doubles
  EXPECT_EQ(back.max_rank_ops, golden.max_rank_ops);
  ASSERT_EQ(back.profiles.size(), golden.profiles.size());
  for (std::size_t r = 0; r < golden.profiles.size(); ++r) {
    EXPECT_EQ(back.profiles[r], golden.profiles[r]) << r;
  }

  ASSERT_NE(back.checkpoints, nullptr);
  const auto& a = *golden.checkpoints;
  const auto& b = *back.checkpoints;
  EXPECT_EQ(b.nranks, a.nranks);
  EXPECT_EQ(b.iterations, a.iterations);
  EXPECT_EQ(b.signature, a.signature);
  ASSERT_EQ(b.boundaries.size(), a.boundaries.size());
  for (std::size_t i = 0; i < a.boundaries.size(); ++i) {
    EXPECT_EQ(b.boundaries[i].iter, a.boundaries[i].iter);
    EXPECT_EQ(b.boundaries[i].profiles, a.boundaries[i].profiles);
    EXPECT_EQ(b.boundaries[i].digests, a.boundaries[i].digests);
    ASSERT_EQ(b.boundaries[i].state.size(), a.boundaries[i].state.size());
    for (std::size_t r = 0; r < a.boundaries[i].state.size(); ++r) {
      EXPECT_EQ(b.boundaries[i].state[r], a.boundaries[i].state[r]);
    }
  }
}

// serialize -> parse -> serialize must be byte-stable: the shard workers'
// store loads and the coordinator's fill must agree on one canonical
// form, and repeated store rewrites must not churn the file.
TEST(GoldenJson, ReserializationIsByteStable) {
  const harness::GoldenRun golden = profile_cg(2);
  const std::string once = harness::golden_to_json(golden).dump();
  const std::string twice =
      harness::golden_to_json(
          harness::golden_from_json(util::Json::parse(once)))
          .dump();
  EXPECT_EQ(once, twice);
}

TEST(CampaignJson, ReserializationIsByteStable) {
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig dep;
  dep.nranks = 2;
  dep.trials = 12;
  const auto campaign = harness::CampaignRunner::run(*app, dep);
  const std::string once = harness::to_json(campaign).dump();
  const std::string twice =
      harness::to_json(harness::campaign_from_json(util::Json::parse(once)))
          .dump();
  EXPECT_EQ(once, twice);
}

TEST(Base64, RandomBlobsRoundTrip) {
  util::Xoshiro256 rng(20180813);
  for (std::size_t len = 0; len < 70; ++len) {
    std::vector<std::byte> blob(len);
    for (auto& b : blob) b = static_cast<std::byte>(rng.next() & 0xff);
    const std::string text = util::base64_encode(blob);
    EXPECT_EQ(text.size() % 4, 0u) << len;
    EXPECT_EQ(util::base64_decode(text), blob) << len;
  }
}

TEST(Base64, RejectsMalformedInput) {
  EXPECT_THROW((void)util::base64_decode("abc"), std::invalid_argument);
  EXPECT_THROW((void)util::base64_decode("ab=c"), std::invalid_argument);
  EXPECT_THROW((void)util::base64_decode("a#bc"), std::invalid_argument);
  EXPECT_EQ(util::base64_decode("").size(), 0u);
}

TEST(GoldenStore, MissFillHit) {
  const std::string dir = fresh_dir("store");
  const auto app = apps::make_app(apps::AppId::CG);
  telemetry::MetricScope metrics;
  int profiles = 0;
  {
    telemetry::ScopeGuard guard(&metrics);
    harness::GoldenStore store(dir);
    EXPECT_EQ(store.load(*app, 2), nullptr);  // cold: miss
    const auto filled = store.load_or_fill(*app, 2, [&] {
      ++profiles;
      return profile_cg(2);
    });
    ASSERT_NE(filled, nullptr);
    const auto again = store.load_or_fill(*app, 2, [&] {
      ++profiles;
      return profile_cg(2);
    });
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->signature, filled->signature);
  }
  EXPECT_EQ(profiles, 1);  // second load_or_fill served from disk
  const auto snap = metrics.snapshot();
  EXPECT_GE(snap.value(telemetry::Counter::GoldenStoreMisses), 2u);
  EXPECT_GE(snap.value(telemetry::Counter::GoldenStoreHits), 1u);
  std::filesystem::remove_all(dir);
}

TEST(GoldenStore, CorruptFileIsUnlinkedAndRefilled) {
  const std::string dir = fresh_dir("corrupt");
  const auto app = apps::make_app(apps::AppId::CG);
  harness::GoldenStore store(dir);
  int profiles = 0;
  (void)store.load_or_fill(*app, 2, [&] {
    ++profiles;
    return profile_cg(2);
  });
  const std::string path = store.path_for(*app, 2);
  ASSERT_TRUE(std::filesystem::exists(path));

  {  // not JSON at all
    std::ofstream out(path, std::ios::trunc);
    out << "not json {{{";
  }
  EXPECT_EQ(store.load(*app, 2), nullptr);
  EXPECT_FALSE(std::filesystem::exists(path)) << "corrupt file not unlinked";

  (void)store.load_or_fill(*app, 2, [&] {
    ++profiles;
    return profile_cg(2);
  });
  EXPECT_EQ(profiles, 2);  // clean refill after the corruption
  ASSERT_TRUE(std::filesystem::exists(path));

  {  // valid JSON, truncated mid-document
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_EQ(store.load(*app, 2), nullptr);
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(GoldenStore, KeyedByAppAndScale) {
  const std::string dir = fresh_dir("keys");
  harness::GoldenStore store(dir);
  const auto cg = apps::make_app(apps::AppId::CG);
  const auto ft = apps::make_app(apps::AppId::FT);
  EXPECT_NE(store.path_for(*cg, 2), store.path_for(*cg, 4));
  EXPECT_NE(store.path_for(*cg, 2), store.path_for(*ft, 2));
  int profiles = 0;
  (void)store.load_or_fill(*cg, 2, [&] {
    ++profiles;
    return profile_cg(2);
  });
  // A different scale is a different key: no cross-talk.
  EXPECT_EQ(store.load(*cg, 4), nullptr);
  EXPECT_EQ(profiles, 1);
  std::filesystem::remove_all(dir);
}

// A golden run loaded from the store must drive a campaign to the exact
// result a freshly profiled one produces — checkpoint fast path included.
TEST(GoldenStore, LoadedGoldenReproducesCampaign) {
  const std::string dir = fresh_dir("repro");
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig dep;
  dep.nranks = 2;
  dep.trials = 16;

  auto baseline = harness::CampaignRunner::run(*app, dep);

  harness::GoldenStore store(dir);
  harness::GoldenCache cache(&store);
  harness::CampaignContext context;
  context.golden_cache = &cache;
  auto first = harness::CampaignRunner::run(*app, dep, context);

  harness::GoldenCache cache2(&store);  // fresh process-equivalent: disk hit
  harness::CampaignContext context2;
  context2.golden_cache = &cache2;
  auto second = harness::CampaignRunner::run(*app, dep, context2);

  baseline.wall_seconds = first.wall_seconds = second.wall_seconds = 0.0;
  EXPECT_EQ(harness::to_json(first).dump(), harness::to_json(baseline).dump());
  EXPECT_EQ(harness::to_json(second).dump(),
            harness::to_json(baseline).dump());
  EXPECT_EQ(second.metrics.value(telemetry::Counter::HarnessGoldenProfiles),
            0u);
  EXPECT_GE(second.metrics.value(telemetry::Counter::GoldenStoreHits), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
