// Golden-run serialization + the on-disk GoldenStore: full-fidelity
// round trips (profiles, signature, checkpoints with base64 rank state),
// byte-stable re-serialization, and the store's miss/fill/hit and
// corruption-recovery behavior.
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/campaign.hpp"
#include "harness/checkpoint.hpp"
#include "harness/golden_cache.hpp"
#include "harness/golden_store.hpp"
#include "harness/runner.hpp"
#include "harness/serialize.hpp"
#include "telemetry/telemetry.hpp"
#include "util/encoding.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace resilience;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("resilience-test-" + tag + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

harness::GoldenRun profile_cg(int nranks) {
  const auto app = apps::make_app(apps::AppId::CG);
  return harness::profile_app(*app, nranks);
}

TEST(GoldenJson, RoundTripPreservesEverything) {
  const harness::GoldenRun golden = profile_cg(2);
  ASSERT_NE(golden.checkpoints, nullptr);  // CG has boundary hooks

  const util::Json json = harness::golden_to_json(golden);
  const harness::GoldenRun back =
      harness::golden_from_json(util::Json::parse(json.dump()));

  EXPECT_EQ(back.signature, golden.signature);  // bit-exact doubles
  EXPECT_EQ(back.max_rank_ops, golden.max_rank_ops);
  ASSERT_EQ(back.profiles.size(), golden.profiles.size());
  for (std::size_t r = 0; r < golden.profiles.size(); ++r) {
    EXPECT_EQ(back.profiles[r], golden.profiles[r]) << r;
  }

  ASSERT_NE(back.checkpoints, nullptr);
  const auto& a = *golden.checkpoints;
  const auto& b = *back.checkpoints;
  EXPECT_EQ(b.nranks, a.nranks);
  EXPECT_EQ(b.iterations, a.iterations);
  EXPECT_EQ(b.signature, a.signature);
  ASSERT_EQ(b.boundaries.size(), a.boundaries.size());
  for (std::size_t i = 0; i < a.boundaries.size(); ++i) {
    EXPECT_EQ(b.boundaries[i].iter, a.boundaries[i].iter);
    EXPECT_EQ(b.boundaries[i].profiles, a.boundaries[i].profiles);
    EXPECT_EQ(b.boundaries[i].digests, a.boundaries[i].digests);
    ASSERT_EQ(b.boundaries[i].state.size(), a.boundaries[i].state.size());
    for (std::size_t r = 0; r < a.boundaries[i].state.size(); ++r) {
      EXPECT_EQ(b.boundaries[i].state[r], a.boundaries[i].state[r]);
    }
  }
}

// serialize -> parse -> serialize must be byte-stable: the shard workers'
// store loads and the coordinator's fill must agree on one canonical
// form, and repeated store rewrites must not churn the file.
TEST(GoldenJson, ReserializationIsByteStable) {
  const harness::GoldenRun golden = profile_cg(2);
  const std::string once = harness::golden_to_json(golden).dump();
  const std::string twice =
      harness::golden_to_json(
          harness::golden_from_json(util::Json::parse(once)))
          .dump();
  EXPECT_EQ(once, twice);
}

TEST(CampaignJson, ReserializationIsByteStable) {
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig dep;
  dep.nranks = 2;
  dep.trials = 12;
  const auto campaign = harness::CampaignRunner::run(*app, dep);
  const std::string once = harness::to_json(campaign).dump();
  const std::string twice =
      harness::to_json(harness::campaign_from_json(util::Json::parse(once)))
          .dump();
  EXPECT_EQ(once, twice);
}

TEST(Base64, RandomBlobsRoundTrip) {
  util::Xoshiro256 rng(20180813);
  for (std::size_t len = 0; len < 70; ++len) {
    std::vector<std::byte> blob(len);
    for (auto& b : blob) b = static_cast<std::byte>(rng.next() & 0xff);
    const std::string text = util::base64_encode(blob);
    EXPECT_EQ(text.size() % 4, 0u) << len;
    EXPECT_EQ(util::base64_decode(text), blob) << len;
  }
}

TEST(Base64, RejectsMalformedInput) {
  EXPECT_THROW((void)util::base64_decode("abc"), std::invalid_argument);
  EXPECT_THROW((void)util::base64_decode("ab=c"), std::invalid_argument);
  EXPECT_THROW((void)util::base64_decode("a#bc"), std::invalid_argument);
  EXPECT_EQ(util::base64_decode("").size(), 0u);
}

TEST(GoldenStore, MissFillHit) {
  const std::string dir = fresh_dir("store");
  const auto app = apps::make_app(apps::AppId::CG);
  telemetry::MetricScope metrics;
  int profiles = 0;
  {
    telemetry::ScopeGuard guard(&metrics);
    harness::GoldenStore store(dir);
    EXPECT_EQ(store.load(*app, 2), nullptr);  // cold: miss
    const auto filled = store.load_or_fill(*app, 2, [&] {
      ++profiles;
      return profile_cg(2);
    });
    ASSERT_NE(filled, nullptr);
    const auto again = store.load_or_fill(*app, 2, [&] {
      ++profiles;
      return profile_cg(2);
    });
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->signature, filled->signature);
  }
  EXPECT_EQ(profiles, 1);  // second load_or_fill served from disk
  const auto snap = metrics.snapshot();
  EXPECT_GE(snap.value(telemetry::Counter::GoldenStoreMisses), 2u);
  EXPECT_GE(snap.value(telemetry::Counter::GoldenStoreHits), 1u);
  std::filesystem::remove_all(dir);
}

TEST(GoldenStore, CorruptFileIsUnlinkedAndRefilled) {
  const std::string dir = fresh_dir("corrupt");
  const auto app = apps::make_app(apps::AppId::CG);
  harness::GoldenStore store(dir);
  int profiles = 0;
  (void)store.load_or_fill(*app, 2, [&] {
    ++profiles;
    return profile_cg(2);
  });
  const std::string path = store.path_for(*app, 2);
  ASSERT_TRUE(std::filesystem::exists(path));

  {  // not JSON at all
    std::ofstream out(path, std::ios::trunc);
    out << "not json {{{";
  }
  EXPECT_EQ(store.load(*app, 2), nullptr);
  EXPECT_FALSE(std::filesystem::exists(path)) << "corrupt file not unlinked";

  (void)store.load_or_fill(*app, 2, [&] {
    ++profiles;
    return profile_cg(2);
  });
  EXPECT_EQ(profiles, 2);  // clean refill after the corruption
  ASSERT_TRUE(std::filesystem::exists(path));

  {  // valid JSON, truncated mid-document
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_EQ(store.load(*app, 2), nullptr);
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(GoldenStore, KeyedByAppAndScale) {
  const std::string dir = fresh_dir("keys");
  harness::GoldenStore store(dir);
  const auto cg = apps::make_app(apps::AppId::CG);
  const auto ft = apps::make_app(apps::AppId::FT);
  EXPECT_NE(store.path_for(*cg, 2), store.path_for(*cg, 4));
  EXPECT_NE(store.path_for(*cg, 2), store.path_for(*ft, 2));
  int profiles = 0;
  (void)store.load_or_fill(*cg, 2, [&] {
    ++profiles;
    return profile_cg(2);
  });
  // A different scale is a different key: no cross-talk.
  EXPECT_EQ(store.load(*cg, 4), nullptr);
  EXPECT_EQ(profiles, 1);
  std::filesystem::remove_all(dir);
}

// A golden run loaded from the store must drive a campaign to the exact
// result a freshly profiled one produces — checkpoint fast path included.
TEST(GoldenStore, LoadedGoldenReproducesCampaign) {
  const std::string dir = fresh_dir("repro");
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig dep;
  dep.nranks = 2;
  dep.trials = 16;

  auto baseline = harness::CampaignRunner::run(*app, dep);

  harness::GoldenStore store(dir);
  harness::GoldenCache cache(&store);
  harness::CampaignContext context;
  context.golden_cache = &cache;
  auto first = harness::CampaignRunner::run(*app, dep, context);

  harness::GoldenCache cache2(&store);  // fresh process-equivalent: disk hit
  harness::CampaignContext context2;
  context2.golden_cache = &cache2;
  auto second = harness::CampaignRunner::run(*app, dep, context2);

  baseline.wall_seconds = first.wall_seconds = second.wall_seconds = 0.0;
  EXPECT_EQ(harness::to_json(first).dump(), harness::to_json(baseline).dump());
  EXPECT_EQ(harness::to_json(second).dump(),
            harness::to_json(baseline).dump());
  EXPECT_EQ(second.metrics.value(telemetry::Counter::HarnessGoldenProfiles),
            0u);
  EXPECT_GE(second.metrics.value(telemetry::Counter::GoldenStoreHits), 1u);
  std::filesystem::remove_all(dir);
}

// ---- golden-v2 binary format ------------------------------------------

void expect_same_golden(const harness::GoldenRun& a,
                        const harness::GoldenRun& b) {
  EXPECT_EQ(b.signature, a.signature);
  EXPECT_EQ(b.max_rank_ops, a.max_rank_ops);
  ASSERT_EQ(b.profiles.size(), a.profiles.size());
  for (std::size_t r = 0; r < a.profiles.size(); ++r) {
    EXPECT_EQ(b.profiles[r], a.profiles[r]) << r;
  }
  ASSERT_EQ(b.checkpoints == nullptr, a.checkpoints == nullptr);
  if (a.checkpoints == nullptr) return;
  const auto& ca = *a.checkpoints;
  const auto& cb = *b.checkpoints;
  EXPECT_EQ(cb.nranks, ca.nranks);
  EXPECT_EQ(cb.iterations, ca.iterations);
  EXPECT_EQ(cb.signature, ca.signature);
  ASSERT_EQ(cb.final_profiles.size(), ca.final_profiles.size());
  for (std::size_t r = 0; r < ca.final_profiles.size(); ++r) {
    EXPECT_EQ(cb.final_profiles[r], ca.final_profiles[r]) << r;
  }
  ASSERT_EQ(cb.boundaries.size(), ca.boundaries.size());
  for (std::size_t i = 0; i < ca.boundaries.size(); ++i) {
    EXPECT_EQ(cb.boundaries[i].iter, ca.boundaries[i].iter);
    EXPECT_EQ(cb.boundaries[i].profiles, ca.boundaries[i].profiles);
    EXPECT_EQ(cb.boundaries[i].digests, ca.boundaries[i].digests);
    ASSERT_EQ(cb.boundaries[i].state.size(), ca.boundaries[i].state.size());
    for (std::size_t r = 0; r < ca.boundaries[i].state.size(); ++r) {
      EXPECT_EQ(cb.boundaries[i].state[r], ca.boundaries[i].state[r]);
    }
  }
}

// The binary and JSON stores must serve the exact same golden run — and
// their loads must re-serialize to byte-identical JSON, the property the
// wire/store cross-checks in CI build on.
TEST(GoldenStoreBinary, BinaryAndJsonStoresServeIdenticalGolden) {
  const harness::GoldenRun golden = profile_cg(2);
  ASSERT_NE(golden.checkpoints, nullptr);
  const auto app = apps::make_app(apps::AppId::CG);

  const std::string bin_dir = fresh_dir("fmt-bin");
  const std::string json_dir = fresh_dir("fmt-json");
  harness::GoldenStore bin_store(bin_dir, harness::StoreFormat::BinaryV2);
  harness::GoldenStore json_store(json_dir, harness::StoreFormat::JsonV1);
  bin_store.put(*app, 2, golden);
  json_store.put(*app, 2, golden);

  const auto from_bin = bin_store.load(*app, 2);
  const auto from_json = json_store.load(*app, 2);
  ASSERT_NE(from_bin, nullptr);
  ASSERT_NE(from_json, nullptr);
  expect_same_golden(golden, *from_bin);
  expect_same_golden(golden, *from_json);
  EXPECT_EQ(harness::golden_to_json(*from_bin).dump(),
            harness::golden_to_json(*from_json).dump());

  std::filesystem::remove_all(bin_dir);
  std::filesystem::remove_all(json_dir);
}

TEST(GoldenStoreBinary, RoundTripsGoldenWithoutCheckpoints) {
  harness::GoldenRun golden = profile_cg(2);
  golden.checkpoints = nullptr;  // apps without boundary hooks
  const auto app = apps::make_app(apps::AppId::CG);
  const std::string dir = fresh_dir("no-ckpt");
  harness::GoldenStore store(dir, harness::StoreFormat::BinaryV2);
  store.put(*app, 2, golden);
  const auto back = store.load(*app, 2);
  ASSERT_NE(back, nullptr);
  expect_same_golden(golden, *back);
  std::filesystem::remove_all(dir);
}

// The restore fast path copies checkpoint bytes exactly once: the store
// load must hand out state spans borrowed straight from the mmap, not
// heap copies of them.
TEST(GoldenStoreBinary, LoadedStateIsBorrowedFromTheMapping) {
  const auto app = apps::make_app(apps::AppId::CG);
  const std::string dir = fresh_dir("borrow");
  harness::GoldenStore store(dir, harness::StoreFormat::BinaryV2);
  store.put(*app, 2, profile_cg(2));
  const auto back = store.load(*app, 2);
  ASSERT_NE(back, nullptr);
  ASSERT_NE(back->checkpoints, nullptr);
  EXPECT_NE(back->checkpoints->backing, nullptr) << "mmap not pinned";
  bool saw_state = false;
  for (const auto& boundary : back->checkpoints->boundaries) {
    for (const auto& state : boundary.state) {
      if (state.size() == 0) continue;
      saw_state = true;
      EXPECT_TRUE(state.is_borrowed());
    }
  }
  EXPECT_TRUE(saw_state) << "CG checkpoints should carry rank state";
  std::filesystem::remove_all(dir);
}

// A borrowed golden must outlive both the store object and the file's
// directory entry: the mapping pins the inode.
TEST(GoldenStoreBinary, LoadedGoldenSurvivesStoreAndFileRemoval) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::GoldenRun golden = profile_cg(2);
  const std::string dir = fresh_dir("pin");
  std::shared_ptr<const harness::GoldenRun> back;
  {
    harness::GoldenStore store(dir, harness::StoreFormat::BinaryV2);
    store.put(*app, 2, golden);
    back = store.load(*app, 2);
    ASSERT_NE(back, nullptr);
  }
  std::filesystem::remove_all(dir);
  expect_same_golden(golden, *back);  // still reads the unlinked mapping
}

TEST(GoldenStoreBinary, BitFlippedFileIsUnlinkedAndRefilled) {
  const auto app = apps::make_app(apps::AppId::CG);
  const std::string dir = fresh_dir("bitflip");
  telemetry::MetricScope metrics;
  int profiles = 0;
  {
    telemetry::ScopeGuard guard(&metrics);
    harness::GoldenStore store(dir, harness::StoreFormat::BinaryV2);
    (void)store.load_or_fill(*app, 2, [&] {
      ++profiles;
      return profile_cg(2);
    });
    const std::string path = store.path_for(*app, 2);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Flip one bit in the middle of the section data: the section CRC
    // must catch it, unlink the file, and report a miss.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_EQ(store.load(*app, 2), nullptr);
    EXPECT_FALSE(std::filesystem::exists(path)) << "corrupt v2 not unlinked";

    (void)store.load_or_fill(*app, 2, [&] {
      ++profiles;
      return profile_cg(2);
    });
    EXPECT_EQ(profiles, 2);
  }
  const auto snap = metrics.snapshot();
  EXPECT_GE(snap.value(telemetry::Counter::GoldenStoreRefills), 1u);
  std::filesystem::remove_all(dir);
}

TEST(GoldenStoreBinary, TruncatedFileIsUnlinkedAndRefilled) {
  const auto app = apps::make_app(apps::AppId::CG);
  const std::string dir = fresh_dir("trunc-bin");
  harness::GoldenStore store(dir, harness::StoreFormat::BinaryV2);
  store.put(*app, 2, profile_cg(2));
  const std::string path = store.path_for(*app, 2);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(store.load(*app, 2), nullptr);
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

// A store directory carrying a pre-upgrade v1 JSON file: the binary-format
// store reads it once, rewrites the key as v2, and removes the v1 file.
TEST(GoldenStoreBinary, V1FileIsReadOnceAndRewrittenAsV2) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::GoldenRun golden = profile_cg(2);
  const std::string dir = fresh_dir("upgrade");
  {
    harness::GoldenStore v1_store(dir, harness::StoreFormat::JsonV1);
    v1_store.put(*app, 2, golden);
  }
  harness::GoldenStore store(dir, harness::StoreFormat::BinaryV2);
  const std::string v1_path =
      store.path_for(*app, 2, harness::StoreFormat::JsonV1);
  const std::string v2_path =
      store.path_for(*app, 2, harness::StoreFormat::BinaryV2);
  ASSERT_TRUE(std::filesystem::exists(v1_path));
  ASSERT_FALSE(std::filesystem::exists(v2_path));

  const auto first = store.load(*app, 2);  // v1 hit + upgrade
  ASSERT_NE(first, nullptr);
  expect_same_golden(golden, *first);
  EXPECT_TRUE(std::filesystem::exists(v2_path)) << "v1 hit not rewritten";
  EXPECT_FALSE(std::filesystem::exists(v1_path)) << "stale v1 left behind";

  const auto second = store.load(*app, 2);  // now served from v2
  ASSERT_NE(second, nullptr);
  expect_same_golden(golden, *second);
  std::filesystem::remove_all(dir);
}

// And the reverse knob: a JSON-format store keeps serving an existing v2
// file (reads try v2 first regardless of the write format).
TEST(GoldenStoreBinary, JsonWriteFormatStillReadsV2Files) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::GoldenRun golden = profile_cg(2);
  const std::string dir = fresh_dir("mixed");
  {
    harness::GoldenStore v2_store(dir, harness::StoreFormat::BinaryV2);
    v2_store.put(*app, 2, golden);
  }
  harness::GoldenStore store(dir, harness::StoreFormat::JsonV1);
  const auto back = store.load(*app, 2);
  ASSERT_NE(back, nullptr);
  expect_same_golden(golden, *back);
  std::filesystem::remove_all(dir);
}

// Store format must not leak into campaign results: both formats drive a
// campaign to the byte-identical saved JSON of an in-memory golden run.
TEST(GoldenStoreBinary, CampaignResultsAreByteIdenticalAcrossFormats) {
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig dep;
  dep.nranks = 2;
  dep.trials = 16;

  auto baseline = harness::CampaignRunner::run(*app, dep);

  auto run_with = [&](harness::StoreFormat format, const std::string& tag) {
    const std::string dir = fresh_dir(tag);
    harness::GoldenStore store(dir, format);
    store.put(*app, 2, profile_cg(2));  // campaigns load, never profile
    harness::GoldenCache cache(&store);
    harness::CampaignContext context;
    context.golden_cache = &cache;
    auto result = harness::CampaignRunner::run(*app, dep, context);
    std::filesystem::remove_all(dir);
    return result;
  };
  auto from_bin = run_with(harness::StoreFormat::BinaryV2, "cmp-bin");
  auto from_json = run_with(harness::StoreFormat::JsonV1, "cmp-json");

  baseline.wall_seconds = from_bin.wall_seconds = from_json.wall_seconds = 0.0;
  const std::string want = harness::to_json(baseline).dump();
  EXPECT_EQ(harness::to_json(from_bin).dump(), want);
  EXPECT_EQ(harness::to_json(from_json).dump(), want);
}

}  // namespace
