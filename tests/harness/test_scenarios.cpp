// The FaultScenario catalog end to end (DESIGN.md §16): catalog lookup,
// TrialSpace validation of unsupported combinations, per-family campaign
// determinism across worker counts / scheduler cores / the checkpoint
// kill switch, the fail-stop Crash outcome, the Poisson fast-forward
// refusal rule, and backward compatibility of pre-scenario saved
// campaign files (load + re-save byte-identical, rerun bit-identical).
#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/app.hpp"
#include "fsefi/scenario.hpp"
#include "harness/campaign.hpp"
#include "harness/campaign_engine.hpp"
#include "harness/checkpoint.hpp"
#include "harness/runner.hpp"
#include "harness/serialize.hpp"
#include "simmpi/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience {
namespace {

using fsefi::ArrivalModel;
using fsefi::FaultPattern;
using fsefi::FaultScenario;
using harness::CampaignResult;
using harness::CampaignRunner;
using harness::DeploymentConfig;
using telemetry::Counter;

// ---- catalog ---------------------------------------------------------------

TEST(ScenarioCatalog, FamiliesInDisplayOrder) {
  const auto catalog = fsefi::scenario_catalog();
  ASSERT_EQ(catalog.size(), 6u);
  const char* expected[] = {"paper", "register-byte", "payload",
                            "state", "poisson",       "crash"};
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_STREQ(catalog[i].name, expected[i]);
  }
}

TEST(ScenarioCatalog, NameRoundTripsAndCustomFallback) {
  for (const auto& entry : fsefi::scenario_catalog()) {
    EXPECT_STREQ(fsefi::scenario_name(entry.scenario), entry.name);
    EXPECT_EQ(fsefi::scenario_by_name(entry.name), entry.scenario);
  }
  // The catalog names the (domain, pattern, arrival) shape; kind/region
  // filters and the MTBF are deployment knobs that keep the name.
  FaultScenario tuned = fsefi::scenario_by_name("poisson");
  tuned.mtbf_factor = 0.123;
  EXPECT_STREQ(fsefi::scenario_name(tuned), "poisson");
  FaultScenario custom;  // byte corruption on a timeline: no catalog entry
  custom.pattern = FaultPattern::Byte;
  custom.arrival = ArrivalModel::PoissonTimeline;
  EXPECT_STREQ(fsefi::scenario_name(custom), "custom");
}

TEST(ScenarioCatalog, UnknownNameThrowsListingKnownNames) {
  try {
    (void)fsefi::scenario_by_name("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("paper"), std::string::npos) << msg;
    EXPECT_NE(msg.find("crash"), std::string::npos) << msg;
  }
}

TEST(ScenarioCatalog, LegacyAndCrashPredicates) {
  EXPECT_TRUE(fsefi::scenario_by_name("paper").legacy());
  for (const char* name :
       {"register-byte", "payload", "state", "poisson", "crash"}) {
    EXPECT_FALSE(fsefi::scenario_by_name(name).legacy()) << name;
    EXPECT_EQ(fsefi::scenario_by_name(name).crash(),
              std::string_view(name) == "crash")
        << name;
  }
  // The default-constructed scenario IS the paper scenario: every config
  // that never mentions scenarios reproduces the pre-catalog behaviour.
  EXPECT_EQ(FaultScenario{}, fsefi::scenario_by_name("paper"));
}

// ---- TrialSpace validation -------------------------------------------------

class ScenarioSpace : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    app_ = apps::make_app(apps::AppId::CG).release();
    golden_ = new harness::GoldenRun(harness::profile_app(*app_, 2));
  }
  static const apps::App& app() { return *app_; }
  static const harness::GoldenRun& golden() { return *golden_; }

 private:
  static const apps::App* app_;
  static const harness::GoldenRun* golden_;
};

const apps::App* ScenarioSpace::app_ = nullptr;
const harness::GoldenRun* ScenarioSpace::golden_ = nullptr;

TEST_F(ScenarioSpace, RejectsUnsupportedCombinations) {
  DeploymentConfig cfg;
  cfg.nranks = 2;

  cfg.scenario = fsefi::scenario_by_name("crash");
  cfg.scenario.arrival = ArrivalModel::PoissonTimeline;
  EXPECT_THROW(harness::TrialSpace(app(), cfg, golden()),
               std::invalid_argument);

  cfg.scenario = fsefi::scenario_by_name("state");
  cfg.scenario.arrival = ArrivalModel::PoissonTimeline;
  EXPECT_THROW(harness::TrialSpace(app(), cfg, golden()),
               std::invalid_argument);

  cfg.scenario = fsefi::scenario_by_name("payload");
  cfg.selection = harness::TargetSelection::UniformRank;
  EXPECT_THROW(harness::TrialSpace(app(), cfg, golden()),
               std::invalid_argument);

  cfg.selection = harness::TargetSelection::UniformInstruction;
  cfg.scenario = fsefi::scenario_by_name("poisson");
  cfg.scenario.mtbf_factor = 0.0;
  EXPECT_THROW(harness::TrialSpace(app(), cfg, golden()),
               std::invalid_argument);
}

TEST_F(ScenarioSpace, AcceptsEveryCatalogEntry) {
  for (const auto& entry : fsefi::scenario_catalog()) {
    DeploymentConfig cfg;
    cfg.nranks = 2;
    cfg.scenario = entry.scenario;
    EXPECT_NO_THROW(harness::TrialSpace(app(), cfg, golden())) << entry.name;
  }
}

// ---- per-family campaign determinism --------------------------------------

/// Serialized view with the wall clock zeroed: equal strings == equal
/// campaigns in every field the schema records.
std::string fingerprint(CampaignResult result) {
  result.wall_seconds = 0.0;
  return harness::to_json(result).dump();
}

/// Restores production defaults on scope exit.
struct ModeRestore {
  ~ModeRestore() {
    harness::set_checkpoint_enabled(true);
    simmpi::detail::reset_scheduler_fibers_enabled();
  }
};

TEST(ScenarioCampaigns, EveryFamilyBitIdenticalAcrossExecutionModes) {
  ModeRestore restore;
  const auto app = apps::make_app(apps::AppId::CG);
  for (const auto& entry : fsefi::scenario_catalog()) {
    DeploymentConfig cfg;
    cfg.nranks = 2;
    cfg.trials = 10;
    cfg.scenario = entry.scenario;
    cfg.max_workers = 1;

    harness::set_checkpoint_enabled(true);
    const std::string serial = fingerprint(CampaignRunner::run(*app, cfg));

    cfg.max_workers = 4;
    EXPECT_EQ(fingerprint(CampaignRunner::run(*app, cfg)), serial)
        << entry.name << " differs across worker counts";

    harness::set_checkpoint_enabled(false);
    EXPECT_EQ(fingerprint(CampaignRunner::run(*app, cfg)), serial)
        << entry.name << " differs with checkpointing disabled";
    harness::set_checkpoint_enabled(true);

    simmpi::detail::set_scheduler_fibers_enabled(false);
    EXPECT_EQ(fingerprint(CampaignRunner::run(*app, cfg)), serial)
        << entry.name << " differs on the thread-per-rank core";
    simmpi::detail::reset_scheduler_fibers_enabled();
  }
}

// Regression: a payload flip landing mid-tree in a bcast must contaminate
// the receiving rank's whole subtree on both execution cores. The fused
// combiner used to copy every child from the root's buffer, silently
// localizing the corruption the mailbox walk forwards — campaigns then
// disagreed between cores. Four ranks give the bcast tree a grandchild.
TEST(ScenarioCampaigns, PayloadCampaignAgreesAcrossCoresAtDepthTwo) {
  ModeRestore restore;
  const auto app = apps::make_app(apps::AppId::CG);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 30;
  cfg.scenario = fsefi::scenario_by_name("payload");

  simmpi::detail::set_scheduler_fibers_enabled(true);
  const std::string fibers = fingerprint(CampaignRunner::run(*app, cfg));
  simmpi::detail::set_scheduler_fibers_enabled(false);
  const std::string threads = fingerprint(CampaignRunner::run(*app, cfg));
  EXPECT_EQ(fibers, threads);
}

TEST(ScenarioCampaigns, MechanismCountersFirePerFamily) {
  const auto app = apps::make_app(apps::AppId::CG);
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 10;

  cfg.scenario = fsefi::scenario_by_name("payload");
  auto payload = CampaignRunner::run(*app, cfg);
  EXPECT_GE(payload.metrics.value(Counter::ScenarioPayloadFlips),
            cfg.trials);

  cfg.scenario = fsefi::scenario_by_name("state");
  auto state = CampaignRunner::run(*app, cfg);
  EXPECT_GE(state.metrics.value(Counter::ScenarioStateFlips), cfg.trials);
}

TEST(ScenarioCampaigns, CrashFamilyProducesOnlyCrashOutcomes) {
  const auto app = apps::make_app(apps::AppId::CG);
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 10;
  cfg.scenario = fsefi::scenario_by_name("crash");
  const auto result = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(result.overall.trials, cfg.trials);
  EXPECT_EQ(result.overall.crash, cfg.trials);
  EXPECT_EQ(result.overall.success, 0u);
  EXPECT_EQ(result.overall.sdc, 0u);
  EXPECT_EQ(result.overall.failure, 0u);
  EXPECT_EQ(result.metrics.value(Counter::ScenarioRankCrashes), cfg.trials);
  // Fail-stop kills a rank without corrupting any delivered value, so
  // crash trials land in the x = 0 bucket — outside the propagation
  // statistics, which start at x = 1.
  ASSERT_GT(result.contamination_hist.size(), 1u);
  EXPECT_EQ(result.contamination_hist[0], cfg.trials);
  EXPECT_EQ(result.by_contamination[0].crash, cfg.trials);
}

// ---- Poisson fast-forward refusal -----------------------------------------

// A multi-fault (Poisson-style) plan whose first fault precedes every
// stored boundary must refuse to fast-forward — restoring at any stored
// checkpoint would skip the first injection — and produce output
// bit-identical to a cold run. The late single-fault control proves the
// refusal assertion has teeth (the same machinery does restore when the
// plan allows it).
TEST(PoissonFastForward, EarlyFirstFaultRefusesRestoreBitIdentically) {
  const auto app = apps::make_app(apps::AppId::CG);
  const int nranks = 2;
  const auto golden = harness::profile_app(*app, nranks);
  ASSERT_NE(golden.checkpoints, nullptr);

  std::vector<fsefi::InjectionPlan> plans(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto& plan = plans[static_cast<std::size_t>(r)];
    const std::uint64_t matching =
        golden.profiles[static_cast<std::size_t>(r)].matching(plan.kinds,
                                                              plan.regions);
    ASSERT_GT(matching, 4u);
    // Two arrivals on one timeline; the first is before the earliest
    // boundary (op 0), which rules out every stored checkpoint.
    plan.points = {{.op_index = 0, .operand = 0, .bit = 40},
                   {.op_index = matching / 2, .operand = 0, .bit = 41}};
  }
  harness::RunOptions with;
  with.checkpoints = golden.checkpoints.get();
  const auto ff = harness::run_app_once(*app, nranks, plans, with);
  const auto cold = harness::run_app_once(*app, nranks, plans, {});
  EXPECT_FALSE(ff.checkpoint_restored);
  EXPECT_FALSE(cold.checkpoint_restored);
  EXPECT_EQ(ff.runtime.ok, cold.runtime.ok);
  ASSERT_EQ(ff.result.has_value(), cold.result.has_value());
  if (ff.result && cold.result) {
    EXPECT_EQ(ff.result->signature, cold.result->signature);
    EXPECT_EQ(ff.result->iterations, cold.result->iterations);
  }
  EXPECT_EQ(ff.contaminated, cold.contaminated);

  // Control: pushing the first fault past the stored boundaries engages
  // the restore on the same golden data.
  for (auto& plan : plans) plan.points.erase(plan.points.begin());
  const auto late = harness::run_app_once(*app, nranks, plans, with);
  EXPECT_TRUE(late.checkpoint_restored);
}

// ---- saved-campaign compatibility -----------------------------------------

// Verbatim output of the pre-scenario CLI (commit b2c8116):
//   resilience campaign --app CG --ranks 2 --trials 8 --save <file>
// The schema has no "scenario" key; loading must synthesize the implicit
// paper scenario, re-saving must reproduce the file byte for byte, and
// rerunning the deployment must reproduce the recorded tallies.
constexpr const char* kPreScenarioCampaign =
#include "pre_scenario_campaign.inc"
    ;

TEST(SavedCampaignCompat, PreScenarioFileLoadsRerunsAndResavesByteIdentically) {
  const CampaignResult loaded =
      harness::campaign_from_json(util::Json::parse(kPreScenarioCampaign));
  EXPECT_TRUE(loaded.config.scenario.legacy());
  EXPECT_EQ(loaded.config.scenario, FaultScenario{});

  // Re-save: same bytes as the pre-scenario writer produced.
  EXPECT_EQ(harness::to_json(loaded).dump(2) + "\n", kPreScenarioCampaign);

  // Rerun: the loaded config must draw and execute the same trials.
  const auto app = apps::make_app(apps::AppId::CG);
  const CampaignResult rerun = CampaignRunner::run(*app, loaded.config);
  EXPECT_EQ(rerun.overall.trials, loaded.overall.trials);
  EXPECT_EQ(rerun.overall.success, loaded.overall.success);
  EXPECT_EQ(rerun.overall.sdc, loaded.overall.sdc);
  EXPECT_EQ(rerun.overall.failure, loaded.overall.failure);
  EXPECT_EQ(rerun.overall.crash, loaded.overall.crash);
  EXPECT_EQ(rerun.contamination_hist, loaded.contamination_hist);
  EXPECT_EQ(rerun.golden.signature, loaded.golden.signature);
}

TEST(SavedCampaignCompat, ScenarioConfigsRoundTripThroughTheSchema) {
  const auto app = apps::make_app(apps::AppId::CG);
  for (const char* name : {"payload", "state", "poisson", "crash"}) {
    DeploymentConfig cfg;
    cfg.nranks = 2;
    cfg.trials = 6;
    cfg.scenario = fsefi::scenario_by_name(name);
    const CampaignResult result = CampaignRunner::run(*app, cfg);
    const CampaignResult back =
        harness::campaign_from_json(harness::to_json(result));
    EXPECT_EQ(back.config.scenario, cfg.scenario) << name;
    EXPECT_EQ(back.overall.crash, result.overall.crash) << name;
    EXPECT_EQ(fingerprint(back), fingerprint(result)) << name;
  }
}

}  // namespace
}  // namespace resilience
