// Adaptive campaign engine (DESIGN.md §12): seeded determinism of the
// stopping point across execution modes, CI-driven early stopping,
// stratified sampling and post-stratified unbiasedness, and the
// trials-saved telemetry.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/campaign.hpp"
#include "harness/checkpoint.hpp"
#include "harness/runner.hpp"
#include "simmpi/runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace resilience::harness {
namespace {

DeploymentConfig adaptive_config(int nranks, std::size_t cap) {
  DeploymentConfig cfg;
  cfg.nranks = nranks;
  cfg.trials = cap;
  cfg.adaptive.enabled = true;
  cfg.adaptive.batch = 16;
  cfg.adaptive.min_trials = 32;
  return cfg;
}

void expect_same_outcomes(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_TRUE(a.adaptive.has_value());
  ASSERT_TRUE(b.adaptive.has_value());
  EXPECT_EQ(a.adaptive->trials_executed, b.adaptive->trials_executed);
  EXPECT_EQ(a.adaptive->stop_reason, b.adaptive->stop_reason);
  EXPECT_EQ(a.overall.trials, b.overall.trials);
  EXPECT_EQ(a.overall.success, b.overall.success);
  EXPECT_EQ(a.overall.sdc, b.overall.sdc);
  EXPECT_EQ(a.overall.failure, b.overall.failure);
  EXPECT_EQ(a.contamination_hist, b.contamination_hist);
  EXPECT_DOUBLE_EQ(a.adaptive->success.rate, b.adaptive->success.rate);
  EXPECT_DOUBLE_EQ(a.adaptive->success.lo, b.adaptive->success.lo);
  EXPECT_DOUBLE_EQ(a.adaptive->success.hi, b.adaptive->success.hi);
}

TEST(Adaptive, UnstratifiedCapRunEqualsFixedCampaign) {
  // With stratification off, adaptive trial j shares the fixed path's
  // seed stream derive_seed(seed, j); a run that reaches the cap must
  // therefore classify exactly the fixed campaign's outcomes.
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig fixed;
  fixed.nranks = 2;
  fixed.trials = 48;
  DeploymentConfig adaptive = fixed;
  adaptive.adaptive.enabled = true;
  adaptive.adaptive.stratify = false;
  adaptive.adaptive.batch = 16;
  adaptive.adaptive.ci_half_width = 1e-4;  // unreachable: run to the cap

  const auto a = CampaignRunner::run(*app, fixed);
  const auto b = CampaignRunner::run(*app, adaptive);
  EXPECT_FALSE(a.adaptive.has_value());
  ASSERT_TRUE(b.adaptive.has_value());
  EXPECT_EQ(b.adaptive->stop_reason, StopReason::TrialCap);
  EXPECT_EQ(b.adaptive->trials_executed, fixed.trials);
  EXPECT_EQ(a.overall.success, b.overall.success);
  EXPECT_EQ(a.overall.sdc, b.overall.sdc);
  EXPECT_EQ(a.overall.failure, b.overall.failure);
  EXPECT_EQ(a.contamination_hist, b.contamination_hist);
}

TEST(Adaptive, StoppingPointIsWorkerCountInvariant) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg = adaptive_config(2, 96);
  cfg.adaptive.ci_half_width = 0.08;
  cfg.max_workers = 1;
  const auto serial = CampaignRunner::run(*app, cfg);
  cfg.max_workers = 4;
  const auto parallel = CampaignRunner::run(*app, cfg);
  expect_same_outcomes(serial, parallel);
  // Deterministic batch boundaries make the whole snapshot logically
  // equal, trials-saved counters included.
  EXPECT_TRUE(serial.metrics.logical_equal(parallel.metrics));
}

TEST(Adaptive, StoppingPointIsSchedulerModeInvariant) {
  const auto app = apps::make_app(apps::AppId::LU);
  const DeploymentConfig cfg = adaptive_config(2, 96);
  simmpi::detail::set_scheduler_fibers_enabled(true);
  const auto fibers = CampaignRunner::run(*app, cfg);
  simmpi::detail::set_scheduler_fibers_enabled(false);
  const auto threads = CampaignRunner::run(*app, cfg);
  simmpi::detail::reset_scheduler_fibers_enabled();
  expect_same_outcomes(fibers, threads);
}

TEST(Adaptive, StoppingPointIsCheckpointInvariant) {
  const auto app = apps::make_app(apps::AppId::LU);
  const DeploymentConfig cfg = adaptive_config(2, 96);
  const auto with_ckpt = CampaignRunner::run(*app, cfg);
  set_checkpoint_enabled(false);
  const auto without = CampaignRunner::run(*app, cfg);
  set_checkpoint_enabled(true);
  expect_same_outcomes(with_ckpt, without);
}

TEST(Adaptive, ConvergedStopSavesTrialsAndCountsThem) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg = adaptive_config(2, 400);
  cfg.adaptive.ci_half_width = 0.12;  // loose: stop well before the cap
  const auto result = CampaignRunner::run(*app, cfg);
  ASSERT_TRUE(result.adaptive.has_value());
  const auto& stats = *result.adaptive;
  EXPECT_EQ(stats.stop_reason, StopReason::Converged);
  EXPECT_LT(stats.trials_executed, stats.trials_requested);
  EXPECT_GE(stats.trials_executed, cfg.adaptive.min_trials);
  EXPECT_EQ(result.overall.trials, stats.trials_executed);
  EXPECT_GT(stats.trial_reduction(), 1.0);
  EXPECT_EQ(result.metrics.value(telemetry::Counter::CampaignTrialsSaved),
            stats.trials_requested - stats.trials_executed);
  EXPECT_EQ(result.metrics.value(telemetry::Counter::CampaignStrata),
            stats.strata);
  // Each tracked outcome met its target.
  for (const auto* iv : {&stats.success, &stats.sdc, &stats.failure}) {
    EXPECT_LE(iv->half_width(), cfg.adaptive.ci_half_width + 1e-12);
    EXPECT_TRUE(iv->contains(iv->rate));
  }
}

TEST(Adaptive, StratifiedEstimateIsConsistentWithUniform) {
  // Post-stratification must estimate the same quantity the uniform
  // campaign measures. Both runs are independent noisy estimates, so
  // requiring each point inside the other's interval is a coin flip at
  // these sample sizes; under unbiasedness the two 95% envelopes must
  // overlap (a disjoint pair at n = 300 would be a >3-sigma event), and
  // the points must agree within the combined half-widths.
  for (const auto id : {apps::AppId::CG, apps::AppId::FT}) {
    const auto app = apps::make_app(id);
    DeploymentConfig uniform;
    uniform.nranks = 4;
    uniform.trials = 300;
    DeploymentConfig stratified = uniform;
    stratified.adaptive.enabled = true;
    stratified.adaptive.batch = 50;
    stratified.adaptive.ci_half_width = 1e-4;  // run the full cap

    const auto u = CampaignRunner::run(*app, uniform);
    const auto s = CampaignRunner::run(*app, stratified);
    ASSERT_TRUE(s.adaptive.has_value()) << app->label();
    ASSERT_TRUE(s.adaptive->stratified) << app->label();
    EXPECT_GT(s.adaptive->strata, 1u) << app->label();

    const auto uniform_ci =
        util::wilson_interval(u.overall.success, u.overall.trials);
    const auto& strat = s.adaptive->success;
    EXPECT_LE(strat.lo, uniform_ci.hi) << app->label();
    EXPECT_GE(strat.hi, uniform_ci.lo) << app->label();
    EXPECT_NEAR(strat.rate, u.overall.success_rate(),
                strat.half_width() + uniform_ci.half_width())
        << app->label();

    // Post-stratified propagation is a distribution over 1..nranks.
    const auto r = s.propagation_probabilities();
    double mass = 0.0;
    for (double v : r) {
      EXPECT_GE(v, 0.0);
      mass += v;
    }
    EXPECT_NEAR(mass, 1.0, 1e-9) << app->label();
  }
}

TEST(Adaptive, RelativeModeConverges) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg = adaptive_config(2, 400);
  cfg.adaptive.ci_relative = 0.8;  // generous relative envelope
  const auto result = CampaignRunner::run(*app, cfg);
  ASSERT_TRUE(result.adaptive.has_value());
  EXPECT_EQ(result.adaptive->stop_reason, StopReason::Converged);
  EXPECT_LT(result.adaptive->trials_executed,
            result.adaptive->trials_requested);
}

TEST(Adaptive, MultiErrorDeploymentFallsBackToUnstratified) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg = adaptive_config(1, 64);
  cfg.errors_per_test = 3;
  cfg.adaptive.ci_half_width = 1e-4;
  const auto result = CampaignRunner::run(*app, cfg);
  ASSERT_TRUE(result.adaptive.has_value());
  EXPECT_FALSE(result.adaptive->stratified);
  EXPECT_EQ(result.adaptive->strata, 1u);
  EXPECT_TRUE(result.adaptive->propagation.empty());
}

TEST(Adaptive, DisabledLeavesNoRecordOrCounters) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 24;
  const auto result = CampaignRunner::run(*app, cfg);
  EXPECT_FALSE(result.adaptive.has_value());
  EXPECT_EQ(result.metrics.value(telemetry::Counter::CampaignTrialsSaved), 0u);
  EXPECT_EQ(result.metrics.value(telemetry::Counter::CampaignStrata), 0u);
}

}  // namespace
}  // namespace resilience::harness
