#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/serialize.hpp"

namespace resilience::harness {
namespace {

CampaignResult run_with_seed(std::uint64_t seed, std::size_t trials = 20) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = trials;
  cfg.seed = seed;
  return CampaignRunner::run(*app, cfg);
}

TEST(MergeCampaigns, PoolsCountsAcrossSeeds) {
  const auto a = run_with_seed(1);
  const auto b = run_with_seed(2, 30);
  const auto merged = merge_campaigns(a, b);
  EXPECT_EQ(merged.overall.trials, 50u);
  EXPECT_EQ(merged.overall.success, a.overall.success + b.overall.success);
  EXPECT_EQ(merged.overall.sdc, a.overall.sdc + b.overall.sdc);
  for (std::size_t x = 0; x < merged.contamination_hist.size(); ++x) {
    EXPECT_EQ(merged.contamination_hist[x],
              a.contamination_hist[x] + b.contamination_hist[x]);
    EXPECT_EQ(merged.by_contamination[x].trials,
              a.by_contamination[x].trials + b.by_contamination[x].trials);
  }
  EXPECT_DOUBLE_EQ(merged.wall_seconds, a.wall_seconds + b.wall_seconds);
  // The pooled campaign still feeds the model coherently.
  const auto r = merged.propagation_probabilities();
  double sum = 0.0;
  for (double v : r) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MergeCampaigns, KeepsGoldenOfFirst) {
  const auto a = run_with_seed(1);
  const auto b = run_with_seed(2);
  const auto merged = merge_campaigns(a, b);
  EXPECT_EQ(merged.golden.signature, a.golden.signature);
}

TEST(MergeCampaigns, RejectsDifferentShapes) {
  const auto a = run_with_seed(1);
  auto b = run_with_seed(2);
  b.config.nranks = 8;
  EXPECT_THROW(merge_campaigns(a, b), simmpi::UsageError);

  auto c = run_with_seed(3);
  c.config.scenario.pattern = fsefi::FaultPattern::Burst4;
  EXPECT_THROW(merge_campaigns(a, c), simmpi::UsageError);
}

TEST(MergeCampaigns, RejectsDifferentApplications) {
  const auto a = run_with_seed(1);
  const auto app = apps::make_app(apps::AppId::MG);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 10;
  const auto other = CampaignRunner::run(*app, cfg);
  EXPECT_THROW(merge_campaigns(a, other), simmpi::UsageError);
}

TEST(MergeCampaigns, SurvivesSerializationRoundTrip) {
  const auto a = run_with_seed(1);
  const auto b = run_with_seed(2);
  const auto restored_a =
      campaign_from_json(util::Json::parse(to_json(a).dump()));
  const auto merged = merge_campaigns(restored_a, b);
  EXPECT_EQ(merged.overall.trials, 40u);
}

}  // namespace
}  // namespace resilience::harness
