#include "harness/golden_cache.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/campaign.hpp"
#include "harness/executor.hpp"

namespace resilience::harness {
namespace {

TEST(GoldenCache, SameAppAndRanksHitsOnce) {
  const auto app = apps::make_app(apps::AppId::LU);
  GoldenCache cache;
  const auto a = cache.get_or_profile(*app, 2);
  const auto b = cache.get_or_profile(*app, 2);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a.get(), b.get());  // the same profile object is reused
  EXPECT_EQ(a->signature, profile_app(*app, 2).signature);
}

TEST(GoldenCache, DifferentRanksAndAppsMiss) {
  const auto lu = apps::make_app(apps::AppId::LU);
  const auto mg = apps::make_app(apps::AppId::MG);
  GoldenCache cache;
  (void)cache.get_or_profile(*lu, 1);
  (void)cache.get_or_profile(*lu, 2);  // same app, other scale
  (void)cache.get_or_profile(*mg, 2);  // other app, same scale
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(GoldenCache, ConcurrentRequestsSingleFlight) {
  const auto app = apps::make_app(apps::AppId::MG);
  GoldenCache cache;
  std::vector<std::shared_ptr<const GoldenRun>> got(8);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < got.size(); ++i) {
    threads.emplace_back([&, i] { got[i] = cache.get_or_profile(*app, 2); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), got.size() - 1);
  for (const auto& g : got) EXPECT_EQ(g.get(), got[0].get());
}

TEST(GoldenCache, ProfilesThroughExecutorWhenGiven) {
  const auto app = apps::make_app(apps::AppId::LU);
  Executor ex(2);
  GoldenCache cache;
  const auto golden = cache.get_or_profile(
      *app, 2, std::chrono::milliseconds{10'000}, &ex);
  EXPECT_EQ(golden->signature, profile_app(*app, 2).signature);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(GoldenCache, ProfileFailureEvictsAndPropagates) {
  // FT does not support 3 ranks; profiling throws and must not poison the
  // cache for a later valid request.
  const auto app = apps::make_app(apps::AppId::FT);
  GoldenCache cache;
  EXPECT_THROW((void)cache.get_or_profile(*app, 3), std::exception);
  const auto golden = cache.get_or_profile(*app, 2);
  EXPECT_FALSE(golden->signature.empty());
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(GoldenCache, CampaignUsesCachedGolden) {
  const auto app = apps::make_app(apps::AppId::LU);
  GoldenCache cache;
  CampaignContext ctx;
  ctx.golden_cache = &cache;
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 5;
  const auto a = CampaignRunner::run(*app, cfg, ctx);
  const auto b = CampaignRunner::run(*app, cfg, ctx);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a.golden.signature, b.golden.signature);
  // Cached goldens leave the campaign result itself unchanged.
  const auto plain = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(a.overall.success, plain.overall.success);
  EXPECT_EQ(a.contamination_hist, plain.contamination_hist);
  EXPECT_EQ(a.golden.signature, plain.golden.signature);
}

}  // namespace
}  // namespace resilience::harness
