#include "harness/executor.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace resilience::harness {
namespace {

std::vector<Executor::Task> weighted_tasks(int count, int weight,
                                           const std::function<void()>& fn) {
  std::vector<Executor::Task> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) tasks.push_back({weight, fn});
  return tasks;
}

TEST(Executor, RunsEveryTask) {
  Executor ex(4);
  std::atomic<int> count{0};
  ex.run(weighted_tasks(100, 1, [&] { ++count; }));
  EXPECT_EQ(count.load(), 100);
}

TEST(Executor, FewerTasksThanWorkers) {
  Executor ex(8);
  std::atomic<int> count{0};
  ex.run(weighted_tasks(3, 1, [&] { ++count; }));
  EXPECT_EQ(count.load(), 3);
}

TEST(Executor, SingleWorkerRunsInlineOnCaller) {
  Executor ex(1);
  EXPECT_EQ(ex.workers(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran;
  std::vector<Executor::Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back({1, [&] { ran.push_back(std::this_thread::get_id()); }});
  }
  ex.run(std::move(tasks));
  ASSERT_EQ(ran.size(), 4u);
  for (const auto id : ran) EXPECT_EQ(id, caller);
}

TEST(Executor, WeightAdmissionNeverExceedsBudget) {
  constexpr int kBudget = 4;
  constexpr int kWeight = 3;
  Executor ex(kBudget);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  ex.run(weighted_tasks(24, kWeight, [&] {
    const int now = in_flight.fetch_add(kWeight) + kWeight;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    in_flight.fetch_sub(kWeight);
  }));
  EXPECT_LE(peak.load(), kBudget);
  EXPECT_GE(peak.load(), kWeight);  // something actually ran
}

TEST(Executor, OversizedWeightIsClampedAndRuns) {
  Executor ex(2);
  std::atomic<int> count{0};
  // Weight 64 on a budget of 2 must still execute (clamped, serialized).
  ex.run(weighted_tasks(5, 64, [&] { ++count; }));
  EXPECT_EQ(count.load(), 5);
}

TEST(Executor, MixedWeightsAllComplete) {
  Executor ex(4);
  std::atomic<int> sum{0};
  std::vector<Executor::Task> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back({1 + i % 5, [&, i] { sum += i; }});
  }
  ex.run(std::move(tasks));
  EXPECT_EQ(sum.load(), 39 * 40 / 2);
}

TEST(Executor, RethrowsLowestIndexException) {
  Executor ex(4);
  std::atomic<int> completed{0};
  std::vector<Executor::Task> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back({1, [&, i] {
                       if (i == 3 || i == 11) {
                         throw std::runtime_error("task " + std::to_string(i));
                       }
                       ++completed;
                     }});
  }
  try {
    ex.run(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
  // The batch still drained: every non-throwing task ran.
  EXPECT_EQ(completed.load(), 14);
}

TEST(Executor, NestedRunFromWorkerExecutesInline) {
  Executor ex(2);
  std::atomic<int> inner{0};
  // Both outer tasks occupy the whole pool, then submit nested batches;
  // without the inline fallback this deadlocks.
  ex.run(weighted_tasks(2, 1, [&] {
    ex.run(weighted_tasks(8, 1, [&] { ++inner; }));
  }));
  EXPECT_EQ(inner.load(), 16);
}

TEST(Executor, ConcurrentBatchesShareThePool) {
  Executor ex(4);
  std::atomic<int> count{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back(
        [&] { ex.run(weighted_tasks(20, 2, [&] { ++count; })); });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(count.load(), 60);
}

TEST(Executor, ResolveWorkersPrecedence) {
  EXPECT_EQ(Executor::resolve_workers(3), 3);
  ::setenv("RESILIENCE_THREADS", "5", 1);
  EXPECT_EQ(Executor::resolve_workers(0), 5);
  EXPECT_EQ(Executor::resolve_workers(2), 2);  // explicit beats env
  ::unsetenv("RESILIENCE_THREADS");
  EXPECT_GE(Executor::resolve_workers(0), 1);
}

}  // namespace
}  // namespace resilience::harness
