#include "harness/campaign.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "apps/app.hpp"

namespace resilience::harness {
namespace {

TEST(Classify, FailureWhenRuntimeFailed) {
  RunOutput out;
  out.runtime.ok = false;
  EXPECT_EQ(CampaignRunner::classify(out, {1.0}, 1e-10), Outcome::Failure);
}

TEST(Classify, SuccessOnBitIdenticalOutput) {
  RunOutput out;
  out.runtime.ok = true;
  out.result = apps::AppResult{.signature = {1.0, 2.0}, .iterations = 1};
  EXPECT_EQ(CampaignRunner::classify(out, {1.0, 2.0}, 1e-10),
            Outcome::Success);
}

TEST(Classify, SuccessWithinCheckerTolerance) {
  RunOutput out;
  out.runtime.ok = true;
  out.result = apps::AppResult{.signature = {1.0 + 1e-12}, .iterations = 1};
  EXPECT_EQ(CampaignRunner::classify(out, {1.0}, 1e-10), Outcome::Success);
}

TEST(Classify, SdcBeyondTolerance) {
  RunOutput out;
  out.runtime.ok = true;
  out.result = apps::AppResult{.signature = {1.001}, .iterations = 1};
  EXPECT_EQ(CampaignRunner::classify(out, {1.0}, 1e-10), Outcome::SDC);
}

TEST(Classify, NonFiniteOutputIsSdc) {
  RunOutput out;
  out.runtime.ok = true;
  out.result = apps::AppResult{
      .signature = {std::numeric_limits<double>::quiet_NaN()},
      .iterations = 1};
  EXPECT_EQ(CampaignRunner::classify(out, {1.0}, 1e-10), Outcome::SDC);
}

TEST(SignatureDeviation, RelativeAndInfinityCases) {
  EXPECT_DOUBLE_EQ(signature_deviation({2.0}, {1.0}), 1.0);
  EXPECT_DOUBLE_EQ(signature_deviation({1.0, 4.0}, {1.0, 2.0}), 1.0);
  EXPECT_TRUE(std::isinf(signature_deviation({1.0}, {1.0, 2.0})));
  EXPECT_TRUE(std::isinf(
      signature_deviation({std::numeric_limits<double>::infinity()}, {1.0})));
}

TEST(FaultInjectionResult, RatesAndMerge) {
  FaultInjectionResult r;
  r.add(Outcome::Success);
  r.add(Outcome::Success);
  r.add(Outcome::SDC);
  r.add(Outcome::Failure);
  EXPECT_EQ(r.trials, 4u);
  EXPECT_DOUBLE_EQ(r.success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.sdc_rate(), 0.25);
  EXPECT_DOUBLE_EQ(r.failure_rate(), 0.25);

  FaultInjectionResult other;
  other.add(Outcome::Success);
  r.merge(other);
  EXPECT_EQ(r.trials, 5u);
  EXPECT_EQ(r.success, 3u);
}

TEST(FaultInjectionResult, EmptyRatesAreZero) {
  const FaultInjectionResult r;
  EXPECT_EQ(r.success_rate(), 0.0);
  EXPECT_EQ(r.sdc_rate(), 0.0);
  EXPECT_EQ(r.failure_rate(), 0.0);
}

TEST(Campaign, OutcomeCountsSumToTrials) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 40;
  const auto result = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(result.overall.trials, 40u);
  EXPECT_EQ(result.overall.success + result.overall.sdc +
                result.overall.failure,
            40u);
  std::size_t hist_total = 0;
  for (std::size_t c : result.contamination_hist) hist_total += c;
  EXPECT_EQ(hist_total, 40u);
  // No test can contaminate zero ranks: the injection itself contaminates.
  EXPECT_EQ(result.contamination_hist[0], 0u);
}

TEST(Campaign, DeterministicInSeed) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 25;
  cfg.seed = 777;
  const auto a = CampaignRunner::run(*app, cfg);
  const auto b = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(a.overall.success, b.overall.success);
  EXPECT_EQ(a.overall.sdc, b.overall.sdc);
  EXPECT_EQ(a.overall.failure, b.overall.failure);
  EXPECT_EQ(a.contamination_hist, b.contamination_hist);
}

TEST(Campaign, DifferentSeedsDiffer) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 40;
  cfg.seed = 1;
  const auto a = CampaignRunner::run(*app, cfg);
  cfg.seed = 2;
  const auto b = CampaignRunner::run(*app, cfg);
  // Statistically certain to differ somewhere.
  EXPECT_TRUE(a.overall.success != b.overall.success ||
              a.contamination_hist != b.contamination_hist);
}

TEST(Campaign, ConditionalResultsPartitionOverall) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 30;
  const auto result = CampaignRunner::run(*app, cfg);
  FaultInjectionResult merged;
  for (const auto& cond : result.by_contamination) merged.merge(cond);
  EXPECT_EQ(merged.trials, result.overall.trials);
  EXPECT_EQ(merged.success, result.overall.success);
}

TEST(Campaign, PropagationProbabilitiesSumToOne) {
  const auto app = apps::make_app(apps::AppId::MG);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 30;
  const auto result = CampaignRunner::run(*app, cfg);
  const auto r = result.propagation_probabilities();
  ASSERT_EQ(r.size(), 4u);
  double sum = 0.0;
  for (double v : r) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Campaign, MultiErrorSerialDeploymentRuns) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 1;
  cfg.errors_per_test = 8;
  cfg.trials = 20;
  cfg.scenario.regions = fsefi::RegionMask::Common;
  const auto result = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(result.overall.trials, 20u);
}

TEST(Campaign, MoreErrorsLowerSuccess) {
  const auto app = apps::make_app(apps::AppId::CG);
  DeploymentConfig one;
  one.nranks = 1;
  one.errors_per_test = 1;
  one.trials = 60;
  DeploymentConfig many = one;
  many.errors_per_test = 32;
  const auto r1 = CampaignRunner::run(*app, one);
  const auto r32 = CampaignRunner::run(*app, many);
  EXPECT_LE(r32.overall.success_rate(), r1.overall.success_rate());
}

TEST(Campaign, UniqueRegionDeploymentTargetsUniqueOps) {
  const auto app = apps::make_app(apps::AppId::FT);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 10;
  cfg.scenario.regions = fsefi::RegionMask::ParallelUnique;
  const auto result = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(result.overall.trials, 10u);
}

TEST(Campaign, UniqueRegionOnSerialIsEmptySampleSpace) {
  // Serial execution has no parallel-unique ops: the deployment is invalid.
  const auto app = apps::make_app(apps::AppId::FT);
  DeploymentConfig cfg;
  cfg.nranks = 1;
  cfg.scenario.regions = fsefi::RegionMask::ParallelUnique;
  EXPECT_THROW(CampaignRunner::run(*app, cfg), std::runtime_error);
}

TEST(Campaign, UniformRankSelectionWorks) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 20;
  cfg.selection = TargetSelection::UniformRank;
  const auto result = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(result.overall.trials, 20u);
}

TEST(Campaign, RejectsZeroErrors) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.errors_per_test = 0;
  EXPECT_THROW(CampaignRunner::run(*app, cfg), std::invalid_argument);
}

TEST(Campaign, GoldenIncludedInResult) {
  const auto app = apps::make_app(apps::AppId::MG);
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 5;
  const auto result = CampaignRunner::run(*app, cfg);
  EXPECT_FALSE(result.golden.signature.empty());
  EXPECT_EQ(result.golden.profiles.size(), 2u);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(OutcomeToString, AllValuesNamed) {
  EXPECT_STREQ(to_string(Outcome::Success), "Success");
  EXPECT_STREQ(to_string(Outcome::SDC), "SDC");
  EXPECT_STREQ(to_string(Outcome::Failure), "Failure");
}

}  // namespace
}  // namespace resilience::harness
