#include "harness/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "apps/app.hpp"

namespace resilience::harness {
namespace {

CampaignResult sample_campaign() {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 20;
  cfg.scenario.pattern = fsefi::FaultPattern::DoubleBit;
  cfg.seed = 99;
  return CampaignRunner::run(*app, cfg);
}

TEST(Serialize, JsonRoundTripPreservesEverything) {
  const auto original = sample_campaign();
  const auto restored =
      campaign_from_json(util::Json::parse(to_json(original).dump()));

  EXPECT_EQ(restored.config.nranks, original.config.nranks);
  EXPECT_EQ(restored.config.trials, original.config.trials);
  EXPECT_EQ(restored.config.seed, original.config.seed);
  EXPECT_EQ(static_cast<int>(restored.config.scenario.pattern),
            static_cast<int>(original.config.scenario.pattern));
  EXPECT_EQ(restored.overall.success, original.overall.success);
  EXPECT_EQ(restored.overall.sdc, original.overall.sdc);
  EXPECT_EQ(restored.overall.failure, original.overall.failure);
  EXPECT_EQ(restored.contamination_hist, original.contamination_hist);
  ASSERT_EQ(restored.by_contamination.size(),
            original.by_contamination.size());
  for (std::size_t i = 0; i < restored.by_contamination.size(); ++i) {
    EXPECT_EQ(restored.by_contamination[i].success,
              original.by_contamination[i].success);
  }
  EXPECT_EQ(restored.golden.signature, original.golden.signature);
  EXPECT_EQ(restored.golden.max_rank_ops, original.golden.max_rank_ops);
  ASSERT_EQ(restored.golden.profiles.size(), original.golden.profiles.size());
  for (std::size_t r = 0; r < restored.golden.profiles.size(); ++r) {
    EXPECT_EQ(restored.golden.profiles[r].total(),
              original.golden.profiles[r].total());
  }
  EXPECT_DOUBLE_EQ(restored.wall_seconds, original.wall_seconds);
}

TEST(Serialize, RestoredCampaignFeedsTheModel) {
  // Propagation probabilities — the model's input — survive the round trip.
  const auto original = sample_campaign();
  const auto restored =
      campaign_from_json(util::Json::parse(to_json(original).dump()));
  EXPECT_EQ(restored.propagation_probabilities(),
            original.propagation_probabilities());
}

TEST(Serialize, FileRoundTrip) {
  const auto original = sample_campaign();
  const std::string path = ::testing::TempDir() + "/resilience_campaign.json";
  save_campaign(path, original);
  const auto restored = load_campaign(path);
  EXPECT_EQ(restored.overall.success, original.overall.success);
  EXPECT_EQ(restored.contamination_hist, original.contamination_hist);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_campaign("/nonexistent_dir_xyz/campaign.json"),
               std::runtime_error);
  const auto original = sample_campaign();
  EXPECT_THROW(save_campaign("/nonexistent_dir_xyz/campaign.json", original),
               std::runtime_error);
}

TEST(Serialize, SchemaVersionEnforced) {
  auto json = to_json(sample_campaign());
  util::JsonObject obj = json.as_object();
  obj["version"] = util::Json(999);
  EXPECT_THROW(campaign_from_json(util::Json(std::move(obj))),
               util::JsonError);
}

TEST(Serialize, InconsistentCountsRejected) {
  auto json = to_json(sample_campaign());
  util::JsonObject obj = json.as_object();
  util::JsonObject overall = obj["overall"].as_object();
  overall["success"] = util::Json(9999);
  obj["overall"] = util::Json(std::move(overall));
  EXPECT_THROW(campaign_from_json(util::Json(std::move(obj))),
               util::JsonError);
}

}  // namespace
}  // namespace resilience::harness
