// Whole-application differential tests of the instrumented-arithmetic
// fast path (DESIGN.md §8): every app, run with injections armed, must
// produce bit-identical observables under RESILIENCE_FAST_REAL=0 (the
// pre-countdown reference implementation) and the countdown + blocked-
// kernel fast path — op-count profiles, filtered-stream lengths,
// injection traces, contamination, output signatures, and whole campaign
// results. This is the acceptance gate that lets the fast path replace
// the reference implementation in every experiment.
#include <gtest/gtest.h>

#include "harness/campaign.hpp"

namespace resilience {
namespace {

using harness::CampaignRunner;
using harness::DeploymentConfig;

/// Restores the production default on scope exit.
struct FastRealRestore {
  ~FastRealRestore() { fsefi::set_fast_real_enabled(true); }
};

int small_rank_count(const apps::App& app) {
  for (const int n : {4, 2, 1}) {
    if (app.supports(n)) return n;
  }
  return 1;
}

harness::RunOutput run_mode(bool fast, const apps::App& app, int nranks,
                            const std::vector<fsefi::InjectionPlan>& plans,
                            const harness::RunOptions& opts = {}) {
  fsefi::set_fast_real_enabled(fast);
  return harness::run_app_once(app, nranks, plans, opts);
}

void expect_same_output(const harness::RunOutput& fast,
                        const harness::RunOutput& ref,
                        const std::string& label) {
  EXPECT_EQ(fast.runtime.ok, ref.runtime.ok) << label;
  EXPECT_EQ(fast.hang, ref.hang) << label;
  EXPECT_EQ(fast.result.has_value(), ref.result.has_value()) << label;
  if (fast.result && ref.result) {
    EXPECT_EQ(fast.result->signature, ref.result->signature) << label;
  }
  ASSERT_EQ(fast.profiles.size(), ref.profiles.size()) << label;
  for (std::size_t r = 0; r < ref.profiles.size(); ++r) {
    EXPECT_EQ(fast.profiles[r], ref.profiles[r]) << label << " rank " << r;
  }
  EXPECT_EQ(fast.filtered_ops, ref.filtered_ops) << label;
  EXPECT_EQ(fast.contaminated, ref.contaminated) << label;
  ASSERT_EQ(fast.injection_events.size(), ref.injection_events.size()) << label;
  for (std::size_t r = 0; r < ref.injection_events.size(); ++r) {
    EXPECT_EQ(fast.injection_events[r], ref.injection_events[r])
        << label << " rank " << r;
  }
}

TEST(FastRealDiff, EveryAppInjectedRunBitIdenticalToReference) {
  FastRealRestore restore;
  for (const auto id : apps::all_app_ids()) {
    const auto app = apps::make_app(id);
    const int nranks = small_rank_count(*app);

    // The golden pre-pass itself (unarmed contexts, blocked kernels on
    // the fast leg) must agree first: its per-rank op counts are the
    // sample space every plan below indexes into.
    fsefi::set_fast_real_enabled(false);
    const auto golden = harness::profile_app(*app, nranks);
    fsefi::set_fast_real_enabled(true);
    const auto golden_fast = harness::profile_app(*app, nranks);
    EXPECT_EQ(golden_fast.signature, golden.signature) << app->label();
    for (int r = 0; r < nranks; ++r) {
      EXPECT_EQ(golden_fast.profiles[static_cast<std::size_t>(r)],
                golden.profiles[static_cast<std::size_t>(r)])
          << app->label() << " golden rank " << r;
    }

    // Per-rank plans: flips spread across each rank's filtered stream
    // (start, interior, last), one high-exponent and one mantissa flip, a
    // multi-bit burst, and on rank 0 a duplicate-index double flip.
    std::vector<fsefi::InjectionPlan> plans(
        static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      auto& plan = plans[static_cast<std::size_t>(r)];
      const std::uint64_t matching =
          golden.profiles[static_cast<std::size_t>(r)].matching(
              plan.kinds, plan.regions);
      ASSERT_GT(matching, 8u) << app->label() << " rank " << r;
      plan.points = {
          {.op_index = 0, .operand = 0, .bit = 12},
          {.op_index = matching / 3, .operand = 1, .bit = 57},
          {.op_index = matching / 2, .operand = 0, .bit = 40, .width = 4},
          {.op_index = matching - 1, .operand = 1, .bit = 3},
      };
      if (r == 0) {
        plan.points.insert(plan.points.begin() + 1,
                           {.op_index = matching / 3, .operand = 1, .bit = 5});
      }
    }

    const auto ref = run_mode(false, *app, nranks, plans);
    const auto fast = run_mode(true, *app, nranks, plans);
    expect_same_output(fast, ref, app->label());
    // The plans were built to perform every flip.
    for (int r = 0; r < nranks; ++r) {
      EXPECT_EQ(fast.injection_events[static_cast<std::size_t>(r)].size(),
                plans[static_cast<std::size_t>(r)].points.size())
          << app->label() << " rank " << r;
      EXPECT_TRUE(fast.contaminated[static_cast<std::size_t>(r)])
          << app->label() << " rank " << r;
    }
  }
}

TEST(FastRealDiff, HangBudgetRunBitIdenticalToReference) {
  FastRealRestore restore;
  const auto app = apps::make_app(apps::AppId::CG);
  const int nranks = small_rank_count(*app);
  fsefi::set_fast_real_enabled(true);
  const auto golden = harness::profile_app(*app, nranks);

  // A budget below the fault-free op count: every rank hits the guard at
  // a deterministic op in both modes, and the run classifies as a hang.
  harness::RunOptions opts;
  opts.op_budget = golden.max_rank_ops / 2;
  const std::vector<fsefi::InjectionPlan> plans(
      static_cast<std::size_t>(nranks));

  const auto ref = run_mode(false, *app, nranks, plans, opts);
  const auto fast = run_mode(true, *app, nranks, plans, opts);
  EXPECT_FALSE(fast.runtime.ok);
  EXPECT_TRUE(fast.hang);
  EXPECT_EQ(fast.runtime.ok, ref.runtime.ok);
  EXPECT_EQ(fast.hang, ref.hang);
}

TEST(FastRealDiff, CampaignBitIdenticalToReference) {
  FastRealRestore restore;
  for (const auto id : {apps::AppId::CG, apps::AppId::MG}) {
    const auto app = apps::make_app(id);
    DeploymentConfig cfg;
    cfg.nranks = 4;
    cfg.trials = 25;
    cfg.seed = 20180813;

    fsefi::set_fast_real_enabled(false);
    const auto ref = CampaignRunner::run(*app, cfg);
    fsefi::set_fast_real_enabled(true);
    const auto fast = CampaignRunner::run(*app, cfg);

    const std::string label = app->label();
    EXPECT_EQ(fast.overall.trials, ref.overall.trials) << label;
    EXPECT_EQ(fast.overall.success, ref.overall.success) << label;
    EXPECT_EQ(fast.overall.sdc, ref.overall.sdc) << label;
    EXPECT_EQ(fast.overall.failure, ref.overall.failure) << label;
    EXPECT_EQ(fast.contamination_hist, ref.contamination_hist) << label;
    ASSERT_EQ(fast.by_contamination.size(), ref.by_contamination.size())
        << label;
    for (std::size_t x = 0; x < ref.by_contamination.size(); ++x) {
      EXPECT_EQ(fast.by_contamination[x].trials, ref.by_contamination[x].trials)
          << label << " x=" << x;
      EXPECT_EQ(fast.by_contamination[x].sdc, ref.by_contamination[x].sdc)
          << label << " x=" << x;
    }
    EXPECT_EQ(fast.golden.signature, ref.golden.signature) << label;
  }
}

}  // namespace
}  // namespace resilience
