// Telemetry determinism gates (DESIGN.md §10): telemetry is execution
// policy only. Every app, at two rank counts, must produce bit-identical
// campaign results with metrics+tracing enabled and disabled; and two
// runs with the same seed must report identical logical counters and
// histograms (the timing-born diagnostics are exempt — see is_logical).
#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "core/study.hpp"
#include "simmpi/runtime.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience {
namespace {

using harness::CampaignRunner;
using harness::DeploymentConfig;
using telemetry::Counter;

/// Restores the production default on scope exit.
struct MetricsRestore {
  ~MetricsRestore() { telemetry::set_metrics_enabled(true); }
};

std::vector<int> rank_counts(const apps::App& app) {
  std::vector<int> out;
  for (const int n : {2, 4}) {
    if (app.supports(n)) out.push_back(n);
  }
  if (out.size() < 2 && app.supports(1)) out.insert(out.begin(), 1);
  return out;
}

void expect_same_campaign(const harness::CampaignResult& a,
                          const harness::CampaignResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.overall.trials, b.overall.trials) << label;
  EXPECT_EQ(a.overall.success, b.overall.success) << label;
  EXPECT_EQ(a.overall.sdc, b.overall.sdc) << label;
  EXPECT_EQ(a.overall.failure, b.overall.failure) << label;
  EXPECT_EQ(a.contamination_hist, b.contamination_hist) << label;
  ASSERT_EQ(a.by_contamination.size(), b.by_contamination.size()) << label;
  for (std::size_t x = 0; x < b.by_contamination.size(); ++x) {
    EXPECT_EQ(a.by_contamination[x].trials, b.by_contamination[x].trials)
        << label << " x=" << x;
    EXPECT_EQ(a.by_contamination[x].success, b.by_contamination[x].success)
        << label << " x=" << x;
    EXPECT_EQ(a.by_contamination[x].sdc, b.by_contamination[x].sdc)
        << label << " x=" << x;
    EXPECT_EQ(a.by_contamination[x].failure, b.by_contamination[x].failure)
        << label << " x=" << x;
  }
  EXPECT_EQ(a.golden.signature, b.golden.signature) << label;
}

TEST(TelemetryDiff, EveryAppCampaignBitIdenticalTelemetryOnVsOff) {
  MetricsRestore restore;
  for (const auto id : apps::all_app_ids()) {
    const auto app = apps::make_app(id);
    for (const int nranks : rank_counts(*app)) {
      DeploymentConfig cfg;
      cfg.nranks = nranks;
      cfg.trials = 15;
      cfg.seed = 20180813;
      const std::string label = app->label() + " p=" + std::to_string(nranks);

      // "On" leg: metrics enabled AND an active trace session, so every
      // span/instant call site in the stack actually emits.
      telemetry::set_metrics_enabled(true);
      auto sink = std::make_shared<telemetry::MemorySink>();
      telemetry::TraceSession::start(sink);
      const auto on = CampaignRunner::run(*app, cfg);
      telemetry::TraceSession::stop();
      EXPECT_FALSE(sink->events().empty()) << label;
      EXPECT_EQ(on.metrics.value(Counter::HarnessTrials), cfg.trials)
          << label;

      telemetry::set_metrics_enabled(false);
      const auto off = CampaignRunner::run(*app, cfg);
      telemetry::set_metrics_enabled(true);
      EXPECT_TRUE(off.metrics.empty()) << label;

      expect_same_campaign(on, off, label);
    }
  }
}

TEST(TelemetryDiff, SameSeedTwiceReportsIdenticalLogicalCounters) {
  for (const auto id : apps::all_app_ids()) {
    const auto app = apps::make_app(id);
    const int nranks = app->supports(4) ? 4 : 2;
    DeploymentConfig cfg;
    cfg.nranks = nranks;
    cfg.trials = 15;
    cfg.seed = 20180813;
    const std::string label = app->label() + " p=" + std::to_string(nranks);

    const auto first = CampaignRunner::run(*app, cfg);
    const auto second = CampaignRunner::run(*app, cfg);
    expect_same_campaign(first, second, label);
    EXPECT_TRUE(first.metrics.logical_equal(second.metrics)) << label;
    EXPECT_EQ(first.metrics.value(Counter::HarnessTrials), cfg.trials)
        << label;
    EXPECT_EQ(first.metrics.value(Counter::HarnessCampaigns), 1u) << label;
    EXPECT_EQ(first.metrics.value(Counter::HarnessGoldenProfiles), 1u)
        << label;
    EXPECT_EQ(
        first.metrics.histogram(telemetry::Histogram::HarnessContaminatedRanks)
            .total(),
        cfg.trials)
        << label;
  }
}

TEST(TelemetryDiff, FiberMigrationRollsUpEveryCountExactlyOnce) {
  // Under the fiber scheduler a rank's telemetry lane migrates across
  // worker threads whenever its fiber is resumed elsewhere. The campaign
  // rollup must still fold every shard exactly once: the logical view of
  // a multi-worker fibers campaign equals the threads-core view bit for
  // bit, and the absolute harness counters match the trial count (a
  // double-fold or dropped shard would show up here, not just as an
  // inequality between legs).
  const auto app = apps::make_app(apps::AppId::MG);
  DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 15;
  cfg.seed = 20180813;

  simmpi::detail::set_scheduler_fibers_enabled(true);
  simmpi::detail::set_scheduler_workers(4);  // force cross-worker migration
  const auto fibers = CampaignRunner::run(*app, cfg);
  simmpi::detail::set_scheduler_fibers_enabled(false);
  simmpi::detail::set_scheduler_workers(-1);
  const auto threads = CampaignRunner::run(*app, cfg);
  simmpi::detail::reset_scheduler_fibers_enabled();

  expect_same_campaign(fibers, threads, "fibers@4workers vs threads");
  EXPECT_TRUE(fibers.metrics.logical_equal(threads.metrics));
  EXPECT_EQ(fibers.metrics.value(Counter::HarnessTrials), cfg.trials);
  EXPECT_EQ(fibers.metrics.value(Counter::HarnessCampaigns), 1u);
  EXPECT_EQ(fibers.metrics.value(Counter::HarnessGoldenProfiles), 1u);
  EXPECT_EQ(
      fibers.metrics.histogram(telemetry::Histogram::HarnessContaminatedRanks)
          .total(),
      cfg.trials);
}

TEST(TelemetryDiff, StudyBitIdenticalTelemetryOnVsOff) {
  MetricsRestore restore;
  const auto app = apps::make_app(apps::AppId::CG);
  core::StudyConfig cfg;
  cfg.small_p = 2;
  cfg.large_p = 4;
  cfg.trials = 12;

  telemetry::set_metrics_enabled(true);
  const auto on = core::run_study(*app, cfg);
  telemetry::set_metrics_enabled(false);
  const auto off = core::run_study(*app, cfg);
  telemetry::set_metrics_enabled(true);

  EXPECT_EQ(on.prediction.combined.success, off.prediction.combined.success);
  EXPECT_EQ(on.prediction.combined.sdc, off.prediction.combined.sdc);
  EXPECT_EQ(on.prediction.combined.failure, off.prediction.combined.failure);
  EXPECT_EQ(on.prob_unique, off.prob_unique);
  ASSERT_EQ(on.sweep.results.size(), off.sweep.results.size());
  for (std::size_t i = 0; i < off.sweep.results.size(); ++i) {
    EXPECT_EQ(on.sweep.results[i].success, off.sweep.results[i].success)
        << "sweep " << i;
    EXPECT_EQ(on.sweep.results[i].sdc, off.sweep.results[i].sdc)
        << "sweep " << i;
  }
  ASSERT_TRUE(on.measured_large.has_value());
  ASSERT_TRUE(off.measured_large.has_value());
  EXPECT_EQ(on.measured_large->success, off.measured_large->success);
  EXPECT_EQ(on.measured_large->sdc, off.measured_large->sdc);
  EXPECT_EQ(on.measured_large->failure, off.measured_large->failure);

  // The on leg rolled up its campaigns; the off leg collected nothing.
  EXPECT_GT(on.metrics.value(Counter::CoreStudyPhases), 0u);
  EXPECT_GT(on.metrics.value(Counter::HarnessCampaigns), 0u);
  EXPECT_TRUE(off.metrics.empty());
}

}  // namespace
}  // namespace resilience
