// Scheduling-independence stress tests: campaign results must be a pure
// function of (app, config) regardless of how the OS interleaves the rank
// threads. This is what makes every number in EXPERIMENTS.md exactly
// reproducible, and what the profiling pre-pass's dynamic-op indices rely
// on.
#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "simmpi/rank_team.hpp"
#include "simmpi/rendezvous.hpp"

namespace resilience {
namespace {

using harness::CampaignRunner;
using harness::DeploymentConfig;

TEST(Determinism, SixteenRankCampaignIdenticalAcrossRepeats) {
  const auto app = apps::make_app(apps::AppId::CG);
  DeploymentConfig cfg;
  cfg.nranks = 16;
  cfg.trials = 30;
  cfg.seed = 4242;
  const auto first = CampaignRunner::run(*app, cfg);
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto again = CampaignRunner::run(*app, cfg);
    EXPECT_EQ(again.overall.success, first.overall.success);
    EXPECT_EQ(again.overall.sdc, first.overall.sdc);
    EXPECT_EQ(again.overall.failure, first.overall.failure);
    EXPECT_EQ(again.contamination_hist, first.contamination_hist);
    EXPECT_EQ(again.golden.signature, first.golden.signature);
  }
}

TEST(Determinism, EveryAppGoldenStableAtEightRanks) {
  for (const auto id : apps::all_app_ids()) {
    const auto app = apps::make_app(id);
    const auto a = harness::profile_app(*app, 8);
    const auto b = harness::profile_app(*app, 8);
    EXPECT_EQ(a.signature, b.signature) << app->label();
    for (std::size_t r = 0; r < 8; ++r) {
      // Per-rank dynamic op counts are the injection sample space: any
      // scheduling sensitivity here would corrupt index targeting.
      EXPECT_EQ(a.profiles[r].total(), b.profiles[r].total())
          << app->label() << " rank " << r;
      EXPECT_EQ(a.profiles[r].matching(fsefi::KindMask::AddMul,
                                       fsefi::RegionMask::All),
                b.profiles[r].matching(fsefi::KindMask::AddMul,
                                       fsefi::RegionMask::All))
          << app->label() << " rank " << r;
    }
  }
}

TEST(Determinism, InjectedRunReplaysExactly) {
  // Re-running one trial's plan reproduces the identical outcome and
  // contamination pattern — the debugging workflow the seeded design
  // exists for.
  const auto app = apps::make_app(apps::AppId::FT);
  const auto golden = harness::profile_app(*app, 8);
  std::vector<fsefi::InjectionPlan> plans(8);
  plans[3].points = {{.op_index = 777, .operand = 1, .bit = 51}};
  const auto a = harness::run_app_once(*app, 8, plans);
  const auto b = harness::run_app_once(*app, 8, plans);
  EXPECT_EQ(a.runtime.ok, b.runtime.ok);
  EXPECT_EQ(a.contaminated, b.contaminated);
  if (a.result && b.result) {
    EXPECT_EQ(a.result->signature, b.result->signature);
  }
  EXPECT_EQ(
      CampaignRunner::classify(a, golden.signature, app->checker_tolerance()),
      CampaignRunner::classify(b, golden.signature, app->checker_tolerance()));
}

// The parallel campaign executor's determinism contract: for the same
// seed, any worker count produces the same CampaignResult bit for bit —
// overall counts, contamination histogram, and the per-contamination
// splits. Exercised across two apps, a serial deployment and a
// small-parallel one (rank-weighted admission path).
TEST(Determinism, ParallelCampaignBitIdenticalToSerial) {
  struct Case {
    apps::AppId id;
    int nranks;
  };
  for (const Case c : {Case{apps::AppId::LU, 1}, Case{apps::AppId::LU, 4},
                       Case{apps::AppId::MG, 1}, Case{apps::AppId::MG, 4}}) {
    const auto app = apps::make_app(c.id);
    DeploymentConfig cfg;
    cfg.nranks = c.nranks;
    cfg.trials = 40;
    cfg.seed = 20180813;
    if (c.nranks == 1) cfg.regions = fsefi::RegionMask::Common;

    cfg.max_workers = 1;
    const auto serial = CampaignRunner::run(*app, cfg);
    for (const int workers : {3, 8}) {
      cfg.max_workers = workers;
      const auto parallel = CampaignRunner::run(*app, cfg);
      const auto label =
          app->label() + " @" + std::to_string(c.nranks) + " ranks, " +
          std::to_string(workers) + " workers";
      EXPECT_EQ(parallel.overall.trials, serial.overall.trials) << label;
      EXPECT_EQ(parallel.overall.success, serial.overall.success) << label;
      EXPECT_EQ(parallel.overall.sdc, serial.overall.sdc) << label;
      EXPECT_EQ(parallel.overall.failure, serial.overall.failure) << label;
      EXPECT_EQ(parallel.contamination_hist, serial.contamination_hist)
          << label;
      ASSERT_EQ(parallel.by_contamination.size(),
                serial.by_contamination.size())
          << label;
      for (std::size_t x = 0; x < serial.by_contamination.size(); ++x) {
        EXPECT_EQ(parallel.by_contamination[x].trials,
                  serial.by_contamination[x].trials)
            << label << " x=" << x;
        EXPECT_EQ(parallel.by_contamination[x].success,
                  serial.by_contamination[x].success)
            << label << " x=" << x;
        EXPECT_EQ(parallel.by_contamination[x].sdc,
                  serial.by_contamination[x].sdc)
            << label << " x=" << x;
      }
      EXPECT_EQ(parallel.golden.signature, serial.golden.signature) << label;
    }
  }
}

// The simmpi fast path's determinism contract: a campaign run on pooled
// rank teams with rendezvous collectives is bit-identical to one run on
// freshly spawned threads with mailbox collectives, across worker counts
// (team reuse included — the parallel run revisits pooled teams many
// times). The toggles default on, so the "fast" legs also guard the
// production configuration.
TEST(Determinism, PooledFastPathCampaignBitIdenticalToBaseline) {
  const auto app = apps::make_app(apps::AppId::CG);
  DeploymentConfig cfg;
  cfg.nranks = 8;
  cfg.trials = 30;
  cfg.seed = 20180813;

  struct Leg {
    bool fast;
    std::size_t workers;
  };
  harness::CampaignResult baseline;
  bool have_baseline = false;
  for (const Leg leg : {Leg{false, 1}, Leg{false, 8}, Leg{true, 1},
                        Leg{true, 8}, Leg{true, 8}}) {
    simmpi::detail::set_fast_collectives_enabled(leg.fast);
    simmpi::RankTeamPool::set_enabled(leg.fast);
    cfg.max_workers = leg.workers;
    const auto got = CampaignRunner::run(*app, cfg);
    if (!have_baseline) {
      baseline = got;
      have_baseline = true;
      continue;
    }
    const std::string label = std::string(leg.fast ? "fast" : "slow") + " @" +
                              std::to_string(leg.workers) + " workers";
    EXPECT_EQ(got.overall.success, baseline.overall.success) << label;
    EXPECT_EQ(got.overall.sdc, baseline.overall.sdc) << label;
    EXPECT_EQ(got.overall.failure, baseline.overall.failure) << label;
    EXPECT_EQ(got.contamination_hist, baseline.contamination_hist) << label;
    EXPECT_EQ(got.golden.signature, baseline.golden.signature) << label;
  }
  simmpi::detail::set_fast_collectives_enabled(true);
  simmpi::RankTeamPool::set_enabled(true);
}

TEST(Determinism, ParallelCampaignWithFewerTrialsThanWorkers) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 3;  // fewer than the worker count
  cfg.seed = 99;
  cfg.max_workers = 1;
  const auto serial = CampaignRunner::run(*app, cfg);
  cfg.max_workers = 8;
  const auto parallel = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(parallel.overall.success, serial.overall.success);
  EXPECT_EQ(parallel.overall.sdc, serial.overall.sdc);
  EXPECT_EQ(parallel.overall.failure, serial.overall.failure);
  EXPECT_EQ(parallel.contamination_hist, serial.contamination_hist);
}

TEST(Determinism, Cg2dStableUnderThreadScheduling) {
  // The 2D decomposition adds split communicators, transpose exchanges
  // and merge traffic; repeat runs must still agree bit for bit.
  const auto app = apps::make_app(apps::AppId::CG, "2D");
  const auto a = harness::profile_app(*app, 16);
  const auto b = harness::profile_app(*app, 16);
  EXPECT_EQ(a.signature, b.signature);
}

}  // namespace
}  // namespace resilience
