// Scheduling-independence stress tests: campaign results must be a pure
// function of (app, config) regardless of how the OS interleaves the rank
// threads. This is what makes every number in EXPERIMENTS.md exactly
// reproducible, and what the profiling pre-pass's dynamic-op indices rely
// on.
#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "simmpi/rank_team.hpp"
#include "simmpi/runtime.hpp"

namespace resilience {
namespace {

using harness::CampaignRunner;
using harness::DeploymentConfig;

TEST(Determinism, SixteenRankCampaignIdenticalAcrossRepeats) {
  const auto app = apps::make_app(apps::AppId::CG);
  DeploymentConfig cfg;
  cfg.nranks = 16;
  cfg.trials = 30;
  cfg.seed = 4242;
  const auto first = CampaignRunner::run(*app, cfg);
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto again = CampaignRunner::run(*app, cfg);
    EXPECT_EQ(again.overall.success, first.overall.success);
    EXPECT_EQ(again.overall.sdc, first.overall.sdc);
    EXPECT_EQ(again.overall.failure, first.overall.failure);
    EXPECT_EQ(again.contamination_hist, first.contamination_hist);
    EXPECT_EQ(again.golden.signature, first.golden.signature);
  }
}

TEST(Determinism, EveryAppGoldenStableAtEightRanks) {
  for (const auto id : apps::all_app_ids()) {
    const auto app = apps::make_app(id);
    const auto a = harness::profile_app(*app, 8);
    const auto b = harness::profile_app(*app, 8);
    EXPECT_EQ(a.signature, b.signature) << app->label();
    for (std::size_t r = 0; r < 8; ++r) {
      // Per-rank dynamic op counts are the injection sample space: any
      // scheduling sensitivity here would corrupt index targeting.
      EXPECT_EQ(a.profiles[r].total(), b.profiles[r].total())
          << app->label() << " rank " << r;
      EXPECT_EQ(a.profiles[r].matching(fsefi::KindMask::AddMul,
                                       fsefi::RegionMask::All),
                b.profiles[r].matching(fsefi::KindMask::AddMul,
                                       fsefi::RegionMask::All))
          << app->label() << " rank " << r;
    }
  }
}

TEST(Determinism, InjectedRunReplaysExactly) {
  // Re-running one trial's plan reproduces the identical outcome and
  // contamination pattern — the debugging workflow the seeded design
  // exists for.
  const auto app = apps::make_app(apps::AppId::FT);
  const auto golden = harness::profile_app(*app, 8);
  std::vector<fsefi::InjectionPlan> plans(8);
  plans[3].points = {{.op_index = 777, .operand = 1, .bit = 51}};
  const auto a = harness::run_app_once(*app, 8, plans);
  const auto b = harness::run_app_once(*app, 8, plans);
  EXPECT_EQ(a.runtime.ok, b.runtime.ok);
  EXPECT_EQ(a.contaminated, b.contaminated);
  if (a.result && b.result) {
    EXPECT_EQ(a.result->signature, b.result->signature);
  }
  EXPECT_EQ(
      CampaignRunner::classify(a, golden.signature, app->checker_tolerance()),
      CampaignRunner::classify(b, golden.signature, app->checker_tolerance()));
}

// The parallel campaign executor's determinism contract: for the same
// seed, any worker count produces the same CampaignResult bit for bit —
// overall counts, contamination histogram, and the per-contamination
// splits. Exercised across two apps, a serial deployment and a
// small-parallel one (rank-weighted admission path).
TEST(Determinism, ParallelCampaignBitIdenticalToSerial) {
  struct Case {
    apps::AppId id;
    int nranks;
  };
  for (const Case c : {Case{apps::AppId::LU, 1}, Case{apps::AppId::LU, 4},
                       Case{apps::AppId::MG, 1}, Case{apps::AppId::MG, 4}}) {
    const auto app = apps::make_app(c.id);
    DeploymentConfig cfg;
    cfg.nranks = c.nranks;
    cfg.trials = 40;
    cfg.seed = 20180813;
    if (c.nranks == 1) cfg.scenario.regions = fsefi::RegionMask::Common;

    cfg.max_workers = 1;
    const auto serial = CampaignRunner::run(*app, cfg);
    for (const int workers : {3, 8}) {
      cfg.max_workers = workers;
      const auto parallel = CampaignRunner::run(*app, cfg);
      const auto label =
          app->label() + " @" + std::to_string(c.nranks) + " ranks, " +
          std::to_string(workers) + " workers";
      EXPECT_EQ(parallel.overall.trials, serial.overall.trials) << label;
      EXPECT_EQ(parallel.overall.success, serial.overall.success) << label;
      EXPECT_EQ(parallel.overall.sdc, serial.overall.sdc) << label;
      EXPECT_EQ(parallel.overall.failure, serial.overall.failure) << label;
      EXPECT_EQ(parallel.contamination_hist, serial.contamination_hist)
          << label;
      ASSERT_EQ(parallel.by_contamination.size(),
                serial.by_contamination.size())
          << label;
      for (std::size_t x = 0; x < serial.by_contamination.size(); ++x) {
        EXPECT_EQ(parallel.by_contamination[x].trials,
                  serial.by_contamination[x].trials)
            << label << " x=" << x;
        EXPECT_EQ(parallel.by_contamination[x].success,
                  serial.by_contamination[x].success)
            << label << " x=" << x;
        EXPECT_EQ(parallel.by_contamination[x].sdc,
                  serial.by_contamination[x].sdc)
            << label << " x=" << x;
      }
      EXPECT_EQ(parallel.golden.signature, serial.golden.signature) << label;
    }
  }
}

// The execution-core determinism contract: a campaign is a pure function
// of (app, config) no matter which scheduler runs it — fibers with fused
// collectives (the default), fibers decomposing collectives into mailbox
// messages, or the threads reference core on pooled teams or fresh
// threads — and no matter how many campaign workers or scheduler workers
// drive it. The fused/fibers legs guard the production configuration.
TEST(Determinism, SchedulerModeCampaignBitIdenticalAcrossCores) {
  const auto app = apps::make_app(apps::AppId::CG);
  DeploymentConfig cfg;
  cfg.nranks = 8;
  cfg.trials = 30;
  cfg.seed = 20180813;

  struct Leg {
    const char* name;
    bool fibers;
    bool fused;
    bool team_pool;
    int sched_workers;        // fibers mode only; 0 = auto
    std::size_t max_workers;  // campaign executor width
  };
  const Leg legs[] = {
      {"threads/fresh", false, true, false, 0, 1},
      {"threads/pooled", false, true, true, 0, 8},
      {"fibers/fused/1w", true, true, true, 1, 1},
      {"fibers/fused/4w", true, true, true, 4, 8},
      {"fibers/fused/4w repeat", true, true, true, 4, 8},
      {"fibers/mailbox", true, false, true, 2, 8},
  };
  harness::CampaignResult baseline;
  bool have_baseline = false;
  for (const Leg& leg : legs) {
    simmpi::detail::set_scheduler_fibers_enabled(leg.fibers);
    simmpi::detail::set_fused_collectives_enabled(leg.fused);
    simmpi::detail::set_scheduler_workers(leg.sched_workers);
    simmpi::RankTeamPool::set_enabled(leg.team_pool);
    cfg.max_workers = leg.max_workers;
    const auto got = CampaignRunner::run(*app, cfg);
    if (!have_baseline) {
      baseline = got;
      have_baseline = true;
      continue;
    }
    EXPECT_EQ(got.overall.success, baseline.overall.success) << leg.name;
    EXPECT_EQ(got.overall.sdc, baseline.overall.sdc) << leg.name;
    EXPECT_EQ(got.overall.failure, baseline.overall.failure) << leg.name;
    EXPECT_EQ(got.contamination_hist, baseline.contamination_hist) << leg.name;
    EXPECT_EQ(got.golden.signature, baseline.golden.signature) << leg.name;
  }
  simmpi::detail::reset_scheduler_fibers_enabled();
  simmpi::detail::set_fused_collectives_enabled(true);
  simmpi::detail::set_scheduler_workers(-1);
  simmpi::RankTeamPool::set_enabled(true);
}

TEST(Determinism, ParallelCampaignWithFewerTrialsThanWorkers) {
  const auto app = apps::make_app(apps::AppId::LU);
  DeploymentConfig cfg;
  cfg.nranks = 2;
  cfg.trials = 3;  // fewer than the worker count
  cfg.seed = 99;
  cfg.max_workers = 1;
  const auto serial = CampaignRunner::run(*app, cfg);
  cfg.max_workers = 8;
  const auto parallel = CampaignRunner::run(*app, cfg);
  EXPECT_EQ(parallel.overall.success, serial.overall.success);
  EXPECT_EQ(parallel.overall.sdc, serial.overall.sdc);
  EXPECT_EQ(parallel.overall.failure, serial.overall.failure);
  EXPECT_EQ(parallel.contamination_hist, serial.contamination_hist);
}

TEST(Determinism, Cg2dStableUnderThreadScheduling) {
  // The 2D decomposition adds split communicators, transpose exchanges
  // and merge traffic; repeat runs must still agree bit for bit.
  const auto app = apps::make_app(apps::AppId::CG, "2D");
  const auto a = harness::profile_app(*app, 16);
  const auto b = harness::profile_app(*app, 16);
  EXPECT_EQ(a.signature, b.signature);
}

}  // namespace
}  // namespace resilience
