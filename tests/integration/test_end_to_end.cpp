// Integration tests exercising the full stack — apps over simmpi under
// fsefi instrumentation, driven by the harness and fed into the model —
// validating the paper's observations hold inside this system.
#include <gtest/gtest.h>

#include "core/similarity.hpp"
#include "core/study.hpp"

namespace resilience {
namespace {

TEST(EndToEnd, Observation3PropagationSimilarAcrossScales) {
  // Paper Observation 3: the small-scale propagation profile is a strong
  // indication of the large-scale one (8V64-style comparison at 4V16 to
  // keep the test fast).
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig small_cfg;
  small_cfg.nranks = 4;
  small_cfg.trials = 60;
  harness::DeploymentConfig large_cfg;
  large_cfg.nranks = 16;
  large_cfg.trials = 60;
  const auto small = harness::CampaignRunner::run(*app, small_cfg);
  const auto large = harness::CampaignRunner::run(*app, large_cfg);
  const double cosine = core::propagation_similarity(
      core::PropagationProfile::from_campaign(small),
      core::PropagationProfile::from_campaign(large));
  EXPECT_GT(cosine, 0.9);
}

TEST(EndToEnd, InjectionLandsExactlyWhereProfiled) {
  // The profiling pre-pass and the injected run must agree on the dynamic
  // op stream: an injection planned at the last eligible op really fires.
  const auto app = apps::make_app(apps::AppId::MG);
  const auto golden = harness::profile_app(*app, 2);
  for (int rank = 0; rank < 2; ++rank) {
    const auto eligible =
        golden.profiles[static_cast<std::size_t>(rank)].matching(
            fsefi::KindMask::AddMul, fsefi::RegionMask::All);
    ASSERT_GT(eligible, 0u);
    std::vector<fsefi::InjectionPlan> plans(2);
    plans[static_cast<std::size_t>(rank)].points = {
        {.op_index = eligible - 1, .operand = 0, .bit = 1}};
    const auto out = harness::run_app_once(*app, 2, plans);
    EXPECT_TRUE(out.contaminated[static_cast<std::size_t>(rank)])
        << "rank " << rank;
  }
}

TEST(EndToEnd, SerialMultiErrorEmulationTrendsWithContamination) {
  // Paper Observation 4 (the weak form that holds by construction): the
  // serial success rate is non-increasing-ish in the number of injected
  // errors, mirroring more contaminated ranks being worse.
  const auto app = apps::make_app(apps::AppId::CG);
  std::vector<double> success;
  for (int errors : {1, 8, 32}) {
    harness::DeploymentConfig cfg;
    cfg.nranks = 1;
    cfg.errors_per_test = errors;
    cfg.trials = 50;
    cfg.scenario.regions = fsefi::RegionMask::Common;
    success.push_back(
        harness::CampaignRunner::run(*app, cfg).overall.success_rate());
  }
  EXPECT_GE(success[0] + 0.1, success[1]);
  EXPECT_GE(success[1] + 0.1, success[2]);
}

TEST(EndToEnd, ModelPredictsSixteenRanksFromSerialPlusFour) {
  // The headline claim at reduced scale: predict 16 ranks from serial + 4.
  const auto app = apps::make_app(apps::AppId::CG);
  core::StudyConfig cfg;
  cfg.small_p = 4;
  cfg.large_p = 16;
  cfg.trials = 80;
  const auto study = core::run_study(*app, cfg);
  EXPECT_LT(study.success_error(), 0.25);
}

TEST(EndToEnd, ContaminationConsistentWithOutcomeForCleanRuns) {
  // Any trial whose output is bit-identical to golden with only one rank
  // contaminated must have been an absorbed error. Verify campaign
  // bookkeeping: conditional results partition the overall counts.
  const auto app = apps::make_app(apps::AppId::PENNANT);
  harness::DeploymentConfig cfg;
  cfg.nranks = 4;
  cfg.trials = 40;
  const auto result = harness::CampaignRunner::run(*app, cfg);
  std::size_t conditional_trials = 0;
  for (const auto& c : result.by_contamination) conditional_trials += c.trials;
  EXPECT_EQ(conditional_trials, result.overall.trials);
  // Uncontaminated-beyond-one-rank trials dominate successes for PENNANT
  // (its propagation profile is mostly local).
  EXPECT_GT(result.by_contamination[1].trials, 0u);
}

}  // namespace
}  // namespace resilience
