// Whole-application differential tests of the golden-checkpoint fast
// path (DESIGN.md §9): every app, at several rank counts, must produce
// bit-identical observables with checkpoint fast-forward + early-exit
// pruning enabled and disabled — output signatures, op-count profiles,
// filtered-stream lengths, injection traces, contamination, and whole
// campaign results. This is the acceptance gate that lets campaigns skip
// fault-free prefixes and reconverged tails by default.
#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "harness/checkpoint.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience {
namespace {

using harness::CampaignRunner;
using harness::DeploymentConfig;

/// Restores the production default on scope exit.
struct CheckpointRestore {
  ~CheckpointRestore() { harness::set_checkpoint_enabled(true); }
};

std::vector<int> rank_counts(const apps::App& app) {
  std::vector<int> out;
  for (const int n : {2, 4}) {
    if (app.supports(n)) out.push_back(n);
  }
  if (out.size() < 2 && app.supports(1)) out.insert(out.begin(), 1);
  return out;
}

void expect_same_output(const harness::RunOutput& on,
                        const harness::RunOutput& off,
                        const std::string& label) {
  EXPECT_EQ(on.runtime.ok, off.runtime.ok) << label;
  EXPECT_EQ(on.hang, off.hang) << label;
  EXPECT_EQ(on.result.has_value(), off.result.has_value()) << label;
  if (on.result && off.result) {
    EXPECT_EQ(on.result->signature, off.result->signature) << label;
    EXPECT_EQ(on.result->iterations, off.result->iterations) << label;
  }
  ASSERT_EQ(on.profiles.size(), off.profiles.size()) << label;
  for (std::size_t r = 0; r < off.profiles.size(); ++r) {
    EXPECT_EQ(on.profiles[r], off.profiles[r]) << label << " rank " << r;
  }
  EXPECT_EQ(on.filtered_ops, off.filtered_ops) << label;
  EXPECT_EQ(on.contaminated, off.contaminated) << label;
  ASSERT_EQ(on.injection_events.size(), off.injection_events.size()) << label;
  for (std::size_t r = 0; r < off.injection_events.size(); ++r) {
    EXPECT_EQ(on.injection_events[r], off.injection_events[r])
        << label << " rank " << r;
  }
}

TEST(CheckpointDiff, EveryAppInjectedRunBitIdenticalToCheckpointOff) {
  CheckpointRestore restore;
  harness::set_checkpoint_enabled(true);
  std::size_t restored_runs = 0;
  std::size_t early_exits = 0;
  for (const auto id : apps::all_app_ids()) {
    const auto app = apps::make_app(id);
    for (const int nranks : rank_counts(*app)) {
      const auto golden =
          harness::profile_app(*app, nranks, std::chrono::milliseconds(10'000),
                               /*capture_checkpoints=*/true);
      ASSERT_NE(golden.checkpoints, nullptr)
          << app->label() << " at " << nranks << " ranks captured nothing";

      // One late single-flip plan per rank (deep in the filtered stream,
      // where fast-forward pays off), plus on rank 0 an *early* flip that
      // rules out any restore — both legs must agree in every case. Low
      // mantissa bits are used on half the ranks so some runs reconverge
      // and exercise the early exit.
      for (const bool late : {true, false}) {
        std::vector<fsefi::InjectionPlan> plans(
            static_cast<std::size_t>(nranks));
        for (int r = 0; r < nranks; ++r) {
          auto& plan = plans[static_cast<std::size_t>(r)];
          const std::uint64_t matching =
              golden.profiles[static_cast<std::size_t>(r)].matching(
                  plan.kinds, plan.regions);
          ASSERT_GT(matching, 8u) << app->label() << " rank " << r;
          const std::uint64_t index = late ? matching - 1 - matching / 8
                                           : (r == 0 ? 0 : matching / 2);
          plan.points = {{.op_index = index,
                          .operand = 0,
                          .bit = static_cast<std::uint8_t>(
                              (r % 2 == 0) ? 2 : 52)}};
        }

        const std::string label = app->label() + " p=" +
                                  std::to_string(nranks) +
                                  (late ? " late" : " early");
        harness::RunOptions on_opts;
        on_opts.checkpoints = golden.checkpoints.get();
        const auto on = harness::run_app_once(*app, nranks, plans, on_opts);
        const auto off = harness::run_app_once(*app, nranks, plans, {});
        expect_same_output(on, off, label);
        EXPECT_FALSE(off.checkpoint_restored) << label;
        if (on.checkpoint_restored) ++restored_runs;
        if (on.early_exit) ++early_exits;
      }
    }
  }
  // The late plans must actually engage the fast path somewhere, and the
  // low-bit flips must reconverge at least once.
  EXPECT_GT(restored_runs, 0u);
  EXPECT_GT(early_exits, 0u);
}

TEST(CheckpointDiff, HangBudgetRunBitIdenticalAtRestoredBoundary) {
  CheckpointRestore restore;
  harness::set_checkpoint_enabled(true);
  const auto app = apps::make_app(apps::AppId::CG);
  const int nranks = 2;
  const auto golden = harness::profile_app(
      *app, nranks, std::chrono::milliseconds(10'000),
      /*capture_checkpoints=*/true);
  ASSERT_NE(golden.checkpoints, nullptr);

  // A late plan makes the checkpoint leg restore; a budget between the
  // restored boundary and the end of the run must throw at the same
  // absolute op count on both legs because fast_forward() jumps the
  // counters to the golden values.
  std::vector<fsefi::InjectionPlan> plans(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto& plan = plans[static_cast<std::size_t>(r)];
    const std::uint64_t matching =
        golden.profiles[static_cast<std::size_t>(r)].matching(plan.kinds,
                                                              plan.regions);
    plan.points = {{.op_index = matching / 2, .operand = 0, .bit = 30}};
  }
  harness::RunOptions on_opts;
  on_opts.checkpoints = golden.checkpoints.get();
  harness::RunOptions off_opts;
  on_opts.op_budget = off_opts.op_budget = golden.max_rank_ops * 3 / 4;

  const auto on = harness::run_app_once(*app, nranks, plans, on_opts);
  const auto off = harness::run_app_once(*app, nranks, plans, off_opts);
  EXPECT_TRUE(on.checkpoint_restored);
  EXPECT_FALSE(on.runtime.ok);
  EXPECT_TRUE(on.hang);
  EXPECT_EQ(on.runtime.ok, off.runtime.ok);
  EXPECT_EQ(on.hang, off.hang);
}

TEST(CheckpointDiff, CampaignBitIdenticalToCheckpointOff) {
  CheckpointRestore restore;
  std::size_t total_restores = 0;
  std::size_t total_early_exits = 0;
  for (const auto id : apps::all_app_ids()) {
    const auto app = apps::make_app(id);
    for (const int nranks : rank_counts(*app)) {
      DeploymentConfig cfg;
      cfg.nranks = nranks;
      cfg.trials = 25;
      cfg.seed = 20180813;

      harness::set_checkpoint_enabled(false);
      const auto off = CampaignRunner::run(*app, cfg);
      harness::set_checkpoint_enabled(true);
      const auto on = CampaignRunner::run(*app, cfg);

      using telemetry::Counter;
      const std::string label = app->label() + " p=" + std::to_string(nranks);
      EXPECT_EQ(off.metrics.value(Counter::HarnessCheckpointRestores), 0u)
          << label;
      EXPECT_EQ(off.metrics.value(Counter::HarnessEarlyExits), 0u) << label;
      total_restores += on.metrics.value(Counter::HarnessCheckpointRestores);
      total_early_exits += on.metrics.value(Counter::HarnessEarlyExits);

      EXPECT_EQ(on.overall.trials, off.overall.trials) << label;
      EXPECT_EQ(on.overall.success, off.overall.success) << label;
      EXPECT_EQ(on.overall.sdc, off.overall.sdc) << label;
      EXPECT_EQ(on.overall.failure, off.overall.failure) << label;
      EXPECT_EQ(on.contamination_hist, off.contamination_hist) << label;
      ASSERT_EQ(on.by_contamination.size(), off.by_contamination.size())
          << label;
      for (std::size_t x = 0; x < off.by_contamination.size(); ++x) {
        EXPECT_EQ(on.by_contamination[x].trials, off.by_contamination[x].trials)
            << label << " x=" << x;
        EXPECT_EQ(on.by_contamination[x].success, off.by_contamination[x].success)
            << label << " x=" << x;
        EXPECT_EQ(on.by_contamination[x].sdc, off.by_contamination[x].sdc)
            << label << " x=" << x;
        EXPECT_EQ(on.by_contamination[x].failure, off.by_contamination[x].failure)
            << label << " x=" << x;
      }
      EXPECT_EQ(on.golden.signature, off.golden.signature) << label;
    }
  }
  EXPECT_GT(total_restores, 0u);
  EXPECT_GT(total_early_exits, 0u);
}

}  // namespace
}  // namespace resilience
