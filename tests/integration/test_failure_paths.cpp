// Failure-injection coverage: plant faults engineered to drive each app
// down its Failure paths (numerical guards, hang budget, mesh tangling)
// and check the harness classifies them as the paper's Failure outcome.
#include <gtest/gtest.h>

#include "apps/pennant.hpp"
#include "harness/campaign.hpp"

namespace resilience {
namespace {

using harness::CampaignRunner;
using harness::Outcome;

/// Run one planted-fault trial and classify it.
Outcome classify_planted(const apps::App& app, int nranks, int target_rank,
                         fsefi::InjectionPlan plan,
                         std::uint64_t op_budget = 0) {
  const auto golden = harness::profile_app(app, nranks);
  std::vector<fsefi::InjectionPlan> plans(static_cast<std::size_t>(nranks));
  plans[static_cast<std::size_t>(target_rank)] = std::move(plan);
  harness::RunOptions opts;
  opts.op_budget = op_budget;
  const auto out = harness::run_app_once(app, nranks, plans, opts);
  return CampaignRunner::classify(out, golden.signature,
                                  app.checker_tolerance());
}

TEST(FailurePaths, PennantSignBitStormTanglesTheMesh) {
  // Flipping the sign bit of many operands early in the run reverses
  // forces/velocities until a zone inverts: PENNANT's mesh-tangling guard
  // turns this into an abort, classified as Failure.
  const auto app = apps::make_app(apps::AppId::PENNANT);
  fsefi::InjectionPlan plan;
  for (std::uint64_t i = 0; i < 60; ++i) {
    plan.points.push_back({100 + i * 2, 0, 63, 1});
  }
  const Outcome outcome = classify_planted(*app, 1, 0, std::move(plan));
  EXPECT_EQ(outcome, Outcome::Failure);
}

TEST(FailurePaths, HangBudgetClassifiesAsFailure) {
  const auto app = apps::make_app(apps::AppId::MG);
  const Outcome outcome =
      classify_planted(*app, 1, 0, fsefi::InjectionPlan{}, /*op_budget=*/500);
  EXPECT_EQ(outcome, Outcome::Failure);
}

TEST(FailurePaths, ParallelAbortTearsDownAllRanks) {
  // A planted hang budget on one rank of a parallel job must end the whole
  // job (MPI_Abort semantics), not leave peers blocked.
  const auto app = apps::make_app(apps::AppId::LU);
  const auto golden = harness::profile_app(*app, 4);
  std::vector<fsefi::InjectionPlan> plans(4);
  harness::RunOptions opts;
  opts.op_budget = 200;  // every rank trips quickly; first to trip aborts
  const auto out = harness::run_app_once(*app, 4, plans, opts);
  EXPECT_FALSE(out.runtime.ok);
  EXPECT_TRUE(out.hang);
  EXPECT_EQ(CampaignRunner::classify(out, golden.signature,
                                     app->checker_tolerance()),
            Outcome::Failure);
}

TEST(FailurePaths, CampaignWithAggressiveFaultsSeesFailures) {
  // PENNANT under burst faults: its guards should convert some corrupted
  // states into Failure outcomes within a modest campaign.
  const auto app = apps::make_app(apps::AppId::PENNANT);
  harness::DeploymentConfig cfg;
  cfg.nranks = 1;
  cfg.trials = 120;
  cfg.errors_per_test = 4;
  cfg.scenario.pattern = fsefi::FaultPattern::Burst4;
  const auto result = CampaignRunner::run(*app, cfg);
  EXPECT_GT(result.overall.failure, 0u)
      << "expected at least one Failure among " << cfg.trials
      << " aggressive multi-burst trials";
}

TEST(FailurePaths, PennantStepExplosionHitsTheStepBudget) {
  // Corrupting dt-controlling values can push PENNANT into many tiny
  // steps; the step/op budget must convert that into Failure, not an
  // endless run. Use a tight op budget to emulate.
  apps::PennantApp::Config cfg = apps::PennantApp::config_for_class("leblanc");
  cfg.max_steps = 500;
  const apps::PennantApp app(cfg, "leblanc");
  const auto golden = harness::profile_app(app, 1);
  std::vector<fsefi::InjectionPlan> plans(1);
  harness::RunOptions opts;
  opts.op_budget = golden.profiles[0].total() / 2;  // less than fault-free
  const auto out = harness::run_app_once(app, 1, plans, opts);
  EXPECT_TRUE(out.hang);
}

}  // namespace
}  // namespace resilience
