// Sharded campaign execution (DESIGN.md §13): wire protocol round trips,
// coordinator/worker end-to-end determinism against the in-process
// runner, worker-crash recovery, golden-store reuse, and the StudyService
// request dispatcher.
//
// This binary has a custom main: the coordinator re-execs the test binary
// itself as its worker processes (--shard-worker=<fd>), so main must
// route to the worker loop before gtest ever sees argv.
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/campaign.hpp"
#include "harness/campaign_engine.hpp"
#include "harness/serialize.hpp"
#include "shard/coordinator.hpp"
#include "shard/protocol.hpp"
#include "shard/service.hpp"
#include "shard/worker.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/options.hpp"

namespace {

using namespace resilience;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("resilience-shardtest-" + tag + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

harness::DeploymentConfig small_config(std::size_t trials) {
  harness::DeploymentConfig dep;
  dep.nranks = 4;
  dep.trials = trials;
  return dep;
}

std::string normalized_dump(harness::CampaignResult result) {
  result.wall_seconds = 0.0;  // the only timing-born field in the schema
  return harness::to_json(result).dump();
}

TEST(ShardProtocol, FramesRoundTripOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  util::JsonObject obj;
  obj["type"] = util::Json("unit");
  obj["id"] = util::Json(7);
  const std::string sent = util::Json(obj).dump();
  shard::write_frame(sv[0], util::Json(std::move(obj)));
  const auto got = shard::read_frame(sv[1]);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->dump(), sent);

  ::close(sv[0]);  // EOF at a frame boundary: clean nullopt
  EXPECT_FALSE(shard::read_frame(sv[1]).has_value());
  ::close(sv[1]);
}

TEST(ShardProtocol, TruncatedFrameThrows) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const unsigned char partial[] = {200, 0, 0, 0, 'x'};  // claims 200 bytes
  ASSERT_EQ(::write(sv[0], partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(sv[0]);
  EXPECT_THROW((void)shard::read_frame(sv[1]), std::runtime_error);
  ::close(sv[1]);
}

TEST(ShardProtocol, RefsKeepNoStratumAndConfigFullFidelity) {
  const std::vector<harness::TrialRef> refs = {
      {harness::kNoStratum, 3, 3}, {42, 7, 11}};
  const auto back =
      shard::refs_from_json(util::Json::parse(shard::refs_to_json(refs).dump()));
  ASSERT_EQ(back.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(back[i].stratum, refs[i].stratum);
    EXPECT_EQ(back[i].index, refs[i].index);
    EXPECT_EQ(back[i].tag, refs[i].tag);
  }

  harness::DeploymentConfig dep = small_config(17);
  dep.errors_per_test = 2;
  dep.seed = 99;
  dep.adaptive.enabled = true;
  dep.adaptive.batch = 5;
  dep.adaptive.ci_half_width = 0.05;
  const harness::DeploymentConfig cfg_back = shard::deployment_from_json(
      util::Json::parse(shard::deployment_to_json(dep).dump()));
  EXPECT_EQ(shard::deployment_to_json(cfg_back).dump(),
            shard::deployment_to_json(dep).dump());
}

// ---- binary wire protocol ---------------------------------------------

const shard::WireFormat kBothFormats[] = {shard::WireFormat::Json,
                                          shard::WireFormat::Binary};

telemetry::MetricsSnapshot sample_metrics() {
  telemetry::MetricsSnapshot m;
  m.counters[0] = 7;
  m.counters[telemetry::kCounterCount - 1] = 0xDEADBEEFCAFEull;
  m.histograms[0].buckets[0] = 1;
  m.histograms[telemetry::kHistogramCount - 1]
      .buckets[telemetry::kHistogramBuckets - 1] = 42;
  return m;
}

// Every message kind, both encodings: decode(encode(m)) == m, field by
// field — including the adaptive engine parameters and kNoStratum refs
// that only full-fidelity codecs preserve.
TEST(ShardWire, EveryMessageKindRoundTripsInBothFormats) {
  shard::InitMsg init;
  init.app = "CG";
  init.size_class = "small";
  init.config = small_config(17);
  init.config.errors_per_test = 2;
  init.config.seed = 99;
  init.config.hang_budget_factor = 2.5;
  init.config.adaptive.enabled = true;
  init.config.adaptive.batch = 5;
  init.config.adaptive.ci_half_width = 0.05;
  init.store = "/tmp/store";
  init.kill_after_units = 3;

  shard::UnitMsg unit;
  unit.id = 12;
  unit.refs = {{harness::kNoStratum, 3, 3}, {42, 7, 11}};

  shard::ResultMsg result;
  result.id = 12;
  result.outcomes = {{harness::Outcome::Success, 0},
                     {harness::Outcome::SDC, 5},
                     {harness::Outcome::Failure, 2}};
  result.wall_seconds = 1.25;
  result.metrics = sample_metrics();

  for (const auto format : kBothFormats) {
    SCOPED_TRACE(shard::wire_format_name(format));

    const auto init_back = shard::decode_message(
        shard::encode_message(shard::Message(init), format), format);
    const auto* i = std::get_if<shard::InitMsg>(&init_back);
    ASSERT_NE(i, nullptr);
    EXPECT_EQ(i->app, init.app);
    EXPECT_EQ(i->size_class, init.size_class);
    EXPECT_EQ(i->store, init.store);
    EXPECT_EQ(i->kill_after_units, init.kill_after_units);
    EXPECT_EQ(shard::deployment_to_json(i->config).dump(),
              shard::deployment_to_json(init.config).dump());

    const auto ready_back = shard::decode_message(
        shard::encode_message(shard::Message(shard::ReadyMsg{sample_metrics()}),
                              format),
        format);
    const auto* rd = std::get_if<shard::ReadyMsg>(&ready_back);
    ASSERT_NE(rd, nullptr);
    EXPECT_TRUE(rd->metrics.counters == sample_metrics().counters);
    EXPECT_TRUE(rd->metrics.histograms == sample_metrics().histograms);

    const auto unit_back = shard::decode_message(
        shard::encode_message(shard::Message(unit), format), format);
    const auto* u = std::get_if<shard::UnitMsg>(&unit_back);
    ASSERT_NE(u, nullptr);
    EXPECT_EQ(u->id, unit.id);
    ASSERT_EQ(u->refs.size(), unit.refs.size());
    for (std::size_t r = 0; r < unit.refs.size(); ++r) {
      EXPECT_EQ(u->refs[r].stratum, unit.refs[r].stratum);
      EXPECT_EQ(u->refs[r].index, unit.refs[r].index);
      EXPECT_EQ(u->refs[r].tag, unit.refs[r].tag);
    }

    const auto result_back = shard::decode_message(
        shard::encode_message(shard::Message(result), format), format);
    const auto* res = std::get_if<shard::ResultMsg>(&result_back);
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->id, result.id);
    EXPECT_EQ(res->wall_seconds, result.wall_seconds);
    ASSERT_EQ(res->outcomes.size(), result.outcomes.size());
    for (std::size_t r = 0; r < result.outcomes.size(); ++r) {
      EXPECT_EQ(res->outcomes[r].outcome, result.outcomes[r].outcome);
      EXPECT_EQ(res->outcomes[r].contaminated, result.outcomes[r].contaminated);
    }
    EXPECT_TRUE(res->metrics.counters == result.metrics.counters);
    EXPECT_TRUE(res->metrics.histograms == result.metrics.histograms);

    const auto err_back = shard::decode_message(
        shard::encode_message(shard::Message(shard::ErrorMsg{"boom"}), format),
        format);
    const auto* err = std::get_if<shard::ErrorMsg>(&err_back);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->message, "boom");

    const auto down_back = shard::decode_message(
        shard::encode_message(shard::Message(shard::ShutdownMsg{}), format),
        format);
    EXPECT_TRUE(std::holds_alternative<shard::ShutdownMsg>(down_back));
  }
}

TEST(ShardWire, HandshakeRoundTripsAndRejectsNonHandshakes) {
  for (const auto format : kBothFormats) {
    const auto payload = shard::encode_handshake(format);
    const auto hs = shard::parse_handshake(payload);
    ASSERT_TRUE(hs.has_value());
    EXPECT_EQ(hs->version, shard::kShardProtocolVersion);
    EXPECT_EQ(hs->format, format);
  }
  // An error frame from a bailing worker is not a handshake — nullopt,
  // not a throw, so the caller can decode it for its message.
  const auto error_payload = shard::encode_message(
      shard::Message(shard::ErrorMsg{"bad"}), shard::WireFormat::Binary);
  EXPECT_FALSE(shard::parse_handshake(error_payload).has_value());
  EXPECT_FALSE(shard::parse_handshake({}).has_value());
}

TEST(ShardWire, ReadHandshakeRejectsFormatMismatchOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  shard::write_handshake(sv[0], shard::WireFormat::Json);
  try {
    (void)shard::read_handshake(sv[1], shard::WireFormat::Binary);
    FAIL() << "format mismatch not rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("json"), std::string::npos) << what;
    EXPECT_NE(what.find("binary"), std::string::npos) << what;
  }
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ShardWire, ReadHandshakeRejectsVersionMismatchOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  auto payload = shard::encode_handshake(shard::WireFormat::Binary);
  payload[4] = std::byte{99};  // version field, little-endian low byte
  shard::write_frame_bytes(sv[0], payload, "test handshake");
  try {
    (void)shard::read_handshake(sv[1], shard::WireFormat::Binary);
    FAIL() << "version mismatch not rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("99"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(shard::kShardProtocolVersion)),
              std::string::npos)
        << what;
  }
  ::close(sv[0]);
  ::close(sv[1]);
}

// The frame cap is a knob, and the oversize error names the frame kind,
// unit id, and byte count — enough to tell a corrupt length prefix from a
// genuinely huge unit.
TEST(ShardWire, FrameCapErrorNamesFrameKindUnitAndByteCount) {
  auto opts = util::RuntimeOptions::from_env();
  opts.frame_cap_mb = 1;
  util::RuntimeOptions::set_global(opts);

  shard::UnitMsg unit;
  unit.id = 77;
  unit.refs.resize(100'000);  // >1 MiB of refs in either encoding
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  try {
    shard::write_message(sv[0], shard::WireFormat::Binary,
                         shard::Message(unit));
    FAIL() << "oversize frame not rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit 77"), std::string::npos) << what;
    EXPECT_NE(what.find("bytes"), std::string::npos) << what;
    EXPECT_NE(what.find("RESILIENCE_FRAME_CAP_MB"), std::string::npos) << what;
  }

  // Read side: a corrupt length prefix over the cap throws before any
  // allocation, naming the cap.
  const unsigned char huge_prefix[] = {0, 0, 0, 0x7F};  // ~2 GiB claimed
  ASSERT_EQ(::write(sv[0], huge_prefix, sizeof(huge_prefix)),
            static_cast<ssize_t>(sizeof(huge_prefix)));
  try {
    (void)shard::read_frame_bytes(sv[1]);
    FAIL() << "oversize prefix not rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("RESILIENCE_FRAME_CAP_MB"), std::string::npos) << what;
  }
  ::close(sv[0]);
  ::close(sv[1]);
  util::RuntimeOptions::reset_global();
}

TEST(ShardCampaign, FixedShardedMatchesInProcess) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::DeploymentConfig dep = small_config(24);

  const auto baseline = harness::CampaignRunner::run(*app, dep);

  shard::ShardOptions opts;
  opts.shards = 3;
  const auto sharded = shard::run_sharded_campaign(*app, dep, opts);

  EXPECT_EQ(normalized_dump(sharded), normalized_dump(baseline));
  EXPECT_TRUE(sharded.metrics.logical_equal(baseline.metrics));
  EXPECT_GE(sharded.metrics.value(telemetry::Counter::ShardUnitsDispatched),
            3u);
  EXPECT_EQ(sharded.metrics.value(telemetry::Counter::HarnessCampaigns), 1u);
  EXPECT_EQ(sharded.metrics.value(telemetry::Counter::HarnessGoldenProfiles),
            1u);
}

TEST(ShardCampaign, AdaptiveShardedMatchesInProcess) {
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig dep = small_config(48);
  dep.adaptive.enabled = true;
  dep.adaptive.batch = 8;
  dep.adaptive.min_trials = 16;

  const auto baseline = harness::CampaignRunner::run(*app, dep);

  shard::ShardOptions opts;
  opts.shards = 2;
  const auto sharded = shard::run_sharded_campaign(*app, dep, opts);

  EXPECT_EQ(normalized_dump(sharded), normalized_dump(baseline));
  EXPECT_TRUE(sharded.metrics.logical_equal(baseline.metrics));
  ASSERT_TRUE(sharded.adaptive.has_value());
  EXPECT_EQ(sharded.adaptive->trials_executed,
            baseline.adaptive->trials_executed);
  EXPECT_EQ(sharded.adaptive->stop_reason, baseline.adaptive->stop_reason);
}

// A worker SIGKILLed mid-campaign (before reporting its unit) must not
// perturb the result: the unit is re-run elsewhere bit-identically, and
// the lost process's unreported counts never reach the merged metrics.
TEST(ShardCampaign, KilledWorkerRecoversBitIdentically) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::DeploymentConfig dep = small_config(24);

  const auto baseline = harness::CampaignRunner::run(*app, dep);

  shard::ShardOptions opts;
  opts.shards = 2;
  opts.debug_kill_unit = 0;  // worker 0 dies before its first result
  const auto sharded = shard::run_sharded_campaign(*app, dep, opts);

  EXPECT_EQ(normalized_dump(sharded), normalized_dump(baseline));
  EXPECT_TRUE(sharded.metrics.logical_equal(baseline.metrics));
  EXPECT_GE(sharded.metrics.value(telemetry::Counter::ShardWorkerRestarts),
            1u);
}

TEST(ShardCampaign, GoldenStoreServesSecondInvocation) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::DeploymentConfig dep = small_config(12);
  shard::ShardOptions opts;
  opts.shards = 2;
  opts.golden_store_dir = fresh_dir("persist");

  const auto first = shard::run_sharded_campaign(*app, dep, opts);
  const auto second = shard::run_sharded_campaign(*app, dep, opts);

  EXPECT_EQ(normalized_dump(first), normalized_dump(second));
  EXPECT_EQ(first.metrics.value(telemetry::Counter::HarnessGoldenProfiles),
            1u);
  // Second invocation: nobody re-profiles — coordinator and both workers
  // all hit the persisted file.
  EXPECT_EQ(second.metrics.value(telemetry::Counter::HarnessGoldenProfiles),
            0u);
  EXPECT_GE(second.metrics.value(telemetry::Counter::GoldenStoreHits), 3u);
  std::filesystem::remove_all(opts.golden_store_dir);
}

// The wire format is execution policy: a JSON-wire campaign must produce
// the byte-identical saved JSON of a binary-wire one. Workers inherit
// RESILIENCE_WIRE through the environment, so the env and opts.wire move
// together here.
TEST(ShardCampaign, JsonWireMatchesBinaryWireByteForByte) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::DeploymentConfig dep = small_config(24);

  shard::ShardOptions opts;
  opts.shards = 2;
  opts.wire = shard::WireFormat::Binary;
  const auto over_binary = shard::run_sharded_campaign(*app, dep, opts);

  ASSERT_EQ(::setenv("RESILIENCE_WIRE", "json", 1), 0);
  opts.wire = shard::WireFormat::Json;
  const auto over_json = shard::run_sharded_campaign(*app, dep, opts);
  ASSERT_EQ(::unsetenv("RESILIENCE_WIRE"), 0);

  EXPECT_EQ(normalized_dump(over_json), normalized_dump(over_binary));
  EXPECT_TRUE(over_json.metrics.logical_equal(over_binary.metrics));
}

// RESILIENCE_WIRE drift between coordinator and worker: the handshake
// rejects the pairing with a clear error instead of misparsing frames.
TEST(ShardCampaign, WireFormatDriftIsRejectedByTheHandshake) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::DeploymentConfig dep = small_config(8);

  shard::ShardOptions opts;
  opts.shards = 1;
  opts.max_worker_restarts = 0;
  opts.wire = shard::WireFormat::Binary;  // workers will resolve json
  ASSERT_EQ(::setenv("RESILIENCE_WIRE", "json", 1), 0);
  try {
    (void)shard::run_sharded_campaign(*app, dep, opts);
    FAIL() << "wire drift not rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wire format mismatch"), std::string::npos) << what;
  }
  ASSERT_EQ(::unsetenv("RESILIENCE_WIRE"), 0);
}

TEST(StudyService, CachesDeterministicCampaigns) {
  shard::StudyService service;

  util::JsonObject ping;
  ping["type"] = util::Json("ping");
  EXPECT_EQ(service.handle(util::Json(std::move(ping))).at("type").as_string(),
            "pong");

  util::JsonObject req;
  req["type"] = util::Json("campaign");
  req["app"] = util::Json("CG");
  req["size_class"] = util::Json("");
  req["config"] = shard::deployment_to_json(small_config(10));
  req["shards"] = util::Json(0);  // in-process inside the service
  const util::Json request(std::move(req));

  const util::Json first = service.handle(request);
  ASSERT_EQ(first.at("type").as_string(), "result");
  EXPECT_FALSE(first.at("cached").as_bool());

  const util::Json second = service.handle(request);
  ASSERT_EQ(second.at("type").as_string(), "result");
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(second.at("campaign").dump(), first.at("campaign").dump());
  EXPECT_EQ(service.cache_hits(), 1u);

  util::JsonObject bad;
  bad["type"] = util::Json("campaign");
  bad["app"] = util::Json("NOPE");
  bad["config"] = shard::deployment_to_json(small_config(1));
  EXPECT_EQ(service.handle(util::Json(std::move(bad))).at("type").as_string(),
            "error");

  util::JsonObject down;
  down["type"] = util::Json("shutdown");
  EXPECT_EQ(service.handle(util::Json(std::move(down))).at("type").as_string(),
            "ok");
  EXPECT_TRUE(service.shutdown_requested());
}

}  // namespace

int main(int argc, char** argv) {
  // Worker re-exec path: must run before gtest touches the arguments.
  if (const int rc = resilience::shard::maybe_worker_main(argc, argv);
      rc >= 0) {
    return rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
