// Sharded campaign execution (DESIGN.md §13): wire protocol round trips,
// coordinator/worker end-to-end determinism against the in-process
// runner, worker-crash recovery, golden-store reuse, and the StudyService
// request dispatcher.
//
// This binary has a custom main: the coordinator re-execs the test binary
// itself as its worker processes (--shard-worker=<fd>), so main must
// route to the worker loop before gtest ever sees argv.
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "harness/campaign.hpp"
#include "harness/campaign_engine.hpp"
#include "harness/serialize.hpp"
#include "shard/coordinator.hpp"
#include "shard/protocol.hpp"
#include "shard/service.hpp"
#include "shard/worker.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace {

using namespace resilience;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("resilience-shardtest-" + tag + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

harness::DeploymentConfig small_config(std::size_t trials) {
  harness::DeploymentConfig dep;
  dep.nranks = 4;
  dep.trials = trials;
  return dep;
}

std::string normalized_dump(harness::CampaignResult result) {
  result.wall_seconds = 0.0;  // the only timing-born field in the schema
  return harness::to_json(result).dump();
}

TEST(ShardProtocol, FramesRoundTripOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  util::JsonObject obj;
  obj["type"] = util::Json("unit");
  obj["id"] = util::Json(7);
  const std::string sent = util::Json(obj).dump();
  shard::write_frame(sv[0], util::Json(std::move(obj)));
  const auto got = shard::read_frame(sv[1]);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->dump(), sent);

  ::close(sv[0]);  // EOF at a frame boundary: clean nullopt
  EXPECT_FALSE(shard::read_frame(sv[1]).has_value());
  ::close(sv[1]);
}

TEST(ShardProtocol, TruncatedFrameThrows) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const unsigned char partial[] = {200, 0, 0, 0, 'x'};  // claims 200 bytes
  ASSERT_EQ(::write(sv[0], partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(sv[0]);
  EXPECT_THROW((void)shard::read_frame(sv[1]), std::runtime_error);
  ::close(sv[1]);
}

TEST(ShardProtocol, RefsKeepNoStratumAndConfigFullFidelity) {
  const std::vector<harness::TrialRef> refs = {
      {harness::kNoStratum, 3, 3}, {42, 7, 11}};
  const auto back =
      shard::refs_from_json(util::Json::parse(shard::refs_to_json(refs).dump()));
  ASSERT_EQ(back.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(back[i].stratum, refs[i].stratum);
    EXPECT_EQ(back[i].index, refs[i].index);
    EXPECT_EQ(back[i].tag, refs[i].tag);
  }

  harness::DeploymentConfig dep = small_config(17);
  dep.errors_per_test = 2;
  dep.seed = 99;
  dep.adaptive.enabled = true;
  dep.adaptive.batch = 5;
  dep.adaptive.ci_half_width = 0.05;
  const harness::DeploymentConfig cfg_back = shard::deployment_from_json(
      util::Json::parse(shard::deployment_to_json(dep).dump()));
  EXPECT_EQ(shard::deployment_to_json(cfg_back).dump(),
            shard::deployment_to_json(dep).dump());
}

TEST(ShardCampaign, FixedShardedMatchesInProcess) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::DeploymentConfig dep = small_config(24);

  const auto baseline = harness::CampaignRunner::run(*app, dep);

  shard::ShardOptions opts;
  opts.shards = 3;
  const auto sharded = shard::run_sharded_campaign(*app, dep, opts);

  EXPECT_EQ(normalized_dump(sharded), normalized_dump(baseline));
  EXPECT_TRUE(sharded.metrics.logical_equal(baseline.metrics));
  EXPECT_GE(sharded.metrics.value(telemetry::Counter::ShardUnitsDispatched),
            3u);
  EXPECT_EQ(sharded.metrics.value(telemetry::Counter::HarnessCampaigns), 1u);
  EXPECT_EQ(sharded.metrics.value(telemetry::Counter::HarnessGoldenProfiles),
            1u);
}

TEST(ShardCampaign, AdaptiveShardedMatchesInProcess) {
  const auto app = apps::make_app(apps::AppId::CG);
  harness::DeploymentConfig dep = small_config(48);
  dep.adaptive.enabled = true;
  dep.adaptive.batch = 8;
  dep.adaptive.min_trials = 16;

  const auto baseline = harness::CampaignRunner::run(*app, dep);

  shard::ShardOptions opts;
  opts.shards = 2;
  const auto sharded = shard::run_sharded_campaign(*app, dep, opts);

  EXPECT_EQ(normalized_dump(sharded), normalized_dump(baseline));
  EXPECT_TRUE(sharded.metrics.logical_equal(baseline.metrics));
  ASSERT_TRUE(sharded.adaptive.has_value());
  EXPECT_EQ(sharded.adaptive->trials_executed,
            baseline.adaptive->trials_executed);
  EXPECT_EQ(sharded.adaptive->stop_reason, baseline.adaptive->stop_reason);
}

// A worker SIGKILLed mid-campaign (before reporting its unit) must not
// perturb the result: the unit is re-run elsewhere bit-identically, and
// the lost process's unreported counts never reach the merged metrics.
TEST(ShardCampaign, KilledWorkerRecoversBitIdentically) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::DeploymentConfig dep = small_config(24);

  const auto baseline = harness::CampaignRunner::run(*app, dep);

  shard::ShardOptions opts;
  opts.shards = 2;
  opts.debug_kill_unit = 0;  // worker 0 dies before its first result
  const auto sharded = shard::run_sharded_campaign(*app, dep, opts);

  EXPECT_EQ(normalized_dump(sharded), normalized_dump(baseline));
  EXPECT_TRUE(sharded.metrics.logical_equal(baseline.metrics));
  EXPECT_GE(sharded.metrics.value(telemetry::Counter::ShardWorkerRestarts),
            1u);
}

TEST(ShardCampaign, GoldenStoreServesSecondInvocation) {
  const auto app = apps::make_app(apps::AppId::CG);
  const harness::DeploymentConfig dep = small_config(12);
  shard::ShardOptions opts;
  opts.shards = 2;
  opts.golden_store_dir = fresh_dir("persist");

  const auto first = shard::run_sharded_campaign(*app, dep, opts);
  const auto second = shard::run_sharded_campaign(*app, dep, opts);

  EXPECT_EQ(normalized_dump(first), normalized_dump(second));
  EXPECT_EQ(first.metrics.value(telemetry::Counter::HarnessGoldenProfiles),
            1u);
  // Second invocation: nobody re-profiles — coordinator and both workers
  // all hit the persisted file.
  EXPECT_EQ(second.metrics.value(telemetry::Counter::HarnessGoldenProfiles),
            0u);
  EXPECT_GE(second.metrics.value(telemetry::Counter::GoldenStoreHits), 3u);
  std::filesystem::remove_all(opts.golden_store_dir);
}

TEST(StudyService, CachesDeterministicCampaigns) {
  shard::StudyService service;

  util::JsonObject ping;
  ping["type"] = util::Json("ping");
  EXPECT_EQ(service.handle(util::Json(std::move(ping))).at("type").as_string(),
            "pong");

  util::JsonObject req;
  req["type"] = util::Json("campaign");
  req["app"] = util::Json("CG");
  req["size_class"] = util::Json("");
  req["config"] = shard::deployment_to_json(small_config(10));
  req["shards"] = util::Json(0);  // in-process inside the service
  const util::Json request(std::move(req));

  const util::Json first = service.handle(request);
  ASSERT_EQ(first.at("type").as_string(), "result");
  EXPECT_FALSE(first.at("cached").as_bool());

  const util::Json second = service.handle(request);
  ASSERT_EQ(second.at("type").as_string(), "result");
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(second.at("campaign").dump(), first.at("campaign").dump());
  EXPECT_EQ(service.cache_hits(), 1u);

  util::JsonObject bad;
  bad["type"] = util::Json("campaign");
  bad["app"] = util::Json("NOPE");
  bad["config"] = shard::deployment_to_json(small_config(1));
  EXPECT_EQ(service.handle(util::Json(std::move(bad))).at("type").as_string(),
            "error");

  util::JsonObject down;
  down["type"] = util::Json("shutdown");
  EXPECT_EQ(service.handle(util::Json(std::move(down))).at("type").as_string(),
            "ok");
  EXPECT_TRUE(service.shutdown_requested());
}

}  // namespace

int main(int argc, char** argv) {
  // Worker re-exec path: must run before gtest touches the arguments.
  if (const int rc = resilience::shard::maybe_worker_main(argc, argv);
      rc >= 0) {
    return rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
