# Empty dependencies file for predict_scale.
# This may be replaced when dependencies are built.
