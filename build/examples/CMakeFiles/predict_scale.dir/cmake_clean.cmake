file(REMOVE_RECURSE
  "CMakeFiles/predict_scale.dir/predict_scale.cpp.o"
  "CMakeFiles/predict_scale.dir/predict_scale.cpp.o.d"
  "predict_scale"
  "predict_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
