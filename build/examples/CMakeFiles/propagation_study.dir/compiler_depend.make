# Empty compiler generated dependencies file for propagation_study.
# This may be replaced when dependencies are built.
