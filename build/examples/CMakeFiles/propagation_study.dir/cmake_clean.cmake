file(REMOVE_RECURSE
  "CMakeFiles/propagation_study.dir/propagation_study.cpp.o"
  "CMakeFiles/propagation_study.dir/propagation_study.cpp.o.d"
  "propagation_study"
  "propagation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
