file(REMOVE_RECURSE
  "CMakeFiles/resilience_apps.dir/cg.cpp.o"
  "CMakeFiles/resilience_apps.dir/cg.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/fft.cpp.o"
  "CMakeFiles/resilience_apps.dir/fft.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/ft.cpp.o"
  "CMakeFiles/resilience_apps.dir/ft.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/kernels.cpp.o"
  "CMakeFiles/resilience_apps.dir/kernels.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/lu.cpp.o"
  "CMakeFiles/resilience_apps.dir/lu.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/mg.cpp.o"
  "CMakeFiles/resilience_apps.dir/mg.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/minife.cpp.o"
  "CMakeFiles/resilience_apps.dir/minife.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/pennant.cpp.o"
  "CMakeFiles/resilience_apps.dir/pennant.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/registry.cpp.o"
  "CMakeFiles/resilience_apps.dir/registry.cpp.o.d"
  "CMakeFiles/resilience_apps.dir/sparse.cpp.o"
  "CMakeFiles/resilience_apps.dir/sparse.cpp.o.d"
  "libresilience_apps.a"
  "libresilience_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
