
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/resilience_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/resilience_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/ft.cpp" "src/apps/CMakeFiles/resilience_apps.dir/ft.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/ft.cpp.o.d"
  "/root/repo/src/apps/kernels.cpp" "src/apps/CMakeFiles/resilience_apps.dir/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/kernels.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/resilience_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/mg.cpp" "src/apps/CMakeFiles/resilience_apps.dir/mg.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/mg.cpp.o.d"
  "/root/repo/src/apps/minife.cpp" "src/apps/CMakeFiles/resilience_apps.dir/minife.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/minife.cpp.o.d"
  "/root/repo/src/apps/pennant.cpp" "src/apps/CMakeFiles/resilience_apps.dir/pennant.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/pennant.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/resilience_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/sparse.cpp" "src/apps/CMakeFiles/resilience_apps.dir/sparse.cpp.o" "gcc" "src/apps/CMakeFiles/resilience_apps.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsefi/CMakeFiles/resilience_fsefi.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/resilience_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/resilience_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
