# Empty compiler generated dependencies file for resilience_apps.
# This may be replaced when dependencies are built.
