file(REMOVE_RECURSE
  "libresilience_apps.a"
)
