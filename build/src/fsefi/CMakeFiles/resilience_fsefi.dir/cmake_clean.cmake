file(REMOVE_RECURSE
  "CMakeFiles/resilience_fsefi.dir/fault_context.cpp.o"
  "CMakeFiles/resilience_fsefi.dir/fault_context.cpp.o.d"
  "libresilience_fsefi.a"
  "libresilience_fsefi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_fsefi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
