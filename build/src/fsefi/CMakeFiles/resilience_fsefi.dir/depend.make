# Empty dependencies file for resilience_fsefi.
# This may be replaced when dependencies are built.
