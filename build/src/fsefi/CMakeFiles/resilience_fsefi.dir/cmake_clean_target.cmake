file(REMOVE_RECURSE
  "libresilience_fsefi.a"
)
