# Empty compiler generated dependencies file for resilience_util.
# This may be replaced when dependencies are built.
