file(REMOVE_RECURSE
  "libresilience_util.a"
)
