file(REMOVE_RECURSE
  "CMakeFiles/resilience_util.dir/env.cpp.o"
  "CMakeFiles/resilience_util.dir/env.cpp.o.d"
  "CMakeFiles/resilience_util.dir/json.cpp.o"
  "CMakeFiles/resilience_util.dir/json.cpp.o.d"
  "CMakeFiles/resilience_util.dir/rng.cpp.o"
  "CMakeFiles/resilience_util.dir/rng.cpp.o.d"
  "CMakeFiles/resilience_util.dir/stats.cpp.o"
  "CMakeFiles/resilience_util.dir/stats.cpp.o.d"
  "CMakeFiles/resilience_util.dir/table.cpp.o"
  "CMakeFiles/resilience_util.dir/table.cpp.o.d"
  "libresilience_util.a"
  "libresilience_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
