file(REMOVE_RECURSE
  "libresilience_harness.a"
)
