file(REMOVE_RECURSE
  "CMakeFiles/resilience_harness.dir/campaign.cpp.o"
  "CMakeFiles/resilience_harness.dir/campaign.cpp.o.d"
  "CMakeFiles/resilience_harness.dir/runner.cpp.o"
  "CMakeFiles/resilience_harness.dir/runner.cpp.o.d"
  "CMakeFiles/resilience_harness.dir/serialize.cpp.o"
  "CMakeFiles/resilience_harness.dir/serialize.cpp.o.d"
  "libresilience_harness.a"
  "libresilience_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
