# Empty compiler generated dependencies file for resilience_harness.
# This may be replaced when dependencies are built.
