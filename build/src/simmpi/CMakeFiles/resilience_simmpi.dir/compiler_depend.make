# Empty compiler generated dependencies file for resilience_simmpi.
# This may be replaced when dependencies are built.
