file(REMOVE_RECURSE
  "CMakeFiles/resilience_simmpi.dir/comm.cpp.o"
  "CMakeFiles/resilience_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/resilience_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/resilience_simmpi.dir/runtime.cpp.o.d"
  "CMakeFiles/resilience_simmpi.dir/topology.cpp.o"
  "CMakeFiles/resilience_simmpi.dir/topology.cpp.o.d"
  "libresilience_simmpi.a"
  "libresilience_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
