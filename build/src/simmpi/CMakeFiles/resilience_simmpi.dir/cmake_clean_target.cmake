file(REMOVE_RECURSE
  "libresilience_simmpi.a"
)
