file(REMOVE_RECURSE
  "CMakeFiles/resilience_core.dir/bootstrap.cpp.o"
  "CMakeFiles/resilience_core.dir/bootstrap.cpp.o.d"
  "CMakeFiles/resilience_core.dir/model.cpp.o"
  "CMakeFiles/resilience_core.dir/model.cpp.o.d"
  "CMakeFiles/resilience_core.dir/report.cpp.o"
  "CMakeFiles/resilience_core.dir/report.cpp.o.d"
  "CMakeFiles/resilience_core.dir/similarity.cpp.o"
  "CMakeFiles/resilience_core.dir/similarity.cpp.o.d"
  "CMakeFiles/resilience_core.dir/study.cpp.o"
  "CMakeFiles/resilience_core.dir/study.cpp.o.d"
  "libresilience_core.a"
  "libresilience_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
