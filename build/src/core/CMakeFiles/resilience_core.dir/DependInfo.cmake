
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cpp" "src/core/CMakeFiles/resilience_core.dir/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/resilience_core.dir/bootstrap.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/resilience_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/resilience_core.dir/model.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/resilience_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/resilience_core.dir/report.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/resilience_core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/resilience_core.dir/similarity.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/resilience_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/resilience_core.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/resilience_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/resilience_util.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/resilience_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/fsefi/CMakeFiles/resilience_fsefi.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/resilience_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
