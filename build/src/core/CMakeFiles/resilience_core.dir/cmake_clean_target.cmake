file(REMOVE_RECURSE
  "libresilience_core.a"
)
