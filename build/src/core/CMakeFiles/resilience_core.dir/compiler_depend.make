# Empty compiler generated dependencies file for resilience_core.
# This may be replaced when dependencies are built.
