file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cosine.dir/bench_table2_cosine.cpp.o"
  "CMakeFiles/bench_table2_cosine.dir/bench_table2_cosine.cpp.o.d"
  "bench_table2_cosine"
  "bench_table2_cosine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cosine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
