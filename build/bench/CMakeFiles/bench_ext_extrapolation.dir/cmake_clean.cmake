file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_extrapolation.dir/bench_ext_extrapolation.cpp.o"
  "CMakeFiles/bench_ext_extrapolation.dir/bench_ext_extrapolation.cpp.o.d"
  "bench_ext_extrapolation"
  "bench_ext_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
