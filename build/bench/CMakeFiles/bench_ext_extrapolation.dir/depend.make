# Empty dependencies file for bench_ext_extrapolation.
# This may be replaced when dependencies are built.
