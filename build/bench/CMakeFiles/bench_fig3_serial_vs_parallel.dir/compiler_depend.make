# Empty compiler generated dependencies file for bench_fig3_serial_vs_parallel.
# This may be replaced when dependencies are built.
