file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_serial_vs_parallel.dir/bench_fig3_serial_vs_parallel.cpp.o"
  "CMakeFiles/bench_fig3_serial_vs_parallel.dir/bench_fig3_serial_vs_parallel.cpp.o.d"
  "bench_fig3_serial_vs_parallel"
  "bench_fig3_serial_vs_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_serial_vs_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
