# Empty dependencies file for bench_ext_fault_model.
# This may be replaced when dependencies are built.
