# Empty dependencies file for bench_fig5_predict64_s4.
# This may be replaced when dependencies are built.
