# Empty compiler generated dependencies file for bench_fig6_predict64_s8.
# This may be replaced when dependencies are built.
