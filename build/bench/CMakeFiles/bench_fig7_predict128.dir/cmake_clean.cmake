file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_predict128.dir/bench_fig7_predict128.cpp.o"
  "CMakeFiles/bench_fig7_predict128.dir/bench_fig7_predict128.cpp.o.d"
  "bench_fig7_predict128"
  "bench_fig7_predict128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_predict128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
