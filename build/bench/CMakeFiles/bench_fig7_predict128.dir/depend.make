# Empty dependencies file for bench_fig7_predict128.
# This may be replaced when dependencies are built.
