file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_unique.dir/bench_table1_unique.cpp.o"
  "CMakeFiles/bench_table1_unique.dir/bench_table1_unique.cpp.o.d"
  "bench_table1_unique"
  "bench_table1_unique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_unique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
