# Empty dependencies file for bench_table1_unique.
# This may be replaced when dependencies are built.
