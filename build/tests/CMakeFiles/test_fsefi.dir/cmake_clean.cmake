file(REMOVE_RECURSE
  "CMakeFiles/test_fsefi.dir/fsefi/test_context.cpp.o"
  "CMakeFiles/test_fsefi.dir/fsefi/test_context.cpp.o.d"
  "CMakeFiles/test_fsefi.dir/fsefi/test_patterns.cpp.o"
  "CMakeFiles/test_fsefi.dir/fsefi/test_patterns.cpp.o.d"
  "CMakeFiles/test_fsefi.dir/fsefi/test_real.cpp.o"
  "CMakeFiles/test_fsefi.dir/fsefi/test_real.cpp.o.d"
  "CMakeFiles/test_fsefi.dir/fsefi/test_transport.cpp.o"
  "CMakeFiles/test_fsefi.dir/fsefi/test_transport.cpp.o.d"
  "test_fsefi"
  "test_fsefi.pdb"
  "test_fsefi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsefi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
