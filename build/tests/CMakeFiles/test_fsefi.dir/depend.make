# Empty dependencies file for test_fsefi.
# This may be replaced when dependencies are built.
