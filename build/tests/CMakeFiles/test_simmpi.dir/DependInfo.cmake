
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simmpi/test_collectives.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_collectives.cpp.o.d"
  "/root/repo/tests/simmpi/test_extensions.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_extensions.cpp.o.d"
  "/root/repo/tests/simmpi/test_mailbox.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_mailbox.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_mailbox.cpp.o.d"
  "/root/repo/tests/simmpi/test_p2p.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_p2p.cpp.o.d"
  "/root/repo/tests/simmpi/test_request_edge.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_request_edge.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_request_edge.cpp.o.d"
  "/root/repo/tests/simmpi/test_runtime.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_runtime.cpp.o.d"
  "/root/repo/tests/simmpi/test_topology.cpp" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_simmpi.dir/simmpi/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/resilience_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/resilience_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/resilience_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/fsefi/CMakeFiles/resilience_fsefi.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/resilience_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/resilience_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
