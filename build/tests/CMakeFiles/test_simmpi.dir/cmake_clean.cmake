file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi.dir/simmpi/test_collectives.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_collectives.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_extensions.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_extensions.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_mailbox.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_mailbox.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_p2p.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_p2p.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_request_edge.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_request_edge.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_runtime.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_runtime.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/simmpi/test_topology.cpp.o"
  "CMakeFiles/test_simmpi.dir/simmpi/test_topology.cpp.o.d"
  "test_simmpi"
  "test_simmpi.pdb"
  "test_simmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
