file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_apps_common.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_apps_common.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_apps_specific.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_apps_specific.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_cg2d.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_cg2d.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_fft.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_fft.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_kernels.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_kernels.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_sparse.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_sparse.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
