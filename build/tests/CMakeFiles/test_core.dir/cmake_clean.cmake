file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_accuracy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_accuracy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_bootstrap.cpp.o"
  "CMakeFiles/test_core.dir/core/test_bootstrap.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_similarity.cpp.o"
  "CMakeFiles/test_core.dir/core/test_similarity.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_study.cpp.o"
  "CMakeFiles/test_core.dir/core/test_study.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
