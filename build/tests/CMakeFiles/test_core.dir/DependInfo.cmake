
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_accuracy.cpp" "tests/CMakeFiles/test_core.dir/core/test_accuracy.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_accuracy.cpp.o.d"
  "/root/repo/tests/core/test_bootstrap.cpp" "tests/CMakeFiles/test_core.dir/core/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_bootstrap.cpp.o.d"
  "/root/repo/tests/core/test_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_model.cpp.o.d"
  "/root/repo/tests/core/test_model_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_model_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_model_properties.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_similarity.cpp" "tests/CMakeFiles/test_core.dir/core/test_similarity.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_similarity.cpp.o.d"
  "/root/repo/tests/core/test_study.cpp" "tests/CMakeFiles/test_core.dir/core/test_study.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/resilience_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/resilience_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/resilience_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/fsefi/CMakeFiles/resilience_fsefi.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/resilience_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/resilience_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
