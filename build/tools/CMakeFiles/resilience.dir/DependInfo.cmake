
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/resilience_cli.cpp" "tools/CMakeFiles/resilience.dir/resilience_cli.cpp.o" "gcc" "tools/CMakeFiles/resilience.dir/resilience_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/resilience_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/resilience_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/resilience_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/resilience_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fsefi/CMakeFiles/resilience_fsefi.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/resilience_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
