#!/usr/bin/env python3
"""Merge per-binary benchmark dumps into one BENCH_substrate.json.

Inputs (produced in the working directory by the bench binaries):
  BENCH_micro_substrate.json   google-benchmark JSON from bench_micro_substrate
  BENCH_intro_overhead.json    campaign-level JSON from bench_intro_overhead

Output:
  BENCH_substrate.json         one machine-readable record of the repo's
                               substrate performance, including the derived
                               headline metrics:
                                 - launch_speedup.<n>: pooled vs unpooled
                                   per-trial job launch latency on the
                                   threads core (the PR's acceptance bar
                                   is >= 2x at nranks >= 8)
                                 - collective_speedup.<n>: fused fiber
                                   allreduce vs the threads-core mailbox
                                   decomposition (bar: >= 1.0x at every
                                   benched rank count)
                                 - scheduler_speedup.{collective,p2p}.<n>:
                                   whole-job fibers-core vs threads-core
                                   wall time at 16..1024 ranks
                                 - allocs_per_msg.<bytes>: envelope-pool
                                   payload allocations per message
                                 - real_scalar_speedup.{unarmed,armed}:
                                   countdown fast path vs the seed per-op
                                   structure (out-of-line context lookup +
                                   pre-countdown bookkeeping) on
                                   element-wise Real arithmetic (bar:
                                   >= 3x unarmed); the _vs_reference
                                   variant compares against the
                                   RESILIENCE_FAST_REAL=0 kill switch
                                 - blocked_dot_speedup.{unarmed,armed}:
                                   blocked local_dot vs the reference
                                   per-op path (bar: >= 5x)
                                 - telemetry_overhead.disabled: unarmed
                                   Real axpy with set_metrics_enabled(0)
                                   vs the default leg (bar: <= 1.05 — the
                                   disabled path is one cached-atomic
                                   branch); .scoped is the armed leg under
                                   a live metric scope vs without one
                                 - checkpoint_speedup.<app.mix|late_mix>:
                                   campaign wall time with the golden-
                                   checkpoint fast path off vs on;
                                   late_mix pools the late-injection legs
                                   of all apps (bar: >= 2x)
                                 - early_exit_rate.<app.mix|late_mix>:
                                   fraction of trials pruned by the
                                   early-exit equivalence test
                                 - adaptive_trial_reduction.<app|mean>:
                                   trials requested / trials executed of
                                   the CI-driven adaptive campaign legs
                                   (bar: >= 3x mean); each leg also
                                   asserts the fixed-budget success rate
                                   landed inside the adaptive 95% CI
                                 - shard_speedup.<n>: in-process serial
                                   campaign wall time vs the same
                                   deployment fanned out over n
                                   coordinator-spawned worker processes
                                   (bar: >= 2x at 4 shards); results are
                                   bit-identical by construction
                                 - golden_store_hit_rate: store hits /
                                   (hits + misses) of a sharded rerun
                                   against a persistent golden store —
                                   1.0 means nobody re-profiled
                                 - serialization_speedup.{golden_save,
                                   golden_load, frame_encode,
                                   frame_decode}: JSON wall time / binary
                                   wall time of the golden-store disk
                                   round trip and the shard result-frame
                                   codecs (bar: >= 3x on golden_load —
                                   the mmap + CRC path vs JSON parse +
                                   base64)
                                 - golden_store_bytes.{json, binary}:
                                   on-disk size of the same golden run in
                                   each store format

When any input dump carries a load_avg above its num_cpus the host was
saturated while benching; the merge warns and stamps the output with
"load_exceeds_cpus" so wall-clock ratios are read with suspicion.

Usage: tools/merge_bench.py [--dir DIR] [--out BENCH_substrate.json]
Missing inputs are skipped with a warning so partial runs still merge.

Debug-build dumps are refused: ratios between unoptimized legs say
nothing about the production substrate. Pass --allow-debug to merge one
anyway; the output is then annotated with "debug_build": true so no
downstream consumer mistakes it for a release measurement.
"""

import argparse
import json
import pathlib
import sys


def load(path: pathlib.Path):
    if not path.is_file():
        print(f"merge_bench: skipping missing {path}", file=sys.stderr)
        return None
    with path.open() as f:
        return json.load(f)


def real_time(benchmarks, name):
    """Best (minimum) real_time in ns of the named google-benchmark entry.

    With --benchmark_repetitions the dump holds one iteration entry per
    repetition; the minimum is the least-interfered sample, the robust
    choice on a shared/noisy host. Single runs reduce to that run's time.
    """
    times = [float(b["real_time"]) for b in benchmarks
             if b.get("name", "").split("/repeats:")[0] == name
             and b.get("run_type", "iteration") == "iteration"]
    return min(times) if times else None


def derive_micro_metrics(micro):
    """Headline ratios from the micro-substrate google-benchmark dump."""
    benchmarks = micro.get("benchmarks", [])
    metrics = {"launch_speedup": {}, "collective_speedup": {},
               "scheduler_speedup": {"collective": {}, "p2p": {}},
               "allocs_per_msg": {}}
    for ranks in (2, 8, 32, 64):
        pooled = real_time(benchmarks, f"BM_JobSpawnJoin/{ranks}")
        unpooled = real_time(benchmarks, f"BM_JobSpawnJoinUnpooled/{ranks}")
        if pooled and unpooled:
            metrics["launch_speedup"][str(ranks)] = unpooled / pooled
    for ranks in (4, 8, 16, 64):
        fused = real_time(benchmarks, f"BM_AllreduceRound/{ranks}")
        mailbox = real_time(benchmarks, f"BM_AllreduceRoundMailbox/{ranks}")
        if fused and mailbox:
            metrics["collective_speedup"][str(ranks)] = mailbox / fused
    for kind, stem in (("collective", "BM_SchedCollective"),
                       ("p2p", "BM_SchedPointToPoint")):
        for ranks in (16, 64, 256, 1024):
            fibers = real_time(benchmarks, f"{stem}Fibers/{ranks}")
            threads = real_time(benchmarks, f"{stem}Threads/{ranks}")
            if fibers and threads:
                metrics["scheduler_speedup"][kind][str(ranks)] = \
                    threads / fibers
    for b in benchmarks:
        if b.get("name", "").startswith("BM_PingPong/") and "allocs_per_msg" in b:
            size = b["name"].split("/", 1)[1]
            metrics["allocs_per_msg"][size] = float(b["allocs_per_msg"])

    def ratio(reference_name, fast_name):
        reference = real_time(benchmarks, reference_name)
        fast = real_time(benchmarks, fast_name)
        return reference / fast if reference and fast else None

    # Speedup over the seed per-op structure (out-of-line context lookup +
    # pre-countdown bookkeeping) — the improvement the fast-path PR
    # delivers. The _vs_reference variant compares against the
    # RESILIENCE_FAST_REAL=0 kill switch, which already benefits from the
    # inlined context lookup and so isolates the countdown dispatcher.
    scalar = {"unarmed": ratio("BM_RealAxpySeedPath",
                               "BM_RealAxpyUnderContext"),
              "armed": ratio("BM_RealAxpySeedPathArmed",
                             "BM_RealAxpyArmedPlan")}
    scalar_ref = {"unarmed": ratio("BM_RealAxpyUnderContextReference",
                                   "BM_RealAxpyUnderContext"),
                  "armed": ratio("BM_RealAxpyArmedPlanReference",
                                 "BM_RealAxpyArmedPlan")}
    blocked = {"unarmed": ratio("BM_LocalDotReference",
                                "BM_LocalDotUnderContext"),
               "armed": ratio("BM_LocalDotReference", "BM_LocalDotArmedPlan")}
    metrics["real_scalar_speedup"] = {k: v for k, v in scalar.items() if v}
    metrics["real_scalar_speedup_vs_reference"] = {
        k: v for k, v in scalar_ref.items() if v}
    metrics["blocked_dot_speedup"] = {k: v for k, v in blocked.items() if v}

    # Telemetry overhead ratios (>1.0 = slower with telemetry). `disabled`
    # is the acceptance bar (<= 1.05): metrics off must cost at most the
    # cached-atomic branch. `scoped` reports the live-counting cost of an
    # armed trial under an active metric scope.
    telemetry = {"disabled": ratio("BM_RealAxpyTelemetryOff",
                                   "BM_RealAxpyUnderContext"),
                 "scoped": ratio("BM_RealAxpyTelemetryScoped",
                                 "BM_RealAxpyArmedPlan")}
    metrics["telemetry_overhead"] = {k: v for k, v in telemetry.items() if v}
    return metrics


def derive_checkpoint_metrics(intro):
    """Headline ratios of the golden-checkpoint fast path legs."""
    speedup = {}
    early_rate = {}
    late_on = late_off = 0.0
    late_trials = late_exits = 0
    for leg in intro.get("checkpoint", []):
        key = f"{leg['app']}.{leg['mix']}"
        if leg.get("on_wall_seconds"):
            speedup[key] = leg["off_wall_seconds"] / leg["on_wall_seconds"]
        if leg.get("trials"):
            early_rate[key] = leg["early_exits"] / leg["trials"]
        if leg.get("mix") == "late":
            late_on += leg.get("on_wall_seconds", 0.0)
            late_off += leg.get("off_wall_seconds", 0.0)
            late_trials += leg.get("trials", 0)
            late_exits += leg.get("early_exits", 0)
    if late_on > 0:
        speedup["late_mix"] = late_off / late_on
    if late_trials:
        early_rate["late_mix"] = late_exits / late_trials
    return {"checkpoint_speedup": speedup, "early_exit_rate": early_rate}


def derive_adaptive_metrics(intro):
    """Trial-reduction ratios of the adaptive campaign legs."""
    reduction = {}
    outside_ci = []
    for leg in intro.get("adaptive", []):
        if leg.get("trials_executed"):
            reduction[leg["app"]] = (
                leg["trials_requested"] / leg["trials_executed"])
        if not leg.get("fixed_rate_in_ci", True):
            outside_ci.append(leg["app"])
    if reduction:
        reduction["mean"] = sum(
            v for k, v in reduction.items()) / len(reduction)
    return {"adaptive_trial_reduction": reduction}, outside_ci


def derive_shard_metrics(intro):
    """Process-fan-out speedup and store-reuse hit rate of the shard legs."""
    shard = intro.get("shard", {})
    metrics = {}
    if shard.get("sharded_wall_seconds"):
        metrics["shard_speedup"] = {
            str(shard.get("shards", 0)):
                shard["serial_wall_seconds"] / shard["sharded_wall_seconds"]}
    hits = shard.get("reuse_store_hits", 0)
    misses = shard.get("reuse_store_misses", 0)
    if hits + misses:
        metrics["golden_store_hit_rate"] = hits / (hits + misses)
    return metrics


def derive_serialization_metrics(intro):
    """Binary-vs-JSON ratios of the golden store and frame codec legs."""
    serialization = intro.get("serialization", {})
    store = serialization.get("golden_store", {})
    frame = serialization.get("result_frame", {})
    metrics = {}
    speedup = {}

    def ratio(legs, field):
        json_leg = legs.get("json", {}).get(field)
        bin_leg = legs.get("binary", {}).get(field)
        return json_leg / bin_leg if json_leg and bin_leg else None

    for key, legs, field in (("golden_save", store, "save_seconds"),
                             ("golden_load", store, "load_seconds"),
                             ("frame_encode", frame, "encode_seconds"),
                             ("frame_decode", frame, "decode_seconds")):
        value = ratio(legs, field)
        if value is not None:
            speedup[key] = value
    if speedup:
        metrics["serialization_speedup"] = speedup
    sizes = {fmt: store[fmt]["file_bytes"] for fmt in ("json", "binary")
             if store.get(fmt, {}).get("file_bytes")}
    if sizes:
        metrics["golden_store_bytes"] = sizes
    return metrics


def check_host_load(merged, name, dump, fallback_cpus=None):
    """Warn and stamp the merge when a dump was taken on a saturated host.

    google-benchmark stamps load_avg as a 1/5/15-minute triple in its
    context block; bench_intro_overhead stamps a single 1-minute value at
    top level. Either way, load above num_cpus means the bench shared the
    machine and its wall-clock ratios are unreliable.
    """
    context = dump.get("context", dump)
    load = context.get("load_avg")
    if load is None:
        return
    load = max(load) if isinstance(load, list) else float(load)
    cpus = context.get("num_cpus", fallback_cpus)
    if not cpus or load <= cpus:
        return
    print(f"merge_bench: warning: {name} was benched under load_avg "
          f"{load:.1f} on {cpus} CPUs; wall-clock ratios are unreliable",
          file=sys.stderr)
    merged.setdefault("load_exceeds_cpus", {})[name] = {
        "load_avg": load, "num_cpus": cpus}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".",
                        help="directory holding the input dumps")
    parser.add_argument("--out", default="BENCH_substrate.json")
    parser.add_argument("--allow-debug", action="store_true",
                        help="merge a debug-build dump anyway, annotating "
                             "the output with debug_build: true")
    args = parser.parse_args()
    base = pathlib.Path(args.dir)

    merged = {"schema": "resilience-bench-substrate/1"}
    micro = load(base / "BENCH_micro_substrate.json")
    if micro is not None:
        # binary_build_type is stamped by bench_micro_substrate itself from
        # its own optimization flags; library_build_type only describes the
        # prebuilt google-benchmark library and is the fallback for dumps
        # from older binaries.
        context = micro.get("context", {})
        build_type = context.get("binary_build_type",
                                 context.get("library_build_type", ""))
        if build_type not in ("release", ""):
            if not args.allow_debug:
                print(f"merge_bench: refusing {build_type} build input "
                      "(speedup ratios of unoptimized legs are meaningless); "
                      "rebuild with an optimized CMAKE_BUILD_TYPE or pass "
                      "--allow-debug to annotate-and-merge",
                      file=sys.stderr)
                return 1
            merged["debug_build"] = True
            print(f"merge_bench: warning: merging {build_type} build input; "
                  "output annotated with debug_build: true",
                  file=sys.stderr)
        merged["micro_substrate"] = micro
        merged["metrics"] = derive_micro_metrics(micro)
        merged["host"] = {k: context[k] for k in
                          ("host_name", "num_cpus", "mhz_per_cpu",
                           "binary_build_type", "library_build_type")
                          if k in context}
    if micro is not None:
        check_host_load(merged, "micro_substrate", micro)
    intro = load(base / "BENCH_intro_overhead.json")
    outside_ci = []
    if intro is not None:
        merged["intro_overhead"] = intro
        merged.setdefault("metrics", {}).update(
            derive_checkpoint_metrics(intro))
        adaptive_metrics, outside_ci = derive_adaptive_metrics(intro)
        merged["metrics"].update(adaptive_metrics)
        merged["metrics"].update(derive_shard_metrics(intro))
        merged["metrics"].update(derive_serialization_metrics(intro))
        check_host_load(merged, "intro_overhead", intro,
                        fallback_cpus=merged.get("host", {}).get("num_cpus"))

    out_path = base / args.out
    with out_path.open("w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"merge_bench: wrote {out_path}")

    metrics = merged.get("metrics", {})
    for ranks, ratio in sorted(metrics.get("launch_speedup", {}).items(),
                               key=lambda kv: int(kv[0])):
        print(f"  job launch speedup @{ranks} ranks: {ratio:.2f}x")
    for ranks, ratio in sorted(metrics.get("collective_speedup", {}).items(),
                               key=lambda kv: int(kv[0])):
        bar = "" if ratio >= 1.0 else "  ** BELOW the >= 1.0x bar **"
        print(f"  fused collective speedup @{ranks} ranks: {ratio:.2f}x{bar}")
    for kind in ("collective", "p2p"):
        legs = metrics.get("scheduler_speedup", {}).get(kind, {})
        for ranks, ratio in sorted(legs.items(), key=lambda kv: int(kv[0])):
            print(f"  scheduler ({kind}) fibers-vs-threads @{ranks} ranks: "
                  f"{ratio:.2f}x")
    for label, ratio in metrics.get("real_scalar_speedup", {}).items():
        print(f"  Real scalar fast-path speedup ({label}): {ratio:.2f}x")
    for label, ratio in metrics.get("blocked_dot_speedup", {}).items():
        print(f"  blocked dot fast-path speedup ({label}): {ratio:.2f}x")
    for label, ratio in metrics.get("telemetry_overhead", {}).items():
        print(f"  telemetry overhead ({label}): {ratio:.3f}x")
    for label, ratio in sorted(metrics.get("checkpoint_speedup", {}).items()):
        rate = metrics.get("early_exit_rate", {}).get(label)
        rate_str = f", early-exit rate {rate:.0%}" if rate is not None else ""
        print(f"  checkpoint speedup ({label}): {ratio:.2f}x{rate_str}")
    adaptive = metrics.get("adaptive_trial_reduction", {})
    for label, ratio in sorted(adaptive.items()):
        bar = ""
        if label == "mean" and ratio < 3.0:
            bar = "  ** BELOW the >= 3x bar **"
        print(f"  adaptive trial reduction ({label}): {ratio:.2f}x{bar}")
    for app in outside_ci:
        print(f"  ** adaptive CI for {app} does NOT contain the "
              "fixed-budget rate **")
    for shards, ratio in sorted(metrics.get("shard_speedup", {}).items(),
                                key=lambda kv: int(kv[0])):
        bar = ""
        if int(shards) >= 4 and ratio < 2.0:
            bar = "  ** BELOW the >= 2x bar **"
        print(f"  sharded campaign speedup @{shards} shards: {ratio:.2f}x{bar}")
    hit_rate = metrics.get("golden_store_hit_rate")
    if hit_rate is not None:
        print(f"  golden-store reuse hit rate: {hit_rate:.0%}")
    for label, ratio in sorted(
            metrics.get("serialization_speedup", {}).items()):
        bar = ""
        if label == "golden_load" and ratio < 3.0:
            bar = "  ** BELOW the >= 3x bar **"
        print(f"  serialization speedup ({label}): {ratio:.2f}x{bar}")
    sizes = metrics.get("golden_store_bytes", {})
    if sizes.get("json") and sizes.get("binary"):
        print(f"  golden store size: {sizes['json']} bytes JSON vs "
              f"{sizes['binary']} bytes binary "
              f"({sizes['json'] / sizes['binary']:.1f}x smaller)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
