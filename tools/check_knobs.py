#!/usr/bin/env python3
"""Lint the runtime-knob documentation against the parser.

Every RESILIENCE_* environment knob parsed in src/util/options.cpp must
have a row in README.md's knob table, and every documented row must
correspond to a parsed knob — stale docs and undocumented knobs both
fail. CMake options (RESILIENCE_TSAN, RESILIENCE_WERROR, ...) are out of
scope: the table documents runtime behavior, not build configuration.

Usage: tools/check_knobs.py [--repo DIR]
Exits non-zero listing every knob missing on either side.
"""

import argparse
import pathlib
import re
import sys

# env_int("RESILIENCE_X", ...) — the name may be wrapped onto its own
# line by the formatter, so allow whitespace after the opening paren.
PARSE_RE = re.compile(r'env_(?:int|flag|double|str)\(\s*"(RESILIENCE_[A-Z_]+)"')
# | `RESILIENCE_X` | description | default |
TABLE_RE = re.compile(r"^\|\s*`(RESILIENCE_[A-Z_]+)`\s*\|", re.MULTILINE)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=pathlib.Path(__file__).parent.parent,
                        type=pathlib.Path, help="repository root")
    args = parser.parse_args()

    options_cpp = args.repo / "src" / "util" / "options.cpp"
    readme = args.repo / "README.md"
    parsed = set(PARSE_RE.findall(options_cpp.read_text()))
    documented = set(TABLE_RE.findall(readme.read_text()))

    ok = True
    for knob in sorted(parsed - documented):
        print(f"check_knobs: {knob} is parsed in {options_cpp.name} but has "
              f"no row in the README knob table", file=sys.stderr)
        ok = False
    for knob in sorted(documented - parsed):
        print(f"check_knobs: {knob} is documented in the README knob table "
              f"but not parsed in {options_cpp.name}", file=sys.stderr)
        ok = False
    if ok:
        print(f"check_knobs: {len(parsed)} knobs parsed, all documented")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
