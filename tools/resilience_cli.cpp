// resilience — command-line front end to the library.
//
//   resilience list
//       Show the built-in benchmarks and their input problems.
//   resilience scenarios
//       Show the fault-scenario catalog (--scenario names).
//   resilience campaign --app CG [--ranks 8] [--trials 400] [--errors 1]
//       [--scenario paper|register-byte|payload|state|poisson|crash]
//       [--pattern single|double|burst|byte|crash]
//       [--region all|common|unique] [--mtbf F]
//       [--save campaign.json] [--seed N] [--jobs N]
//       Run one fault-injection deployment and print its result.
//       --scenario picks a catalog entry (default the RESILIENCE_SCENARIO
//       env knob, else "paper"); --pattern/--region/--mtbf then override
//       individual scenario fields.
//   resilience predict --app CG [--small 8] [--large 64] [--trials 400]
//       [--no-measure] [--ci resamples] [--report out.md] [--seed N]
//       [--jobs N]
//       Run the paper's methodology: predict the large scale from serial +
//       small-scale campaigns (optionally validating by measurement).
//   resilience propagation --app CG [--ranks 8] [--trials 400] [--seed N]
//       [--jobs N]
//       Profile error propagation across ranks.
//   resilience serve --socket /path/to.sock
//       Long-running campaign service: accepts campaign requests over an
//       AF_UNIX socket, caches results (campaigns are deterministic in
//       their request), answers repeats from the cache.
//   resilience request --socket /path/to.sock [campaign flags] [--shards N]
//       [--do ping|stats|shutdown]
//       Client for `serve`: submit one campaign (default) or a control
//       request and print the reply.
//
// campaign and propagation also accept multi-process sharding
// (DESIGN.md §13):
//   --shards N           Execute the campaign's trials across N worker
//                        processes (0 = in-process; default the
//                        RESILIENCE_SHARDS env knob). Results are
//                        bit-identical to the in-process run.
// The golden pre-pass consults the on-disk golden store when
// RESILIENCE_GOLDEN_STORE names a directory — repeated invocations skip
// re-profiling (sharded or not).
//
// campaign, predict, and propagation also accept the adaptive engine
// flags (DESIGN.md §12):
//   --trials-auto        CI-driven early stopping: --trials becomes a cap
//                        and each deployment stops once every outcome
//                        rate's confidence interval is tight enough.
//   --ci-half-width W    Absolute CI half-width target (default 0.02);
//                        implies --trials-auto.
// Both default to the RESILIENCE_ADAPTIVE* env knobs; stopping points are
// seed-deterministic (independent of --jobs and scheduler mode).
//
// campaign, predict, and propagation also accept:
//   --trace out.jsonl    Write a structured trace of the run (spans for
//                        study phases, campaigns, and trials; instants for
//                        injections, restores, early exits). A .json suffix
//                        selects Chrome trace_event format (load the file
//                        in chrome://tracing or https://ui.perfetto.dev);
//                        anything else writes JSON Lines.
//   --metrics out.json   Dump the run's telemetry counters/histograms as
//                        JSON after the command finishes.
// Both default to the RESILIENCE_TRACE / RESILIENCE_METRICS env vars.
// Telemetry is execution-diagnostic only: results are bit-identical with
// tracing on or off.
//
// --jobs sets the campaign executor's worker count (0 = auto: the
// RESILIENCE_THREADS env var, else hardware concurrency; 1 = serial).
// Results are bit-identical for every value.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/bootstrap.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "fsefi/scenario.hpp"
#include "harness/golden_cache.hpp"
#include "harness/golden_store.hpp"
#include "harness/serialize.hpp"
#include "shard/coordinator.hpp"
#include "shard/protocol.hpp"
#include "shard/service.hpp"
#include "shard/worker.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace resilience;

/// Minimal --key value parser; unknown keys are an error.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected argument: " + key);
      }
      key = key.substr(2);
      if (key == "no-measure" || key == "trials-auto") {
        values_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] long get_int(const std::string& key, long fallback) {
    const std::string raw = get(key, "");
    return raw.empty() ? fallback : std::stol(raw);
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) {
    const std::string raw = get(key, "");
    return raw.empty() ? fallback : std::stod(raw);
  }

  void check_consumed() const {
    for (const auto& [key, value] : values_) {
      if (consumed_.find(key) == consumed_.end()) {
        throw std::invalid_argument("unknown option --" + key);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

/// --trace/--metrics handling shared by the run commands: resolves the
/// paths (flags override the RESILIENCE_TRACE / RESILIENCE_METRICS env
/// vars), keeps a process-wide trace session open for the command's
/// duration, and dumps the final metrics snapshot as JSON.
class TelemetryOutputs {
 public:
  explicit TelemetryOutputs(Args& args) {
    const auto& opts = util::RuntimeOptions::global();
    trace_path_ = args.get("trace", opts.trace_path);
    metrics_path_ = args.get("metrics", opts.metrics_path);
    if (trace_path_.empty()) return;
    std::shared_ptr<telemetry::TraceSink> sink;
    if (trace_path_.ends_with(".json")) {
      sink = std::make_shared<telemetry::ChromeTraceSink>(trace_path_);
    } else {
      sink = std::make_shared<telemetry::JsonLinesSink>(trace_path_);
    }
    telemetry::TraceSession::start(std::move(sink));
    tracing_ = true;
  }
  ~TelemetryOutputs() { stop(); }
  TelemetryOutputs(const TelemetryOutputs&) = delete;
  TelemetryOutputs& operator=(const TelemetryOutputs&) = delete;

  /// Flushes the trace and writes the metrics dump, reporting both files.
  void finish(const telemetry::MetricsSnapshot& metrics) {
    stop();
    if (!trace_path_.empty()) {
      std::cout << "trace written to " << trace_path_ << "\n";
    }
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) {
        throw std::runtime_error("cannot write metrics to " + metrics_path_);
      }
      out << telemetry::metrics_to_json(metrics).dump(2) << "\n";
      std::cout << "metrics written to " << metrics_path_ << "\n";
    }
  }

 private:
  void stop() {
    if (tracing_) {
      telemetry::TraceSession::stop();
      tracing_ = false;
    }
  }

  std::string trace_path_;
  std::string metrics_path_;
  bool tracing_ = false;
};

/// Adaptive-engine flags layered over the RESILIENCE_ADAPTIVE* env knobs:
/// --trials-auto switches the engine on, --ci-half-width sets (and, when
/// given, also switches on) the convergence target.
harness::AdaptiveConfig parse_adaptive(Args& args) {
  harness::AdaptiveConfig adaptive = harness::AdaptiveConfig::from_runtime();
  if (!args.get("trials-auto", "").empty()) adaptive.enabled = true;
  if (!args.get("ci-half-width", "").empty()) {
    const double half_width = args.get_double("ci-half-width", 0.0);
    if (!(half_width >= 1e-4 && half_width < 1.0)) {
      throw std::invalid_argument(
          "--ci-half-width must be in [0.0001, 1)");
    }
    adaptive.ci_half_width = half_width;
    adaptive.enabled = true;
  }
  return adaptive;
}

/// One-line adaptive summary after a campaign (requested vs executed
/// trials, stop reason, the success-rate CI).
void print_adaptive(const harness::CampaignResult& campaign) {
  if (!campaign.adaptive) return;
  const auto& a = *campaign.adaptive;
  std::cout << "adaptive: " << a.trials_executed << "/" << a.trials_requested
            << " trials (" << to_string(a.stop_reason) << ", " << a.strata
            << (a.strata == 1 ? " stratum" : " strata")
            << "); success 95% CI ["
            << util::TablePrinter::pct(a.success.lo) << ", "
            << util::TablePrinter::pct(a.success.hi) << "]\n";
}

fsefi::FaultPattern parse_pattern(const std::string& name) {
  if (name == "single") return fsefi::FaultPattern::SingleBit;
  if (name == "double") return fsefi::FaultPattern::DoubleBit;
  if (name == "burst") return fsefi::FaultPattern::Burst4;
  if (name == "byte") return fsefi::FaultPattern::Byte;
  if (name == "crash") return fsefi::FaultPattern::RankCrash;
  throw std::invalid_argument("unknown pattern: " + name);
}

fsefi::RegionMask parse_region(const std::string& name) {
  if (name == "all") return fsefi::RegionMask::All;
  if (name == "common") return fsefi::RegionMask::Common;
  if (name == "unique") return fsefi::RegionMask::ParallelUnique;
  throw std::invalid_argument("unknown region: " + name);
}

/// The deployment flags shared by campaign, propagation, and request.
/// The scenario resolves in layers: catalog entry (--scenario, else the
/// RESILIENCE_SCENARIO env knob, else "paper"), then field overrides
/// (--pattern, --region, --mtbf / RESILIENCE_MTBF).
harness::DeploymentConfig parse_deployment(Args& args) {
  const auto& opts = util::RuntimeOptions::global();
  harness::DeploymentConfig dep;
  dep.nranks = static_cast<int>(args.get_int("ranks", 8));
  dep.trials = static_cast<std::size_t>(args.get_int("trials", 400));
  dep.errors_per_test = static_cast<int>(args.get_int("errors", 1));
  std::string scenario = args.get("scenario", opts.scenario);
  if (scenario.empty()) scenario = "paper";
  dep.scenario = fsefi::scenario_by_name(scenario);
  const std::string pattern = args.get("pattern", "");
  if (!pattern.empty()) dep.scenario.pattern = parse_pattern(pattern);
  const std::string region = args.get("region", "");
  if (!region.empty()) dep.scenario.regions = parse_region(region);
  const double mtbf = args.get_double("mtbf", opts.mtbf_factor);
  if (mtbf > 0.0) dep.scenario.mtbf_factor = mtbf;
  dep.seed = static_cast<std::uint64_t>(args.get_int("seed", 20180813));
  dep.max_workers = static_cast<int>(args.get_int("jobs", 0));
  dep.adaptive = parse_adaptive(args);
  return dep;
}

/// Run one campaign honoring the sharding/store knobs: --shards (else
/// RESILIENCE_SHARDS) > 0 fans the trials out across worker processes;
/// otherwise in-process, with the golden pre-pass served through the
/// on-disk store when RESILIENCE_GOLDEN_STORE is set.
harness::CampaignResult run_configured_campaign(
    const apps::App& app, const harness::DeploymentConfig& dep,
    long shards_flag) {
  shard::ShardOptions opts = shard::ShardOptions::from_runtime();
  if (shards_flag >= 0) opts.shards = static_cast<int>(shards_flag);
  if (opts.shards > 0) return shard::run_sharded_campaign(app, dep, opts);
  if (!opts.golden_store_dir.empty()) {
    harness::GoldenStore store(opts.golden_store_dir);
    harness::GoldenCache cache(&store);
    harness::CampaignContext context;
    context.golden_cache = &cache;
    return harness::CampaignRunner::run(app, dep, context);
  }
  return harness::CampaignRunner::run(app, dep);
}

/// The Success/SDC/Failure outcome table shared by campaign and request;
/// a Crash row appears only when a fail-stop scenario produced one, so
/// the classic output is unchanged.
void print_outcomes(const harness::FaultInjectionResult& overall) {
  util::TablePrinter table({"outcome", "tests", "rate"});
  table.add_row({"Success", std::to_string(overall.success),
                 util::TablePrinter::pct(overall.success_rate())});
  table.add_row({"SDC", std::to_string(overall.sdc),
                 util::TablePrinter::pct(overall.sdc_rate())});
  table.add_row({"Failure", std::to_string(overall.failure),
                 util::TablePrinter::pct(overall.failure_rate())});
  if (overall.crash != 0) {
    table.add_row({"Crash", std::to_string(overall.crash),
                   util::TablePrinter::pct(overall.crash_rate())});
  }
  table.print();
}

int cmd_scenarios() {
  util::TablePrinter table({"name", "domain", "pattern", "arrival", "notes"});
  for (const fsefi::ScenarioCatalogEntry& entry : fsefi::scenario_catalog()) {
    table.add_row({entry.name, to_string(entry.scenario.domain),
                   to_string(entry.scenario.pattern),
                   to_string(entry.scenario.arrival), entry.summary});
  }
  table.print();
  return 0;
}

int cmd_list() {
  util::TablePrinter table({"name", "input problem", "notes"});
  table.add_row({"CG", "S (also B, C)", "sparse eigenvalue, power + CG solves"});
  table.add_row({"FT", "S (also B)", "2D FFT with alltoall transpose"});
  table.add_row({"MG", "S", "2D multigrid V-cycles"});
  table.add_row({"LU", "W", "SSOR with pipelined wavefronts"});
  table.add_row({"MiniFE", "S (also B)", "FE assembly + CG solve"});
  table.add_row({"PENNANT", "leblanc", "1D Lagrangian shock hydro"});
  table.print();
  return 0;
}

int cmd_campaign(Args& args) {
  const auto app = apps::make_app(apps::parse_app_id(args.get("app", "CG")),
                                  args.get("class", ""));
  const harness::DeploymentConfig dep = parse_deployment(args);
  const long shards_flag = args.get_int("shards", -1);
  const std::string save_path = args.get("save", "");
  TelemetryOutputs telemetry_out(args);
  args.check_consumed();

  const auto campaign = run_configured_campaign(*app, dep, shards_flag);
  if (!save_path.empty()) {
    harness::save_campaign(save_path, campaign);
    std::cout << "campaign saved to " << save_path << "\n";
  }
  std::cout << app->label() << " on " << dep.nranks << " ranks, "
            << dep.trials << " tests, " << dep.errors_per_test
            << " error(s)/test, scenario "
            << fsefi::scenario_name(dep.scenario) << " (pattern "
            << to_string(dep.scenario.pattern) << ")\n\n";
  print_outcomes(campaign.overall);
  print_adaptive(campaign);
  std::cout << "\npropagation r_x:";
  const auto r = campaign.propagation_probabilities();
  for (int x = 1; x <= dep.nranks; ++x) {
    if (r[static_cast<std::size_t>(x - 1)] > 0.0) {
      std::cout << "  " << x << ":"
                << util::TablePrinter::pct(r[static_cast<std::size_t>(x - 1)]);
    }
  }
  std::cout << "\nfault-injection time: " << campaign.wall_seconds << " s\n";
  std::cout << "checkpoint fast path: "
            << campaign.metrics.value(
                   telemetry::Counter::HarnessCheckpointRestores)
            << " restores, "
            << campaign.metrics.value(telemetry::Counter::HarnessEarlyExits)
            << " early exits\n";
  telemetry_out.finish(campaign.metrics);
  return 0;
}

int cmd_predict(Args& args) {
  const auto app = apps::make_app(apps::parse_app_id(args.get("app", "CG")),
                                  args.get("class", ""));
  core::StudyConfig cfg;
  cfg.small_p = static_cast<int>(args.get_int("small", 8));
  cfg.large_p = static_cast<int>(args.get_int("large", 64));
  cfg.trials = static_cast<std::size_t>(args.get_int("trials", 400));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20180813));
  cfg.measure_large = args.get("no-measure", "").empty();
  cfg.max_workers = static_cast<int>(args.get_int("jobs", 0));
  cfg.adaptive = parse_adaptive(args);
  const std::string report_path = args.get("report", "");
  const long ci_resamples = args.get_int("ci", 0);
  TelemetryOutputs telemetry_out(args);
  args.check_consumed();

  const auto study = core::run_study(*app, cfg);
  if (!report_path.empty()) {
    core::write_report(report_path, app->label(), study);
    std::cout << "report written to " << report_path << "\n";
  }
  std::cout << app->label() << ": predicting " << cfg.large_p
            << " ranks from serial + " << cfg.small_p << " ranks\n\n";
  util::TablePrinter table({"", "success", "SDC", "failure"});
  table.add_row({"predicted",
                 util::TablePrinter::pct(study.prediction.combined.success),
                 util::TablePrinter::pct(study.prediction.combined.sdc),
                 util::TablePrinter::pct(study.prediction.combined.failure)});
  if (study.measured_large) {
    table.add_row({"measured",
                   util::TablePrinter::pct(study.measured_large->success_rate()),
                   util::TablePrinter::pct(study.measured_large->sdc_rate()),
                   util::TablePrinter::pct(study.measured_large->failure_rate())});
  }
  table.print();
  std::cout << "\nfine-tuned: " << (study.prediction.fine_tuned ? "yes" : "no")
            << "; parallel-unique fraction: "
            << util::TablePrinter::pct(study.prob_unique, 2) << "\n";
  using telemetry::Counter;
  std::cout << "golden cache: "
            << study.metrics.value(Counter::HarnessGoldenHits) << " hits, "
            << study.metrics.value(Counter::HarnessGoldenMisses)
            << " misses, " << study.metrics.value(Counter::HarnessGoldenWaits)
            << " waits; checkpoint fast path: "
            << study.metrics.value(Counter::HarnessCheckpointRestores)
            << " restores, "
            << study.metrics.value(Counter::HarnessEarlyExits)
            << " early exits\n";
  if (ci_resamples > 0) {
    // Resampled over the common-computation model inputs (sweep + small
    // scale); the unique term contributes little to the variance.
    core::BootstrapOptions bopts;
    bopts.resamples = static_cast<std::size_t>(ci_resamples);
    const auto interval = core::bootstrap_prediction(
        study.sweep, study.small, core::PredictorOptions{}, cfg.large_p,
        bopts);
    std::cout << "bootstrap 95% CI on predicted success (" << ci_resamples
              << " resamples): [" << util::TablePrinter::pct(interval.lo)
              << ", " << util::TablePrinter::pct(interval.hi) << "]\n";
  }
  if (study.measured_large) {
    std::cout << "success prediction error: "
              << util::TablePrinter::pct(study.success_error()) << "\n";
  }
  if (!study.adaptive_phases.empty()) {
    std::size_t requested = 0, executed = 0;
    for (const auto& rec : study.adaptive_phases) {
      requested += rec.stats.trials_requested;
      executed += rec.stats.trials_executed;
    }
    std::cout << "adaptive: " << executed << "/" << requested
              << " trials across " << study.adaptive_phases.size()
              << " deployments";
    if (study.measured_adaptive) {
      const auto& a = *study.measured_adaptive;
      std::cout << "; measured success 95% CI ["
                << util::TablePrinter::pct(a.success.lo) << ", "
                << util::TablePrinter::pct(a.success.hi) << "]";
    }
    std::cout << "\n";
    if (study.accuracy_gate_flagged()) {
      std::cout << "ACCURACY GATE: prediction falls outside the measured "
                   "success-rate CI envelope — unvalidated at this trial "
                   "budget\n";
    }
  }
  telemetry_out.finish(study.metrics);
  return 0;
}

int cmd_propagation(Args& args) {
  const auto app = apps::make_app(apps::parse_app_id(args.get("app", "CG")),
                                  args.get("class", ""));
  const harness::DeploymentConfig dep = parse_deployment(args);
  const long shards_flag = args.get_int("shards", -1);
  TelemetryOutputs telemetry_out(args);
  args.check_consumed();

  const auto campaign = run_configured_campaign(*app, dep, shards_flag);
  std::cout << app->label() << " error propagation at " << dep.nranks
            << " ranks\n\n";
  util::TablePrinter table({"ranks contaminated", "tests", "r_x",
                            "conditional success"});
  const auto r = campaign.propagation_probabilities();
  for (int x = 1; x <= dep.nranks; ++x) {
    const auto& cond = campaign.by_contamination[static_cast<std::size_t>(x)];
    if (cond.trials == 0) continue;
    table.add_row({std::to_string(x), std::to_string(cond.trials),
                   util::TablePrinter::pct(r[static_cast<std::size_t>(x - 1)]),
                   util::TablePrinter::pct(cond.success_rate())});
  }
  table.print();
  print_adaptive(campaign);
  telemetry_out.finish(campaign.metrics);
  return 0;
}

int cmd_serve(Args& args) {
  const std::string socket_path = args.get("socket", "");
  args.check_consumed();
  if (socket_path.empty()) {
    throw std::invalid_argument("serve: --socket is required");
  }
  return shard::run_server(socket_path);
}

int cmd_request(Args& args) {
  const std::string socket_path = args.get("socket", "");
  if (socket_path.empty()) {
    throw std::invalid_argument("request: --socket is required");
  }
  const std::string action = args.get("do", "campaign");
  if (action != "campaign") {
    args.check_consumed();
    util::JsonObject req;
    req["type"] = util::Json(action);
    const util::Json reply =
        shard::send_request(socket_path, util::Json(std::move(req)));
    std::cout << reply.dump(2) << "\n";
    return reply.at("type").as_string() == "error" ? 1 : 0;
  }

  const std::string app_name = args.get("app", "CG");
  const std::string size_class = args.get("class", "");
  const harness::DeploymentConfig dep = parse_deployment(args);
  const long shards_flag = args.get_int("shards", -1);
  const std::string save_path = args.get("save", "");
  args.check_consumed();

  util::JsonObject req;
  req["type"] = util::Json("campaign");
  req["app"] = util::Json(app_name);
  req["size_class"] = util::Json(size_class);
  req["config"] = shard::deployment_to_json(dep);
  if (shards_flag >= 0) {
    req["shards"] = util::Json(static_cast<int>(shards_flag));
  }
  const util::Json reply =
      shard::send_request(socket_path, util::Json(std::move(req)));
  if (reply.at("type").as_string() == "error") {
    std::cerr << "server error: " << reply.at("message").as_string() << "\n";
    return 1;
  }
  const auto campaign = harness::campaign_from_json(reply.at("campaign"));
  if (!save_path.empty()) {
    harness::save_campaign(save_path, campaign);
    std::cout << "campaign saved to " << save_path << "\n";
  }
  std::cout << app_name << " on " << dep.nranks << " ranks, " << dep.trials
            << " tests ("
            << (reply.at("cached").as_bool() ? "served from cache"
                                             : "freshly executed")
            << ")\n";
  print_outcomes(campaign.overall);
  print_adaptive(campaign);
  return 0;
}

int usage() {
  std::cerr << "usage: resilience "
               "<list|scenarios|campaign|predict|propagation|serve|request> "
               "[options]\n(see the header of tools/resilience_cli.cpp)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Shard-worker re-exec: when the coordinator spawned this process with
  // --shard-worker=<fd>, run the worker protocol loop instead of the CLI.
  if (const int rc = resilience::shard::maybe_worker_main(argc, argv);
      rc >= 0) {
    return rc;
  }
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    Args args(argc, argv, 2);
    if (command == "list") return cmd_list();
    if (command == "scenarios") {
      args.check_consumed();
      return cmd_scenarios();
    }
    if (command == "campaign") return cmd_campaign(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "propagation") return cmd_propagation(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "request") return cmd_request(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
