#!/usr/bin/env python3
"""Validate the CLI's telemetry artifacts against the checked-in schema.

Checks the three output formats the resilience CLI can produce:

  --metrics out.json   resilience-metrics/1 document: counter/histogram
                       names match the schema's patterns, every histogram
                       has exactly the configured bucket count and a total
                       equal to the sum of its buckets, and the counters
                       the schema marks required are present and non-zero.
  --trace out.jsonl    JSON Lines trace: every line is a JSON object with
                       the required fields, phases and categories come
                       from the schema's closed sets, timestamps are
                       non-decreasing (the emitter stamps them under one
                       lock), and B/E span events balance per thread with
                       proper nesting (names match LIFO).
  --trace out.json     Chrome trace_event document: {"traceEvents": [...]}
                       with pid pinned to the schema value, instants
                       carrying "s":"t", and the same balance rules.

Stdlib-only on purpose: CI runs it straight from the checkout.

Usage:
  tools/check_telemetry.py --schema tools/telemetry_schema.json \
      [--metrics metrics.json] [--trace trace.jsonl] [--trace trace.json]

Exit status 0 when every artifact validates; 1 with one line per problem
on stderr otherwise.
"""

import argparse
import json
import pathlib
import re
import sys


class Checker:
    """Collects problems instead of stopping at the first one."""

    def __init__(self):
        self.problems = []

    def expect(self, condition, message):
        if not condition:
            self.problems.append(message)
        return condition


_TYPES = {"str": str, "int": int, "num": (int, float)}


def check_fields(check, where, event, required):
    """True when every required (name, type) field is present and typed."""
    ok = True
    for field, type_name in required.items():
        if not check.expect(field in event, f"{where}: missing '{field}'"):
            ok = False
            continue
        expected = _TYPES[type_name]
        value = event[field]
        # bool is an int subclass in Python; a JSON true/false is never a
        # valid tid/ts, so reject it explicitly.
        if not check.expect(
                isinstance(value, expected) and not isinstance(value, bool),
                f"{where}: '{field}' should be {type_name}, "
                f"got {value!r}"):
            ok = False
    return ok


def check_events(check, path, events, schema, required_fields, ts_field):
    """Shared trace validation: field shapes, closed sets, span balance."""
    phases = set(schema["phases"])
    categories = set(schema["categories"])
    open_spans = {}  # tid -> stack of span names
    last_ts = None
    for i, event in enumerate(events):
        where = f"{path}:{i + 1}"
        if not check.expect(isinstance(event, dict),
                            f"{where}: event is not a JSON object"):
            continue
        if not check_fields(check, where, event, required_fields):
            continue
        check.expect(event["ph"] in phases,
                     f"{where}: phase {event['ph']!r} not in {sorted(phases)}")
        check.expect(
            event["cat"] in categories,
            f"{where}: category {event['cat']!r} not in {sorted(categories)}")
        ts = event[ts_field]
        check.expect(ts >= 0, f"{where}: negative timestamp {ts}")
        if last_ts is not None:
            check.expect(ts >= last_ts,
                         f"{where}: timestamp {ts} went backwards "
                         f"(previous {last_ts})")
        last_ts = ts
        stack = open_spans.setdefault(event["tid"], [])
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            if check.expect(stack, f"{where}: 'E' for {event['name']!r} "
                            "with no open span on this thread"):
                check.expect(
                    stack[-1] == event["name"],
                    f"{where}: 'E' for {event['name']!r} but innermost "
                    f"open span is {stack[-1]!r}")
                stack.pop()
    for tid, stack in sorted(open_spans.items()):
        check.expect(not stack,
                     f"{path}: thread {tid} left spans open: {stack}")
    check.expect(events, f"{path}: trace holds no events")


def check_trace_jsonl(check, path, schema):
    events = []
    with path.open() as f:
        for i, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                check.expect(False, f"{path}:{i + 1}: bad JSON: {err}")
    check_events(check, path, events, schema,
                 schema["jsonl_required_fields"], "ts_ns")


def check_trace_chrome(check, path, schema):
    with path.open() as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as err:
            check.expect(False, f"{path}: bad JSON: {err}")
            return
    if not check.expect(isinstance(doc, dict) and "traceEvents" in doc,
                        f"{path}: not a {{\"traceEvents\": [...]}} document"):
        return
    events = doc["traceEvents"]
    for i, event in enumerate(events):
        where = f"{path}: event {i + 1}"
        if not isinstance(event, dict):
            continue
        if "pid" in event:
            check.expect(event["pid"] == schema["chrome_pid"],
                         f"{where}: pid {event['pid']} != "
                         f"{schema['chrome_pid']}")
        if event.get("ph") == "i":
            check.expect(event.get("s") == "t",
                         f"{where}: instant without thread scope (\"s\":\"t\")")
    check_events(check, path, events, schema,
                 schema["chrome_required_fields"], "ts")


def check_trace(check, path, schema):
    if path.suffix == ".json":
        check_trace_chrome(check, path, schema)
    else:
        check_trace_jsonl(check, path, schema)


def check_metrics(check, path, schema):
    with path.open() as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as err:
            check.expect(False, f"{path}: bad JSON: {err}")
            return
    if not check.expect(isinstance(doc, dict), f"{path}: not a JSON object"):
        return
    check.expect(doc.get("schema") == schema["required_schema"],
                 f"{path}: schema {doc.get('schema')!r} != "
                 f"{schema['required_schema']!r}")

    counters = doc.get("counters")
    if check.expect(isinstance(counters, dict),
                    f"{path}: 'counters' is not an object"):
        name_re = re.compile(schema["counter_name_pattern"])
        for name, value in counters.items():
            check.expect(name_re.match(name),
                         f"{path}: counter name {name!r} does not match "
                         f"{schema['counter_name_pattern']}")
            check.expect(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= 0,
                f"{path}: counter {name!r} value {value!r} is not a "
                "non-negative integer")
        for name in schema["required_counters"]:
            check.expect(counters.get(name, 0) > 0,
                         f"{path}: required counter {name!r} missing or zero")

    histograms = doc.get("histograms")
    if check.expect(isinstance(histograms, dict),
                    f"{path}: 'histograms' is not an object"):
        name_re = re.compile(schema["histogram_name_pattern"])
        buckets_expected = schema["histogram_buckets"]
        for name, hist in histograms.items():
            check.expect(name_re.match(name),
                         f"{path}: histogram name {name!r} does not match "
                         f"{schema['histogram_name_pattern']}")
            if not check.expect(
                    isinstance(hist, dict) and "buckets" in hist
                    and "total" in hist,
                    f"{path}: histogram {name!r} lacks buckets/total"):
                continue
            buckets = hist["buckets"]
            if check.expect(
                    isinstance(buckets, list)
                    and len(buckets) == buckets_expected,
                    f"{path}: histogram {name!r} has "
                    f"{len(buckets) if isinstance(buckets, list) else '?'} "
                    f"buckets, want {buckets_expected}"):
                check.expect(sum(buckets) == hist["total"],
                             f"{path}: histogram {name!r} total "
                             f"{hist['total']} != bucket sum {sum(buckets)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", required=True, type=pathlib.Path,
                        help="path to telemetry_schema.json")
    parser.add_argument("--metrics", action="append", default=[],
                        type=pathlib.Path, help="a --metrics dump to check")
    parser.add_argument("--trace", action="append", default=[],
                        type=pathlib.Path,
                        help="a --trace output to check (.json = Chrome "
                             "format, anything else = JSON Lines)")
    args = parser.parse_args()
    if not args.metrics and not args.trace:
        parser.error("nothing to check: pass --metrics and/or --trace")

    with args.schema.open() as f:
        schema = json.load(f)
    if schema.get("schema") != "resilience-telemetry-schema/1":
        print(f"check_telemetry: unsupported schema file {args.schema}",
              file=sys.stderr)
        return 1

    check = Checker()
    for path in args.metrics:
        if check.expect(path.is_file(), f"{path}: missing metrics file"):
            check_metrics(check, path, schema["metrics"])
    for path in args.trace:
        if check.expect(path.is_file(), f"{path}: missing trace file"):
            check_trace(check, path, schema["trace"])

    for problem in check.problems:
        print(f"check_telemetry: {problem}", file=sys.stderr)
    checked = len(args.metrics) + len(args.trace)
    if not check.problems:
        print(f"check_telemetry: OK ({checked} artifact(s))")
    return 1 if check.problems else 0


if __name__ == "__main__":
    sys.exit(main())
