// Plain-text table and CSV emission for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as
// rows on stdout; TablePrinter keeps the columns aligned and CsvWriter
// mirrors the same rows into a machine-readable file so the results can be
// re-plotted.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace resilience::util {

/// Fixed-width text table. Collects rows, then renders with column widths
/// sized to the content.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; missing cells render empty, extra cells throw.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string fmt(double value, int precision = 3);

  /// Convenience: format a fraction as a percentage string, e.g. "12.3%".
  static std::string pct(double fraction, int precision = 1);

  /// Render the table (header, separator, rows) as a string.
  [[nodiscard]] std::string str() const;

  /// Render to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer with RFC-4180 quoting of cells that need it.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_row(std::initializer_list<std::string> cells);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace resilience::util
