#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace resilience::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: no headers");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TablePrinter: row wider than header");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::print() const { std::cout << str() << std::flush; }

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string> cells) {
  write_row(std::vector<std::string>(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace resilience::util
