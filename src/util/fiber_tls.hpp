// Execution-context-local storage registry for the fiber scheduler.
//
// Several layers above util keep per-rank state in C++ thread_local slots
// (the fault injector's installed context, the trial-control hook, the
// telemetry scope stack). That was sound while one rank owned one OS
// thread for the whole job; under the fiber scheduler a rank is a
// resumable fiber that may suspend on one worker thread and resume on
// another, so "thread-local" must become "fiber-local". Rather than teach
// simmpi about every layer above it (an inverted dependency), each layer
// registers its slot here — a (get, set, initial) accessor triple — and
// the scheduler swaps every registered slot's live value against the
// fiber's saved bank at each suspend/resume. Plain threads never pay
// anything: the registry is only consulted on a fiber switch.
//
// Registration happens from namespace-scope initializers in each layer's
// translation unit, i.e. before main() and before any fiber exists. A
// binary that never links a layer simply never migrates that layer's slot
// — consistent, because it never installs it either.
#pragma once

#include <array>
#include <cstddef>

namespace resilience::util {

/// Accessors for one thread_local slot the fiber scheduler must migrate.
struct FiberTlsSlot {
  /// Read the calling thread's live value.
  void* (*get)() noexcept;
  /// Overwrite the calling thread's live value.
  void (*set)(void*) noexcept;
  /// Value a fresh execution context starts with, or nullptr for a plain
  /// null initial value (the telemetry lane slot allocates a fresh id).
  void* (*initial)() noexcept;
};

class FiberTlsRegistry {
 public:
  /// Upper bound on registered slots; a handful of layers, fixed storage.
  static constexpr std::size_t kMaxSlots = 8;
  /// One execution context's saved bank of slot values.
  using Values = std::array<void*, kMaxSlots>;

  /// Register a slot (namespace-scope initializers only; registering
  /// after fibers started switching would corrupt saved banks). Returns
  /// the slot index.
  static std::size_t add(const FiberTlsSlot& slot) noexcept;

  /// Fill `values` with each registered slot's initial value.
  static void init(Values& values) noexcept;

  /// Exchange the calling thread's live slot values with `values`. Called
  /// by the scheduler on both sides of a fiber switch: once to install
  /// the fiber's bank (saving the worker's), once to restore the
  /// worker's (saving the fiber's).
  static void swap(Values& values) noexcept;
};

}  // namespace resilience::util
