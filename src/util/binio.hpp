// Little-endian binary serialization primitives: the shared substrate of
// the golden-v2 store files (harness/golden_store) and the binary shard
// wire frames (shard/protocol).
//
// Scope is deliberately small: bounds-checked scalar and raw-array
// encode/decode, an IEEE CRC32 for section checksums, and a read-only
// mmap wrapper whose spans back the zero-copy checkpoint restore path.
// Everything is little-endian on the wire; binio_host_supported() gates
// the binary paths off (JSON fallback) on exotic hosts so a byte-order
// assumption can never silently corrupt data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace resilience::util {

/// Malformed or truncated binary input. Callers treat it like JsonError:
/// a store file raising it is corrupt (unlink + refill), a wire frame
/// raising it is a protocol bug or a dead peer.
class BinError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// IEEE CRC32 (polynomial 0xEDB88320, the zlib/PNG variant). `seed`
/// chains partial computations: crc32(b) == crc32(b2, crc32(b1)) for any
/// split b = b1 + b2.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes,
                                  std::uint32_t seed = 0) noexcept;

/// True when this host can use the binary encodings directly: little-
/// endian integers and 8-byte IEEE doubles. On other hosts the golden
/// store and shard wire fall back to their JSON formats.
[[nodiscard]] bool binio_host_supported() noexcept;

/// Append-only little-endian encoder over a growable byte buffer.
class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// u32 byte length followed by the raw bytes.
  void str(std::string_view s);
  void bytes(std::span<const std::byte> b);
  /// Raw little-endian array payloads (no length prefix; callers write
  /// the element count themselves).
  void u64_array(std::span<const std::uint64_t> a);
  void f64_array(std::span<const double> a);

  /// Overwrite a previously written u32/u64 (section-table backfill).
  void patch_u32(std::size_t offset, std::uint32_t v);
  void patch_u64(std::size_t offset, std::uint64_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> buffer() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span. Every
/// read past the end throws BinError; bytes() hands back sub-spans of the
/// underlying storage (zero copy), so the span must outlive them.
class BinReader {
 public:
  explicit BinReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  /// Borrow `n` bytes from the underlying span and advance past them.
  [[nodiscard]] std::span<const std::byte> bytes(std::size_t n);
  void u64_array(std::span<std::uint64_t> out);
  void f64_array(std::span<double> out);

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  void seek(std::size_t offset);

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// Read-only mmap of a whole file, shared among everything that borrows
/// spans out of it (the golden-v2 loader pins one behind each loaded
/// CheckpointData). Store files are only ever replaced by rename, never
/// truncated in place, so a live mapping always sees the complete inode
/// it opened.
class MappedFile {
 public:
  /// Map `path`; nullptr when the file cannot be opened or mapped (the
  /// caller treats it as a store miss). An empty file maps to an empty
  /// span.
  [[nodiscard]] static std::shared_ptr<MappedFile> open(
      const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }

 private:
  MappedFile(void* data, std::size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace resilience::util
