#include "util/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace resilience::util {

std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "warning: %s: ignoring non-numeric value \"%s\", using "
                 "default %lld\n",
                 name, raw, static_cast<long long>(fallback));
    return fallback;
  }
  if (parsed < min_value) {
    std::fprintf(stderr,
                 "warning: %s: value %lld is below the minimum %lld, "
                 "clamping\n",
                 name, parsed, static_cast<long long>(min_value));
    return min_value;
  }
  return parsed;
}

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  if (std::strcmp(raw, "0") == 0) return false;
  if (std::strcmp(raw, "1") == 0) return true;
  std::fprintf(stderr,
               "warning: %s: ignoring invalid value \"%s\" (expected 0 or "
               "1), using default %d\n",
               name, raw, fallback ? 1 : 0);
  return fallback;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

BenchConfig BenchConfig::from_env(std::size_t default_trials) {
  BenchConfig cfg{};
  cfg.trials = static_cast<std::size_t>(
      env_int("RESILIENCE_TRIALS", static_cast<std::int64_t>(default_trials)));
  cfg.seed = static_cast<std::uint64_t>(
      env_int("RESILIENCE_SEED", 20180813, /*min_value=*/0));
  return cfg;
}

}  // namespace resilience::util
