#include "util/env.hpp"

#include <cstdlib>

namespace resilience::util {

std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return parsed < min_value ? min_value : parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

BenchConfig BenchConfig::from_env(std::size_t default_trials) {
  BenchConfig cfg{};
  cfg.trials = static_cast<std::size_t>(
      env_int("RESILIENCE_TRIALS", static_cast<std::int64_t>(default_trials)));
  cfg.seed = static_cast<std::uint64_t>(
      env_int("RESILIENCE_SEED", 20180813, /*min_value=*/0));
  return cfg;
}

}  // namespace resilience::util
