// Statistical helpers used throughout the campaign harness and the
// resilience model: descriptive statistics, the cosine similarity used by
// the paper to compare propagation profiles (Table 2), the RMSE of Eq. 9,
// and Wilson score intervals for reporting the uncertainty of
// fault-injection result percentages.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace resilience::util {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance; 0 for fewer than two samples.
double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Root mean square error between two equal-length series (paper Eq. 9).
/// Throws std::invalid_argument on length mismatch or empty input.
double rmse(std::span<const double> measured, std::span<const double> predicted);

/// Mean absolute error between two equal-length series.
double mae(std::span<const double> measured, std::span<const double> predicted);

/// Cosine similarity of two equal-length vectors, in [0, 1] for
/// non-negative inputs (paper Section 3.2). Returns 0 if either vector is
/// all-zero. Throws std::invalid_argument on length mismatch or empty input.
double cosine_similarity(std::span<const double> a, std::span<const double> b);

/// Wilson score interval for a binomial proportion.
struct WilsonInterval {
  double center = 0.0;  ///< point estimate successes / trials
  double lo = 0.0;      ///< lower bound of the interval
  double hi = 0.0;      ///< upper bound of the interval

  /// Half the interval width — the convergence measure adaptive
  /// campaigns stop on.
  [[nodiscard]] double half_width() const noexcept { return (hi - lo) / 2.0; }
};

/// Wilson score interval at confidence z (default z = 1.96, ~95%).
/// trials == 0 yields the degenerate interval [0, 1] around 0.
WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z = 1.96) noexcept;

/// Clopper–Pearson ("exact") interval at confidence z (same z convention
/// as wilson_interval: the two-sided normal quantile, z = 1.96 ~ 95%).
/// Guaranteed >= nominal coverage for every p, which is what the adaptive
/// campaign engine wants on the rare-outcome tail where the Wilson
/// normal approximation under-covers. trials == 0 yields [0, 1].
WilsonInterval clopper_pearson_interval(std::size_t successes,
                                        std::size_t trials,
                                        double z = 1.96) noexcept;

/// Standard normal CDF (used to translate z into the Clopper–Pearson
/// tail mass; exposed because the accuracy-gate report prints the
/// confidence level a z implies).
double normal_cdf(double z) noexcept;

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1] — the CDF of the Beta(a, b) distribution, which is what
/// Clopper–Pearson bounds invert. Continued-fraction evaluation
/// (Lentz), accurate to ~1e-12.
double regularized_incomplete_beta(double a, double b, double x) noexcept;

/// Normalize a histogram of counts into a probability vector.
/// An all-zero histogram normalizes to all zeros.
std::vector<double> normalize(std::span<const std::size_t> counts);

/// Aggregate `values` (length divisible by `groups`) into `groups` buckets
/// by summing consecutive runs — the even split used to compare a 64-rank
/// propagation histogram against an 8-rank one (paper Fig. 1c / Eq. 5).
/// Throws std::invalid_argument if values.size() % groups != 0 or groups == 0.
std::vector<double> group_sum(std::span<const double> values, std::size_t groups);

}  // namespace resilience::util
