// Environment-variable configuration used to scale campaign sizes.
//
// The paper runs 4000 fault-injection tests per deployment on a cluster;
// the bench binaries default to smaller counts so the whole suite finishes
// on one workstation, and these helpers let the user restore paper-scale
// counts (e.g. RESILIENCE_TRIALS=4000) without rebuilding.
#pragma once

#include <cstdint>
#include <string>

namespace resilience::util {

/// Read an integer environment variable; returns `fallback` when unset.
/// Non-numeric values are rejected with a warning on stderr (instead of
/// silently defaulting); values below `min_value` warn and clamp.
std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t min_value = 1);

/// Read a boolean ("0"/"1") environment variable; returns `fallback` when
/// unset. Anything other than 0 or 1 warns on stderr and falls back.
bool env_flag(const char* name, bool fallback);

/// Read a floating-point environment variable; returns `fallback` when
/// unset. Non-numeric values warn on stderr and fall back; values below
/// `min_value` warn and clamp.
double env_double(const char* name, double fallback, double min_value = 0.0);

/// Read a string environment variable; returns `fallback` when unset.
std::string env_str(const char* name, const std::string& fallback);

/// Campaign-size knobs shared by the bench harnesses.
struct BenchConfig {
  /// Fault-injection tests per deployment (paper: 4000).
  std::size_t trials;
  /// Base seed for all campaigns.
  std::uint64_t seed;

  /// Reads RESILIENCE_TRIALS and RESILIENCE_SEED.
  static BenchConfig from_env(std::size_t default_trials = 400);
};

}  // namespace resilience::util
