// RuntimeOptions: every RESILIENCE_* environment knob resolved in one
// place.
//
// The substrate layers used to read their own env vars at first use
// (comm.cpp, rank_team.cpp, fault_context.cpp, checkpoint.cpp,
// executor.cpp), which made the configuration surface hard to document
// and impossible to inject under test. RuntimeOptions::from_env() is now
// the only code path that touches the process environment (the repo-wide
// invariant is: no getenv/env_int call sites outside util/options.cpp),
// and global() is the resolved-once copy every layer consumes.
//
// Tests inject a configuration with set_global() and restore the
// environment-derived one with reset_global(); the per-feature
// set_*_enabled() runtime overrides in each layer still win over the
// global options, preserving the existing precedence:
//   programmatic override > RuntimeOptions (env) > built-in default.
#pragma once

#include <cstdint>
#include <string>

#include "util/env.hpp"

namespace resilience::util {

/// One resolved copy of every RESILIENCE_* knob.
struct RuntimeOptions {
  /// RESILIENCE_THREADS — campaign executor worker count; 0 = auto
  /// (hardware concurrency).
  int threads = 0;
  /// RESILIENCE_TEAM_POOL — reuse persistent rank teams across trials.
  bool team_pool = true;
  /// RESILIENCE_SCHEDULER — "fibers" (default) multiplexes simulated
  /// ranks as cooperative fibers over a small worker pool; "threads"
  /// spawns one OS thread per rank (the legacy execution core).
  bool scheduler_fibers = true;
  /// RESILIENCE_SCHED_WORKERS — fiber-scheduler worker threads per job;
  /// 0 = auto (min(hardware concurrency, nranks)).
  int sched_workers = 0;
  /// RESILIENCE_FIBER_STACK_KB — per-rank fiber stack size in KiB
  /// (rounded up to whole pages, plus a guard page).
  std::size_t fiber_stack_kb = 256;
  /// RESILIENCE_FAST_REAL — countdown dispatcher for instrumented Real
  /// arithmetic.
  bool fast_real = true;
  /// RESILIENCE_CHECKPOINT — trial use of golden checkpoints
  /// (fast-forward + early-exit pruning). Golden runs always capture;
  /// this gates consumption only.
  bool checkpoint = true;
  /// RESILIENCE_CHECKPOINT_BUDGET — max full state snapshots kept per
  /// golden run.
  std::size_t checkpoint_budget = 8;
  /// RESILIENCE_ADAPTIVE — adaptive campaign engine: CI-driven early
  /// stopping + stratified sampling (DESIGN.md §12). Off by default:
  /// campaigns run their full fixed trial count, bit-identical to
  /// previous releases.
  bool adaptive = false;
  /// RESILIENCE_ADAPTIVE_CI — absolute CI half-width target each outcome
  /// rate must meet before an adaptive campaign stops early.
  double adaptive_ci_half_width = 0.02;
  /// RESILIENCE_ADAPTIVE_REL — relative half-width target; > 0 switches
  /// the stop rule to relative mode (with a rare-outcome floor).
  double adaptive_ci_relative = 0.0;
  /// RESILIENCE_ADAPTIVE_BATCH — trials per adaptive batch (the stop
  /// rule's evaluation granularity).
  std::size_t adaptive_batch = 64;
  /// RESILIENCE_ADAPTIVE_MIN — minimum trials before a stop decision.
  std::size_t adaptive_min_trials = 128;
  /// RESILIENCE_ADAPTIVE_STRATIFY — stratified sampling over
  /// (region x kind x dynamic-op decile) with post-stratified estimates.
  bool adaptive_stratify = true;
  /// RESILIENCE_SHARDS — worker processes for sharded campaign execution
  /// (DESIGN.md §13); 0 = in-process (no sharding).
  int shards = 0;
  /// RESILIENCE_GOLDEN_STORE — on-disk golden-run store directory ("" =
  /// none for in-process runs; sharded runs fall back to a private temp
  /// store). A persistent directory lets repeated invocations skip the
  /// golden pre-pass entirely.
  std::string golden_store;
  /// RESILIENCE_SHARD_KILL — crash-recovery testing hook: worker 0's
  /// first incarnation SIGKILLs itself after completing this many units.
  /// -1 = off.
  int shard_kill_unit = -1;
  /// RESILIENCE_WIRE — shard frame encoding: "binary" (default) for the
  /// compact binio frames, "json" for the length-prefixed JSON fallback.
  /// Coordinator and workers must agree; the protocol handshake rejects
  /// mismatched peers.
  bool wire_binary = true;
  /// RESILIENCE_FRAME_CAP_MB — largest shard frame either side will
  /// write or accept, in MiB. A backstop against corrupted length
  /// prefixes; raise it for apps whose metrics/result payloads
  /// legitimately exceed the default.
  std::size_t frame_cap_mb = 256;
  /// RESILIENCE_STORE_FORMAT — golden-store write format: "binary"
  /// (default) writes golden-v2 files (mmap zero-copy loads), "json"
  /// writes the v1 JSON files. Loads accept both regardless.
  bool store_binary = true;
  /// RESILIENCE_SCENARIO — default fault-scenario catalog entry for the
  /// CLI and benches ("" = "paper", the pre-catalog behaviour). See
  /// `resilience scenarios` for the catalog.
  std::string scenario;
  /// RESILIENCE_MTBF — mean-time-between-faults factor for Poisson
  /// scenarios, as a fraction of the trial's sample-space size; 0 = keep
  /// the scenario's own default (0.5).
  double mtbf_factor = 0.0;
  /// RESILIENCE_TRACE — default trace output path ("" = tracing off).
  /// A ".json" suffix selects the Chrome trace_event format; anything
  /// else gets JSON Lines.
  std::string trace_path;
  /// RESILIENCE_METRICS — default metrics JSON output path ("" = off).
  std::string metrics_path;

  /// Resolve every knob from the environment (warning on stderr for each
  /// malformed value, which then falls back to the default above).
  static RuntimeOptions from_env();

  /// The process-wide options: resolved from the environment once on
  /// first use, unless a test replaced them via set_global().
  static const RuntimeOptions& global();

  /// Replace the process-wide options (tests). Layers that latch their
  /// knob in a function-local static (comm, rank_team, fault_context)
  /// only see values injected before their first use; the documented
  /// test hook for those is their set_*_enabled() override.
  static void set_global(const RuntimeOptions& options);

  /// Drop an injected global; the next global() re-reads the environment.
  static void reset_global();
};

}  // namespace resilience::util
