#include "util/binio.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cstring>
#include <limits>

namespace resilience::util {

namespace {

// Slicing-by-8 CRC32: table[0] is the classic one-byte-at-a-time table;
// table[k][b] advances table[k-1][b] by one zero byte, so eight lookups
// retire eight input bytes per iteration. Same polynomial, same result as
// the bytewise loop — validating a multi-hundred-KB golden store file is
// the hot path here, and the bytewise loop was its entire cost.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrcTables =
    make_crc_tables();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes,
                    std::uint32_t seed) noexcept {
  const auto& t = kCrcTables;
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    // Byte shifts, not a load + bswap dance: the compiler folds these
    // into single 32-bit loads on little-endian hosts, and the code stays
    // correct on big-endian ones.
    const std::uint32_t lo =
        c ^ (static_cast<std::uint32_t>(p[0]) |
             static_cast<std::uint32_t>(p[1]) << 8 |
             static_cast<std::uint32_t>(p[2]) << 16 |
             static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             static_cast<std::uint32_t>(p[5]) << 8 |
                             static_cast<std::uint32_t>(p[6]) << 16 |
                             static_cast<std::uint32_t>(p[7]) << 24;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ static_cast<std::uint32_t>(*p)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool binio_host_supported() noexcept {
  return std::endian::native == std::endian::little && sizeof(double) == 8 &&
         std::numeric_limits<double>::is_iec559;
}

void BinWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::byte>(v & 0xffu));
  buf_.push_back(static_cast<std::byte>((v >> 8) & 0xffu));
  buf_.push_back(static_cast<std::byte>((v >> 16) & 0xffu));
  buf_.push_back(static_cast<std::byte>((v >> 24) & 0xffu));
}

void BinWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xffffffffu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void BinWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BinWriter::str(std::string_view s) {
  if (s.size() > UINT32_MAX) throw BinError("binio: string too long");
  u32(static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

void BinWriter::bytes(std::span<const std::byte> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void BinWriter::u64_array(std::span<const std::uint64_t> a) {
  // Raw memcpy is the point of the binary format, and it is only taken on
  // binio_host_supported() hosts, where the in-memory layout already is
  // the wire layout.
  const auto* p = reinterpret_cast<const std::byte*>(a.data());
  buf_.insert(buf_.end(), p, p + a.size_bytes());
}

void BinWriter::f64_array(std::span<const double> a) {
  const auto* p = reinterpret_cast<const std::byte*>(a.data());
  buf_.insert(buf_.end(), p, p + a.size_bytes());
}

void BinWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size()) throw BinError("binio: patch out of range");
  for (int i = 0; i < 4; ++i) {
    buf_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xffu);
  }
}

void BinWriter::patch_u64(std::size_t offset, std::uint64_t v) {
  patch_u32(offset, static_cast<std::uint32_t>(v & 0xffffffffu));
  patch_u32(offset + 4, static_cast<std::uint32_t>(v >> 32));
}

void BinReader::need(std::size_t n) const {
  if (n > bytes_.size() - pos_) {
    throw BinError("binio: read past end of input");
  }
}

std::uint8_t BinReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t BinReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double BinReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinReader::str() {
  const std::uint32_t len = u32();
  const auto b = bytes(len);
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

std::span<const std::byte> BinReader::bytes(std::size_t n) {
  need(n);
  const auto out = bytes_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void BinReader::u64_array(std::span<std::uint64_t> out) {
  const auto b = bytes(out.size_bytes());
  std::memcpy(out.data(), b.data(), b.size());
}

void BinReader::f64_array(std::span<double> out) {
  const auto b = bytes(out.size_bytes());
  std::memcpy(out.data(), b.data(), b.size());
}

void BinReader::seek(std::size_t offset) {
  if (offset > bytes_.size()) throw BinError("binio: seek past end of input");
  pos_ = offset;
}

std::shared_ptr<MappedFile> MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* data = nullptr;
  if (size > 0) {
    data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      ::close(fd);
      return nullptr;
    }
  }
  ::close(fd);  // the mapping keeps the inode alive
  return std::shared_ptr<MappedFile>(new MappedFile(data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr && size_ > 0) ::munmap(data_, size_);
}

}  // namespace resilience::util
