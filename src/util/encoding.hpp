// Base64 (RFC 4648, with padding) for embedding binary blobs — notably
// checkpoint rank-state snapshots — in JSON documents.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace resilience::util {

/// Encode `bytes` as standard base64 with '=' padding.
[[nodiscard]] std::string base64_encode(std::span<const std::byte> bytes);

/// Decode a padded base64 string. Throws std::invalid_argument on any
/// character outside the alphabet, misplaced padding, or a length that is
/// not a multiple of 4.
[[nodiscard]] std::vector<std::byte> base64_decode(const std::string& text);

}  // namespace resilience::util
