#include "util/encoding.hpp"

#include <array>
#include <cstdint>
#include <stdexcept>

namespace resilience::util {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_reverse() {
  std::array<std::int8_t, 256> rev{};
  for (auto& v : rev) v = -1;
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return rev;
}

constexpr std::array<std::int8_t, 256> kReverse = make_reverse();

}  // namespace

std::string base64_encode(std::span<const std::byte> bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const auto a = static_cast<std::uint32_t>(bytes[i]);
    const auto b = static_cast<std::uint32_t>(bytes[i + 1]);
    const auto c = static_cast<std::uint32_t>(bytes[i + 2]);
    const std::uint32_t word = (a << 16) | (b << 8) | c;
    out.push_back(kAlphabet[(word >> 18) & 0x3f]);
    out.push_back(kAlphabet[(word >> 12) & 0x3f]);
    out.push_back(kAlphabet[(word >> 6) & 0x3f]);
    out.push_back(kAlphabet[word & 0x3f]);
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const auto a = static_cast<std::uint32_t>(bytes[i]);
    out.push_back(kAlphabet[(a >> 2) & 0x3f]);
    out.push_back(kAlphabet[(a << 4) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const auto a = static_cast<std::uint32_t>(bytes[i]);
    const auto b = static_cast<std::uint32_t>(bytes[i + 1]);
    out.push_back(kAlphabet[(a >> 2) & 0x3f]);
    out.push_back(kAlphabet[((a << 4) | (b >> 4)) & 0x3f]);
    out.push_back(kAlphabet[(b << 2) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::vector<std::byte> base64_decode(const std::string& text) {
  if (text.size() % 4 != 0) {
    throw std::invalid_argument("base64: length is not a multiple of 4");
  }
  std::vector<std::byte> out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t word = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char ch = text[i + j];
      if (ch == '=') {
        // Padding is legal only in the last two positions of the final
        // quantum, and nothing may follow it.
        if (i + 4 != text.size() || j < 2 || (j == 2 && text[i + 3] != '=')) {
          throw std::invalid_argument("base64: misplaced padding");
        }
        ++pad;
        word <<= 6;
        continue;
      }
      const std::int8_t v = kReverse[static_cast<unsigned char>(ch)];
      if (v < 0) throw std::invalid_argument("base64: invalid character");
      word = (word << 6) | static_cast<std::uint32_t>(v);
    }
    out.push_back(static_cast<std::byte>((word >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::byte>((word >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::byte>(word & 0xff));
  }
  return out;
}

}  // namespace resilience::util
