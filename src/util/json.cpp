#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace resilience::util {

namespace {

void dump_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << raw;
        }
    }
  }
  os << '"';
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) throw JsonError("trailing garbage");
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) throw JsonError("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      throw JsonError(std::string("expected '") + c + "' at offset " +
                      std::to_string(pos_ - 1));
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        throw JsonError("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        throw JsonError("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        throw JsonError("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      const std::string key = (peek(), parse_string());
      expect(':');
      obj.emplace(key, parse_value());
      const char c = take();
      if (c == '}') return Json(std::move(obj));
      if (c != ',') throw JsonError("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = take();
      if (c == ']') return Json(std::move(arr));
      if (c != ',') throw JsonError("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) throw JsonError("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) throw JsonError("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw JsonError("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              throw JsonError("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          throw JsonError("unknown escape");
      }
    }
  }

  Json parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_floating = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_floating = is_floating || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") throw JsonError("bad number");
    if (!is_floating) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
    }
    try {
      return Json(std::stod(token));
    } catch (const std::exception&) {
      throw JsonError("bad number: " + token);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_impl(const Json& value, std::ostringstream& os, int indent,
               int depth);

void dump_children(const JsonArray& arr, std::ostringstream& os, int indent,
                   int depth) {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  os << '[';
  bool first = true;
  for (const auto& item : arr) {
    if (!first) os << ',';
    first = false;
    if (indent > 0) os << '\n' << pad;
    dump_impl(item, os, indent, depth + 1);
  }
  if (indent > 0 && !arr.empty()) os << '\n' << close_pad;
  os << ']';
}

void dump_children(const JsonObject& obj, std::ostringstream& os, int indent,
                   int depth) {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  os << '{';
  bool first = true;
  for (const auto& [key, item] : obj) {
    if (!first) os << ',';
    first = false;
    if (indent > 0) os << '\n' << pad;
    dump_string(os, key);
    os << ':';
    if (indent > 0) os << ' ';
    dump_impl(item, os, indent, depth + 1);
  }
  if (indent > 0 && !obj.empty()) os << '\n' << close_pad;
  os << '}';
}

void dump_impl(const Json& value, std::ostringstream& os, int indent,
               int depth) {
  if (value.is_null()) {
    os << "null";
  } else if (value.is_bool()) {
    os << (value.as_bool() ? "true" : "false");
  } else if (value.is_int()) {
    os << value.as_int();
  } else if (value.is_double()) {
    const double d = value.as_double();
    if (!std::isfinite(d)) {
      os << "null";  // JSON has no Inf/NaN; campaigns never store them
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      os << buf;
    }
  } else if (value.is_string()) {
    dump_string(os, value.as_string());
  } else if (value.is_array()) {
    dump_children(value.as_array(), os, indent, depth);
  } else {
    dump_children(value.as_object(), os, indent, depth);
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump_impl(*this, os, indent, 0);
  return os.str();
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace resilience::util
