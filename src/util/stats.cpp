#include "util/stats.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace resilience::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double rmse(std::span<const double> measured,
            std::span<const double> predicted) {
  if (measured.size() != predicted.size()) {
    throw std::invalid_argument("rmse: length mismatch");
  }
  if (measured.empty()) throw std::invalid_argument("rmse: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double d = measured[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(measured.size()));
}

double mae(std::span<const double> measured,
           std::span<const double> predicted) {
  if (measured.size() != predicted.size()) {
    throw std::invalid_argument("mae: length mismatch");
  }
  if (measured.empty()) throw std::invalid_argument("mae: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    acc += std::abs(measured[i] - predicted[i]);
  }
  return acc / static_cast<double>(measured.size());
}

double cosine_similarity(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("cosine_similarity: length mismatch");
  }
  if (a.empty()) throw std::invalid_argument("cosine_similarity: empty input");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z) noexcept {
  if (trials == 0) return {0.0, 0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

namespace {

/// Continued fraction for the regularized incomplete beta (modified
/// Lentz). Converges fast for x < (a + 1) / (a + b + 2); the public
/// wrapper routes the other half through the symmetry relation.
double betacf(double a, double b, double x) noexcept {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 1e-15;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Smallest x with I_x(a, b) >= target, by bisection: monotone, bounded,
/// and bit-deterministic across platforms (no stopping on floating-point
/// residuals).
double beta_inv(double target, double a, double b) noexcept {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_incomplete_beta(a, b, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

WilsonInterval clopper_pearson_interval(std::size_t successes,
                                        std::size_t trials,
                                        double z) noexcept {
  if (trials == 0) return {0.0, 0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double k = static_cast<double>(successes);
  const double p = k / n;
  // Two-sided tail mass the z quantile implies (z = 1.96 -> alpha ~ 0.05).
  const double alpha = 2.0 * (1.0 - normal_cdf(z));
  const double lo = (successes == 0)
                        ? 0.0
                        : beta_inv(alpha / 2.0, k, n - k + 1.0);
  const double hi = (successes == trials)
                        ? 1.0
                        : beta_inv(1.0 - alpha / 2.0, k + 1.0, n - k);
  return {p, lo, hi};
}

std::vector<double> normalize(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  std::vector<double> out(counts.size(), 0.0);
  if (total == 0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
  }
  return out;
}

std::vector<double> group_sum(std::span<const double> values,
                              std::size_t groups) {
  if (groups == 0) throw std::invalid_argument("group_sum: groups == 0");
  if (values.size() % groups != 0) {
    throw std::invalid_argument("group_sum: size not divisible by groups");
  }
  const std::size_t per = values.size() / groups;
  std::vector<double> out(groups, 0.0);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < per; ++i) out[g] += values[g * per + i];
  }
  return out;
}

}  // namespace resilience::util
