#include "util/stats.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace resilience::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double rmse(std::span<const double> measured,
            std::span<const double> predicted) {
  if (measured.size() != predicted.size()) {
    throw std::invalid_argument("rmse: length mismatch");
  }
  if (measured.empty()) throw std::invalid_argument("rmse: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double d = measured[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(measured.size()));
}

double mae(std::span<const double> measured,
           std::span<const double> predicted) {
  if (measured.size() != predicted.size()) {
    throw std::invalid_argument("mae: length mismatch");
  }
  if (measured.empty()) throw std::invalid_argument("mae: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    acc += std::abs(measured[i] - predicted[i]);
  }
  return acc / static_cast<double>(measured.size());
}

double cosine_similarity(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("cosine_similarity: length mismatch");
  }
  if (a.empty()) throw std::invalid_argument("cosine_similarity: empty input");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z) noexcept {
  if (trials == 0) return {0.0, 0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

std::vector<double> normalize(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  std::vector<double> out(counts.size(), 0.0);
  if (total == 0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
  }
  return out;
}

std::vector<double> group_sum(std::span<const double> values,
                              std::size_t groups) {
  if (groups == 0) throw std::invalid_argument("group_sum: groups == 0");
  if (values.size() % groups != 0) {
    throw std::invalid_argument("group_sum: size not divisible by groups");
  }
  const std::size_t per = values.size() / groups;
  std::vector<double> out(groups, 0.0);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < per; ++i) out[g] += values[g * per + i];
  }
  return out;
}

}  // namespace resilience::util
