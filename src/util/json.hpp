// Minimal JSON support: a value tree, a writer, and a recursive-descent
// parser — enough to persist campaign results to disk and load them back
// (no external dependencies are available in this repository's offline
// build environment).
//
// Supported: objects, arrays, strings (with \" \\ \/ \b \f \n \r \t and
// \uXXXX for BMP code points), numbers (as double or int64), booleans,
// null. Not supported: surrogate pairs, duplicate-key detection.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace resilience::util {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// One JSON value. Integers are kept distinct from doubles so that
/// trial counts survive a round trip exactly.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                 // NOLINT
  Json(bool b) : value_(b) {}                               // NOLINT
  Json(double d) : value_(d) {}                             // NOLINT
  Json(std::int64_t i) : value_(i) {}                       // NOLINT
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}     // NOLINT
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}           // NOLINT
  Json(std::string s) : value_(std::move(s)) {}             // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}               // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}              // NOLINT

  [[nodiscard]] bool is_null() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const { return holds<bool>(); }
  [[nodiscard]] bool is_int() const { return holds<std::int64_t>(); }
  [[nodiscard]] bool is_double() const { return holds<double>(); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const { return holds<JsonArray>(); }
  [[nodiscard]] bool is_object() const { return holds<JsonObject>(); }

  [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
  [[nodiscard]] std::int64_t as_int() const {
    if (is_double()) {
      return static_cast<std::int64_t>(std::get<double>(value_));
    }
    return get<std::int64_t>("int");
  }
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
    return get<double>("double");
  }
  [[nodiscard]] const std::string& as_string() const {
    return get<std::string>("string");
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return get<JsonArray>("array");
  }
  [[nodiscard]] const JsonObject& as_object() const {
    return get<JsonObject>("object");
  }

  /// Object member access; throws JsonError when absent or not an object.
  [[nodiscard]] const Json& at(const std::string& key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) throw JsonError("missing key: " + key);
    return it->second;
  }

  /// Serialize; `indent` > 0 pretty-prints with that many spaces.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; throws JsonError on malformed input
  /// or trailing garbage.
  static Json parse(const std::string& text);

 private:
  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(value_);
  }
  template <typename T>
  [[nodiscard]] const T& get(const char* what) const {
    if (!holds<T>()) throw JsonError(std::string("not a ") + what);
    return std::get<T>(value_);
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace resilience::util
