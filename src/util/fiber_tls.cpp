#include "util/fiber_tls.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace resilience::util {

namespace {

FiberTlsSlot g_slots[FiberTlsRegistry::kMaxSlots];
// Published with release so a reader that observes the count also sees
// the slot contents written before the bump (registration is static-init
// single-threaded in practice; the ordering makes it correct regardless).
std::atomic<std::size_t> g_count{0};

}  // namespace

std::size_t FiberTlsRegistry::add(const FiberTlsSlot& slot) noexcept {
  const std::size_t index = g_count.load(std::memory_order_relaxed);
  if (index >= kMaxSlots) {
    std::fprintf(stderr, "fiber_tls: slot registry full (%zu)\n", kMaxSlots);
    std::abort();
  }
  g_slots[index] = slot;
  g_count.store(index + 1, std::memory_order_release);
  return index;
}

void FiberTlsRegistry::init(Values& values) noexcept {
  const std::size_t n = g_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = g_slots[i].initial != nullptr ? g_slots[i].initial() : nullptr;
  }
}

void FiberTlsRegistry::swap(Values& values) noexcept {
  const std::size_t n = g_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    void* live = g_slots[i].get();
    g_slots[i].set(values[i]);
    values[i] = live;
  }
}

}  // namespace resilience::util
