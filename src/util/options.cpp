// The single translation unit allowed to read the process environment
// (see options.hpp). env_int/env_flag/env_str declared in env.hpp live
// here for that reason.
#include "util/options.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace resilience::util {

std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "warning: %s: ignoring non-numeric value \"%s\", using "
                 "default %lld\n",
                 name, raw, static_cast<long long>(fallback));
    return fallback;
  }
  if (parsed < min_value) {
    std::fprintf(stderr,
                 "warning: %s: value %lld is below the minimum %lld, "
                 "clamping\n",
                 name, parsed, static_cast<long long>(min_value));
    return min_value;
  }
  return parsed;
}

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  if (std::strcmp(raw, "0") == 0) return false;
  if (std::strcmp(raw, "1") == 0) return true;
  std::fprintf(stderr,
               "warning: %s: ignoring invalid value \"%s\" (expected 0 or "
               "1), using default %d\n",
               name, raw, fallback ? 1 : 0);
  return fallback;
}

double env_double(const char* name, double fallback, double min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "warning: %s: ignoring non-numeric value \"%s\", using "
                 "default %g\n",
                 name, raw, fallback);
    return fallback;
  }
  if (parsed < min_value) {
    std::fprintf(stderr,
                 "warning: %s: value %g is below the minimum %g, clamping\n",
                 name, parsed, min_value);
    return min_value;
  }
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

BenchConfig BenchConfig::from_env(std::size_t default_trials) {
  BenchConfig cfg{};
  cfg.trials = static_cast<std::size_t>(
      env_int("RESILIENCE_TRIALS", static_cast<std::int64_t>(default_trials)));
  cfg.seed = static_cast<std::uint64_t>(
      env_int("RESILIENCE_SEED", 20180813, /*min_value=*/0));
  return cfg;
}

RuntimeOptions RuntimeOptions::from_env() {
  RuntimeOptions options;
  options.threads = static_cast<int>(
      env_int("RESILIENCE_THREADS", 0, /*min_value=*/0));
  options.team_pool = env_flag("RESILIENCE_TEAM_POOL", options.team_pool);
  {
    const std::string mode = env_str("RESILIENCE_SCHEDULER", "");
    if (mode == "fibers") {
      options.scheduler_fibers = true;
    } else if (mode == "threads") {
      options.scheduler_fibers = false;
    } else if (!mode.empty()) {
      std::fprintf(stderr,
                   "warning: RESILIENCE_SCHEDULER: ignoring invalid value "
                   "\"%s\" (expected \"fibers\" or \"threads\"), using "
                   "default %s\n",
                   mode.c_str(),
                   options.scheduler_fibers ? "fibers" : "threads");
    }
  }
  options.sched_workers = static_cast<int>(
      env_int("RESILIENCE_SCHED_WORKERS", 0, /*min_value=*/0));
  options.fiber_stack_kb = static_cast<std::size_t>(
      env_int("RESILIENCE_FIBER_STACK_KB",
              static_cast<std::int64_t>(options.fiber_stack_kb),
              /*min_value=*/16));
  options.fast_real = env_flag("RESILIENCE_FAST_REAL", options.fast_real);
  options.checkpoint = env_flag("RESILIENCE_CHECKPOINT", options.checkpoint);
  options.checkpoint_budget = static_cast<std::size_t>(env_int(
      "RESILIENCE_CHECKPOINT_BUDGET",
      static_cast<std::int64_t>(options.checkpoint_budget)));
  options.adaptive = env_flag("RESILIENCE_ADAPTIVE", options.adaptive);
  options.adaptive_ci_half_width =
      env_double("RESILIENCE_ADAPTIVE_CI", options.adaptive_ci_half_width,
                 /*min_value=*/1e-4);
  options.adaptive_ci_relative = env_double(
      "RESILIENCE_ADAPTIVE_REL", options.adaptive_ci_relative, /*min_value=*/0.0);
  options.adaptive_batch = static_cast<std::size_t>(
      env_int("RESILIENCE_ADAPTIVE_BATCH",
              static_cast<std::int64_t>(options.adaptive_batch)));
  options.adaptive_min_trials = static_cast<std::size_t>(
      env_int("RESILIENCE_ADAPTIVE_MIN",
              static_cast<std::int64_t>(options.adaptive_min_trials)));
  options.adaptive_stratify =
      env_flag("RESILIENCE_ADAPTIVE_STRATIFY", options.adaptive_stratify);
  options.shards = static_cast<int>(
      env_int("RESILIENCE_SHARDS", 0, /*min_value=*/0));
  options.golden_store = env_str("RESILIENCE_GOLDEN_STORE", "");
  options.shard_kill_unit = static_cast<int>(
      env_int("RESILIENCE_SHARD_KILL", -1, /*min_value=*/-1));
  {
    const std::string wire = env_str("RESILIENCE_WIRE", "");
    if (wire == "binary") {
      options.wire_binary = true;
    } else if (wire == "json") {
      options.wire_binary = false;
    } else if (!wire.empty()) {
      std::fprintf(stderr,
                   "warning: RESILIENCE_WIRE: ignoring invalid value \"%s\" "
                   "(expected \"binary\" or \"json\"), using default %s\n",
                   wire.c_str(), options.wire_binary ? "binary" : "json");
    }
  }
  options.frame_cap_mb = static_cast<std::size_t>(
      env_int("RESILIENCE_FRAME_CAP_MB",
              static_cast<std::int64_t>(options.frame_cap_mb),
              /*min_value=*/1));
  {
    const std::string fmt = env_str("RESILIENCE_STORE_FORMAT", "");
    if (fmt == "binary") {
      options.store_binary = true;
    } else if (fmt == "json") {
      options.store_binary = false;
    } else if (!fmt.empty()) {
      std::fprintf(stderr,
                   "warning: RESILIENCE_STORE_FORMAT: ignoring invalid value "
                   "\"%s\" (expected \"binary\" or \"json\"), using default "
                   "%s\n",
                   fmt.c_str(), options.store_binary ? "binary" : "json");
    }
  }
  options.scenario = env_str("RESILIENCE_SCENARIO", "");
  options.mtbf_factor =
      env_double("RESILIENCE_MTBF", options.mtbf_factor, /*min_value=*/0.0);
  options.trace_path = env_str("RESILIENCE_TRACE", "");
  options.metrics_path = env_str("RESILIENCE_METRICS", "");
  return options;
}

namespace {

std::mutex& global_mutex() {
  static std::mutex mu;
  return mu;
}

// Leaked on purpose: read during static destruction is possible (atexit
// flushes) and a destructed options object would be a trap.
RuntimeOptions*& global_slot() {
  static RuntimeOptions* slot = nullptr;
  return slot;
}

}  // namespace

const RuntimeOptions& RuntimeOptions::global() {
  std::lock_guard<std::mutex> lock(global_mutex());
  RuntimeOptions*& slot = global_slot();
  if (slot == nullptr) slot = new RuntimeOptions(from_env());
  return *slot;
}

void RuntimeOptions::set_global(const RuntimeOptions& options) {
  std::lock_guard<std::mutex> lock(global_mutex());
  RuntimeOptions*& slot = global_slot();
  if (slot == nullptr) {
    slot = new RuntimeOptions(options);
  } else {
    *slot = options;
  }
}

void RuntimeOptions::reset_global() {
  std::lock_guard<std::mutex> lock(global_mutex());
  RuntimeOptions*& slot = global_slot();
  delete slot;
  slot = nullptr;
}

}  // namespace resilience::util
