#include "util/rng.hpp"

#include <algorithm>

namespace resilience::util {

std::vector<std::uint64_t> Xoshiro256::sample_distinct(std::uint64_t n,
                                                       std::uint64_t k) {
  if (k > n) throw std::invalid_argument("sample_distinct: k > n");
  // Floyd's algorithm: for j in [n-k, n): pick t in [0, j]; insert t unless
  // already chosen, in which case insert j. Produces a uniform k-subset.
  std::vector<std::uint64_t> chosen;
  chosen.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = uniform_below(j + 1);
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  return chosen;
}

}  // namespace resilience::util
