// Deterministic, seedable random number generation for fault-injection
// campaigns.
//
// Every random decision in a campaign (which rank, which dynamic FP op,
// which bit, which operand) must be reproducible from a single trial seed
// so that a fault-injection test can be re-run in isolation for debugging.
// We use xoshiro256** seeded through SplitMix64, following the reference
// construction by Blackman & Vigna; <random> engines are avoided because
// their distributions are not guaranteed bit-identical across standard
// library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace resilience::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
/// Also useful on its own for cheap hash-like seed derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive a child seed from a parent seed and a stream index.
/// Used to give each trial / rank an independent stream.
constexpr std::uint64_t derive_seed(std::uint64_t parent,
                                    std::uint64_t stream) noexcept {
  SplitMix64 mix(parent ^ (0x7f4a7c15ULL + stream * 0x9e3779b97f4a7c15ULL));
  // Burn one output so stream 0 does not coincide with the parent stream.
  (void)mix.next();
  return mix.next();
}

/// Two-level substream derivation: an independent child seed for index
/// `inner` of substream `outer`. Adaptive campaigns key trial RNGs by
/// (stratum, index-within-stratum) so a trial's randomness is a function
/// of its identity alone — independent of batch boundaries, allocation
/// order, and worker count.
constexpr std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t outer,
                                    std::uint64_t inner) noexcept {
  return derive_seed(derive_seed(parent, outer), inner);
}

/// xoshiro256**: fast, high-quality 64-bit PRNG with 256 bits of state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased multiply-shift
  /// rejection method. bound must be nonzero.
  std::uint64_t uniform_below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("uniform_below: bound == 0");
    // Rejection loop: expected iterations < 2 for any bound.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      // 128-bit multiply to map r into [0, bound) without modulo bias.
      const __uint128_t m = static_cast<__uint128_t>(r) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // span == 0 means the full 64-bit range; next() is already uniform there.
    const std::uint64_t off = (span == 0) ? next() : uniform_below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// k distinct values drawn uniformly from [0, n), in selection order.
  /// Uses Floyd's algorithm: O(k) expected time, no O(n) storage.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t n, std::uint64_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace resilience::util
