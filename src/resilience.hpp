// Umbrella header: the framework's public API in one include.
//
//   #include "resilience.hpp"
//
// pulls in every layer an application or study driver needs — the
// simulated-MPI runtime, the fault injector, the built-in benchmarks and
// integration kernels, the campaign harness, the modeling pipeline, and
// the telemetry/options subsystems. Deep includes ("core/study.hpp")
// remain valid for consumers that want a narrower dependency surface;
// this header is the recommended entry point for examples and external
// tools.
#pragma once

// util: RNG streams, statistics, tables, JSON, runtime options.
#include "util/json.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// telemetry: metrics registry, trace spans/events, pluggable sinks.
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

// simmpi: the simulated MPI substrate applications run on.
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/topology.hpp"

// fsefi: instrumented Real arithmetic and injection plans.
#include "fsefi/fault_context.hpp"
#include "fsefi/plan.hpp"
#include "fsefi/real.hpp"

// apps: the App interface, built-in benchmarks, integration kernels.
#include "apps/app.hpp"
#include "apps/kernels.hpp"

// harness: campaigns, golden runs/caching, checkpoints, serialization.
#include "harness/campaign.hpp"
#include "harness/checkpoint.hpp"
#include "harness/runner.hpp"
#include "harness/serialize.hpp"

// core: the paper's modeling pipeline — studies, prediction, reports.
#include "core/bootstrap.hpp"
#include "core/report.hpp"
#include "core/similarity.hpp"
#include "core/study.hpp"
