#include <algorithm>
#include <cctype>

#include "apps/app.hpp"
#include "apps/cg.hpp"
#include "apps/ft.hpp"
#include "apps/lu.hpp"
#include "apps/mg.hpp"
#include "apps/minife.hpp"
#include "apps/pennant.hpp"
#include "apps/trial_control.hpp"
#include "util/fiber_tls.hpp"

namespace resilience::apps {

namespace {

// Trial control (checkpoint/early-exit hooks) is installed per rank; it
// must follow the rank's fiber across scheduler workers like every other
// per-rank thread-local.
[[maybe_unused]] const std::size_t g_trial_control_tls_slot =
    util::FiberTlsRegistry::add({
        []() noexcept -> void* { return detail::tl_trial_control; },
        [](void* v) noexcept {
          detail::tl_trial_control = static_cast<TrialControl*>(v);
        },
        nullptr,
    });

}  // namespace

const std::vector<AppId>& all_app_ids() {
  static const std::vector<AppId> ids = {AppId::CG,     AppId::FT,
                                         AppId::MG,     AppId::LU,
                                         AppId::MiniFE, AppId::PENNANT};
  return ids;
}

std::unique_ptr<App> make_app(AppId id, const std::string& size_class) {
  switch (id) {
    case AppId::CG: {
      const std::string cls = size_class.empty() ? "S" : size_class;
      return std::make_unique<CgApp>(CgApp::config_for_class(cls), cls);
    }
    case AppId::FT: {
      const std::string cls = size_class.empty() ? "S" : size_class;
      return std::make_unique<FtApp>(FtApp::config_for_class(cls), cls);
    }
    case AppId::MG: {
      const std::string cls = size_class.empty() ? "S" : size_class;
      return std::make_unique<MgApp>(MgApp::config_for_class(cls), cls);
    }
    case AppId::LU: {
      const std::string cls = size_class.empty() ? "W" : size_class;
      return std::make_unique<LuApp>(LuApp::config_for_class(cls), cls);
    }
    case AppId::MiniFE: {
      const std::string cls = size_class.empty() ? "S" : size_class;
      return std::make_unique<MiniFeApp>(MiniFeApp::config_for_class(cls), cls);
    }
    case AppId::PENNANT: {
      const std::string cls = size_class.empty() ? "leblanc" : size_class;
      return std::make_unique<PennantApp>(PennantApp::config_for_class(cls),
                                          cls);
    }
  }
  throw std::invalid_argument("make_app: unknown AppId");
}

AppId parse_app_id(const std::string& name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "CG") return AppId::CG;
  if (upper == "FT") return AppId::FT;
  if (upper == "MG") return AppId::MG;
  if (upper == "LU") return AppId::LU;
  if (upper == "MINIFE") return AppId::MiniFE;
  if (upper == "PENNANT") return AppId::PENNANT;
  throw std::invalid_argument("parse_app_id: unknown app " + name);
}

}  // namespace resilience::apps
