#include "apps/pennant.hpp"

#include <array>
#include <stdexcept>

#include "apps/kernels.hpp"
#include "apps/trial_control.hpp"

namespace resilience::apps {

namespace {
constexpr int kZoneHaloTag = 800;
}

PennantApp::Config PennantApp::config_for_class(const std::string& size_class) {
  Config cfg;
  if (size_class.empty() || size_class == "leblanc") return cfg;
  throw std::invalid_argument("PENNANT: unknown size class " + size_class);
}

PennantApp::PennantApp(Config config, std::string size_class)
    : config_(config), size_class_(std::move(size_class)) {
  if (config_.zones < 2) throw std::invalid_argument("PENNANT: too few zones");
}

AppResult PennantApp::run(simmpi::Comm& comm) const {
  const int p = comm.size();
  const int rank = comm.rank();
  const auto& cfg = config_;
  const auto block = simmpi::block_partition(cfg.zones, p, rank);
  const int zlo = static_cast<int>(block.lo);
  const int nzones = static_cast<int>(block.count());
  const int nnodes = nzones + 1;  // nodes zlo .. zlo+nzones inclusive
  const int prev = (rank > 0) ? rank - 1 : -1;
  const int next = (rank + 1 < p) ? rank + 1 : -1;

  const Real gamma_m1(cfg.gamma - 1.0);
  const double dx0 = cfg.tube_length / cfg.zones;

  // ---- initial state (plain doubles; setup is uninstrumented) -----------
  std::vector<Real> x(static_cast<std::size_t>(nnodes));
  std::vector<Real> v(static_cast<std::size_t>(nnodes), Real(0.0));
  std::vector<Real> zm(static_cast<std::size_t>(nzones));   // zone mass
  std::vector<Real> rho(static_cast<std::size_t>(nzones));
  std::vector<Real> en(static_cast<std::size_t>(nzones));   // specific energy
  std::vector<Real> pr(static_cast<std::size_t>(nzones));
  std::vector<Real> qv(static_cast<std::size_t>(nzones), Real(0.0));

  for (int i = 0; i < nnodes; ++i) {
    x[static_cast<std::size_t>(i)] = Real((zlo + i) * dx0);
  }
  for (int i = 0; i < nzones; ++i) {
    const double center = (zlo + i + 0.5) * dx0;
    const bool left = center < cfg.interface;
    const double r0 = left ? cfg.rho_left : cfg.rho_right;
    const double p0 = left ? cfg.p_left : cfg.p_right;
    rho[static_cast<std::size_t>(i)] = Real(r0);
    pr[static_cast<std::size_t>(i)] = Real(p0);
    en[static_cast<std::size_t>(i)] = Real(p0 / ((cfg.gamma - 1.0) * r0));
    zm[static_cast<std::size_t>(i)] = Real(r0 * dx0);
  }
  // Node masses: half the adjacent zone masses; end-node halves come from
  // the neighbour's boundary zone (constant, exchanged once).
  Real mass_from_prev(0.0), mass_from_next(0.0);
  if (p > 1) {
    exchange_halo_rows(comm, kZoneHaloTag,
                       std::span<const Real>(&zm.front(), 1),
                       std::span<const Real>(&zm.back(), 1),
                       std::span<Real>(&mass_from_prev, 1),
                       std::span<Real>(&mass_from_next, 1), prev, next);
  }
  std::vector<Real> nm(static_cast<std::size_t>(nnodes));
  for (int i = 0; i < nnodes; ++i) {
    const Real left_mass =
        (i > 0) ? zm[static_cast<std::size_t>(i - 1)]
                : (zlo > 0 ? mass_from_prev : Real(0.0));
    const Real right_mass =
        (i < nzones) ? zm[static_cast<std::size_t>(i)]
                     : (zlo + nzones < cfg.zones ? mass_from_next : Real(0.0));
    nm[static_cast<std::size_t>(i)] = Real(0.5) * (left_mass + right_mass);
  }

  // ---- time-step loop ----------------------------------------------------
  // Simulation time is tracked as a plain double fed by the *broadcast* dt
  // value, so every rank always agrees on the loop trip count — a corrupted
  // local accumulation of t would otherwise deadlock the halo exchanges.
  double t = 0.0;
  int step = 0;
  std::vector<Real> ptot(static_cast<std::size_t>(nzones));  // P + q

  // Boundary hook (DESIGN.md §9): live state across cycles is the node and
  // zone fields plus simulation time. qv and ptot are fully recomputed each
  // cycle; zm is fixed and written with uninstrumented constructors; nm is
  // fixed too but was *computed* with instrumented ops, so it is corruptible
  // and must be part of the digest/checkpoint.
  TrialControl* ctl = current_trial_control();
  auto views = [&] {
    return std::array<StateView, 7>{
        StateView::reals(x),  StateView::reals(v),  StateView::reals(rho),
        StateView::reals(en), StateView::reals(pr), StateView::reals(nm),
        StateView::scalar(t)};
  };
  if (ctl != nullptr) {
    const auto vw = views();
    step = ctl->begin(vw);
  }

  for (; step < cfg.max_steps && t < cfg.t_final * (1.0 - 1e-12); ++step) {
    // Artificial viscosity from the current velocity field (local).
    for (int i = 0; i < nzones; ++i) {
      const Real dv = v[static_cast<std::size_t>(i + 1)] -
                      v[static_cast<std::size_t>(i)];
      if (dv < Real(0.0)) {
        const Real c = sqrt(Real(cfg.gamma) * pr[static_cast<std::size_t>(i)] /
                            rho[static_cast<std::size_t>(i)]);
        qv[static_cast<std::size_t>(i)] =
            rho[static_cast<std::size_t>(i)] *
            (Real(cfg.q2) * dv * dv + Real(cfg.q1) * c * abs(dv));
      } else {
        qv[static_cast<std::size_t>(i)] = Real(0.0);
      }
    }

    // CFL-limited global time step (the per-cycle collective).
    Real dt_local(1e30);
    for (int i = 0; i < nzones; ++i) {
      const Real dx = x[static_cast<std::size_t>(i + 1)] -
                      x[static_cast<std::size_t>(i)];
      const Real c = sqrt(Real(cfg.gamma) * pr[static_cast<std::size_t>(i)] /
                          rho[static_cast<std::size_t>(i)]);
      const Real dv = abs(v[static_cast<std::size_t>(i + 1)] -
                          v[static_cast<std::size_t>(i)]);
      dt_local = min(dt_local, Real(cfg.cfl) * dx / (c + dv + Real(1e-30)));
    }
    Real dt = comm.allreduce_value(dt_local, simmpi::Min{});
    dt = min(dt, Real(cfg.t_final - t));
    if (!isfinite(dt) || dt <= Real(0.0)) {
      throw NumericalError("PENNANT time step became invalid");
    }

    // Exchange boundary-zone total pressure with the neighbours.
    for (int i = 0; i < nzones; ++i) {
      ptot[static_cast<std::size_t>(i)] =
          pr[static_cast<std::size_t>(i)] + qv[static_cast<std::size_t>(i)];
    }
    Real ptot_prev(0.0), ptot_next(0.0);
    if (p > 1) {
      exchange_halo_rows(comm, kZoneHaloTag + 1 + step,
                         std::span<const Real>(&ptot.front(), 1),
                         std::span<const Real>(&ptot.back(), 1),
                         std::span<Real>(&ptot_prev, 1),
                         std::span<Real>(&ptot_next, 1), prev, next);
    }

    // Node accelerations and positions. Wall boundary: end nodes pinned.
    for (int i = 0; i < nnodes; ++i) {
      const int g = zlo + i;
      if (g == 0 || g == cfg.zones) {
        v[static_cast<std::size_t>(i)] = Real(0.0);
        continue;
      }
      const Real p_left_zone =
          (i > 0) ? ptot[static_cast<std::size_t>(i - 1)] : ptot_prev;
      const Real p_right_zone =
          (i < nzones) ? ptot[static_cast<std::size_t>(i)] : ptot_next;
      const Real force = p_left_zone - p_right_zone;
      v[static_cast<std::size_t>(i)] +=
          dt * force / nm[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < nnodes; ++i) {
      x[static_cast<std::size_t>(i)] += dt * v[static_cast<std::size_t>(i)];
    }

    // Zone updates: compression work and equation of state.
    for (int i = 0; i < nzones; ++i) {
      const Real dx = x[static_cast<std::size_t>(i + 1)] -
                      x[static_cast<std::size_t>(i)];
      if (!(dx > Real(0.0))) {
        throw NumericalError("PENNANT mesh tangled (non-positive zone length)");
      }
      rho[static_cast<std::size_t>(i)] = zm[static_cast<std::size_t>(i)] / dx;
      const Real dv = v[static_cast<std::size_t>(i + 1)] -
                      v[static_cast<std::size_t>(i)];
      en[static_cast<std::size_t>(i)] -=
          dt * ptot[static_cast<std::size_t>(i)] * dv /
          zm[static_cast<std::size_t>(i)];
      if (!(en[static_cast<std::size_t>(i)] > Real(0.0)) ||
          !isfinite(en[static_cast<std::size_t>(i)])) {
        throw NumericalError("PENNANT energy became invalid");
      }
      pr[static_cast<std::size_t>(i)] = gamma_m1 *
                                        rho[static_cast<std::size_t>(i)] *
                                        en[static_cast<std::size_t>(i)];
    }
    t += dt.value();

    if (ctl != nullptr) {
      const auto vw = views();
      if (!ctl->boundary(comm, step, vw)) return {};
    }
  }

  if (t < cfg.t_final * (1.0 - 1e-9)) {
    // The step budget ran out before reaching the end time: the analogue of
    // a hung job whose dt collapsed.
    throw NumericalError("PENNANT exceeded the step budget before t_final");
  }

  // ---- conserved-quantity signature --------------------------------------
  // Each rank owns nodes [zlo, zlo+nzones), the last rank also the end node.
  Real e_local(0.0), mom_local(0.0);
  for (int i = 0; i < nzones; ++i) {
    e_local += zm[static_cast<std::size_t>(i)] * en[static_cast<std::size_t>(i)];
  }
  const int owned_nodes = nzones + ((zlo + nzones == cfg.zones) ? 1 : 0);
  for (int i = 0; i < owned_nodes; ++i) {
    const Real vi = v[static_cast<std::size_t>(i)];
    e_local += Real(0.5) * nm[static_cast<std::size_t>(i)] * vi * vi;
    mom_local += nm[static_cast<std::size_t>(i)] * vi;
  }
  const Real e_total = comm.allreduce_value(e_local, simmpi::Sum{});
  const Real mom_total = comm.allreduce_value(mom_local, simmpi::Sum{});
  guard_finite(e_total, "PENNANT total energy");

  AppResult result;
  result.iterations = step;
  result.signature = {e_total.value(), mom_total.value()};
  return result;
}

}  // namespace resilience::apps
