// Radix-2 FFT over instrumented complex values — the numerical core of
// the FT benchmark, exposed for direct testing and reuse.
#pragma once

#include <span>
#include <vector>

#include "fsefi/real.hpp"

namespace resilience::apps {

/// Complex value over instrumented reals; trivially copyable so FT's
/// transpose can ship blocks of them through the transport.
struct RComplex {
  fsefi::Real re{0.0};
  fsefi::Real im{0.0};

  friend RComplex operator+(RComplex a, RComplex b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend RComplex operator-(RComplex a, RComplex b) {
    return {a.re - b.re, a.im - b.im};
  }
  friend RComplex operator*(RComplex a, RComplex b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
};
static_assert(std::is_trivially_copyable_v<RComplex>);

/// Precomputed support tables for power-of-two FFTs of one size.
/// Construction uses plain doubles (setup is uninstrumented); transforms
/// run on Real (counted and injectable).
class FftPlan {
 public:
  /// Throws std::invalid_argument unless n is a power of two >= 2.
  explicit FftPlan(int n);

  [[nodiscard]] int size() const noexcept { return n_; }

  /// In-place radix-2 FFT; `inverse` conjugates the twiddles.
  /// No normalization is applied (callers own the 1/n placement).
  /// row.size() must equal size().
  void transform(std::span<RComplex> row, bool inverse) const;

 private:
  int n_;
  std::vector<int> bit_reverse_;
  std::vector<double> twiddle_re_;
  std::vector<double> twiddle_im_;
};

}  // namespace resilience::apps
