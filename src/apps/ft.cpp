#include "apps/ft.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <type_traits>

#include "apps/kernels.hpp"
#include "apps/trial_control.hpp"
#include "util/rng.hpp"

namespace resilience::apps {

FtApp::Config FtApp::config_for_class(const std::string& size_class) {
  Config cfg;
  if (size_class.empty() || size_class == "S") return cfg;
  if (size_class == "B") {
    cfg.n = 128;
    return cfg;
  }
  throw std::invalid_argument("FT: unknown size class " + size_class);
}

FtApp::FtApp(Config config, std::string size_class)
    : config_(config),
      size_class_(std::move(size_class)),
      plan_(config.n) {}

namespace {

/// Unit-modulus evolution factor for global element (gi, gj); symmetric in
/// its arguments so it is invariant under transposition.
RComplex evolve_factor(int gi, int gj, int n, double alpha, int step,
                       bool inverse) {
  const double k2 = static_cast<double>(gi) * gi + static_cast<double>(gj) * gj;
  double angle = 2.0 * std::numbers::pi * alpha * k2 *
                 static_cast<double>(step + 1) / (n * n);
  if (inverse) angle = -angle;
  return {Real(std::cos(angle)), Real(std::sin(angle))};
}

}  // namespace

AppResult FtApp::run(simmpi::Comm& comm) const {
  const int p = comm.size();
  const int rank = comm.rank();
  const int n = config_.n;
  if (n % p != 0) throw NumericalError("FT: ranks must divide grid size");
  const int rows_local = n / p;
  const int row_lo = rank * rows_local;
  const auto block = static_cast<std::size_t>(rows_local) *
                     static_cast<std::size_t>(rows_local);

  // Initial field: deterministic pseudo-random complex values in [0,1)^2.
  std::vector<RComplex> u(static_cast<std::size_t>(rows_local) *
                          static_cast<std::size_t>(n));
  for (int i = 0; i < rows_local; ++i) {
    util::Xoshiro256 rng(
        util::derive_seed(config_.field_seed,
                          static_cast<std::uint64_t>(row_lo + i)));
    for (int j = 0; j < n; ++j) {
      auto& c = u[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)];
      c.re = Real(rng.uniform01());
      c.im = Real(rng.uniform01());
    }
  }

  // Transpose the row-partitioned field. In parallel this is the NPB FT
  // all-to-all exchange whose unpack applies `factor_step` (>= 0: evolve
  // factor of that step; -1: none) and `scale`; that arithmetic is the
  // parallel-unique computation. Serial execution does the same arithmetic
  // in a plain loop (common computation).
  auto transpose = [&](std::vector<RComplex>& data, int factor_step,
                       bool inverse_factor, double scale) {
    const Real s(scale);
    if (p == 1) {
      std::vector<RComplex> out(data.size());
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          RComplex v = data[static_cast<std::size_t>(i) * n +
                            static_cast<std::size_t>(j)];
          if (factor_step >= 0) {
            v = v * evolve_factor(j, i, n, config_.evolve_alpha, factor_step,
                                  inverse_factor);
          }
          if (scale != 1.0) v = {v.re * s, v.im * s};
          out[static_cast<std::size_t>(j) * n + static_cast<std::size_t>(i)] = v;
        }
      }
      data = std::move(out);
      return;
    }
    // Pack b x b blocks destined for each rank (data movement only).
    const int b = rows_local;
    std::vector<RComplex> sendbuf(data.size());
    for (int dst = 0; dst < p; ++dst) {
      for (int i = 0; i < b; ++i) {
        for (int j = 0; j < b; ++j) {
          sendbuf[static_cast<std::size_t>(dst) * block +
                  static_cast<std::size_t>(i) * b + static_cast<std::size_t>(j)] =
              data[static_cast<std::size_t>(i) * n +
                   static_cast<std::size_t>(dst * b + j)];
        }
      }
    }
    std::vector<RComplex> recvbuf(data.size());
    comm.alltoall(std::span<const RComplex>(sendbuf),
                  std::span<RComplex>(recvbuf));
    // Unpack with the factor/scale arithmetic: parallel-unique computation.
    fsefi::RegionScope unique(fsefi::Region::ParallelUnique);
    for (int src = 0; src < p; ++src) {
      for (int i = 0; i < b; ++i) {    // row index within src's original rows
        for (int j = 0; j < b; ++j) {  // column within my transposed block
          const int gi = src * b + i;  // original row = my transposed column
          const int gj = row_lo + j;   // original column = my transposed row
          RComplex v = recvbuf[static_cast<std::size_t>(src) * block +
                               static_cast<std::size_t>(i) * b +
                               static_cast<std::size_t>(j)];
          if (factor_step >= 0) {
            v = v * evolve_factor(gi, gj, n, config_.evolve_alpha, factor_step,
                                  inverse_factor);
          }
          if (scale != 1.0) v = {v.re * s, v.im * s};
          data[static_cast<std::size_t>(j) * n + static_cast<std::size_t>(gi)] =
              v;
        }
      }
    }
  };

  auto fft_all_rows = [&](std::vector<RComplex>& data, bool inverse) {
    for (int i = 0; i < rows_local; ++i) {
      plan_.transform(std::span<RComplex>(data).subspan(
                          static_cast<std::size_t>(i) * n,
                          static_cast<std::size_t>(n)),
                      inverse);
    }
  };

  RComplex checksum{Real(0.0), Real(0.0)};

  // Boundary hook (DESIGN.md §9): live state is the field and the running
  // checksum. RComplex is a pair of Reals, so the field is viewed as a
  // flat Real span.
  static_assert(std::is_trivially_copyable_v<RComplex> &&
                sizeof(RComplex) == 2 * sizeof(Real));
  TrialControl* ctl = current_trial_control();
  auto views = [&] {
    return std::array<StateView, 2>{
        StateView::reals(
            {reinterpret_cast<Real*>(u.data()), u.size() * 2}),
        StateView::reals({reinterpret_cast<Real*>(&checksum), 2})};
  };
  int step = 0;
  if (ctl != nullptr) {
    const auto v = views();
    step = ctl->begin(v);
  }

  for (; step < config_.iterations; ++step) {
    // Forward transform with the evolution factor applied at the transpose.
    fft_all_rows(u, /*inverse=*/false);
    transpose(u, step, /*inverse_factor=*/false, 1.0);
    fft_all_rows(u, /*inverse=*/false);
    // Inverse transform; the full 1/n^2 normalization rides the transpose.
    fft_all_rows(u, /*inverse=*/true);
    transpose(u, -1, false, 1.0 / (static_cast<double>(n) * n));
    fft_all_rows(u, /*inverse=*/true);

    // Checksum over a strided subset of global elements (NPB style).
    RComplex local{Real(0.0), Real(0.0)};
    for (int q = 0; q < n; ++q) {
      const int gi = (q * 5 + 3) % n;
      const int gj = (q * 11 + 1) % n;
      if (gi >= row_lo && gi < row_lo + rows_local) {
        local = local + u[static_cast<std::size_t>(gi - row_lo) * n +
                          static_cast<std::size_t>(gj)];
      }
    }
    const RComplex total = comm.allreduce_value(
        local, [](RComplex a, RComplex b) { return a + b; });
    guard_finite(total.re, "FT checksum");
    guard_finite(total.im, "FT checksum");
    checksum = checksum + total;

    if (ctl != nullptr) {
      const auto v = views();
      if (!ctl->boundary(comm, step, v)) return {};
    }
  }

  AppResult result;
  result.iterations = config_.iterations;
  result.signature = {checksum.re.value(), checksum.im.value()};
  return result;
}

}  // namespace resilience::apps
