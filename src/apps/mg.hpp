// MG — miniature of NAS Parallel Benchmarks MG.
//
// Runs V-cycles of a geometric multigrid solver for a 2D Poisson problem
// with a damped-Jacobi smoother, semicoarsening in the row direction.
// The output signature is the L2 norm of the final residual (NPB MG's
// verification quantity) plus the solution norm.
//
// Parallelization (strong scaling): rows are block-partitioned; smoothing
// and residual evaluation exchange one halo row with each neighbour.
// Levels whose row count is no longer divisible by the rank count are
// *agglomerated*: the residual is allgathered and every rank runs the
// remaining coarse-grid correction redundantly — a standard HPC multigrid
// technique that keeps all computation common between serial and parallel
// execution (Table 1 of the paper reports no parallel-unique computation
// for MG).
#pragma once

#include <cstdint>
#include <string>

#include "apps/app.hpp"

namespace resilience::apps {

class MgApp final : public App {
 public:
  struct Config {
    int rows = 128;          ///< finest-level interior rows (power of two)
    int cols = 10;           ///< interior columns (fixed across levels)
    int coarsest_rows = 8;   ///< stop coarsening here
    int vcycles = 3;
    int pre_smooth = 2;
    int post_smooth = 2;
    int coarse_smooth = 8;   ///< Jacobi sweeps on the coarsest level
    double omega = 0.8;      ///< Jacobi damping
    std::uint64_t rhs_seed = 0xf00dfaceULL;
  };

  static Config config_for_class(const std::string& size_class);

  MgApp(Config config, std::string size_class);

  [[nodiscard]] std::string name() const override { return "MG"; }
  [[nodiscard]] std::string size_class() const override { return size_class_; }
  [[nodiscard]] bool supports(int nranks) const override {
    return nranks >= 1 && nranks <= config_.rows &&
           config_.rows % nranks == 0;
  }
  [[nodiscard]] double checker_tolerance() const override { return 1e-9; }

  AppResult run(simmpi::Comm& comm) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::string size_class_;
};

}  // namespace resilience::apps
