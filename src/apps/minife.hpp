// MiniFE — miniature of the Mantevo MiniFE proxy application.
//
// Assembles a finite-element-style linear system on a 3D brick mesh of
// hexahedral elements (8-node trilinear reference stiffness, per-element
// material coefficient) and solves it with unpreconditioned conjugate
// gradients.
//
// Parallelization (strong scaling): elements and matrix rows are block-
// partitioned over the flattened index spaces. During assembly, an
// element owned by one rank contributes to node rows owned by another;
// those contributions are exchanged with a sparse all-to-all (counts
// exchange + targeted sends) and merged on the owning rank. The merge
// additions only exist in the parallel code path and are marked as the
// benchmark's *parallel-unique computation* — a small fraction of the
// run, matching Table 1 of the paper.
//
// Output signature: final CG residual norm, solution norm, and b . x.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "apps/app.hpp"

namespace resilience::apps {

class MiniFeApp final : public App {
 public:
  struct Config {
    int nx = 6;          ///< elements per side (nodes per side = nx + 1)
    int cg_iters = 8;
    double mass_shift = 1.0;  ///< A = K + shift * I keeps the system SPD
    std::uint64_t material_seed = 0xfe1e57ULL;
  };

  static Config config_for_class(const std::string& size_class);

  MiniFeApp(Config config, std::string size_class);

  [[nodiscard]] std::string name() const override { return "MiniFE"; }
  [[nodiscard]] std::string size_class() const override { return size_class_; }
  [[nodiscard]] bool supports(int nranks) const override {
    const int elems = config_.nx * config_.nx * config_.nx;
    return nranks >= 1 && nranks <= elems;
  }
  [[nodiscard]] double checker_tolerance() const override { return 1e-9; }

  AppResult run(simmpi::Comm& comm) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// Reference 8x8 stiffness of the unit hexahedron (row-major).
  [[nodiscard]] const std::array<double, 64>& reference_stiffness() const {
    return ref_stiffness_;
  }

 private:
  Config config_;
  std::string size_class_;
  std::array<double, 64> ref_stiffness_{};
};

}  // namespace resilience::apps
