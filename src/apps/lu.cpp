#include "apps/lu.hpp"

#include <array>
#include <stdexcept>

#include "apps/kernels.hpp"
#include "apps/trial_control.hpp"
#include "util/rng.hpp"

namespace resilience::apps {

namespace {
constexpr int kHaloTag = 100;
constexpr int kForwardTag = 200;
constexpr int kBackwardTag = 300;
}  // namespace

LuApp::Config LuApp::config_for_class(const std::string& size_class) {
  Config cfg;
  if (size_class.empty() || size_class == "W") return cfg;
  throw std::invalid_argument("LU: unknown size class " + size_class);
}

LuApp::LuApp(Config config, std::string size_class)
    : config_(config), size_class_(std::move(size_class)) {
  if (config_.rows < 1 || config_.cols < 1) {
    throw std::invalid_argument("LU: bad grid");
  }
}

AppResult LuApp::run(simmpi::Comm& comm) const {
  const int p = comm.size();
  const int rank = comm.rank();
  const int cols = config_.cols;
  const auto width = static_cast<std::size_t>(cols);
  const auto block = simmpi::block_partition(config_.rows, p, rank);
  const int lo = static_cast<int>(block.lo);
  const int count = static_cast<int>(block.count());
  const int prev = (rank > 0) ? rank - 1 : -1;
  const int next = (rank + 1 < p) ? rank + 1 : -1;

  auto at = [&](int i, int j) {
    return static_cast<std::size_t>(i) * width + static_cast<std::size_t>(j);
  };

  // Fixed right-hand side; solution starts at zero.
  std::vector<Real> u(static_cast<std::size_t>(count) * width, Real(0.0));
  std::vector<Real> f(u.size());
  for (int i = 0; i < count; ++i) {
    util::Xoshiro256 rng(
        util::derive_seed(config_.rhs_seed, static_cast<std::uint64_t>(lo + i)));
    for (int j = 0; j < cols; ++j) {
      f[at(i, j)] = Real(rng.uniform_real(-1.0, 1.0));
    }
  }

  std::vector<Real> rhs(u.size()), z(u.size()), v(u.size());
  std::vector<Real> above(width), below(width), boundary(width);
  const Real omega(config_.omega);
  const Real inv_diag(1.0 / config_.diag);

  // r = f - A u with A = 4 I - (up + down + left + right).
  auto compute_residual = [&](int tag) {
    std::fill(above.begin(), above.end(), Real(0.0));
    std::fill(below.begin(), below.end(), Real(0.0));
    if (p > 1 && count > 0) {
      exchange_halo_rows(
          comm, tag, std::span<const Real>(u).subspan(0, width),
          std::span<const Real>(u).subspan(
              static_cast<std::size_t>(count - 1) * width, width),
          std::span<Real>(above), std::span<Real>(below), prev, next);
    }
    for (int i = 0; i < count; ++i) {
      for (int j = 0; j < cols; ++j) {
        const Real up = (i > 0) ? u[at(i - 1, j)]
                                : (lo + i > 0 ? above[static_cast<std::size_t>(j)]
                                              : Real(0.0));
        const Real down =
            (i + 1 < count)
                ? u[at(i + 1, j)]
                : (lo + i + 1 < config_.rows ? below[static_cast<std::size_t>(j)]
                                             : Real(0.0));
        const Real left = (j > 0) ? u[at(i, j - 1)] : Real(0.0);
        const Real right = (j + 1 < cols) ? u[at(i, j + 1)] : Real(0.0);
        const Real au = Real(4.0) * u[at(i, j)] - up - down - left - right;
        rhs[at(i, j)] = f[at(i, j)] - au;
      }
    }
  };

  // Boundary hook (DESIGN.md §9): u is the only live state across
  // iterations — rhs, z and v are fully recomputed each sweep, and f is
  // fixed after setup (written with uninstrumented constructors).
  TrialControl* ctl = current_trial_control();
  auto views = [&] {
    return std::array<StateView, 1>{StateView::reals(u)};
  };
  int iter = 0;
  if (ctl != nullptr) {
    const auto vw = views();
    iter = ctl->begin(vw);
  }

  for (; iter < config_.iterations; ++iter) {
    compute_residual(kHaloTag + 2 * iter);

    // ---- forward (lower-triangular) sweep: wavefront top -> bottom ----
    std::fill(boundary.begin(), boundary.end(), Real(0.0));
    if (prev >= 0) {
      comm.recv(prev, kForwardTag + iter, std::span<Real>(boundary));
    }
    for (int i = 0; i < count; ++i) {
      for (int j = 0; j < cols; ++j) {
        const Real up = (i > 0) ? z[at(i - 1, j)]
                                : (lo > 0 ? boundary[static_cast<std::size_t>(j)]
                                          : Real(0.0));
        const Real left = (j > 0) ? z[at(i, j - 1)] : Real(0.0);
        z[at(i, j)] = (rhs[at(i, j)] + omega * (up + left)) * inv_diag;
      }
    }
    if (next >= 0 && count > 0) {
      comm.send(next, kForwardTag + iter,
                std::span<const Real>(z).subspan(
                    static_cast<std::size_t>(count - 1) * width, width));
    }

    // ---- backward (upper-triangular) sweep: wavefront bottom -> top ----
    std::fill(boundary.begin(), boundary.end(), Real(0.0));
    if (next >= 0) {
      comm.recv(next, kBackwardTag + iter, std::span<Real>(boundary));
    }
    for (int i = count - 1; i >= 0; --i) {
      for (int j = cols - 1; j >= 0; --j) {
        const Real down =
            (i + 1 < count)
                ? v[at(i + 1, j)]
                : (lo + count < config_.rows
                       ? boundary[static_cast<std::size_t>(j)]
                       : Real(0.0));
        const Real right = (j + 1 < cols) ? v[at(i, j + 1)] : Real(0.0);
        v[at(i, j)] = (z[at(i, j)] + omega * (down + right)) * inv_diag;
      }
    }
    if (prev >= 0 && count > 0) {
      comm.send(prev, kBackwardTag + iter,
                std::span<const Real>(v).subspan(0, width));
    }

    // ---- apply the SSOR update ----
    for (std::size_t k = 0; k < u.size(); ++k) u[k] += v[k];

    if (ctl != nullptr) {
      const auto vw = views();
      if (!ctl->boundary(comm, iter, vw)) return {};
    }
  }

  compute_residual(kHaloTag + 2 * config_.iterations);
  const Real rnorm = global_norm2(comm, rhs);
  guard_finite(rnorm, "LU residual norm");
  const Real unorm = global_norm2(comm, u);

  AppResult result;
  result.iterations = config_.iterations;
  result.signature = {rnorm.value(), unorm.value()};
  return result;
}

}  // namespace resilience::apps
