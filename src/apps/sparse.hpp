// Deterministic sparse symmetric positive-definite test matrices in CSR
// form, standing in for NPB CG's `makea` generator.
//
// The matrix is a function of (n, nonzeros-per-row, seed) only — every
// rank of every scale builds the identical matrix, as strong scaling
// requires. Entries are generated with plain doubles (the paper's fault
// injection targets the main computation loop, not problem setup), so
// construction is uninstrumented and cheap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace resilience::apps {

/// Compressed sparse row matrix of plain doubles.
struct SparseMatrix {
  std::int64_t n = 0;
  std::vector<std::int64_t> row_ptr;  ///< size n+1
  std::vector<std::int64_t> col_idx;  ///< size nnz
  std::vector<double> values;         ///< size nnz

  [[nodiscard]] std::int64_t nnz() const noexcept {
    return static_cast<std::int64_t>(col_idx.size());
  }

  /// Nonzeros of row i as (col_idx, values) subspans.
  [[nodiscard]] std::span<const std::int64_t> row_cols(std::int64_t i) const {
    return std::span<const std::int64_t>(col_idx).subspan(
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]),
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i) + 1] -
                                 row_ptr[static_cast<std::size_t>(i)]));
  }
  [[nodiscard]] std::span<const double> row_vals(std::int64_t i) const {
    return std::span<const double>(values).subspan(
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]),
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i) + 1] -
                                 row_ptr[static_cast<std::size_t>(i)]));
  }
};

/// Random sparse SPD matrix: symmetric off-diagonal pattern with about
/// `row_nonzeros` entries per row, plus a diagonal of
/// `shift + sum(|offdiag of the row|)` making it strictly diagonally
/// dominant (hence SPD).
SparseMatrix make_spd_matrix(std::int64_t n, int row_nonzeros, double shift,
                             std::uint64_t seed);

}  // namespace resilience::apps
