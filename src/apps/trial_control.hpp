// Cooperative trial-control hooks: the boundary API (DESIGN.md §9).
//
// Each mini-app's outer iteration loop is bulk-synchronous: at the end of
// every iteration all ranks meet at a global sync point and the rank-local
// live state — the set of values that determines the remainder of the run
// — is a handful of named vectors and scalars. Apps expose that state to
// the harness as StateViews and call into an installed TrialControl at the
// loop boundary. The harness uses the hook two ways:
//
//   * golden capture — profile_app records per-boundary op counts, a state
//     digest, and (at a budgeted subset of boundaries) the full serialized
//     rank state;
//   * trial fast-forward / early exit — an injection run resumes the loop
//     at the last checkpoint before its injection op, and terminates early
//     once every rank's state has provably reconverged to the golden run.
//
// No control installed (the default, and always the case outside the
// harness) means the hooks are skipped entirely and apps behave exactly as
// before.
#pragma once

#include <cstddef>
#include <span>

#include "fsefi/real.hpp"

namespace resilience::simmpi {
class Comm;
}  // namespace resilience::simmpi

namespace resilience::apps {

/// A typed view over one piece of rank-local live state. Views are built
/// fresh at every hook call (buffers may move between iterations, e.g.
/// MG's red/black swap) and are only valid for the duration of the call.
struct StateView {
  enum class Kind : std::uint8_t {
    Reals,    ///< contiguous fsefi::Real elements (primary + shadow)
    Doubles,  ///< plain doubles outside the instrumented type (PENNANT's t)
  };

  Kind kind = Kind::Reals;
  void* data = nullptr;
  std::size_t count = 0;

  static StateView reals(std::span<fsefi::Real> s) noexcept {
    return {Kind::Reals, s.data(), s.size()};
  }
  static StateView real(fsefi::Real& r) noexcept {
    return {Kind::Reals, &r, 1};
  }
  static StateView doubles(std::span<double> s) noexcept {
    return {Kind::Doubles, s.data(), s.size()};
  }
  static StateView scalar(double& d) noexcept { return {Kind::Doubles, &d, 1}; }

  [[nodiscard]] std::span<fsefi::Real> as_reals() const noexcept {
    return {static_cast<fsefi::Real*>(data), count};
  }
  [[nodiscard]] std::span<double> as_doubles() const noexcept {
    return {static_cast<double*>(data), count};
  }
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return count * (kind == Kind::Reals ? sizeof(fsefi::Real) : sizeof(double));
  }
};

/// Harness-side trial controller. Implementations live in the harness
/// (golden capture, trial fast-forward); apps only ever see the interface.
class TrialControl {
 public:
  virtual ~TrialControl() = default;

  /// Called once per rank, after setup, before the first outer iteration.
  /// The views describe the same live state later passed to boundary().
  /// Returns the iteration index to start the loop at: 0 for a normal run;
  /// > 0 after the controller restored the views (and this rank's dynamic
  /// op counters) to the fault-free state at that boundary.
  virtual int begin(std::span<const StateView> views) = 0;

  /// Called at the end of outer iteration `iter` — a global sync point on
  /// `comm`; every rank calls it with the same `iter` or none does.
  /// Returns false when the run may terminate early (every rank's live
  /// state provably matches the fault-free run, so the tail is redundant);
  /// the app must then return immediately — with any dummy result — without
  /// further communication. The harness synthesizes the real outputs.
  [[nodiscard]] virtual bool boundary(simmpi::Comm& comm, int iter,
                                      std::span<const StateView> views) = 0;
};

namespace detail {
inline thread_local TrialControl* tl_trial_control = nullptr;
}  // namespace detail

/// The controller installed on the calling rank thread, or nullptr when
/// the run is not under trial control (the boundary hooks are skipped).
inline TrialControl* current_trial_control() noexcept {
  return detail::tl_trial_control;
}

/// Install `ctl` on the calling thread; pass nullptr to uninstall.
inline void install_trial_control(TrialControl* ctl) noexcept {
  detail::tl_trial_control = ctl;
}

}  // namespace resilience::apps
