#include "apps/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace resilience::apps {

namespace {
bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }
}  // namespace

FftPlan::FftPlan(int n) : n_(n) {
  if (!is_power_of_two(n) || n < 2) {
    throw std::invalid_argument("FftPlan: size must be a power of two >= 2");
  }
  bit_reverse_.assign(static_cast<std::size_t>(n), 0);
  const int log_n = static_cast<int>(std::round(std::log2(n)));
  for (int i = 0; i < n; ++i) {
    int rev = 0;
    for (int b = 0; b < log_n; ++b) {
      rev |= ((i >> b) & 1) << (log_n - 1 - b);
    }
    bit_reverse_[static_cast<std::size_t>(i)] = rev;
  }
  // Forward twiddles w^k = exp(-2*pi*i*k/n) for the largest stage; smaller
  // stages stride through this table.
  twiddle_re_.assign(static_cast<std::size_t>(n / 2), 0.0);
  twiddle_im_.assign(static_cast<std::size_t>(n / 2), 0.0);
  for (int k = 0; k < n / 2; ++k) {
    const double angle = -2.0 * std::numbers::pi * k / n;
    twiddle_re_[static_cast<std::size_t>(k)] = std::cos(angle);
    twiddle_im_[static_cast<std::size_t>(k)] = std::sin(angle);
  }
}

void FftPlan::transform(std::span<RComplex> row, bool inverse) const {
  if (static_cast<int>(row.size()) != n_) {
    throw std::invalid_argument("FftPlan::transform: wrong row length");
  }
  for (int i = 0; i < n_; ++i) {
    const int j = bit_reverse_[static_cast<std::size_t>(i)];
    if (i < j) {
      std::swap(row[static_cast<std::size_t>(i)],
                row[static_cast<std::size_t>(j)]);
    }
  }
  for (int len = 2; len <= n_; len <<= 1) {
    const int half = len / 2;
    const int stride = n_ / len;
    for (int start = 0; start < n_; start += len) {
      for (int k = 0; k < half; ++k) {
        const auto tw_idx = static_cast<std::size_t>(k * stride);
        const RComplex w{fsefi::Real(twiddle_re_[tw_idx]),
                         fsefi::Real(inverse ? -twiddle_im_[tw_idx]
                                             : twiddle_im_[tw_idx])};
        auto& lo = row[static_cast<std::size_t>(start + k)];
        auto& hi = row[static_cast<std::size_t>(start + k + half)];
        const RComplex t = w * hi;
        hi = lo - t;
        lo = lo + t;
      }
    }
  }
}

}  // namespace resilience::apps
