#include "apps/mg.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <stdexcept>

#include "apps/kernels.hpp"
#include "apps/trial_control.hpp"
#include "util/rng.hpp"

namespace resilience::apps {

namespace {

/// Working storage for one multigrid level. When the level is distributed
/// the vectors hold only this rank's rows; when agglomerated they hold the
/// full grid (identical on every rank).
struct Level {
  int rows = 0;       ///< global interior rows of this level
  int cols = 0;
  bool distributed = false;
  int lo = 0;         ///< first owned row (0 when agglomerated)
  int count = 0;      ///< owned rows (== rows when agglomerated)
  std::vector<Real> u;
  std::vector<Real> f;
};

class MgSolver {
 public:
  MgSolver(const MgApp::Config& cfg, simmpi::Comm& comm)
      : cfg_(cfg), comm_(comm), p_(comm.size()), rank_(comm.rank()) {
    for (int rows = cfg_.rows; rows >= cfg_.coarsest_rows; rows /= 2) {
      Level lvl;
      lvl.rows = rows;
      lvl.cols = cfg_.cols;
      lvl.distributed = (p_ > 1) && (rows % p_ == 0);
      if (lvl.distributed) {
        lvl.count = rows / p_;
        lvl.lo = rank_ * lvl.count;
      } else {
        lvl.count = rows;
        lvl.lo = 0;
      }
      const auto cells = static_cast<std::size_t>(lvl.count) *
                         static_cast<std::size_t>(lvl.cols);
      lvl.u.assign(cells, Real(0.0));
      lvl.f.assign(cells, Real(0.0));
      levels_.push_back(std::move(lvl));
    }
  }

  /// Runs the configured V-cycles; returns (residual norm, solution norm),
  /// or nullopt when the trial controller ended the run early.
  std::optional<std::pair<Real, Real>> solve() {
    init_rhs();
    // Boundary hook (DESIGN.md §9): end of a V-cycle. The finest u is the
    // only live state — fine.f is fixed after init_rhs (and written with
    // uninstrumented constructors, so it cannot be corrupted), and every
    // coarse level's u and f are fully overwritten inside each V-cycle.
    // The view is rebuilt per call because smooth() swaps u's buffer.
    TrialControl* ctl = current_trial_control();
    auto views = [&] {
      return std::array<StateView, 1>{StateView::reals(levels_.front().u)};
    };
    int cycle = 0;
    if (ctl != nullptr) {
      const auto v = views();
      cycle = ctl->begin(v);
    }
    for (; cycle < cfg_.vcycles; ++cycle) {
      vcycle(0);
      const Real rnorm = finest_residual_norm();
      guard_finite(rnorm, "MG residual norm");
      if (ctl != nullptr) {
        const auto v = views();
        if (!ctl->boundary(comm_, cycle, v)) return std::nullopt;
      }
    }
    Level& fine = levels_.front();
    const Real rnorm = finest_residual_norm();
    const Real unorm =
        fine.distributed
            ? global_norm2(comm_, fine.u)
            : sqrt(local_dot(fine.u, fine.u));
    return {{rnorm, unorm}};
  }

 private:
  static std::size_t at(const Level& lvl, int i, int j) {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(lvl.cols) +
           static_cast<std::size_t>(j);
  }

  void init_rhs() {
    Level& fine = levels_.front();
    for (int i = 0; i < fine.count; ++i) {
      const int gi = fine.lo + i;
      util::Xoshiro256 rng(
          util::derive_seed(cfg_.rhs_seed, static_cast<std::uint64_t>(gi)));
      for (int j = 0; j < fine.cols; ++j) {
        fine.f[at(fine, i, j)] = Real(rng.uniform_real(-1.0, 1.0));
      }
    }
  }

  /// Fetch halo rows above and below this rank's block (zero at the global
  /// boundary). `which` selects u or f; tag_base separates exchanges.
  void fetch_halo(const Level& lvl, const std::vector<Real>& field,
                  std::vector<Real>& above, std::vector<Real>& below,
                  int tag_base) {
    const auto width = static_cast<std::size_t>(lvl.cols);
    above.assign(width, Real(0.0));
    below.assign(width, Real(0.0));
    if (!lvl.distributed) return;
    const int prev = (rank_ > 0) ? rank_ - 1 : -1;
    const int next = (rank_ + 1 < p_) ? rank_ + 1 : -1;
    exchange_halo_rows(
        comm_, tag_base,
        std::span<const Real>(field).subspan(0, width),  // my top -> prev
        std::span<const Real>(field).subspan(
            static_cast<std::size_t>(lvl.count - 1) * width, width),
        std::span<Real>(above), std::span<Real>(below), prev, next);
  }

  /// One damped-Jacobi sweep on `lvl` (5-point Laplacian, h = 1).
  void smooth(Level& lvl, int sweeps, int tag_base) {
    std::vector<Real> above, below, next(lvl.u.size());
    const Real omega(cfg_.omega);
    const Real quarter(0.25);
    for (int s = 0; s < sweeps; ++s) {
      fetch_halo(lvl, lvl.u, above, below, tag_base + 2 * s);
      for (int i = 0; i < lvl.count; ++i) {
        for (int j = 0; j < lvl.cols; ++j) {
          const Real up = (i > 0) ? lvl.u[at(lvl, i - 1, j)]
                                  : (lvl.lo + i > 0 ? above[static_cast<std::size_t>(j)]
                                                    : Real(0.0));
          const Real down =
              (i + 1 < lvl.count)
                  ? lvl.u[at(lvl, i + 1, j)]
                  : (lvl.lo + i + 1 < lvl.rows ? below[static_cast<std::size_t>(j)]
                                               : Real(0.0));
          const Real left = (j > 0) ? lvl.u[at(lvl, i, j - 1)] : Real(0.0);
          const Real right =
              (j + 1 < lvl.cols) ? lvl.u[at(lvl, i, j + 1)] : Real(0.0);
          const Real gs =
              quarter * (lvl.f[at(lvl, i, j)] + up + down + left + right);
          next[at(lvl, i, j)] =
              (Real(1.0) - omega) * lvl.u[at(lvl, i, j)] + omega * gs;
        }
      }
      lvl.u.swap(next);
    }
  }

  /// r = f - A u on `lvl` into `r` (sized like lvl.u).
  void residual(Level& lvl, std::vector<Real>& r, int tag_base) {
    std::vector<Real> above, below;
    fetch_halo(lvl, lvl.u, above, below, tag_base);
    r.resize(lvl.u.size());
    for (int i = 0; i < lvl.count; ++i) {
      for (int j = 0; j < lvl.cols; ++j) {
        const Real up = (i > 0) ? lvl.u[at(lvl, i - 1, j)]
                                : (lvl.lo + i > 0 ? above[static_cast<std::size_t>(j)]
                                                  : Real(0.0));
        const Real down =
            (i + 1 < lvl.count)
                ? lvl.u[at(lvl, i + 1, j)]
                : (lvl.lo + i + 1 < lvl.rows ? below[static_cast<std::size_t>(j)]
                                             : Real(0.0));
        const Real left = (j > 0) ? lvl.u[at(lvl, i, j - 1)] : Real(0.0);
        const Real right =
            (j + 1 < lvl.cols) ? lvl.u[at(lvl, i, j + 1)] : Real(0.0);
        const Real au =
            Real(4.0) * lvl.u[at(lvl, i, j)] - up - down - left - right;
        r[at(lvl, i, j)] = lvl.f[at(lvl, i, j)] - au;
      }
    }
  }

  /// Row-direction full-weighting restriction of `fine_r` (layout of
  /// `fine`) into coarse.f. Handles all three distribution combinations.
  void restrict_to(const Level& fine, const std::vector<Real>& fine_r,
                   Level& coarse, int tag_base) {
    const auto width = static_cast<std::size_t>(fine.cols);
    const Real half(0.5), quarter(0.25);
    if (fine.distributed && !coarse.distributed) {
      // Agglomeration boundary: collect the full fine residual everywhere.
      std::vector<Real> full(static_cast<std::size_t>(fine.rows) * width);
      comm_.allgather(std::span<const Real>(fine_r), std::span<Real>(full));
      auto fr = [&](int gi, int j) -> Real {
        if (gi < 0 || gi >= fine.rows) return Real(0.0);
        return full[static_cast<std::size_t>(gi) * width +
                    static_cast<std::size_t>(j)];
      };
      for (int i = 0; i < coarse.rows; ++i) {
        for (int j = 0; j < coarse.cols; ++j) {
          coarse.f[at(coarse, i, j)] = quarter * fr(2 * i - 1, j) +
                                       half * fr(2 * i, j) +
                                       quarter * fr(2 * i + 1, j);
        }
      }
      return;
    }
    // Same distribution on both levels (both distributed with aligned
    // blocks, or both agglomerated): only the fine row below my first
    // owned row is remote.
    std::vector<Real> above(width, Real(0.0)), below(width, Real(0.0));
    if (fine.distributed) {
      const int prev = (rank_ > 0) ? rank_ - 1 : -1;
      const int next = (rank_ + 1 < p_) ? rank_ + 1 : -1;
      exchange_halo_rows(
          comm_, tag_base, std::span<const Real>(fine_r).subspan(0, width),
          std::span<const Real>(fine_r).subspan(
              static_cast<std::size_t>(fine.count - 1) * width, width),
          std::span<Real>(above), std::span<Real>(below), prev, next);
    }
    auto fr = [&](int li, int j) -> Real {  // li: fine row local to my block
      if (li < 0) {
        return (fine.lo + li >= 0) ? above[static_cast<std::size_t>(j)]
                                   : Real(0.0);
      }
      return fine_r[static_cast<std::size_t>(li) * width +
                    static_cast<std::size_t>(j)];
    };
    for (int ci = 0; ci < coarse.count; ++ci) {
      const int fine_local = 2 * ci;  // aligned blocks: fine.lo == 2*coarse.lo
      for (int j = 0; j < coarse.cols; ++j) {
        coarse.f[at(coarse, ci, j)] = quarter * fr(fine_local - 1, j) +
                                      half * fr(fine_local, j) +
                                      quarter * fr(fine_local + 1, j);
      }
    }
  }

  /// Linear row-direction prolongation of coarse.u added into fine.u.
  void prolong_add(const Level& coarse, Level& fine, int tag_base) {
    const auto width = static_cast<std::size_t>(coarse.cols);
    const Real half(0.5);
    if (fine.distributed && !coarse.distributed) {
      // Every rank holds the full coarse grid: interpolate my fine rows.
      auto cu = [&](int gi, int j) -> Real {
        if (gi < 0 || gi >= coarse.rows) return Real(0.0);
        return coarse.u[static_cast<std::size_t>(gi) * width +
                        static_cast<std::size_t>(j)];
      };
      for (int i = 0; i < fine.count; ++i) {
        const int gf = fine.lo + i;
        for (int j = 0; j < fine.cols; ++j) {
          const Real corr = (gf % 2 == 0)
                                ? cu(gf / 2, j)
                                : half * (cu(gf / 2, j) + cu(gf / 2 + 1, j));
          fine.u[at(fine, i, j)] += corr;
        }
      }
      return;
    }
    std::vector<Real> above(width, Real(0.0)), below(width, Real(0.0));
    if (coarse.distributed) {
      const int prev = (rank_ > 0) ? rank_ - 1 : -1;
      const int next = (rank_ + 1 < p_) ? rank_ + 1 : -1;
      exchange_halo_rows(
          comm_, tag_base, std::span<const Real>(coarse.u).subspan(0, width),
          std::span<const Real>(coarse.u)
              .subspan(static_cast<std::size_t>(coarse.count - 1) * width,
                       width),
          std::span<Real>(above), std::span<Real>(below), prev, next);
    }
    auto cu = [&](int li, int j) -> Real {  // li local to my coarse block
      if (li >= coarse.count) {
        return (coarse.lo + li < coarse.rows)
                   ? below[static_cast<std::size_t>(j)]
                   : Real(0.0);
      }
      return coarse.u[static_cast<std::size_t>(li) * width +
                      static_cast<std::size_t>(j)];
    };
    for (int i = 0; i < fine.count; ++i) {
      const int ci = i / 2;  // aligned: fine.count == 2 * coarse.count
      for (int j = 0; j < fine.cols; ++j) {
        const Real corr = (i % 2 == 0) ? cu(ci, j)
                                       : half * (cu(ci, j) + cu(ci + 1, j));
        fine.u[at(fine, i, j)] += corr;
      }
    }
  }

  void vcycle(std::size_t l) {
    Level& lvl = levels_[l];
    if (l + 1 == levels_.size()) {
      smooth(lvl, cfg_.coarse_smooth, tag());
      return;
    }
    smooth(lvl, cfg_.pre_smooth, tag());
    std::vector<Real> r;
    residual(lvl, r, tag());
    Level& coarse = levels_[l + 1];
    std::fill(coarse.u.begin(), coarse.u.end(), Real(0.0));
    restrict_to(lvl, r, coarse, tag());
    vcycle(l + 1);
    prolong_add(coarse, lvl, tag());
    smooth(lvl, cfg_.post_smooth, tag());
  }

  Real finest_residual_norm() {
    Level& fine = levels_.front();
    std::vector<Real> r;
    residual(fine, r, tag());
    if (fine.distributed) return global_norm2(comm_, r);
    return sqrt(local_dot(r, r));
  }

  /// Fresh tag block for each communication phase; the SPMD structure
  /// keeps counters identical on every rank.
  int tag() noexcept {
    tag_counter_ += 16;
    return tag_counter_;
  }

  const MgApp::Config& cfg_;
  simmpi::Comm& comm_;
  int p_;
  int rank_;
  int tag_counter_ = 100;
  std::vector<Level> levels_;
};

}  // namespace

MgApp::Config MgApp::config_for_class(const std::string& size_class) {
  Config cfg;
  if (size_class.empty() || size_class == "S") return cfg;
  throw std::invalid_argument("MG: unknown size class " + size_class);
}

MgApp::MgApp(Config config, std::string size_class)
    : config_(config), size_class_(std::move(size_class)) {
  if (config_.rows < config_.coarsest_rows || config_.coarsest_rows < 2) {
    throw std::invalid_argument("MG: bad level configuration");
  }
}

AppResult MgApp::run(simmpi::Comm& comm) const {
  MgSolver solver(config_, comm);
  const auto norms = solver.solve();
  if (!norms.has_value()) return {};  // early exit: harness synthesizes
  AppResult result;
  result.iterations = config_.vcycles;
  result.signature = {norms->first.value(), norms->second.value()};
  return result;
}

}  // namespace resilience::apps
