#include "apps/cg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "apps/kernels.hpp"
#include "apps/trial_control.hpp"

namespace resilience::apps {

namespace {

/// Local rows of the sparse matvec q = A * x_full, on the blocked
/// row-gather kernel.
void local_spmv(const SparseMatrix& a, const simmpi::BlockRange& rows,
                std::span<const Real> x_full, std::span<Real> q) {
  for (std::int64_t i = rows.lo; i < rows.hi; ++i) {
    q[static_cast<std::size_t>(i - rows.lo)] =
        sparse_row_dot(a.row_vals(i), a.row_cols(i), x_full);
  }
}

/// Partial matvec of one 2D block: rows in `rows`, columns restricted to
/// `cols` with x given as that column segment. CSR columns are sorted, so
/// the restriction is the contiguous subrange [cols.lo, cols.hi) found by
/// binary search — the dynamic-op stream (ops for matching entries, in
/// column order) is exactly the one the per-entry `contains` filter made.
void block_spmv(const SparseMatrix& a, const simmpi::BlockRange& rows,
                const simmpi::BlockRange& cols, std::span<const Real> x_seg,
                std::span<Real> w) {
  for (std::int64_t i = rows.lo; i < rows.hi; ++i) {
    const auto col_idx = a.row_cols(i);
    const auto vals = a.row_vals(i);
    const auto* begin =
        std::lower_bound(col_idx.data(), col_idx.data() + col_idx.size(),
                         cols.lo);
    const auto* end = std::lower_bound(
        begin, col_idx.data() + col_idx.size(), cols.hi);
    const auto first = static_cast<std::size_t>(begin - col_idx.data());
    const auto count = static_cast<std::size_t>(end - begin);
    w[static_cast<std::size_t>(i - rows.lo)] =
        sparse_row_dot(vals.subspan(first, count),
                       col_idx.subspan(first, count), x_seg, cols.lo);
  }
}

/// Largest integer square root if p is a perfect square, else 0.
int exact_sqrt(int p) {
  const int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  return r * r == p ? r : 0;
}

}  // namespace

CgApp::Config CgApp::config_for_class(const std::string& size_class) {
  Config cfg;
  if (size_class.empty() || size_class == "S") {
    return cfg;  // defaults above
  }
  if (size_class == "B") {
    cfg.n = 512;
    cfg.row_nonzeros = 8;
    cfg.outer_iters = 4;
    cfg.cg_iters = 10;
    cfg.shift = 20.0;
    return cfg;
  }
  if (size_class == "C") {
    // Sized for 1024-rank campaigns under the fiber scheduler (one row
    // per rank at full width); few iterations keep a trial affordable.
    cfg.n = 1024;
    cfg.row_nonzeros = 8;
    cfg.outer_iters = 2;
    cfg.cg_iters = 8;
    cfg.shift = 20.0;
    return cfg;
  }
  if (size_class == "2D") {
    cfg.n = 256;
    cfg.row_nonzeros = 32;
    cfg.decomposition = Decomposition::TwoD;
    return cfg;
  }
  if (size_class == "B2D") {
    cfg.n = 512;
    cfg.row_nonzeros = 80;
    cfg.shift = 40.0;
    cfg.decomposition = Decomposition::TwoD;
    return cfg;
  }
  throw std::invalid_argument("CG: unknown size class " + size_class);
}

CgApp::CgApp(Config config, std::string size_class)
    : config_(config),
      size_class_(std::move(size_class)),
      matrix_(make_spd_matrix(config.n, config.row_nonzeros, config.shift,
                              config.matrix_seed)) {}

bool CgApp::supports(int nranks) const {
  if (nranks < 1 || nranks > config_.n) return false;
  if (config_.decomposition == Decomposition::OneD || nranks == 1) return true;
  // 2D: perfect-square process grid with aligned sub-blocks.
  const int r = exact_sqrt(nranks);
  return r > 0 && config_.n % nranks == 0;
}

AppResult CgApp::run(simmpi::Comm& comm) const {
  if (config_.decomposition == Decomposition::TwoD && comm.size() > 1) {
    return run_2d(comm);
  }
  return run_1d(comm);
}

AppResult CgApp::run_1d(simmpi::Comm& comm) const {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::int64_t n = config_.n;
  const auto rows = simmpi::block_partition(n, p, rank);
  const auto local_n = static_cast<std::size_t>(rows.count());

  // Power iteration state: x is the current normalized eigenvector guess.
  std::vector<Real> x(local_n, Real(1.0));
  std::vector<Real> z(local_n), r(local_n), d(local_n), q(local_n);

  Real zeta = 0.0;
  Real rnorm = 0.0;

  // Boundary hook (DESIGN.md §9): the end of an outer iteration is a
  // global sync point, and x/zeta/rnorm are the live state — z, r, d, q
  // and rho are fully recomputed at the top of the next iteration.
  TrialControl* ctl = current_trial_control();
  auto views = [&] {
    return std::array<StateView, 3>{StateView::reals(x),
                                    StateView::real(zeta),
                                    StateView::real(rnorm)};
  };
  int outer = 0;
  if (ctl != nullptr) {
    const auto v = views();
    outer = ctl->begin(v);
  }

  for (; outer < config_.outer_iters; ++outer) {
    // ---- CG solve of A z = x with a fixed step count (NPB cgitmax) ----
    std::fill(z.begin(), z.end(), Real(0.0));
    r.assign(x.begin(), x.end());
    d.assign(r.begin(), r.end());
    Real rho = global_dot(comm, r, r);

    for (int it = 0; it < config_.cg_iters; ++it) {
      const std::vector<Real> d_full = allgather_blocks(comm, d, n);
      local_spmv(matrix_, rows, d_full, q);
      const Real alpha = rho / global_dot(comm, d, q);
      axpy(alpha, d, z);
      axpy(-alpha, q, r);
      const Real rho_new = global_dot(comm, r, r);
      const Real beta = rho_new / rho;
      rho = rho_new;
      xpby(r, beta, d);
    }

    // Final residual ||x - A z|| of this solve (NPB's rnorm).
    {
      const std::vector<Real> z_full = allgather_blocks(comm, z, n);
      local_spmv(matrix_, rows, z_full, q);
      std::vector<Real> res(local_n);
      for (std::size_t i = 0; i < local_n; ++i) res[i] = x[i] - q[i];
      rnorm = global_norm2(comm, res);
      guard_finite(rnorm, "CG residual norm");
    }

    // ---- eigenvalue estimate and re-normalization ----
    const Real xz = global_dot(comm, x, z);
    zeta = Real(config_.shift) + Real(1.0) / xz;
    guard_finite(zeta, "CG zeta");
    const Real znorm = global_norm2(comm, z);
    const Real inv = Real(1.0) / znorm;
    for (std::size_t i = 0; i < local_n; ++i) x[i] = z[i] * inv;

    if (ctl != nullptr) {
      const auto v = views();
      if (!ctl->boundary(comm, outer, v)) return {};
    }
  }

  AppResult result;
  result.iterations = config_.outer_iters * config_.cg_iters;
  result.signature = {zeta.value(), rnorm.value()};
  return result;
}

AppResult CgApp::run_2d(simmpi::Comm& comm) const {
  const int p = comm.size();
  const int grid = exact_sqrt(p);
  if (grid == 0 || config_.n % p != 0) {
    throw NumericalError("CG 2D: ranks must form a perfect square dividing n");
  }
  const int gi = comm.rank() / grid;  // process-grid row
  const int gj = comm.rank() % grid;  // process-grid column
  simmpi::Comm row_comm = comm.split(gi, gj);  // ranks sharing my rows
  simmpi::Comm col_comm = comm.split(100 + gj, gi);  // sharing my columns

  const std::int64_t n = config_.n;
  const auto rows = simmpi::block_partition(n, grid, gi);
  const auto cols = simmpi::block_partition(n, grid, gj);
  const auto m = static_cast<std::size_t>(rows.count());  // n / grid
  const auto sub = m / static_cast<std::size_t>(grid);    // n / p
  // My global sub-block of the n/p-wise vector partition: index gi*grid+gj,
  // i.e. elements [rows.lo + gj*sub, rows.lo + (gj+1)*sub).
  const int transpose_partner = gj * grid + gi;
  constexpr int kTransposeTag = 40;
  constexpr int kMergeTag = 41;

  // Assemble the column segment d[cols_gj] from the distributed sub-blocks:
  // transpose exchange with (gj, gi), then allgather along my column group.
  auto assemble_segment = [&](std::span<const Real> d_sub) {
    std::vector<Real> transposed(sub);
    if (transpose_partner == comm.rank()) {
      std::copy(d_sub.begin(), d_sub.end(), transposed.begin());
    } else {
      comm.sendrecv(transpose_partner, kTransposeTag, d_sub,
                    transpose_partner, kTransposeTag,
                    std::span<Real>(transposed));
    }
    std::vector<Real> segment(m);
    col_comm.allgather(std::span<const Real>(transposed),
                       std::span<Real>(segment));
    return segment;
  };

  // Distributed matvec: q_sub = (A d)_sub. Local partials over my block,
  // then the row-group merge: every rank ships the chunk each peer owns
  // and sums the chunks it receives — NPB CG's partial-sum exchange, the
  // parallel-unique computation of this benchmark.
  std::vector<Real> w(m);
  auto matvec_sub = [&](std::span<const Real> d_sub, std::span<Real> q_sub) {
    const std::vector<Real> d_seg = assemble_segment(d_sub);
    block_spmv(matrix_, rows, cols, d_seg, w);
    for (int k = 0; k < grid; ++k) {
      if (k == gj) continue;
      row_comm.send(k, kMergeTag,
                    std::span<const Real>(w).subspan(
                        static_cast<std::size_t>(k) * sub, sub));
    }
    std::copy(w.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(gj) * sub),
              w.begin() + static_cast<std::ptrdiff_t>((static_cast<std::size_t>(gj) + 1) * sub),
              q_sub.begin());
    std::vector<Real> chunk(sub);
    for (int k = 0; k < grid; ++k) {
      if (k == gj) continue;
      row_comm.recv(k, kMergeTag, std::span<Real>(chunk));
      fsefi::RegionScope unique(fsefi::Region::ParallelUnique);
      for (std::size_t e = 0; e < sub; ++e) q_sub[e] += chunk[e];
    }
  };

  // Vectors live as n/p sub-blocks: no replicated update work, so the
  // common computation matches serial execution (strong scaling).
  std::vector<Real> x(sub, Real(1.0));
  std::vector<Real> z(sub), r(sub), d(sub), q(sub);

  Real zeta = 0.0;
  Real rnorm = 0.0;

  // Same live state as run_1d, over the n/p sub-block partition.
  TrialControl* ctl = current_trial_control();
  auto views = [&] {
    return std::array<StateView, 3>{StateView::reals(x),
                                    StateView::real(zeta),
                                    StateView::real(rnorm)};
  };
  int outer = 0;
  if (ctl != nullptr) {
    const auto v = views();
    outer = ctl->begin(v);
  }

  for (; outer < config_.outer_iters; ++outer) {
    std::fill(z.begin(), z.end(), Real(0.0));
    r.assign(x.begin(), x.end());
    d.assign(r.begin(), r.end());
    Real rho = global_dot(comm, r, r);

    for (int it = 0; it < config_.cg_iters; ++it) {
      matvec_sub(d, q);
      const Real alpha = rho / global_dot(comm, d, q);
      axpy(alpha, d, z);
      axpy(-alpha, q, r);
      const Real rho_new = global_dot(comm, r, r);
      const Real beta = rho_new / rho;
      rho = rho_new;
      xpby(r, beta, d);
    }

    {
      matvec_sub(z, q);
      std::vector<Real> res(sub);
      for (std::size_t i = 0; i < sub; ++i) res[i] = x[i] - q[i];
      rnorm = global_norm2(comm, res);
      guard_finite(rnorm, "CG residual norm");
    }

    const Real xz = global_dot(comm, x, z);
    zeta = Real(config_.shift) + Real(1.0) / xz;
    guard_finite(zeta, "CG zeta");
    const Real znorm = global_norm2(comm, z);
    const Real inv = Real(1.0) / znorm;
    for (std::size_t i = 0; i < sub; ++i) x[i] = z[i] * inv;

    if (ctl != nullptr) {
      const auto v = views();
      if (!ctl->boundary(comm, outer, v)) return {};
    }
  }

  AppResult result;
  result.iterations = config_.outer_iters * config_.cg_iters;
  result.signature = {zeta.value(), rnorm.value()};
  return result;
}

}  // namespace resilience::apps
