#include "apps/kernels.hpp"

#include <algorithm>

#include "apps/app.hpp"

namespace resilience::apps {

Real local_dot(std::span<const Real> a, std::span<const Real> b) {
  Real acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Real global_dot(simmpi::Comm& comm, std::span<const Real> a,
                std::span<const Real> b) {
  return comm.allreduce_value(local_dot(a, b), simmpi::Sum{});
}

void axpy(Real alpha, std::span<const Real> x, std::span<Real> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void xpby(std::span<const Real> x, Real beta, std::span<Real> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

Real global_norm2(simmpi::Comm& comm, std::span<const Real> x) {
  return sqrt(global_dot(comm, x, x));
}

std::vector<Real> allgather_blocks(simmpi::Comm& comm,
                                   std::span<const Real> local,
                                   std::int64_t n) {
  const int p = comm.size();
  const auto max_block = static_cast<std::size_t>((n + p - 1) / p);
  std::vector<Real> padded(max_block, Real(0.0));
  std::copy(local.begin(), local.end(), padded.begin());
  std::vector<Real> gathered(max_block * static_cast<std::size_t>(p));
  comm.allgather(std::span<const Real>(padded), std::span<Real>(gathered));
  // Compact the padded blocks into the true global layout.
  std::vector<Real> global(static_cast<std::size_t>(n));
  for (int r = 0; r < p; ++r) {
    const auto range = simmpi::block_partition(n, p, r);
    for (std::int64_t i = 0; i < range.count(); ++i) {
      global[static_cast<std::size_t>(range.lo + i)] =
          gathered[static_cast<std::size_t>(r) * max_block +
                   static_cast<std::size_t>(i)];
    }
  }
  return global;
}

void exchange_halo_rows(simmpi::Comm& comm, int tag_base,
                        std::span<const Real> to_prev,
                        std::span<const Real> to_next,
                        std::span<Real> from_prev, std::span<Real> from_next,
                        int prev_rank, int next_rank) {
  // Standard nonblocking halo pattern: post the receives, push the sends
  // (buffered), complete — deadlock-free without pairwise ordering tricks.
  simmpi::Request reqs[2];
  int nreqs = 0;
  if (prev_rank >= 0) {
    reqs[nreqs++] = comm.irecv(prev_rank, tag_base + 1, from_prev);
  }
  if (next_rank >= 0) {
    reqs[nreqs++] = comm.irecv(next_rank, tag_base, from_next);
  }
  if (prev_rank >= 0) comm.send(prev_rank, tag_base, to_prev);
  if (next_rank >= 0) comm.send(next_rank, tag_base + 1, to_next);
  simmpi::Comm::wait_all(std::span<simmpi::Request>(reqs, static_cast<std::size_t>(nreqs)));
}

void guard_finite(Real v, const char* what) {
  if (!isfinite(v)) {
    throw NumericalError(std::string(what) + " became non-finite");
  }
}

}  // namespace resilience::apps
