#include "apps/kernels.hpp"

#include <algorithm>
#include <bit>

#include "apps/app.hpp"

namespace resilience::apps {

namespace {

using fsefi::FaultContext;
using fsefi::OpKind;

/// Zero iff the value's primary and shadow bit patterns agree.
inline std::uint64_t diverged_bits(const Real& r) noexcept {
  return std::bit_cast<std::uint64_t>(r.value()) ^
         std::bit_cast<std::uint64_t>(r.shadow());
}

/// True when a window holding these values may run as one raw block: the
/// rank is already contaminated (divergence tracking is latched, and the
/// raw block computes value-identical results in the same order), or no
/// input diverges (then no result can diverge either, so the per-op
/// observe_result calls being skipped could not have fired).
inline bool may_block(const FaultContext& ctx, std::uint64_t input_diff) noexcept {
  return ctx.contaminated() || input_diff == 0;
}

}  // namespace

Real local_dot(std::span<const Real> a, std::span<const Real> b) {
  const std::size_t n = a.size();
  FaultContext* ctx = fsefi::current_context();
  if (ctx == nullptr) {
    // Uninstrumented: same math, primary and shadow, no counting.
    double v = 0.0, s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      v += a[i].value() * b[i].value();
      s += a[i].shadow() * b[i].shadow();
    }
    return Real::corrupted(v, s);
  }
  Real acc = 0.0;
  std::size_t i = 0;
  while (i < n) {
    const auto window =
        static_cast<std::size_t>(ctx->quiet_ops((n - i) * 2) / 2);
    if (window == 0) {
      // An event may fire on this element (or the reference path is on):
      // per-op instrumented arithmetic.
      acc += a[i] * b[i];
      ++i;
      continue;
    }
    const std::size_t end = i + window;
    double v = acc.value(), s = acc.shadow();
    std::uint64_t diff = diverged_bits(acc);
    for (std::size_t k = i; k < end; ++k) {
      v += a[k].value() * b[k].value();
      s += a[k].shadow() * b[k].shadow();
      diff |= diverged_bits(a[k]) | diverged_bits(b[k]);
    }
    if (!may_block(*ctx, diff)) {
      // Divergent inputs on a not-yet-contaminated rank: discard the raw
      // block (acc is untouched) and redo it per-op so first-contamination
      // tracking observes the exact operation.
      for (; i < end; ++i) acc += a[i] * b[i];
      continue;
    }
    ctx->on_block(OpKind::Mul, window);
    ctx->on_block(OpKind::Add, window);
    acc = Real::corrupted(v, s);
    i = end;
  }
  return acc;
}

Real sparse_row_dot(std::span<const double> vals,
                    std::span<const std::int64_t> cols,
                    std::span<const Real> x, std::int64_t col_offset) {
  const std::size_t n = vals.size();
  FaultContext* ctx = fsefi::current_context();
  if (ctx == nullptr) {
    double v = 0.0, s = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const Real& xe = x[static_cast<std::size_t>(cols[k] - col_offset)];
      v += vals[k] * xe.value();
      s += vals[k] * xe.shadow();
    }
    return Real::corrupted(v, s);
  }
  Real acc = 0.0;
  std::size_t k = 0;
  while (k < n) {
    const auto window =
        static_cast<std::size_t>(ctx->quiet_ops((n - k) * 2) / 2);
    if (window == 0) {
      acc += Real(vals[k]) * x[static_cast<std::size_t>(cols[k] - col_offset)];
      ++k;
      continue;
    }
    const std::size_t end = k + window;
    double v = acc.value(), s = acc.shadow();
    std::uint64_t diff = diverged_bits(acc);
    for (std::size_t e = k; e < end; ++e) {
      const Real& xe = x[static_cast<std::size_t>(cols[e] - col_offset)];
      v += vals[e] * xe.value();
      s += vals[e] * xe.shadow();
      diff |= diverged_bits(xe);
    }
    if (!may_block(*ctx, diff)) {
      for (; k < end; ++k) {
        acc +=
            Real(vals[k]) * x[static_cast<std::size_t>(cols[k] - col_offset)];
      }
      continue;
    }
    ctx->on_block(OpKind::Mul, window);
    ctx->on_block(OpKind::Add, window);
    acc = Real::corrupted(v, s);
    k = end;
  }
  return acc;
}

Real gather_dot(std::span<const Real> vals,
                std::span<const std::int64_t> cols, std::span<const Real> x,
                std::int64_t col_offset) {
  const std::size_t n = vals.size();
  FaultContext* ctx = fsefi::current_context();
  if (ctx == nullptr) {
    double v = 0.0, s = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const Real& xe = x[static_cast<std::size_t>(cols[k] - col_offset)];
      v += vals[k].value() * xe.value();
      s += vals[k].shadow() * xe.shadow();
    }
    return Real::corrupted(v, s);
  }
  Real acc = 0.0;
  std::size_t k = 0;
  while (k < n) {
    const auto window =
        static_cast<std::size_t>(ctx->quiet_ops((n - k) * 2) / 2);
    if (window == 0) {
      acc += vals[k] * x[static_cast<std::size_t>(cols[k] - col_offset)];
      ++k;
      continue;
    }
    const std::size_t end = k + window;
    double v = acc.value(), s = acc.shadow();
    std::uint64_t diff = diverged_bits(acc);
    for (std::size_t e = k; e < end; ++e) {
      const Real& xe = x[static_cast<std::size_t>(cols[e] - col_offset)];
      v += vals[e].value() * xe.value();
      s += vals[e].shadow() * xe.shadow();
      diff |= diverged_bits(vals[e]) | diverged_bits(xe);
    }
    if (!may_block(*ctx, diff)) {
      for (; k < end; ++k) {
        acc += vals[k] * x[static_cast<std::size_t>(cols[k] - col_offset)];
      }
      continue;
    }
    ctx->on_block(OpKind::Mul, window);
    ctx->on_block(OpKind::Add, window);
    acc = Real::corrupted(v, s);
    k = end;
  }
  return acc;
}

Real global_dot(simmpi::Comm& comm, std::span<const Real> a,
                std::span<const Real> b) {
  return comm.allreduce_value(local_dot(a, b), simmpi::Sum{});
}

void axpy(Real alpha, std::span<const Real> x, std::span<Real> y) {
  const std::size_t n = x.size();
  FaultContext* ctx = fsefi::current_context();
  if (ctx == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = Real::corrupted(y[i].value() + alpha.value() * x[i].value(),
                             y[i].shadow() + alpha.shadow() * x[i].shadow());
    }
    return;
  }
  std::size_t i = 0;
  while (i < n) {
    const auto window =
        static_cast<std::size_t>(ctx->quiet_ops((n - i) * 2) / 2);
    if (window == 0) {
      y[i] += alpha * x[i];
      ++i;
      continue;
    }
    const std::size_t end = i + window;
    // y is updated in place, so divergence is scanned *before* computing
    // (the read-only dot kernels can instead fuse the scan and redo).
    std::uint64_t diff = diverged_bits(alpha);
    for (std::size_t k = i; k < end; ++k) {
      diff |= diverged_bits(x[k]) | diverged_bits(y[k]);
    }
    if (!may_block(*ctx, diff)) {
      for (; i < end; ++i) y[i] += alpha * x[i];
      continue;
    }
    const double av = alpha.value(), as = alpha.shadow();
    for (std::size_t k = i; k < end; ++k) {
      y[k] = Real::corrupted(y[k].value() + av * x[k].value(),
                             y[k].shadow() + as * x[k].shadow());
    }
    ctx->on_block(OpKind::Mul, window);
    ctx->on_block(OpKind::Add, window);
    i = end;
  }
}

void xpby(std::span<const Real> x, Real beta, std::span<Real> y) {
  const std::size_t n = x.size();
  FaultContext* ctx = fsefi::current_context();
  if (ctx == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = Real::corrupted(x[i].value() + beta.value() * y[i].value(),
                             x[i].shadow() + beta.shadow() * y[i].shadow());
    }
    return;
  }
  std::size_t i = 0;
  while (i < n) {
    const auto window =
        static_cast<std::size_t>(ctx->quiet_ops((n - i) * 2) / 2);
    if (window == 0) {
      y[i] = x[i] + beta * y[i];
      ++i;
      continue;
    }
    const std::size_t end = i + window;
    std::uint64_t diff = diverged_bits(beta);
    for (std::size_t k = i; k < end; ++k) {
      diff |= diverged_bits(x[k]) | diverged_bits(y[k]);
    }
    if (!may_block(*ctx, diff)) {
      for (; i < end; ++i) y[i] = x[i] + beta * y[i];
      continue;
    }
    const double bv = beta.value(), bs = beta.shadow();
    for (std::size_t k = i; k < end; ++k) {
      y[k] = Real::corrupted(x[k].value() + bv * y[k].value(),
                             x[k].shadow() + bs * y[k].shadow());
    }
    ctx->on_block(OpKind::Mul, window);
    ctx->on_block(OpKind::Add, window);
    i = end;
  }
}

Real global_norm2(simmpi::Comm& comm, std::span<const Real> x) {
  return sqrt(global_dot(comm, x, x));
}

std::vector<Real> allgather_blocks(simmpi::Comm& comm,
                                   std::span<const Real> local,
                                   std::int64_t n) {
  const int p = comm.size();
  const auto max_block = static_cast<std::size_t>((n + p - 1) / p);
  std::vector<Real> padded(max_block, Real(0.0));
  std::copy(local.begin(), local.end(), padded.begin());
  std::vector<Real> gathered(max_block * static_cast<std::size_t>(p));
  comm.allgather(std::span<const Real>(padded), std::span<Real>(gathered));
  // Compact the padded blocks into the true global layout.
  std::vector<Real> global(static_cast<std::size_t>(n));
  for (int r = 0; r < p; ++r) {
    const auto range = simmpi::block_partition(n, p, r);
    for (std::int64_t i = 0; i < range.count(); ++i) {
      global[static_cast<std::size_t>(range.lo + i)] =
          gathered[static_cast<std::size_t>(r) * max_block +
                   static_cast<std::size_t>(i)];
    }
  }
  return global;
}

void exchange_halo_rows(simmpi::Comm& comm, int tag_base,
                        std::span<const Real> to_prev,
                        std::span<const Real> to_next,
                        std::span<Real> from_prev, std::span<Real> from_next,
                        int prev_rank, int next_rank) {
  // Standard nonblocking halo pattern: post the receives, push the sends
  // (buffered), complete — deadlock-free without pairwise ordering tricks.
  simmpi::Request reqs[2];
  int nreqs = 0;
  if (prev_rank >= 0) {
    reqs[nreqs++] = comm.irecv(prev_rank, tag_base + 1, from_prev);
  }
  if (next_rank >= 0) {
    reqs[nreqs++] = comm.irecv(next_rank, tag_base, from_next);
  }
  if (prev_rank >= 0) comm.send(prev_rank, tag_base, to_prev);
  if (next_rank >= 0) comm.send(next_rank, tag_base + 1, to_next);
  simmpi::Comm::wait_all(std::span<simmpi::Request>(reqs, static_cast<std::size_t>(nreqs)));
}

void guard_finite(Real v, const char* what) {
  if (!isfinite(v)) {
    throw NumericalError(std::string(what) + " became non-finite");
  }
}

}  // namespace resilience::apps
