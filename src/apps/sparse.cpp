#include "apps/sparse.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace resilience::apps {

SparseMatrix make_spd_matrix(std::int64_t n, int row_nonzeros, double shift,
                             std::uint64_t seed) {
  if (n < 1 || row_nonzeros < 0) {
    throw std::invalid_argument("make_spd_matrix: bad arguments");
  }
  // Symmetric pattern: pair (i, j), i < j, exists iff a hash of the pair
  // falls below the density threshold; the value is derived from the same
  // hash so both triangles agree by construction.
  const std::uint64_t threshold =
      (n > 1) ? static_cast<std::uint64_t>(
                    (static_cast<double>(row_nonzeros) /
                     static_cast<double>(n - 1)) *
                    static_cast<double>(~0ULL / 2) * 2.0)
              : 0;

  // Build rows via a per-row ordered map of columns (n is small: the
  // matrices stand in for NPB Class S/B inputs).
  std::vector<std::map<std::int64_t, double>> rows(
      static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      util::SplitMix64 mix(seed ^ (static_cast<std::uint64_t>(i) * 0x1f123bb5ULL) ^
                           static_cast<std::uint64_t>(j));
      const std::uint64_t h = mix.next();
      if (h < threshold) {
        // Value in (0.05, 1.05]; sign always positive keeps the matrix an
        // M-matrix-like operator with a well-conditioned spectrum.
        const double v =
            0.05 + static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
        rows[static_cast<std::size_t>(i)][j] = v;
        rows[static_cast<std::size_t>(j)][i] = v;
      }
    }
  }

  SparseMatrix m;
  m.n = n;
  m.row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  m.row_ptr.push_back(0);
  for (std::int64_t i = 0; i < n; ++i) {
    auto& row = rows[static_cast<std::size_t>(i)];
    double magnitude_sum = 0.0;
    for (const auto& [col, val] : row) magnitude_sum += std::abs(val);
    // Diagonal inserted in sorted position along with the off-diagonals.
    row[i] = shift + magnitude_sum;
    for (const auto& [col, val] : row) {
      m.col_idx.push_back(col);
      m.values.push_back(val);
    }
    m.row_ptr.push_back(static_cast<std::int64_t>(m.col_idx.size()));
  }
  return m;
}

}  // namespace resilience::apps
