// FT — miniature of NAS Parallel Benchmarks FT.
//
// Evolves a 2D complex field spectrally: each iteration performs a forward
// 2D FFT (row FFTs, transpose, row FFTs), multiplies by a unit-modulus
// evolution factor, inverse-transforms, and accumulates a checksum over a
// strided subset of elements (NPB's verification quantity).
//
// Parallelization (strong scaling): rows are block-partitioned and the
// transpose is a personalized all-to-all exchange — NPB FT's signature
// communication pattern. The transpose unpack in the parallel code path
// applies the evolution factor / inverse normalization and is the
// benchmark's *parallel-unique computation* (paper Table 1 reports FT as
// the only benchmark where it is large): serial execution performs the
// same arithmetic inside a plain local-transpose loop that does not exist
// in the parallel code path.
#pragma once

#include <cstdint>
#include <string>

#include "apps/app.hpp"
#include "apps/fft.hpp"

namespace resilience::apps {

class FtApp final : public App {
 public:
  struct Config {
    int n = 64;       ///< grid is n x n complex values; ranks must divide n
    int iterations = 1;
    double evolve_alpha = 1e-4;  ///< evolution factor angular scale
    std::uint64_t field_seed = 0x5ca1ab1eULL;
  };

  static Config config_for_class(const std::string& size_class);

  FtApp(Config config, std::string size_class);

  [[nodiscard]] std::string name() const override { return "FT"; }
  [[nodiscard]] std::string size_class() const override { return size_class_; }
  [[nodiscard]] bool supports(int nranks) const override {
    return nranks >= 1 && nranks <= config_.n && config_.n % nranks == 0;
  }
  [[nodiscard]] double checker_tolerance() const override { return 1e-10; }

  AppResult run(simmpi::Comm& comm) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::string size_class_;
  FftPlan plan_;  ///< shared read-only by all ranks
};

}  // namespace resilience::apps
