// CG — miniature of NAS Parallel Benchmarks CG.
//
// Estimates the largest eigenvalue of a sparse symmetric positive-definite
// matrix with shifted inverse power iteration: each outer iteration solves
// A z = x with a fixed number of conjugate-gradient steps, updates the
// eigenvalue estimate zeta = shift + 1 / (x . z), and normalizes z into
// the next x. The output signature is (zeta, final CG residual norm),
// matching NPB CG's verification quantities.
//
// Parallelization (strong scaling): rows are block-partitioned; the
// direction vector is allgathered for the local sparse matvec and all dot
// products are global reductions — so a surviving error reaches every
// rank through the rho = r.r allreduce, while an absorbed one stays local
// (the bimodal propagation of paper Figure 1).
#pragma once

#include <cstdint>

#include "apps/app.hpp"
#include "apps/sparse.hpp"

namespace resilience::apps {

class CgApp final : public App {
 public:
  /// How the matrix is partitioned across ranks.
  ///
  /// OneD: block rows; the direction vector is allgathered per matvec.
  /// TwoD: NPB CG's layout — a sqrt(p) x sqrt(p) process grid owning
  /// (row-block x column-block) sub-matrices. Each matvec assembles the
  /// direction segment with a transpose exchange + column-group allgather,
  /// computes local partials, and merges them across the row group with
  /// explicit application-level additions — the *parallel-unique
  /// computation* the paper's Table 1 reports for CG.
  enum class Decomposition { OneD, TwoD };

  struct Config {
    int n = 256;             ///< matrix order
    int row_nonzeros = 6;    ///< expected off-diagonal nonzeros per row
    int outer_iters = 3;     ///< power-iteration steps
    int cg_iters = 8;        ///< CG steps per solve (NPB: cgitmax = 25)
    double shift = 12.0;     ///< diagonal shift (NPB lambda)
    std::uint64_t matrix_seed = 0x9e3779b9u;
    Decomposition decomposition = Decomposition::OneD;
  };

  /// Input problems: "S" (default), "B", and "C" (n = 1024, sized for
  /// full-width fiber-scheduler campaigns) use the 1D decomposition; "2D"
  /// and "B2D" use the NPB-style 2D decomposition (denser matrices so the
  /// merge shares match Table 1's scale).
  static Config config_for_class(const std::string& size_class);

  CgApp(Config config, std::string size_class);

  [[nodiscard]] std::string name() const override { return "CG"; }
  [[nodiscard]] std::string size_class() const override { return size_class_; }
  [[nodiscard]] bool supports(int nranks) const override;
  [[nodiscard]] double checker_tolerance() const override { return 1e-10; }

  AppResult run(simmpi::Comm& comm) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const SparseMatrix& matrix() const noexcept { return matrix_; }

 private:
  AppResult run_1d(simmpi::Comm& comm) const;
  AppResult run_2d(simmpi::Comm& comm) const;

  Config config_;
  std::string size_class_;
  SparseMatrix matrix_;  ///< immutable; shared read-only by all ranks
};

}  // namespace resilience::apps
