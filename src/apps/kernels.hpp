// Shared distributed numerical kernels used by the mini-apps: partitioned
// BLAS-1 operations with deterministic global reductions, block
// allgather with padding for uneven partitions, and halo exchange between
// neighbouring ranks of a 1D decomposition.
//
// All arithmetic runs on fsefi::Real so it is counted and injectable —
// but not one Real operator at a time. The element-wise kernels here are
// *blocked*: they ask the installed FaultContext how many upcoming
// dynamic ops are guaranteed event-free (FaultContext::quiet_ops), run
// that window as raw double arithmetic on the primary and shadow values
// in the exact same operation order, and account the whole block at once
// (FaultContext::on_block). Only the sub-window containing an event —
// an injection becoming due or the hang budget expiring — drops to
// per-operation instrumented Real arithmetic. Observables (op profiles,
// filtered indices, injection traces, contamination) are bit-identical
// to the per-op path: windows never contain an event, summation order is
// preserved exactly, and a window whose inputs carry any primary/shadow
// divergence while the rank is not yet contaminated falls back to the
// per-op path so first-contamination tracking fires at the same op.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fsefi/real.hpp"
#include "fsefi/transport.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/topology.hpp"

namespace resilience::apps {

using fsefi::Real;

/// Local dot product of two equal-length spans.
Real local_dot(std::span<const Real> a, std::span<const Real> b);

/// Row-gather dot product of a CSR-style row against a plain-double value
/// array: sum_k Real(vals[k]) * x[cols[k] - col_offset]. The blocked
/// equivalent of the mini-apps' sparse matvec inner loop.
Real sparse_row_dot(std::span<const double> vals,
                    std::span<const std::int64_t> cols,
                    std::span<const Real> x, std::int64_t col_offset = 0);

/// Same, for instrumented (Real-valued) matrix entries:
/// sum_k vals[k] * x[cols[k] - col_offset].
Real gather_dot(std::span<const Real> vals,
                std::span<const std::int64_t> cols, std::span<const Real> x,
                std::int64_t col_offset = 0);

/// Global dot product over a partitioned vector: local dot + allreduce.
Real global_dot(simmpi::Comm& comm, std::span<const Real> a,
                std::span<const Real> b);

/// y += alpha * x (elementwise on the local partition).
void axpy(Real alpha, std::span<const Real> x, std::span<Real> y);

/// y = x + beta * y.
void xpby(std::span<const Real> x, Real beta, std::span<Real> y);

/// Global 2-norm of a partitioned vector.
Real global_norm2(simmpi::Comm& comm, std::span<const Real> x);

/// Gather a block-partitioned vector of global length `n` onto all ranks.
/// Handles uneven partitions by padding blocks to the maximum block size.
/// `local` must be this rank's block under simmpi::block_partition(n, p, r).
std::vector<Real> allgather_blocks(simmpi::Comm& comm,
                                   std::span<const Real> local,
                                   std::int64_t n);

/// Exchange one value-row of width `width` with the previous and next rank
/// of a 1D chain (rank-1 and rank+1; skipped at the ends). On return,
/// `from_prev`/`from_next` hold the neighbour rows (untouched at ends).
/// Ranks with `active == false` do not participate; the caller must ensure
/// the chain of active ranks is contiguous starting at rank 0.
void exchange_halo_rows(simmpi::Comm& comm, int tag_base,
                        std::span<const Real> to_prev,
                        std::span<const Real> to_next,
                        std::span<Real> from_prev, std::span<Real> from_next,
                        int prev_rank, int next_rank);

/// Throw NumericalError if `v` is not finite. `what` names the guarded
/// quantity in the error message.
void guard_finite(Real v, const char* what);

}  // namespace resilience::apps
