// Shared distributed numerical kernels used by the mini-apps: partitioned
// BLAS-1 operations with deterministic global reductions, block
// allgather with padding for uneven partitions, and halo exchange between
// neighbouring ranks of a 1D decomposition.
//
// All arithmetic runs on fsefi::Real so it is counted and injectable.
#pragma once

#include <span>
#include <vector>

#include "fsefi/real.hpp"
#include "fsefi/transport.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/topology.hpp"

namespace resilience::apps {

using fsefi::Real;

/// Local dot product of two equal-length spans.
Real local_dot(std::span<const Real> a, std::span<const Real> b);

/// Global dot product over a partitioned vector: local dot + allreduce.
Real global_dot(simmpi::Comm& comm, std::span<const Real> a,
                std::span<const Real> b);

/// y += alpha * x (elementwise on the local partition).
void axpy(Real alpha, std::span<const Real> x, std::span<Real> y);

/// y = x + beta * y.
void xpby(std::span<const Real> x, Real beta, std::span<Real> y);

/// Global 2-norm of a partitioned vector.
Real global_norm2(simmpi::Comm& comm, std::span<const Real> x);

/// Gather a block-partitioned vector of global length `n` onto all ranks.
/// Handles uneven partitions by padding blocks to the maximum block size.
/// `local` must be this rank's block under simmpi::block_partition(n, p, r).
std::vector<Real> allgather_blocks(simmpi::Comm& comm,
                                   std::span<const Real> local,
                                   std::int64_t n);

/// Exchange one value-row of width `width` with the previous and next rank
/// of a 1D chain (rank-1 and rank+1; skipped at the ends). On return,
/// `from_prev`/`from_next` hold the neighbour rows (untouched at ends).
/// Ranks with `active == false` do not participate; the caller must ensure
/// the chain of active ranks is contiguous starting at rank 0.
void exchange_halo_rows(simmpi::Comm& comm, int tag_base,
                        std::span<const Real> to_prev,
                        std::span<const Real> to_next,
                        std::span<Real> from_prev, std::span<Real> from_next,
                        int prev_rank, int next_rank);

/// Throw NumericalError if `v` is not finite. `what` names the guarded
/// quantity in the error message.
void guard_finite(Real v, const char* what);

}  // namespace resilience::apps
