// LU — miniature of NAS Parallel Benchmarks LU (SSOR).
//
// Applies SSOR iterations to a 2D model problem: each iteration computes
// the residual of a 5-point operator, then performs a lower-triangular
// sweep in ascending row order and an upper-triangular sweep in descending
// row order, and applies the update. The sweeps carry a wavefront data
// dependency between consecutive rows, so the parallel version is a
// software pipeline: rank r blocks until rank r-1 (forward) or rank r+1
// (backward) delivers its boundary row — NPB LU's signature communication
// structure, and the reason an error injected into one rank wavefront-
// propagates to every downstream rank that consumes its boundary rows.
//
// Output signature: L2 norms of the final residual and solution (NPB LU
// verifies RMS residual norms).
#pragma once

#include <cstdint>
#include <string>

#include "apps/app.hpp"

namespace resilience::apps {

class LuApp final : public App {
 public:
  struct Config {
    int rows = 128;
    int cols = 12;
    int iterations = 3;
    double omega = 1.2;     ///< SSOR relaxation factor
    double diag = 4.0;      ///< diagonal of the triangular factors
    std::uint64_t rhs_seed = 0x10adedULL;
  };

  static Config config_for_class(const std::string& size_class);

  LuApp(Config config, std::string size_class);

  [[nodiscard]] std::string name() const override { return "LU"; }
  [[nodiscard]] std::string size_class() const override { return size_class_; }
  [[nodiscard]] bool supports(int nranks) const override {
    return nranks >= 1 && nranks <= config_.rows;
  }
  [[nodiscard]] double checker_tolerance() const override { return 1e-9; }

  AppResult run(simmpi::Comm& comm) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::string size_class_;
};

}  // namespace resilience::apps
