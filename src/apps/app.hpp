// The application interface the campaign harness drives.
//
// Each benchmark is an SPMD program: the harness launches `run` on every
// rank of a simmpi job; all ranks execute the same code on their partition
// of one fixed input problem (strong scaling, paper Section 2). The
// rank-0 return value carries the output signature — a small vector of
// floating-point results standing in for the benchmark's output file —
// plus the verdict of the app's own NPB-style verification.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simmpi/comm.hpp"

namespace resilience::apps {

/// Raised by an app when its numerics leave the domain the algorithm can
/// handle (diverged solver, non-finite state in a guarded variable, failed
/// time-step loop). The harness classifies it as a Failure outcome — the
/// analogue of a crash/abort on a real system.
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What one run of an application produced (valid on rank 0).
struct AppResult {
  /// Output signature: the benchmark's headline numbers (e.g. CG's zeta
  /// and final residual norm). Compared against the golden run to detect
  /// SDC. Shadow components are stripped; these are plain values.
  std::vector<double> signature;
  /// Iterations / cycles executed (diagnostics and hang analysis).
  int iterations = 0;
};

class App {
 public:
  virtual ~App() = default;

  /// Benchmark name as used in the paper ("CG", "FT", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  /// Input-problem label ("S", "B", "W", "leblanc", ...).
  [[nodiscard]] virtual std::string size_class() const = 0;
  /// True if the app's decomposition supports this many ranks.
  [[nodiscard]] virtual bool supports(int nranks) const = 0;

  /// SPMD body; every rank of the job calls this with its communicator.
  /// The rank-0 return value is the run's result; other ranks' return
  /// values are ignored by the harness.
  virtual AppResult run(simmpi::Comm& comm) const = 0;

  /// Relative tolerance of the app's verification (the "checker" of the
  /// paper's Success definition): a corrupted output whose signature stays
  /// within this relative distance of the reference passes verification.
  [[nodiscard]] virtual double checker_tolerance() const { return 1e-8; }

  /// Full label, e.g. "CG (Class S)".
  [[nodiscard]] std::string label() const {
    return name() + " (" + size_class() + ")";
  }
};

/// Identifier + factory registry for the six benchmarks.
enum class AppId { CG, FT, MG, LU, MiniFE, PENNANT };

/// All app ids in paper order.
const std::vector<AppId>& all_app_ids();

/// Construct a benchmark. `size_class` may be empty for the default
/// (paper) input problem; unknown classes throw std::invalid_argument.
std::unique_ptr<App> make_app(AppId id, const std::string& size_class = "");

/// Parse "CG"/"FT"/... (case-insensitive); throws std::invalid_argument.
AppId parse_app_id(const std::string& name);

}  // namespace resilience::apps
