#include "apps/minife.hpp"

#include <array>
#include <map>
#include <stdexcept>

#include "apps/kernels.hpp"
#include "apps/trial_control.hpp"
#include "util/rng.hpp"

namespace resilience::apps {

namespace {

/// One remote stiffness contribution: destined for the rank owning `row`.
struct Contribution {
  std::int64_t row = 0;
  std::int64_t col = 0;
  Real val{0.0};
};
static_assert(std::is_trivially_copyable_v<Contribution>);

constexpr int kContribTag = 700;

/// Gradients of the 8 trilinear shape functions of the unit hexahedron at
/// point (x, y, z). Corner a has local coordinates (a&1, (a>>1)&1, a>>2).
void shape_gradients(double x, double y, double z, double grad[8][3]) {
  for (int a = 0; a < 8; ++a) {
    const double sx = (a & 1) ? 1.0 : -1.0;
    const double sy = (a & 2) ? 1.0 : -1.0;
    const double sz = (a & 4) ? 1.0 : -1.0;
    const double nx = (a & 1) ? x : (1.0 - x);
    const double ny = (a & 2) ? y : (1.0 - y);
    const double nz = (a & 4) ? z : (1.0 - z);
    grad[a][0] = sx * ny * nz;
    grad[a][1] = nx * sy * nz;
    grad[a][2] = nx * ny * sz;
  }
}

}  // namespace

MiniFeApp::Config MiniFeApp::config_for_class(const std::string& size_class) {
  Config cfg;
  if (size_class.empty() || size_class == "S" ||
      size_class == "nx=6 ny=6 nz=6") {
    return cfg;
  }
  if (size_class == "B" || size_class == "nx=10 ny=10 nz=10") {
    cfg.nx = 10;
    return cfg;
  }
  throw std::invalid_argument("MiniFE: unknown size class " + size_class);
}

MiniFeApp::MiniFeApp(Config config, std::string size_class)
    : config_(config), size_class_(std::move(size_class)) {
  if (config_.nx < 2) throw std::invalid_argument("MiniFE: nx too small");
  // Reference stiffness via 2x2x2 Gauss quadrature on the unit cube
  // (plain doubles: one-time setup, identical for every element).
  const double g0 = 0.5 - 0.5 / std::numbers::sqrt3;
  const double g1 = 0.5 + 0.5 / std::numbers::sqrt3;
  const double pts[2] = {g0, g1};
  double grad[8][3];
  for (double gx : pts) {
    for (double gy : pts) {
      for (double gz : pts) {
        shape_gradients(gx, gy, gz, grad);
        for (int a = 0; a < 8; ++a) {
          for (int b = 0; b < 8; ++b) {
            ref_stiffness_[static_cast<std::size_t>(a * 8 + b)] +=
                0.125 * (grad[a][0] * grad[b][0] + grad[a][1] * grad[b][1] +
                         grad[a][2] * grad[b][2]);
          }
        }
      }
    }
  }
}

AppResult MiniFeApp::run(simmpi::Comm& comm) const {
  const int p = comm.size();
  const int rank = comm.rank();
  const int nx = config_.nx;
  const std::int64_t nodes_per_side = nx + 1;
  const std::int64_t n_nodes = nodes_per_side * nodes_per_side * nodes_per_side;
  const std::int64_t n_elems =
      static_cast<std::int64_t>(nx) * nx * nx;

  const auto row_block = simmpi::block_partition(n_nodes, p, rank);
  const auto elem_block = simmpi::block_partition(n_elems, p, rank);
  const auto local_rows = static_cast<std::size_t>(row_block.count());

  auto node_id = [&](int x, int y, int z) -> std::int64_t {
    return x + nodes_per_side * (y + nodes_per_side * z);
  };

  // ---- assembly --------------------------------------------------------
  // Owned rows accumulate into ordered per-row maps (deterministic CSR
  // order); contributions to remote rows are queued per owning rank.
  std::vector<std::map<std::int64_t, Real>> rows(local_rows);
  std::vector<std::vector<Contribution>> outgoing(static_cast<std::size_t>(p));

  for (std::int64_t e = elem_block.lo; e < elem_block.hi; ++e) {
    const int ex = static_cast<int>(e % nx);
    const int ey = static_cast<int>((e / nx) % nx);
    const int ez = static_cast<int>(e / (static_cast<std::int64_t>(nx) * nx));
    // Per-element material coefficient, deterministic in the element id.
    util::Xoshiro256 rng(
        util::derive_seed(config_.material_seed, static_cast<std::uint64_t>(e)));
    const Real rho(rng.uniform_real(0.5, 1.5));

    std::int64_t elem_nodes[8];
    for (int a = 0; a < 8; ++a) {
      elem_nodes[a] =
          node_id(ex + (a & 1), ey + ((a >> 1) & 1), ez + ((a >> 2) & 1));
    }
    for (int a = 0; a < 8; ++a) {
      const std::int64_t row = elem_nodes[a];
      const int owner = simmpi::block_owner(n_nodes, p, row);
      for (int b = 0; b < 8; ++b) {
        const Real val =
            rho * Real(ref_stiffness_[static_cast<std::size_t>(a * 8 + b)]);
        if (owner == rank) {
          rows[static_cast<std::size_t>(row - row_block.lo)][elem_nodes[b]] +=
              val;
        } else {
          outgoing[static_cast<std::size_t>(owner)].push_back(
              {row, elem_nodes[b], val});
        }
      }
    }
  }

  if (p > 1) {
    // Sparse all-to-all: exchange counts, then targeted payload sends.
    std::vector<std::int64_t> send_counts(static_cast<std::size_t>(p), 0);
    for (int r = 0; r < p; ++r) {
      send_counts[static_cast<std::size_t>(r)] =
          static_cast<std::int64_t>(outgoing[static_cast<std::size_t>(r)].size());
    }
    std::vector<std::int64_t> recv_counts(static_cast<std::size_t>(p), 0);
    comm.alltoall(std::span<const std::int64_t>(send_counts),
                  std::span<std::int64_t>(recv_counts));
    for (int r = 0; r < p; ++r) {
      if (r != rank && !outgoing[static_cast<std::size_t>(r)].empty()) {
        comm.send(r, kContribTag,
                  std::span<const Contribution>(outgoing[static_cast<std::size_t>(r)]));
      }
    }
    // Merge received contributions in rank order: the parallel-unique
    // computation of this benchmark (serial execution assembles every row
    // locally and never executes this merge).
    fsefi::RegionScope unique(fsefi::Region::ParallelUnique);
    for (int r = 0; r < p; ++r) {
      const auto count = recv_counts[static_cast<std::size_t>(r)];
      if (r == rank || count == 0) continue;
      std::vector<Contribution> incoming(static_cast<std::size_t>(count));
      comm.recv(r, kContribTag, std::span<Contribution>(incoming));
      for (const auto& c : incoming) {
        rows[static_cast<std::size_t>(c.row - row_block.lo)][c.col] += c.val;
      }
    }
  }

  // Regularization A = K + shift I keeps the pure-Neumann operator SPD.
  for (std::int64_t i = row_block.lo; i < row_block.hi; ++i) {
    rows[static_cast<std::size_t>(i - row_block.lo)][i] +=
        Real(config_.mass_shift);
  }

  // ---- CG solve of A x = b -----------------------------------------------
  // b varies per node: a constant right-hand side would be solved exactly
  // in one step because the stiffness has zero row sums.
  std::vector<Real> x(local_rows, Real(0.0)), b(local_rows);
  for (std::int64_t i = row_block.lo; i < row_block.hi; ++i) {
    util::Xoshiro256 rng(util::derive_seed(config_.material_seed ^ 0xb5u,
                                           static_cast<std::uint64_t>(i)));
    b[static_cast<std::size_t>(i - row_block.lo)] =
        Real(rng.uniform_real(0.1, 1.0));
  }
  std::vector<Real> r(b), d(b), q(local_rows);

  // Flatten the assembled per-row maps into CSR-style arrays (pure copies,
  // no FP operations) so the solve's matvec runs on the blocked
  // row-gather kernel instead of chasing map nodes per entry.
  std::vector<std::size_t> row_ptr(local_rows + 1, 0);
  std::vector<std::int64_t> col_idx;
  std::vector<Real> mat_vals;
  for (std::size_t i = 0; i < local_rows; ++i) {
    for (const auto& [col, val] : rows[i]) {
      col_idx.push_back(col);
      mat_vals.push_back(val);
    }
    row_ptr[i + 1] = col_idx.size();
  }

  auto matvec = [&](std::span<const Real> in_local, std::span<Real> out) {
    const std::vector<Real> full = allgather_blocks(comm, in_local, n_nodes);
    for (std::size_t i = 0; i < local_rows; ++i) {
      const std::size_t first = row_ptr[i];
      const std::size_t count = row_ptr[i + 1] - first;
      out[i] = gather_dot(std::span<const Real>(mat_vals).subspan(first, count),
                          std::span<const std::int64_t>(col_idx).subspan(first, count),
                          full);
    }
  };

  Real rho_r = global_dot(comm, r, r);
  Real rnorm = sqrt(rho_r);

  // Boundary hook (DESIGN.md §9): the CG vectors and scalars carried across
  // iterations, plus the assembled matrix values — assembly computes them
  // with instrumented ops (and merges remote contributions), so they are
  // corruptible state even though the solve only reads them. q is fully
  // overwritten by the matvec each iteration and b is written with
  // uninstrumented constructors; neither is live.
  TrialControl* ctl = current_trial_control();
  auto views = [&] {
    return std::array<StateView, 6>{
        StateView::reals(x),      StateView::reals(r),
        StateView::reals(d),      StateView::real(rho_r),
        StateView::real(rnorm),   StateView::reals(mat_vals)};
  };
  int it = 0;
  if (ctl != nullptr) {
    const auto vw = views();
    it = ctl->begin(vw);
  }

  for (; it < config_.cg_iters; ++it) {
    matvec(d, q);
    const Real alpha = rho_r / global_dot(comm, d, q);
    axpy(alpha, d, x);
    axpy(-alpha, q, r);
    const Real rho_new = global_dot(comm, r, r);
    rnorm = sqrt(rho_new);
    guard_finite(rnorm, "MiniFE residual norm");
    const Real beta = rho_new / rho_r;
    rho_r = rho_new;
    xpby(r, beta, d);

    if (ctl != nullptr) {
      const auto vw = views();
      if (!ctl->boundary(comm, it, vw)) return {};
    }
  }

  const Real xnorm = global_norm2(comm, x);
  const Real bx = global_dot(comm, b, x);

  AppResult result;
  result.iterations = config_.cg_iters;
  result.signature = {rnorm.value(), xnorm.value(), bx.value()};
  return result;
}

}  // namespace resilience::apps
