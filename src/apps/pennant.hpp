// PENNANT — miniature of the LANL PENNANT mini-app.
//
// Staggered-grid compressible Lagrangian hydrodynamics on a 1D tube:
// zone-centered density/energy/pressure, node-centered position/velocity,
// artificial viscosity for shocks, and a CFL-limited global time step.
// The input problem is a shock tube in the spirit of PENNANT's "leblanc"
// input (we use Sod-strength jumps rather than leblanc's extreme 1e5
// pressure ratio so the miniature integrator stays robust; the
// communication and propagation structure is unchanged — see DESIGN.md).
//
// Parallelization (strong scaling): zones are block-partitioned; each
// cycle exchanges boundary-zone pressure/viscosity with the two
// neighbours and reduces the global minimum dt — the collective through
// which a surviving error reaches every rank within one cycle.
//
// Output signature: final total energy and total momentum.
#pragma once

#include <cstdint>
#include <string>

#include "apps/app.hpp"

namespace resilience::apps {

class PennantApp final : public App {
 public:
  struct Config {
    int zones = 128;
    double tube_length = 1.0;
    double t_final = 0.12;
    int max_steps = 400;        ///< Failure (hang) when exceeded
    double gamma = 1.4;
    double cfl = 0.5;
    double q1 = 0.5;            ///< linear artificial-viscosity coefficient
    double q2 = 1.5;            ///< quadratic artificial-viscosity coefficient
    // Left/right initial states (Sod-like shock tube).
    double rho_left = 1.0, rho_right = 0.125;
    double p_left = 1.0, p_right = 0.1;
    double interface = 0.5;     ///< position of the initial discontinuity
  };

  static Config config_for_class(const std::string& size_class);

  PennantApp(Config config, std::string size_class);

  [[nodiscard]] std::string name() const override { return "PENNANT"; }
  [[nodiscard]] std::string size_class() const override { return size_class_; }
  [[nodiscard]] bool supports(int nranks) const override {
    return nranks >= 1 && nranks <= config_.zones;
  }
  [[nodiscard]] double checker_tolerance() const override { return 1e-9; }

  AppResult run(simmpi::Comm& comm) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::string size_class_;
};

}  // namespace resilience::apps
