// Propagation-profile similarity analysis (paper Section 3.2, Table 2).
//
// To compare error propagation across scales, the large scale's
// propagation cases are evenly split into as many groups as the small
// scale has ranks (Figure 1c), and the cosine similarity of the two
// profiles quantifies how well the small scale predicts the large one.
#pragma once

#include <vector>

#include "core/model.hpp"

namespace resilience::core {

/// Aggregate a large-scale propagation profile (r_x for x = 1..large_p)
/// into `groups` evenly-split buckets (paper Figure 1c). Requires
/// groups | large_p.
std::vector<double> group_propagation(const std::vector<double>& large_r,
                                      int groups);

/// Cosine similarity between a small-scale propagation profile and the
/// grouped large-scale profile (paper Table 2).
double propagation_similarity(const PropagationProfile& small,
                              const PropagationProfile& large);

}  // namespace resilience::core
