#include "core/report.hpp"

#include <fstream>
#include <sstream>

#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

namespace resilience::core {

namespace {

std::string pct(double fraction) { return util::TablePrinter::pct(fraction); }

void rates_row(std::ostringstream& os, const char* label, const Rates& r) {
  os << "| " << label << " | " << pct(r.success) << " | " << pct(r.sdc)
     << " | " << pct(r.failure) << " |\n";
}

}  // namespace

std::string render_report(const std::string& app_label,
                          const StudyResult& study) {
  std::ostringstream os;
  const auto& cfg = study.config;
  os << "# Resilience prediction report: " << app_label << "\n\n"
     << "Predicting the fault-injection result of **" << cfg.large_p
     << " ranks** from serial execution and a **" << cfg.small_p
     << "-rank** small-scale execution (" << cfg.trials
     << " fault-injection tests per deployment, seed " << cfg.seed << ").\n\n";

  os << "## Serial sweeps (FI_ser_x, errors into the common computation)\n\n"
     << "| errors x | success | SDC | failure |\n|---|---|---|---|\n";
  for (std::size_t i = 0; i < study.sweep.sample_x.size(); ++i) {
    const auto& r = study.sweep.results[i];
    os << "| " << study.sweep.sample_x[i] << " | " << pct(r.success_rate())
       << " | " << pct(r.sdc_rate()) << " | " << pct(r.failure_rate())
       << " |\n";
  }

  os << "\n## Small-scale propagation (r'_x at " << cfg.small_p
     << " ranks)\n\n"
     << "| ranks contaminated | probability | conditional success |\n"
     << "|---|---|---|\n";
  for (int x = 1; x <= cfg.small_p; ++x) {
    const auto& cond = study.small.conditional[static_cast<std::size_t>(x - 1)];
    os << "| " << x << " | "
       << pct(study.small.propagation.r[static_cast<std::size_t>(x - 1)])
       << " | " << (cond.trials > 0 ? pct(cond.success_rate()) : "unobserved")
       << " |\n";
  }

  os << "\n## Model decisions\n\n"
     << "- serial-vs-small divergence: " << pct(study.prediction.divergence)
     << " -> alpha fine-tuning **"
     << (study.prediction.fine_tuned ? "applied" : "not needed") << "**\n"
     << "- parallel-unique computation share (large scale): "
     << pct(study.prob_unique)
     << (study.prob_unique > cfg.unique_fraction_threshold
             ? " -> Eq. 1 unique term modeled\n"
             : " -> negligible, unique term skipped\n");

  os << "\n## Prediction\n\n"
     << "| | success | SDC | failure |\n|---|---|---|---|\n";
  rates_row(os, "FI_par_common (Eq. 8)", study.prediction.common);
  rates_row(os, "FI_par (Eq. 1)", study.prediction.combined);
  if (study.measured_large) {
    const auto& m = *study.measured_large;
    os << "| measured (" << m.trials << " tests) | " << pct(m.success_rate())
       << " | " << pct(m.sdc_rate()) << " | " << pct(m.failure_rate())
       << " |\n";
    if (study.measured_adaptive) {
      // The adaptive run's CI envelope, printed next to the Eq. 4/8
      // prediction it gates (DESIGN.md §12).
      const auto& a = *study.measured_adaptive;
      os << "| measured 95% CI | " << pct(a.success.lo) << "-"
         << pct(a.success.hi) << " | " << pct(a.sdc.lo) << "-"
         << pct(a.sdc.hi) << " | " << pct(a.failure.lo) << "-"
         << pct(a.failure.hi) << " |\n";
    }
    os << "\n**Success prediction error: " << pct(study.success_error())
       << "**\n";
    if (study.measured_adaptive) {
      os << (study.accuracy_gate_flagged()
                 ? "\n**ACCURACY GATE: prediction falls OUTSIDE the measured "
                   "success-rate CI envelope — treat the prediction as "
                   "unvalidated at this trial budget.**\n"
                 : "\nAccuracy gate: prediction lies inside the measured "
                   "success-rate CI envelope.\n");
    }
  }

  // ---- adaptive campaigns (DESIGN.md §12) ---------------------------------
  if (!study.adaptive_phases.empty()) {
    os << "\n## Adaptive campaigns\n\n"
       << "| phase | trials requested | executed | stop reason | success CI "
          "half-width |\n|---|---|---|---|---|\n";
    for (const auto& rec : study.adaptive_phases) {
      os << "| " << rec.phase << " | " << rec.stats.trials_requested << " | "
         << rec.stats.trials_executed << " | "
         << harness::to_string(rec.stats.stop_reason) << " | "
         << pct(rec.stats.success.half_width()) << " |\n";
    }
  }

  os << "\n## Cost\n\n"
     << "- serial fault-injection time: " << study.serial_injection_seconds
     << " s\n- small-scale fault-injection time: "
     << study.small_injection_seconds << " s\n";
  if (study.measured_large) {
    os << "- large-scale validation time (not needed for prediction): "
       << study.large_injection_seconds << " s\n";
  }
  using telemetry::Counter;
  const auto& metrics = study.metrics;
  os << "- golden cache: " << metrics.value(Counter::HarnessGoldenHits)
     << " hits, " << metrics.value(Counter::HarnessGoldenMisses)
     << " misses, " << metrics.value(Counter::HarnessGoldenWaits)
     << " single-flight waits\n"
     << "- checkpoint fast path: "
     << metrics.value(Counter::HarnessCheckpointRestores) << " restores, "
     << metrics.value(Counter::HarnessEarlyExits) << " early exits\n";

  // Execution diagnostics from the study's metric scope (DESIGN.md §10).
  // Cost/diagnostic detail only: none of it feeds the model.
  if (!metrics.empty()) {
    os << "\n## Telemetry\n\n| counter | value |\n|---|---|\n";
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
      const auto c = static_cast<Counter>(i);
      if (metrics.value(c) == 0) continue;
      os << "| " << telemetry::name(c) << " | " << metrics.value(c) << " |\n";
    }
    const auto& ops = metrics.histogram(telemetry::Histogram::HarnessTrialOps);
    if (ops.total() > 0) {
      os << "\ntrial op-count distribution (log2 buckets):\n\n"
         << "| bucket | trials |\n|---|---|\n";
      for (std::size_t b = 0; b < telemetry::kHistogramBuckets; ++b) {
        if (ops.buckets[b] == 0) continue;
        os << "| 2^" << b << " | " << ops.buckets[b] << " |\n";
      }
    }
  }
  return os.str();
}

void write_report(const std::string& path, const std::string& app_label,
                  const StudyResult& study) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write report to " + path);
  out << render_report(app_label, study);
}

}  // namespace resilience::core
