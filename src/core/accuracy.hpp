// Modeling-accuracy metrics (paper Section 5).
#pragma once

#include <span>

#include "util/stats.hpp"

namespace resilience::core {

/// Absolute prediction error of a rate, in rate units (the paper reports
/// "prediction error" as the absolute difference of success percentages).
inline double prediction_error(double measured, double predicted) noexcept {
  const double d = measured - predicted;
  return d < 0 ? -d : d;
}

/// Root mean square error over a set of benchmarks (paper Eq. 9).
inline double rmse(std::span<const double> measured,
                   std::span<const double> predicted) {
  return util::rmse(measured, predicted);
}

}  // namespace resilience::core
