// Human-readable study reports.
//
// Renders a StudyResult — the full serial + small-scale -> large-scale
// prediction pipeline — as a Markdown document: inputs, serial sweep,
// propagation profile, fine-tuning decision, prediction, and (when the
// study measured the large scale) the validation. The CLI's
// `predict --report <file>` writes one per study.
#pragma once

#include <string>

#include "core/study.hpp"

namespace resilience::core {

/// Render `study` for application `app_label` as Markdown.
std::string render_report(const std::string& app_label,
                          const StudyResult& study);

/// Render and write to `path`; throws std::runtime_error on I/O failure.
void write_report(const std::string& path, const std::string& app_label,
                  const StudyResult& study);

}  // namespace resilience::core
