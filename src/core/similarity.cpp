#include "core/similarity.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace resilience::core {

std::vector<double> group_propagation(const std::vector<double>& large_r,
                                      int groups) {
  if (groups < 1 || large_r.empty() ||
      large_r.size() % static_cast<std::size_t>(groups) != 0) {
    throw std::invalid_argument(
        "group_propagation: groups must evenly split the profile");
  }
  return util::group_sum(large_r, static_cast<std::size_t>(groups));
}

double propagation_similarity(const PropagationProfile& small,
                              const PropagationProfile& large) {
  if (small.nranks < 1 || large.nranks < small.nranks ||
      large.nranks % small.nranks != 0) {
    throw std::invalid_argument(
        "propagation_similarity: small scale must divide large scale");
  }
  const std::vector<double> grouped = group_propagation(large.r, small.nranks);
  return util::cosine_similarity(small.r, grouped);
}

}  // namespace resilience::core
