#include "core/model.hpp"

#include <cmath>
#include <stdexcept>

namespace resilience::core {

std::vector<int> SerialSweep::sample_points(int p, int s) {
  if (s < 1 || p < 1 || s > p) {
    throw std::invalid_argument("sample_points: need 1 <= s <= p");
  }
  if (p % s != 0) {
    throw std::invalid_argument("sample_points: s must divide p");
  }
  std::vector<int> points;
  points.reserve(static_cast<std::size_t>(s));
  points.push_back(1);
  for (int i = 2; i <= s; ++i) points.push_back(i * (p / s));
  return points;
}

int SerialSweep::group_of(int x) const {
  if (x < 1 || x > large_p) {
    throw std::invalid_argument("group_of: x out of [1, p]");
  }
  const int s = static_cast<int>(sample_x.size());
  // ceil(x * S / p), clamped to [1, S].
  const long long g =
      (static_cast<long long>(x) * s + large_p - 1) / large_p;
  return static_cast<int>(std::max(1LL, std::min<long long>(g, s)));
}

const harness::FaultInjectionResult& SerialSweep::result_for(int x) const {
  return results[static_cast<std::size_t>(group_of(x) - 1)];
}

PropagationProfile PropagationProfile::from_campaign(
    const harness::CampaignResult& c) {
  PropagationProfile prof;
  prof.nranks = c.config.nranks;
  prof.r = c.propagation_probabilities();
  return prof;
}

std::vector<double> PropagationProfile::project(int large_p) const {
  if (nranks < 1 || large_p < nranks || large_p % nranks != 0) {
    throw std::invalid_argument(
        "PropagationProfile::project: small scale must divide large scale");
  }
  const int per_group = large_p / nranks;
  std::vector<double> projected(static_cast<std::size_t>(large_p), 0.0);
  for (int x = 1; x <= large_p; ++x) {
    const int g = (x + per_group - 1) / per_group;  // ceil(x / (p/S)), Eq. 5
    projected[static_cast<std::size_t>(x - 1)] =
        r[static_cast<std::size_t>(g - 1)] / per_group;
  }
  return projected;
}

SmallScaleObservation SmallScaleObservation::from_campaign(
    const harness::CampaignResult& c) {
  SmallScaleObservation obs;
  obs.nranks = c.config.nranks;
  obs.propagation = PropagationProfile::from_campaign(c);
  obs.overall = c.overall;
  obs.conditional.assign(static_cast<std::size_t>(c.config.nranks),
                         harness::FaultInjectionResult{});
  for (int x = 1; x <= c.config.nranks; ++x) {
    obs.conditional[static_cast<std::size_t>(x - 1)] =
        c.by_contamination[static_cast<std::size_t>(x)];
  }
  return obs;
}

SerialSweep rescale_sweep(const SerialSweep& sweep, int target_p) {
  if (target_p > sweep.large_p || target_p < 1) {
    throw std::invalid_argument("rescale_sweep: target_p out of range");
  }
  const int s = static_cast<int>(sweep.sample_x.size());
  SerialSweep out;
  out.large_p = target_p;
  out.sample_x = SerialSweep::sample_points(target_p, s);
  out.results.reserve(out.sample_x.size());
  for (int x : out.sample_x) out.results.push_back(sweep.result_for(x));
  return out;
}

ResiliencePredictor::ResiliencePredictor(SerialSweep sweep,
                                         SmallScaleObservation small,
                                         PredictorOptions options)
    : sweep_(std::move(sweep)), small_(std::move(small)), options_(options) {
  if (sweep_.sample_x.size() != sweep_.results.size()) {
    throw std::invalid_argument("SerialSweep: sample/result size mismatch");
  }
  if (sweep_.sample_x.empty() || sweep_.sample_x.front() != 1 ||
      sweep_.sample_x.back() != sweep_.large_p) {
    throw std::invalid_argument(
        "SerialSweep: samples must start at 1 and end at p");
  }
  // The paper uses the same S for the serial sampling and the small-scale
  // propagation profile: group g of the sweep aligns with r'_g.
  if (static_cast<int>(sweep_.sample_x.size()) != small_.nranks) {
    throw std::invalid_argument(
        "predictor: serial sample count must equal the small scale size S");
  }
  if (options_.prob_unique < 0.0 || options_.prob_unique > 1.0) {
    throw std::invalid_argument("predictor: prob_unique out of [0, 1]");
  }
  if (options_.prob_unique > 0.0 && !options_.unique_result.has_value()) {
    throw std::invalid_argument(
        "predictor: prob_unique > 0 requires a unique-region result");
  }
}

Prediction ResiliencePredictor::predict(int large_p) const {
  if (large_p != sweep_.large_p) {
    throw std::invalid_argument("predict: large_p != sweep.large_p");
  }
  const int s = small_.nranks;
  Prediction pred;
  pred.alpha.assign(static_cast<std::size_t>(s), 1.0);

  // ---- fine-tune decision (Observation 4 / Section 4.2) -----------------
  // The g-th serial sample (x_g errors) emulates the g-th propagation
  // group (g of S ranks contaminated at the small scale) — the alignment
  // the paper's fine-tuning example uses (FI'_ser_32 = FI_small_par_2 for
  // S = 4, p = 64). The divergence is the success-rate difference between
  // the two, weighted by how often the small scale observed each group.
  double diff_acc = 0.0, weight_acc = 0.0;
  for (int g = 1; g <= s; ++g) {
    const auto& cond = small_.conditional[static_cast<std::size_t>(g - 1)];
    if (cond.trials == 0) continue;
    const double weight = small_.propagation.r[static_cast<std::size_t>(g - 1)];
    const auto& serial = sweep_.results[static_cast<std::size_t>(g - 1)];
    diff_acc += weight * std::abs(serial.success_rate() - cond.success_rate());
    weight_acc += weight;
  }
  pred.divergence = (weight_acc > 0.0) ? diff_acc / weight_acc : 0.0;
  pred.fine_tuned = options_.allow_fine_tune &&
                    pred.divergence > options_.fine_tune_threshold;

  // ---- FI_par_common (Eq. 8): sum over sample groups ---------------------
  // r'_g already aggregates the probability mass of group g (Eq. 5/7).
  Rates common;
  for (int g = 1; g <= s; ++g) {
    const double weight = small_.propagation.r[static_cast<std::size_t>(g - 1)];
    if (weight == 0.0) continue;
    const auto& serial = sweep_.results[static_cast<std::size_t>(g - 1)];
    Rates rates = Rates::from(serial);
    if (pred.fine_tuned) {
      // alpha_g = FI_small_par_g / FI_ser_g, i.e. the fine-tuned sample is
      // the small scale's conditional result (paper Section 4.2 example).
      const auto& cond = small_.conditional[static_cast<std::size_t>(g - 1)];
      if (cond.trials > 0) {
        pred.alpha[static_cast<std::size_t>(g - 1)] =
            (serial.success_rate() > 0.0)
                ? cond.success_rate() / serial.success_rate()
                : 1.0;
        rates = Rates::from(cond);
      }
    }
    common += rates.scaled(weight);
  }
  pred.common = common;

  // ---- Eq. 1: weighted sum with the parallel-unique term ----------------
  if (options_.prob_unique > 0.0 && options_.unique_result.has_value()) {
    const Rates unique = Rates::from(*options_.unique_result);
    pred.combined = common.scaled(1.0 - options_.prob_unique);
    pred.combined += unique.scaled(options_.prob_unique);
  } else {
    pred.combined = common;
  }
  return pred;
}

}  // namespace resilience::core
