// Bootstrap uncertainty for model predictions.
//
// A prediction is a deterministic function of finite fault-injection
// campaigns; with the paper's 4000 tests (or this reproduction's smaller
// defaults) the sampling noise is not negligible. This module resamples
// the campaign counts — multinomially over outcomes for every serial
// sweep sample, and jointly over (contamination count, outcome) for the
// small-scale campaign — recomputes the prediction for each resample, and
// reports a percentile confidence interval on the predicted success rate.
#pragma once

#include "core/model.hpp"

namespace resilience::core {

struct BootstrapOptions {
  std::size_t resamples = 200;
  double confidence = 0.95;  ///< central interval mass
  std::uint64_t seed = 0xb007;
};

struct BootstrapInterval {
  double lo = 0.0;
  double hi = 1.0;
  double median = 0.0;

  [[nodiscard]] double width() const noexcept { return hi - lo; }
};

/// Percentile bootstrap interval on the predicted success rate at
/// `large_p`. Inputs are the same as ResiliencePredictor's; throws the
/// same validation errors.
BootstrapInterval bootstrap_prediction(const SerialSweep& sweep,
                                       const SmallScaleObservation& small,
                                       const PredictorOptions& options,
                                       int large_p,
                                       const BootstrapOptions& boot = {});

}  // namespace resilience::core
