#include "core/study.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace resilience::core {

namespace {

harness::DeploymentConfig base_deployment(const StudyConfig& cfg,
                                          std::uint64_t stream) {
  harness::DeploymentConfig dep;
  dep.trials = cfg.trials;
  dep.seed = util::derive_seed(cfg.seed, stream);
  dep.deadlock_timeout = cfg.deadlock_timeout;
  return dep;
}

}  // namespace

StudyResult run_study(const apps::App& app, const StudyConfig& cfg) {
  if (cfg.small_p < 1 || cfg.large_p < cfg.small_p ||
      cfg.large_p % cfg.small_p != 0) {
    throw std::invalid_argument("run_study: small_p must divide large_p");
  }
  if (!app.supports(cfg.small_p) || !app.supports(cfg.large_p)) {
    throw std::invalid_argument("run_study: " + app.label() +
                                " does not support the requested scales");
  }

  StudyResult out;
  out.config = cfg;

  // ---- serial sweeps: FI_ser_x at the paper's sample points --------------
  out.sweep.large_p = cfg.large_p;
  out.sweep.sample_x = SerialSweep::sample_points(cfg.large_p, cfg.small_p);
  for (std::size_t i = 0; i < out.sweep.sample_x.size(); ++i) {
    harness::DeploymentConfig dep = base_deployment(cfg, 1000 + i);
    dep.nranks = 1;
    dep.errors_per_test = out.sweep.sample_x[i];
    dep.regions = fsefi::RegionMask::Common;  // errors go into the common
                                              // computation (Section 3.3)
    const auto campaign = harness::CampaignRunner::run(app, dep);
    out.serial_injection_seconds += campaign.wall_seconds;
    out.sweep.results.push_back(campaign.overall);
  }

  // ---- small-scale campaign: propagation + conditional results -----------
  {
    harness::DeploymentConfig dep = base_deployment(cfg, 2000);
    dep.nranks = cfg.small_p;
    const auto campaign = harness::CampaignRunner::run(app, dep);
    out.small_injection_seconds = campaign.wall_seconds;
    out.small = SmallScaleObservation::from_campaign(campaign);
  }

  // ---- parallel-unique term (Eq. 1) --------------------------------------
  // prob2 comes from one fault-free profile of the large scale (the paper
  // assumes the large scale's time split is known/predictable).
  PredictorOptions popts = cfg.predictor;
  {
    const auto golden_large =
        harness::profile_app(app, cfg.large_p, cfg.deadlock_timeout);
    out.prob_unique = golden_large.unique_fraction();
  }
  if (out.prob_unique > cfg.unique_fraction_threshold) {
    harness::DeploymentConfig dep = base_deployment(cfg, 3000);
    dep.nranks = cfg.small_p;
    dep.regions = fsefi::RegionMask::ParallelUnique;
    const auto campaign = harness::CampaignRunner::run(app, dep);
    out.small_injection_seconds += campaign.wall_seconds;
    popts.prob_unique = out.prob_unique;
    popts.unique_result = campaign.overall;
  }

  // ---- predict ------------------------------------------------------------
  const ResiliencePredictor predictor(out.sweep, out.small, popts);
  out.prediction = predictor.predict(cfg.large_p);

  // ---- optional measured large-scale campaign ----------------------------
  if (cfg.measure_large) {
    harness::DeploymentConfig dep = base_deployment(cfg, 4000);
    dep.nranks = cfg.large_p;
    const auto campaign = harness::CampaignRunner::run(app, dep);
    out.large_injection_seconds = campaign.wall_seconds;
    out.measured_large = campaign.overall;
    out.measured_propagation = campaign.propagation_probabilities();
  }
  return out;
}

}  // namespace resilience::core
