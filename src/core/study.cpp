#include "core/study.hpp"

#include <exception>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/executor.hpp"
#include "harness/golden_cache.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace resilience::core {

namespace {

harness::DeploymentConfig base_deployment(const StudyConfig& cfg,
                                          std::uint64_t stream) {
  harness::DeploymentConfig dep;
  dep.trials = cfg.trials;
  dep.seed = util::derive_seed(cfg.seed, stream);
  dep.deadlock_timeout = cfg.deadlock_timeout;
  dep.adaptive = cfg.adaptive;
  return dep;
}

/// Run independent study phases, one thread each, their campaigns
/// interleaving inside the shared executor. Phase threads only wait on
/// their own batches (they are not pool workers), so nesting is safe.
/// The lowest-index exception is rethrown after all phases finished —
/// the same error the serial order would surface first.
void run_phases(std::vector<std::function<void()>>& phases, bool overlap) {
  if (!overlap) {
    for (auto& phase : phases) phase();
    return;
  }
  std::vector<std::exception_ptr> errors(phases.size());
  std::vector<std::thread> threads;
  threads.reserve(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    threads.emplace_back([&phases, &errors, i] {
      try {
        phases[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace

StudyResult run_study(const apps::App& app, const StudyConfig& cfg) {
  if (cfg.small_p < 1 || cfg.large_p < cfg.small_p ||
      cfg.large_p % cfg.small_p != 0) {
    throw std::invalid_argument("run_study: small_p must divide large_p");
  }
  if (!app.supports(cfg.small_p) || !app.supports(cfg.large_p)) {
    throw std::invalid_argument("run_study: " + app.label() +
                                " does not support the requested scales");
  }

  StudyResult out;
  out.config = cfg;

  // One executor (global rank-concurrency budget) and one golden cache
  // across every campaign of the study: no deployment is profiled twice,
  // and all phases' trials share the hardware fairly. The study's metric
  // scope is the rollup target of every campaign scope below.
  telemetry::MetricScope metrics;
  telemetry::TraceSpan study_span("core", "study");
  harness::Executor executor(cfg.max_workers);
  harness::GoldenCache golden_cache;
  const harness::CampaignContext ctx{&executor, &golden_cache, &metrics};
  {
    telemetry::ScopeGuard guard(&metrics);
    telemetry::count(telemetry::Counter::CoreStudies);
  }

  /// Each phase body runs with the study scope active on its thread (for
  /// counts outside any campaign, e.g. direct golden-cache probes) and a
  /// span covering the phase.
  auto as_phase = [&metrics](const char* name, std::function<void()> body) {
    return [&metrics, name, body = std::move(body)] {
      telemetry::ScopeGuard guard(&metrics);
      telemetry::TraceSpan span("core", name);
      telemetry::count(telemetry::Counter::CoreStudyPhases);
      body();
    };
  };

  out.sweep.large_p = cfg.large_p;
  out.sweep.sample_x = SerialSweep::sample_points(cfg.large_p, cfg.small_p);
  out.sweep.results.resize(out.sweep.sample_x.size());
  std::vector<double> sweep_seconds(out.sweep.sample_x.size(), 0.0);
  std::vector<harness::CampaignResult> small_campaign(1);
  // Per-phase adaptive records, each phase writing its own slot (phases
  // overlap on threads); assembled into out.adaptive_phases afterwards in
  // a fixed order.
  std::vector<std::optional<harness::AdaptiveStats>> sweep_adaptive(
      out.sweep.sample_x.size());
  std::optional<harness::AdaptiveStats> large_adaptive;
  std::optional<harness::AdaptiveStats> unique_adaptive;

  // All serial sweep points, the small-scale campaign, the large-scale
  // fault-free profile, and the optional measured large-scale campaign
  // are mutually independent — they overlap through the executor.
  std::vector<std::function<void()>> phases;

  // ---- serial sweeps: FI_ser_x at the paper's sample points --------------
  for (std::size_t i = 0; i < out.sweep.sample_x.size(); ++i) {
    phases.push_back(as_phase("serial_sweep", [&, i] {
      harness::DeploymentConfig dep = base_deployment(cfg, 1000 + i);
      dep.nranks = 1;
      dep.errors_per_test = out.sweep.sample_x[i];
      dep.scenario.regions = fsefi::RegionMask::Common;  // errors go into the common
                                                // computation (Section 3.3)
      const auto campaign = harness::CampaignRunner::run(app, dep, ctx);
      sweep_seconds[i] = campaign.wall_seconds;
      out.sweep.results[i] = campaign.overall;
      sweep_adaptive[i] = campaign.adaptive;
    }));
  }

  // ---- small-scale campaign: propagation + conditional results -----------
  phases.push_back(as_phase("small_campaign", [&] {
    harness::DeploymentConfig dep = base_deployment(cfg, 2000);
    dep.nranks = cfg.small_p;
    small_campaign[0] = harness::CampaignRunner::run(app, dep, ctx);
  }));

  // ---- large-scale fault-free profile (for prob2, Eq. 1) -----------------
  // The paper assumes the large scale's time split is known/predictable;
  // one fault-free profile supplies it. The cache keeps it for the
  // measured campaign too.
  phases.push_back(as_phase("large_profile", [&] {
    out.prob_unique =
        golden_cache
            .get_or_profile(app, cfg.large_p, cfg.deadlock_timeout, &executor)
            ->unique_fraction();
  }));

  // ---- optional measured large-scale campaign ----------------------------
  if (cfg.measure_large) {
    phases.push_back(as_phase("large_campaign", [&] {
      harness::DeploymentConfig dep = base_deployment(cfg, 4000);
      dep.nranks = cfg.large_p;
      const auto campaign = harness::CampaignRunner::run(app, dep, ctx);
      out.large_injection_seconds = campaign.wall_seconds;
      out.measured_large = campaign.overall;
      out.measured_propagation = campaign.propagation_probabilities();
      large_adaptive = campaign.adaptive;
    }));
  }

  run_phases(phases, /*overlap=*/executor.workers() > 1);

  for (double s : sweep_seconds) out.serial_injection_seconds += s;
  out.small_injection_seconds = small_campaign[0].wall_seconds;
  out.small = SmallScaleObservation::from_campaign(small_campaign[0]);

  // ---- parallel-unique term (Eq. 1) --------------------------------------
  PredictorOptions popts = cfg.predictor;
  if (out.prob_unique > cfg.unique_fraction_threshold) {
    as_phase("unique_campaign", [&] {
      harness::DeploymentConfig dep = base_deployment(cfg, 3000);
      dep.nranks = cfg.small_p;
      dep.scenario.regions = fsefi::RegionMask::ParallelUnique;
      const auto campaign = harness::CampaignRunner::run(app, dep, ctx);
      out.small_injection_seconds += campaign.wall_seconds;
      popts.prob_unique = out.prob_unique;
      popts.unique_result = campaign.overall;
      unique_adaptive = campaign.adaptive;
    })();
  }

  // ---- adaptive records (DESIGN.md §12) ----------------------------------
  // Fixed assembly order; measured_adaptive feeds the accuracy gate.
  for (std::size_t i = 0; i < sweep_adaptive.size(); ++i) {
    if (sweep_adaptive[i]) {
      out.adaptive_phases.push_back(
          {"serial_sweep_x" + std::to_string(out.sweep.sample_x[i]),
           *sweep_adaptive[i]});
    }
  }
  if (small_campaign[0].adaptive) {
    out.adaptive_phases.push_back(
        {"small_campaign", *small_campaign[0].adaptive});
  }
  if (large_adaptive) {
    out.adaptive_phases.push_back({"large_campaign", *large_adaptive});
    out.measured_adaptive = large_adaptive;
  }
  if (unique_adaptive) {
    out.adaptive_phases.push_back({"unique_campaign", *unique_adaptive});
  }

  // Every campaign scope has folded its totals into the study scope by
  // now (campaigns end before their phase returns).
  out.metrics = metrics.snapshot();

  // ---- predict ------------------------------------------------------------
  const ResiliencePredictor predictor(out.sweep, out.small, popts);
  out.prediction = predictor.predict(cfg.large_p);
  return out;
}

}  // namespace resilience::core
