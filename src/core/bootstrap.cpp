#include "core/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace resilience::core {

namespace {

/// Multinomial resample of one campaign result (same trial count).
harness::FaultInjectionResult resample(const harness::FaultInjectionResult& r,
                                       util::Xoshiro256& rng) {
  harness::FaultInjectionResult out;
  if (r.trials == 0) return out;
  const double p_success = r.success_rate();
  const double p_sdc = r.sdc_rate();
  for (std::size_t t = 0; t < r.trials; ++t) {
    const double u = rng.uniform01();
    if (u < p_success) {
      out.add(harness::Outcome::Success);
    } else if (u < p_success + p_sdc) {
      out.add(harness::Outcome::SDC);
    } else {
      out.add(harness::Outcome::Failure);
    }
  }
  return out;
}

/// Joint resample of the small-scale observation: draw each trial's
/// contamination group from the empirical distribution, then its outcome
/// from that group's conditional result.
SmallScaleObservation resample(const SmallScaleObservation& obs,
                               util::Xoshiro256& rng) {
  SmallScaleObservation out;
  out.nranks = obs.nranks;
  out.conditional.assign(static_cast<std::size_t>(obs.nranks),
                         harness::FaultInjectionResult{});

  std::size_t total_trials = 0;
  for (const auto& cond : obs.conditional) total_trials += cond.trials;
  // Cumulative distribution over groups.
  std::vector<double> cdf(obs.conditional.size(), 0.0);
  double acc = 0.0;
  for (std::size_t g = 0; g < obs.conditional.size(); ++g) {
    acc += total_trials == 0
               ? 0.0
               : static_cast<double>(obs.conditional[g].trials) /
                     static_cast<double>(total_trials);
    cdf[g] = acc;
  }

  for (std::size_t t = 0; t < total_trials; ++t) {
    const double u = rng.uniform01();
    std::size_t g = 0;
    while (g + 1 < cdf.size() && u >= cdf[g]) ++g;
    const auto& cond = obs.conditional[g];
    auto& target = out.conditional[g];
    const double v = rng.uniform01();
    if (v < cond.success_rate()) {
      target.add(harness::Outcome::Success);
    } else if (v < cond.success_rate() + cond.sdc_rate()) {
      target.add(harness::Outcome::SDC);
    } else {
      target.add(harness::Outcome::Failure);
    }
  }

  out.propagation.nranks = obs.nranks;
  out.propagation.r.assign(static_cast<std::size_t>(obs.nranks), 0.0);
  for (std::size_t g = 0; g < out.conditional.size(); ++g) {
    out.overall.merge(out.conditional[g]);
    if (total_trials > 0) {
      out.propagation.r[g] = static_cast<double>(out.conditional[g].trials) /
                             static_cast<double>(total_trials);
    }
  }
  return out;
}

}  // namespace

BootstrapInterval bootstrap_prediction(const SerialSweep& sweep,
                                       const SmallScaleObservation& small,
                                       const PredictorOptions& options,
                                       int large_p,
                                       const BootstrapOptions& boot) {
  // Validate once with the original inputs.
  (void)ResiliencePredictor(sweep, small, options).predict(large_p);

  std::vector<double> successes;
  successes.reserve(boot.resamples);
  for (std::size_t b = 0; b < boot.resamples; ++b) {
    util::Xoshiro256 rng(util::derive_seed(boot.seed, b));
    SerialSweep sweep_b = sweep;
    for (auto& result : sweep_b.results) result = resample(result, rng);
    SmallScaleObservation small_b = resample(small, rng);
    PredictorOptions options_b = options;
    if (options_b.unique_result.has_value()) {
      options_b.unique_result = resample(*options_b.unique_result, rng);
    }
    const ResiliencePredictor predictor(std::move(sweep_b), std::move(small_b),
                                        options_b);
    successes.push_back(predictor.predict(large_p).combined.success);
  }
  std::sort(successes.begin(), successes.end());

  const double alpha = (1.0 - boot.confidence) / 2.0;
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(successes.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(std::floor(pos));
    const auto hi_idx = std::min(lo_idx + 1, successes.size() - 1);
    const double frac = pos - std::floor(pos);
    return successes[lo_idx] * (1.0 - frac) + successes[hi_idx] * frac;
  };
  return {quantile(alpha), quantile(1.0 - alpha), quantile(0.5)};
}

}  // namespace resilience::core
