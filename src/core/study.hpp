// End-to-end modeling studies: run the full pipeline of the paper for one
// benchmark — serial sweeps, small-scale campaign, optional unique-region
// campaign, prediction, and (optionally) a measured large-scale campaign
// to validate against. This is the code path behind Figures 5-8.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "harness/campaign.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::core {

struct StudyConfig {
  int small_p = 4;    ///< S: small-scale size and serial sample count
  int large_p = 64;   ///< p: scale to predict
  std::size_t trials = 400;
  std::uint64_t seed = 20180813;
  /// Run the measured large-scale campaign for validation (Figures 5-7
  /// need it; pure prediction does not).
  bool measure_large = true;
  /// Model the parallel-unique term when the large-scale unique fraction
  /// exceeds this (the paper invokes it for FT only).
  double unique_fraction_threshold = 0.02;
  PredictorOptions predictor;
  std::chrono::milliseconds deadlock_timeout{10'000};
  /// Worker count of the campaign executor shared by all study phases
  /// (0 = auto, 1 = fully serial). Execution policy only: study results
  /// are bit-identical for every value.
  int max_workers = 0;
  /// Adaptive campaign engine applied to every deployment of the study
  /// (DESIGN.md §12). Off by default: all campaigns run their full fixed
  /// trial counts, bit-identical to a config without this member.
  harness::AdaptiveConfig adaptive;
};

struct StudyResult {
  StudyConfig config;
  SerialSweep sweep;
  SmallScaleObservation small;
  Prediction prediction;
  /// prob2 measured from the large-scale fault-free profile (the paper
  /// assumes the common/unique execution-time split of the large scale is
  /// known; one fault-free run supplies it).
  double prob_unique = 0.0;
  std::optional<harness::FaultInjectionResult> measured_large;
  std::optional<std::vector<double>> measured_propagation;  ///< large r_x

  /// One record per deployment the adaptive engine ran: which study
  /// phase, the requested-vs-executed trial counts, stop reason, and CI
  /// envelope. Empty when config.adaptive.enabled is false. Ordered by
  /// phase (serial sweeps in sample order, then small, large, unique) —
  /// deterministic regardless of phase overlap.
  struct AdaptivePhase {
    std::string phase;
    harness::AdaptiveStats stats;
  };
  std::vector<AdaptivePhase> adaptive_phases;
  /// Adaptive record of the measured large-scale campaign — the CI
  /// envelope the accuracy gate compares the Eq. 4/8 prediction against.
  std::optional<harness::AdaptiveStats> measured_adaptive;

  /// Serial-equivalent cost of the fault-injection phases (paper Figure
  /// 8's cost axis); summed across workers when phases ran in parallel.
  double serial_injection_seconds = 0.0;
  double small_injection_seconds = 0.0;
  double large_injection_seconds = 0.0;

  /// Execution-diagnostic counters and histograms of everything the
  /// study ran, rolled up from every campaign's metric scope (DESIGN.md
  /// §10). Cost/diagnostic detail only — not part of the modeled results
  /// and excluded from serialization.
  telemetry::MetricsSnapshot metrics;

  [[nodiscard]] double predicted_success() const noexcept {
    return prediction.combined.success;
  }
  [[nodiscard]] double measured_success() const noexcept {
    return measured_large ? measured_large->success_rate() : 0.0;
  }
  /// |measured - predicted| success rate, in rate units.
  [[nodiscard]] double success_error() const noexcept {
    return measured_large
               ? (measured_success() > predicted_success()
                      ? measured_success() - predicted_success()
                      : predicted_success() - measured_success())
               : 0.0;
  }

  /// Accuracy gate (DESIGN.md §12): true when the measured large-scale
  /// campaign ran adaptively and the Eq. 4/8 prediction falls outside
  /// the measured success-rate CI envelope. Reporting paths must surface
  /// this flag next to the prediction — a gap larger than the envelope
  /// is never reported silently.
  [[nodiscard]] bool accuracy_gate_flagged() const noexcept {
    return measured_adaptive.has_value() &&
           !measured_adaptive->success.contains(predicted_success());
  }
};

/// Run the full study for one app. Deterministic in (app, config).
/// Throws when the app does not support the requested scales or the
/// scales are incompatible (small_p must divide large_p).
StudyResult run_study(const apps::App& app, const StudyConfig& config);

}  // namespace resilience::core
