// The paper's resilience model (Section 4): predict the fault-injection
// result of a large-scale parallel execution from
//   (a) serial fault-injection sweeps with multiple errors injected into
//       the common computation (FI_ser_x, sampled per Section 4.2), and
//   (b) the error-propagation profile of a small-scale parallel execution
//       (r'_x', Eq. 3/5), with
//   (c) optional fine-tuning against the small scale's conditional results
//       (the alpha_x parameters) when serial emulation is poor, and
//   (d) an optional parallel-unique computation term (Eq. 1).
#pragma once

#include <optional>
#include <vector>

#include "harness/campaign.hpp"

namespace resilience::core {

/// Outcome-rate triple; the model's linear algebra operates on these.
struct Rates {
  double success = 0.0;
  double sdc = 0.0;
  double failure = 0.0;

  static Rates from(const harness::FaultInjectionResult& r) noexcept {
    return {r.success_rate(), r.sdc_rate(), r.failure_rate()};
  }
  [[nodiscard]] Rates scaled(double w) const noexcept {
    return {success * w, sdc * w, failure * w};
  }
  Rates& operator+=(const Rates& o) noexcept {
    success += o.success;
    sdc += o.sdc;
    failure += o.failure;
    return *this;
  }
};

/// Serial fault-injection sweep: FI_ser_x measured at S sample points
/// x_1 = 1, x_i = i*p/S (i = 2..S), per the paper's sampling approach.
struct SerialSweep {
  int large_p = 0;            ///< the p this sweep was sampled for
  std::vector<int> sample_x;  ///< ascending; front()==1, back()==large_p
  std::vector<harness::FaultInjectionResult> results;  ///< per sample

  /// The paper's sample points {1, 2p/s, 3p/s, ..., p}.
  /// Requires 1 <= s <= p and s | p.
  static std::vector<int> sample_points(int p, int s);

  /// Sample group of error count x (1-based): ceil(x*S/p), clamped to
  /// [1, S]. FI_ser_x is approximated by the result of its group's sample.
  [[nodiscard]] int group_of(int x) const;

  /// FI_ser_x via the group mapping.
  [[nodiscard]] const harness::FaultInjectionResult& result_for(int x) const;
};

/// Error-propagation profile of a (small-scale) campaign: r_x for
/// x = 1..p (Eq. 3), stored with r[0] == r_1.
struct PropagationProfile {
  int nranks = 0;
  std::vector<double> r;

  static PropagationProfile from_campaign(const harness::CampaignResult& c);

  /// Project to a larger scale via Eq. 5: r_x (x = 1..large_p) equals
  /// r'_{ceil(x*S/p)} divided evenly over the group's members, so the
  /// grouped mass is preserved. Requires nranks | large_p.
  [[nodiscard]] std::vector<double> project(int large_p) const;
};

/// Everything the model consumes from one small-scale campaign.
struct SmallScaleObservation {
  int nranks = 0;
  PropagationProfile propagation;
  /// Fault-injection result conditioned on x ranks contaminated
  /// (index x-1; entries with zero trials were never observed).
  std::vector<harness::FaultInjectionResult> conditional;
  harness::FaultInjectionResult overall;

  static SmallScaleObservation from_campaign(const harness::CampaignResult& c);
};

struct PredictorOptions {
  /// Fine-tune when the weighted serial-vs-small-scale success-rate
  /// difference exceeds this (paper: "larger than 20% difference").
  double fine_tune_threshold = 0.20;
  bool allow_fine_tune = true;
  /// prob2 of Eq. 1: fraction of large-scale execution spent in
  /// parallel-unique computation (0 disables the unique term).
  double prob_unique = 0.0;
  /// FI_par_unique: result of a small-scale campaign with errors injected
  /// into the parallel-unique computation only.
  std::optional<harness::FaultInjectionResult> unique_result;
};

struct Prediction {
  Rates common;    ///< FI_par_common (Eq. 4 / Eq. 8)
  Rates combined;  ///< FI_par (Eq. 1)
  bool fine_tuned = false;
  /// Weighted |serial - small| success-rate difference that drove the
  /// fine-tune decision.
  double divergence = 0.0;
  /// alpha_x fine-tuning factors per sample group (1.0 when not tuned).
  std::vector<double> alpha;
};

/// Rescale a sweep sampled for `sweep.large_p` down to a smaller target
/// scale: the sample points of `target_p` are filled via the group
/// mapping, letting ONE set of serial campaigns serve predictions at many
/// scales (the extrapolation use case: sweep once for the largest scale
/// of interest, predict everything below it). Requires
/// small-scale-size | target_p and target_p <= sweep.large_p.
SerialSweep rescale_sweep(const SerialSweep& sweep, int target_p);

/// The model of Section 4. Construction validates that the serial sweep's
/// sample count matches the small scale size S (the paper uses the same S
/// for both the sampling of FI_ser_x and the propagation profile).
class ResiliencePredictor {
 public:
  ResiliencePredictor(SerialSweep sweep, SmallScaleObservation small,
                      PredictorOptions options = {});

  /// Predict the fault-injection result at `large_p` ranks (must equal the
  /// sweep's large_p).
  [[nodiscard]] Prediction predict(int large_p) const;

  [[nodiscard]] const SerialSweep& sweep() const noexcept { return sweep_; }
  [[nodiscard]] const SmallScaleObservation& small() const noexcept {
    return small_;
  }

 private:
  SerialSweep sweep_;
  SmallScaleObservation small_;
  PredictorOptions options_;
};

}  // namespace resilience::core
