#include "simmpi/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

#if defined(RESILIENCE_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

#ifndef MAP_STACK
#define MAP_STACK 0
#endif

namespace resilience::simmpi::detail {

namespace {

std::size_t page_size() noexcept {
  static const std::size_t size = [] {
    const long s = ::sysconf(_SC_PAGESIZE);
    return s > 0 ? static_cast<std::size_t>(s) : std::size_t{4096};
  }();
  return size;
}

/// Process-wide freelist of idle stack mappings keyed by total size.
/// Campaigns churn one fiber per rank per job; recycling mappings keeps
/// that churn off the mmap path (and keeps the pages warm).
class StackPool {
 public:
  static StackPool& instance() {
    static StackPool* pool = new StackPool;  // leaked: alive at exit
    return *pool;
  }

  void* get(std::size_t bytes) {
    {
      std::lock_guard lock(mu_);
      auto it = idle_.find(bytes);
      if (it != idle_.end() && !it->second.empty()) {
        void* mapping = it->second.back();
        it->second.pop_back();
        return mapping;
      }
    }
    void* mapping = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (mapping == MAP_FAILED) throw std::bad_alloc();
    // Guard page at the low end: stacks grow down on every platform this
    // runs on, so an overflow hits PROT_NONE instead of a neighbour.
    if (::mprotect(mapping, page_size(), PROT_NONE) != 0) {
      ::munmap(mapping, bytes);
      throw std::bad_alloc();
    }
    return mapping;
  }

  void put(void* mapping, std::size_t bytes) noexcept {
    {
      std::lock_guard lock(mu_);
      auto& list = idle_[bytes];
      if (list.size() < kMaxIdlePerSize) {
        list.push_back(mapping);
        return;
      }
    }
    ::munmap(mapping, bytes);
  }

  void clear() {
    std::lock_guard lock(mu_);
    for (auto& [bytes, list] : idle_) {
      for (void* mapping : list) ::munmap(mapping, bytes);
      list.clear();
    }
  }

 private:
  /// Bounds resident idle mappings: a 1024-rank job at the default stack
  /// size parks ~256 MiB of (mostly untouched) address space, which this
  /// cap keeps from compounding across widths.
  static constexpr std::size_t kMaxIdlePerSize = 2048;

  std::mutex mu_;
  std::unordered_map<std::size_t, std::vector<void*>> idle_;
};

/// Where a switched-out fiber returns to: the resuming worker saves its
/// own context here for the duration of the slice. Thread-local, so a
/// fiber resumed on a different worker returns to *that* worker.
thread_local ucontext_t* tl_return_context = nullptr;
#if defined(RESILIENCE_TSAN_FIBERS)
thread_local void* tl_worker_tsan_fiber = nullptr;
#endif

}  // namespace

std::size_t usable_stack_bytes(std::size_t requested) {
  const std::size_t page = page_size();
  const std::size_t floor = 4 * page;
  const std::size_t bytes = requested < floor ? floor : requested;
  return (bytes + page - 1) / page * page;
}

FiberContext::FiberContext(std::size_t stack_bytes, Entry entry, void* arg)
    : entry_(entry), arg_(arg) {
  const std::size_t usable = usable_stack_bytes(stack_bytes);
  mapping_bytes_ = usable + page_size();
  mapping_ = StackPool::instance().get(mapping_bytes_);
  if (::getcontext(&context_) != 0) {
    StackPool::instance().put(mapping_, mapping_bytes_);
    mapping_ = nullptr;
    throw std::bad_alloc();
  }
  context_.uc_stack.ss_sp =
      static_cast<std::byte*>(mapping_) + page_size();
  context_.uc_stack.ss_size = usable;
  context_.uc_link = nullptr;  // the entry must switch_out, never fall off
  // makecontext only passes ints; split the pointer across two of them.
  // Widen to 64 bits first: on a 32-bit target `uintptr_t >> 32` would
  // shift by the full type width, which is undefined behavior.
  const auto self =
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(this));
  ::makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
#if defined(RESILIENCE_TSAN_FIBERS)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

FiberContext::~FiberContext() {
#if defined(RESILIENCE_TSAN_FIBERS)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (mapping_ != nullptr) {
    StackPool::instance().put(mapping_, mapping_bytes_);
  }
}

void FiberContext::trampoline(unsigned hi, unsigned lo) {
  const auto bits =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  auto* self =
      reinterpret_cast<FiberContext*>(static_cast<std::uintptr_t>(bits));
  self->entry_(self->arg_);
  // The entry contract is a final switch_out(); falling off the context
  // would terminate the thread (uc_link is null).
  std::fprintf(stderr, "fiber: entry returned without switch_out\n");
  std::abort();
}

void FiberContext::switch_in() {
  ucontext_t here;
  ucontext_t* const previous = tl_return_context;
  tl_return_context = &here;
#if defined(RESILIENCE_TSAN_FIBERS)
  void* const previous_tsan = tl_worker_tsan_fiber;
  tl_worker_tsan_fiber = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  if (::swapcontext(&here, &context_) != 0) {
    std::fprintf(stderr, "fiber: swapcontext into fiber failed\n");
    std::abort();
  }
#if defined(RESILIENCE_TSAN_FIBERS)
  tl_worker_tsan_fiber = previous_tsan;
#endif
  tl_return_context = previous;
}

void FiberContext::switch_out() {
  ucontext_t* const back = tl_return_context;
#if defined(RESILIENCE_TSAN_FIBERS)
  __tsan_switch_to_fiber(tl_worker_tsan_fiber, 0);
#endif
  if (::swapcontext(&context_, back) != 0) {
    std::fprintf(stderr, "fiber: swapcontext out of fiber failed\n");
    std::abort();
  }
}

void FiberContext::clear_stack_pool() { StackPool::instance().clear(); }

}  // namespace resilience::simmpi::detail
