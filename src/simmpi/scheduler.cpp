#include "simmpi/scheduler.hpp"

#include <cstdio>
#include <cstdlib>

namespace resilience::simmpi {

namespace {

/// The fiber the calling thread is currently executing, if any. Workers
/// set it around each slice; everything else (mailbox waits, collective
/// arrivals) reads it to decide fiber-path vs thread-path behaviour.
thread_local detail::Fiber* tl_current_fiber = nullptr;

}  // namespace

namespace detail {

Fiber::Fiber(FiberScheduler* scheduler, int rank, std::size_t stack_bytes)
    : scheduler_(scheduler),
      rank_(rank),
      context_(stack_bytes, &Fiber::entry_thunk, this) {
  util::FiberTlsRegistry::init(tls_);
}

void Fiber::entry_thunk(void* arg) {
  auto* fiber = static_cast<Fiber*>(arg);
  fiber->scheduler_->fiber_entry(fiber);
}

}  // namespace detail

FiberScheduler::FiberScheduler(int nranks, std::size_t stack_bytes)
    : nranks_(nranks), stack_bytes_(stack_bytes) {}

FiberScheduler::~FiberScheduler() = default;

void FiberScheduler::start(const std::function<void(int rank)>& body) {
  body_ = body;
  fibers_.reserve(static_cast<std::size_t>(nranks_));
  std::lock_guard lock(mu_);
  for (int rank = 0; rank < nranks_; ++rank) {
    fibers_.push_back(
        std::make_unique<detail::Fiber>(this, rank, stack_bytes_));
    run_queue_.push_back(fibers_.back().get());
  }
}

void FiberScheduler::fiber_entry(detail::Fiber* fiber) {
  body_(fiber->rank_);
  fiber->finished_ = true;
  // Final switch back to the worker, which commits Done. The fiber is
  // never resumed again; the trampoline aborts if it somehow is.
  fiber->context_.switch_out();
}

void FiberScheduler::resume(detail::Fiber* fiber) {
  util::FiberTlsRegistry::swap(fiber->tls_);
  tl_current_fiber = fiber;
  fiber->context_.switch_in();
  tl_current_fiber = nullptr;
  util::FiberTlsRegistry::swap(fiber->tls_);
}

void FiberScheduler::worker_main(int /*worker_index*/) {
  std::unique_lock lock(mu_);
  for (;;) {
    if (finished_ == nranks_) {
      cv_.notify_all();
      return;
    }
    if (!run_queue_.empty()) {
      detail::Fiber* fiber = run_queue_.front();
      run_queue_.pop_front();
      fiber->state_ = detail::Fiber::State::Running;
      ++running_;
      lock.unlock();
      resume(fiber);
      lock.lock();
      --running_;
      // Commit the slice outcome. The fiber cannot be touched by wakers
      // between its switch-out and this commit in any way we could lose:
      // unpark flags Parking -> ParkingWoken and we requeue it here.
      if (fiber->finished_) {
        fiber->state_ = detail::Fiber::State::Done;
        ++finished_;
        if (finished_ == nranks_) cv_.notify_all();
      } else if (fiber->state_ == detail::Fiber::State::ParkingWoken) {
        fiber->state_ = detail::Fiber::State::Runnable;
        run_queue_.push_back(fiber);
        cv_.notify_one();
      } else {
        fiber->state_ = detail::Fiber::State::Parked;
        // The fiber's TLS bank is now saved (resume() swapped it back
        // before this commit): a combiner waiting to borrow it may go.
        if (fiber->park_group_ != nullptr) borrow_cv_.notify_all();
      }
      continue;
    }
    if (running_ == 0) {
      // Nothing runnable, nothing running, some fibers unfinished: no
      // future event can wake them (no timers, no external input). The
      // job is deadlocked — deterministically, not after a timeout.
      if (!deadlock_declared_) {
        deadlock_declared_ = true;
        deadlocked_.store(true, std::memory_order_release);
      }
      for (auto& fiber : fibers_) {
        unpark_locked(fiber.get());
      }
      // Woken fibers are queued; run them so their blocking primitives
      // observe deadlocked() and throw.
      if (!run_queue_.empty()) continue;
    }
    cv_.wait(lock);
  }
}

void FiberScheduler::park(std::unique_lock<std::mutex>& owner_lock) {
  park_impl(owner_lock, nullptr);
}

void FiberScheduler::park_on_group(std::unique_lock<std::mutex>& owner_lock,
                                   const void* group_tag) {
  park_impl(owner_lock, group_tag);
}

void FiberScheduler::park_impl(std::unique_lock<std::mutex>& owner_lock,
                               const void* group_tag) {
  detail::Fiber* fiber = current_fiber();
  if (fiber == nullptr) {
    std::fprintf(stderr, "scheduler: park called outside a fiber\n");
    std::abort();
  }
  {
    std::lock_guard lock(mu_);
    fiber->state_ = detail::Fiber::State::Parking;
    fiber->park_group_ = group_tag;
  }
  // Release the owner lock only after the state is Parking: a waker that
  // now finds this fiber in a WaitList flags it ParkingWoken and the
  // committing worker requeues it — the wakeup cannot be lost.
  owner_lock.unlock();
  fiber->context_.switch_out();
  owner_lock.lock();
}

void FiberScheduler::unpark(detail::Fiber* fiber) {
  std::lock_guard lock(mu_);
  unpark_locked(fiber);
}

void FiberScheduler::unpark_locked(detail::Fiber* fiber) {
  switch (fiber->state_) {
    case detail::Fiber::State::Parked:
      fiber->park_group_ = nullptr;
      fiber->state_ = detail::Fiber::State::Runnable;
      run_queue_.push_back(fiber);
      cv_.notify_one();
      break;
    case detail::Fiber::State::Parking:
      fiber->park_group_ = nullptr;
      fiber->state_ = detail::Fiber::State::ParkingWoken;
      break;
    default:
      break;  // already runnable, running, woken, or done: nothing to do
  }
}

void FiberScheduler::yield_current() {
  detail::Fiber* fiber = current_fiber();
  if (fiber == nullptr) return;
  {
    std::lock_guard lock(fiber->scheduler_->mu_);
    // ParkingWoken makes the committing worker requeue the fiber at the
    // back of the run queue: exactly a cooperative yield.
    fiber->state_ = detail::Fiber::State::ParkingWoken;
  }
  fiber->context_.switch_out();
}

void FiberScheduler::wake_all_parked() {
  std::lock_guard lock(mu_);
  for (auto& fiber : fibers_) {
    // A fiber parked on a fused-collective group may have its TLS bank
    // borrowed by a mid-combine combiner right now; resuming it would
    // race the borrow's swaps. Leave it parked: the combiner's
    // complete() wakes the group when the combine ends, and if no
    // combiner ever arrives (abort before the last arrival) the
    // no-runnable-fiber sweep in worker_main — which cannot coincide
    // with a combine, since a combiner is a running fiber — delivers
    // the wake instead.
    if (fiber->park_group_ != nullptr) continue;
    unpark_locked(fiber.get());
  }
}

detail::Fiber* FiberScheduler::current_fiber() noexcept {
  return tl_current_fiber;
}

BorrowFiberTls::BorrowFiberTls(detail::Fiber* fiber) {
  if (fiber == nullptr || fiber == FiberScheduler::current_fiber()) return;
  fiber_ = fiber;
  FiberScheduler* sched = fiber->scheduler_;
  std::unique_lock lock(sched->mu_);
  // Wait for the fiber's park to commit: until the owning worker swaps
  // the fiber's live thread-locals back into tls_ and marks it Parked,
  // the bank is not ours to borrow. The wait is short and bounded — the
  // suspending worker is between switch-out and commit, with nothing to
  // block on — and the state is stable for the borrow's lifetime: the
  // fiber is group-parked (exempt from wake_all_parked), its group's
  // complete() runs only after this combine, and the no-runnable sweep
  // cannot fire while the combiner itself is running.
  while (fiber->state_ != detail::Fiber::State::Parked) {
    if (fiber->state_ != detail::Fiber::State::Parking) {
      std::fprintf(stderr, "scheduler: borrowed fiber is not parked\n");
      std::abort();
    }
    sched->borrow_cv_.wait(lock);
  }
  util::FiberTlsRegistry::swap(fiber_->tls_);
}

BorrowFiberTls::~BorrowFiberTls() {
  if (fiber_ != nullptr) {
    util::FiberTlsRegistry::swap(fiber_->tls_);
  }
}

}  // namespace resilience::simmpi
