// Per-rank mailbox with MPI-style (source, tag) matching.
//
// Sends are buffered (they enqueue and return, like MPI_Send on small
// messages); receives block until a matching envelope arrives, the job is
// aborted, or the deadlock timeout expires. Matching is FIFO per
// (source, tag) pair, which is exactly MPI's non-overtaking guarantee.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "simmpi/errors.hpp"

namespace resilience::simmpi {

/// Wildcard source for receives (the analogue of MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receives (the analogue of MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// A message in flight: raw bytes plus the matching metadata.
struct Envelope {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> bytes;
};

/// Shared abort flag for one job; wakes every blocked mailbox.
class AbortToken {
 public:
  void trigger() noexcept { aborted_.store(true, std::memory_order_release); }
  [[nodiscard]] bool triggered() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> aborted_{false};
};

class Mailbox {
 public:
  Mailbox(AbortToken* abort, std::chrono::milliseconds deadlock_timeout)
      : abort_(abort), timeout_(deadlock_timeout) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueue an envelope; never blocks.
  void push(Envelope env) {
    {
      std::lock_guard lock(mu_);
      queue_.push_back(std::move(env));
    }
    cv_.notify_all();
  }

  /// Wake a blocked receive so it can observe an abort.
  void interrupt() { cv_.notify_all(); }

  /// Dequeue the first envelope matching (source, tag), blocking as needed.
  /// Throws AbortError if the job aborts while waiting and DeadlockError if
  /// the timeout elapses with no match.
  Envelope pop_matching(int source, int tag) {
    std::unique_lock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + timeout_;
    for (;;) {
      if (abort_->triggered()) throw AbortError();
      if (auto it = find_match(source, tag); it != queue_.end()) {
        Envelope env = std::move(*it);
        queue_.erase(it);
        return env;
      }
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (abort_->triggered()) throw AbortError();
        throw DeadlockError("receive timed out: likely deadlock or hang");
      }
    }
  }

  /// Non-blocking probe: true if a matching envelope is queued.
  [[nodiscard]] bool probe(int source, int tag) {
    std::lock_guard lock(mu_);
    return find_match(source, tag) != queue_.end();
  }

  /// Number of queued envelopes (any source/tag).
  [[nodiscard]] std::size_t pending() {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  std::deque<Envelope>::iterator find_match(int source, int tag) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const bool src_ok = (source == kAnySource) || (it->source == source);
      const bool tag_ok = (tag == kAnyTag) || (it->tag == tag);
      if (src_ok && tag_ok) return it;
    }
    return queue_.end();
  }

  AbortToken* abort_;
  std::chrono::milliseconds timeout_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

}  // namespace resilience::simmpi
