// Per-rank mailbox with MPI-style (source, tag) matching.
//
// Sends are buffered (they enqueue and return, like MPI_Send on small
// messages); receives block until a matching envelope arrives, the job is
// aborted, or the deadlock timeout expires. Matching is FIFO per
// (source, tag) pair, which is exactly MPI's non-overtaking guarantee.
//
// Matching is indexed: envelopes are stored in per-(source, tag)
// sub-queues keyed by the wire pair, so the common exact-match receive is
// a hash lookup instead of a scan of every queued message. Wildcard
// receives (kAnySource / kAnyTag) scan the sub-queue fronts and take the
// envelope with the smallest arrival stamp — identical to what the old
// arrival-ordered linear scan returned, at a cost proportional to the
// number of *distinct* live (source, tag) pairs, not the number of
// queued messages.
//
// Blocking has two shapes. On the threaded substrate a receive without a
// match waits on the mailbox condvar with the progress-reset deadlock
// deadline. Under the fiber scheduler the receiving *fiber* instead
// records its (source, tag) filter in the mailbox's waiter list and
// parks — the worker thread moves on to another runnable rank — and
// push unparks exactly the waiters its envelope can match (interrupt
// unparks them all).
// The fiber path has no timeout at all: the scheduler detects deadlock
// deterministically (zero runnable fibers) and wakes parked receivers,
// which observe deadlocked() and throw.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "simmpi/errors.hpp"
#include "simmpi/pool.hpp"
#include "simmpi/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::simmpi {

/// Wildcard source for receives (the analogue of MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receives (the analogue of MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// A message in flight: raw bytes plus the matching metadata.
struct Envelope {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> bytes;
};

/// Shared abort flag for one job; wakes every blocked mailbox.
class AbortToken {
 public:
  void trigger() noexcept { aborted_.store(true, std::memory_order_release); }
  [[nodiscard]] bool triggered() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> aborted_{false};
};

class Mailbox {
 public:
  Mailbox(AbortToken* abort, std::chrono::milliseconds deadlock_timeout)
      : abort_(abort), timeout_(deadlock_timeout) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Attach the owning job's fiber scheduler; receives called from a
  /// fiber will park instead of waiting on the condvar.
  void set_scheduler(FiberScheduler* scheduler) noexcept {
    sched_ = scheduler;
  }

  /// Enqueue an envelope; never blocks. Only parked receivers whose
  /// (source, tag) filter matches the envelope are woken — waking the
  /// rest would be a thundering herd of resume/re-park cycles (each a
  /// full TLS swap and context switch) for receives that cannot match.
  void push(Envelope env) {
    {
      std::lock_guard lock(mu_);
      const int source = env.source;
      const int tag = env.tag;
      auto& queue = queues_[key_of(source, tag)];
      queue.push_back(Stamped{next_stamp_++, std::move(env)});
      ++pending_;
      ++arrivals_;
      if (sched_ != nullptr) {
        for (const RecvWaiter& waiter : recv_waiters_) {
          if (waiter.matches(source, tag)) sched_->unpark(waiter.fiber);
        }
      }
    }
    cv_.notify_all();
  }

  /// Wake every blocked receive so it can observe an abort.
  void interrupt() {
    {
      std::lock_guard lock(mu_);
      if (sched_ != nullptr) {
        for (const RecvWaiter& waiter : recv_waiters_) {
          sched_->unpark(waiter.fiber);
        }
      }
    }
    cv_.notify_all();
  }

  /// Dequeue the first envelope matching (source, tag), blocking as needed.
  /// Throws AbortError if the job aborts while waiting and DeadlockError if
  /// the deadlock timeout elapses with *no traffic at all*: every arrival
  /// restarts the clock, so a receive waiting behind a long stream of
  /// healthy non-matching (or slowly-drained) traffic is not declared a
  /// deadlock just because the stream outlasts one timeout period.
  Envelope pop_matching(int source, int tag) {
    std::unique_lock lock(mu_);
    if (sched_ != nullptr && FiberScheduler::in_fiber()) {
      return pop_matching_fiber(source, tag, lock);
    }
    std::uint64_t seen_arrivals = arrivals_;
    auto deadline = std::chrono::steady_clock::now() + timeout_;
    bool counted_wait = false;
    for (;;) {
      if (abort_->triggered()) throw AbortError();
      if (SubQueue* queue = find_match(source, tag); queue != nullptr) {
        return take_front(*queue);
      }
      if (!counted_wait) {
        // Diagnostic (timing-born) counter: this receive is about to
        // block — its match has not arrived yet. Counted once per call.
        telemetry::count(telemetry::Counter::SimmpiMailboxWaits);
        counted_wait = true;
      }
      if (arrivals_ != seen_arrivals) {
        // Progress: traffic arrived while we waited. Reset the clock so
        // only genuine silence counts toward the deadlock verdict.
        seen_arrivals = arrivals_;
        deadline = std::chrono::steady_clock::now() + timeout_;
      }
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          arrivals_ == seen_arrivals) {
        if (abort_->triggered()) throw AbortError();
        throw DeadlockError("receive timed out: likely deadlock or hang");
      }
    }
  }

  /// Non-blocking probe: true if a matching envelope is queued.
  [[nodiscard]] bool probe(int source, int tag) {
    std::lock_guard lock(mu_);
    return find_match(source, tag) != nullptr;
  }

  /// Number of queued envelopes (any source/tag).
  [[nodiscard]] std::size_t pending() {
    std::lock_guard lock(mu_);
    return pending_;
  }

  // ---- payload buffer pool --------------------------------------------------

  /// A payload buffer of `bytes` size for a message addressed to this
  /// mailbox, recycled from previously consumed envelopes when possible.
  [[nodiscard]] std::vector<std::byte> acquire_buffer(std::size_t bytes) {
    std::lock_guard lock(mu_);
    return pool_.get(bytes);
  }

  /// Return a consumed envelope's payload capacity to this mailbox's pool.
  void recycle(Envelope&& env) {
    std::lock_guard lock(mu_);
    pool_.put(std::move(env.bytes));
  }

  [[nodiscard]] BufferPool::Stats pool_stats() {
    std::lock_guard lock(mu_);
    return pool_.stats();
  }

 private:
  struct Stamped {
    std::uint64_t stamp;  ///< global arrival order across all sub-queues
    Envelope env;
  };
  using SubQueue = std::deque<Stamped>;

  Envelope take_front(SubQueue& queue) {
    Envelope env = std::move(queue.front().env);
    queue.pop_front();
    --pending_;
    if (queue.empty()) {
      // One-shot keys (every collective op salts a fresh tag) would
      // otherwise grow the index without bound.
      queues_.erase(key_of(env.source, env.tag));
    }
    return env;
  }

  /// A parked receiving fiber plus the (source, tag) filter it awaits;
  /// push() uses the filter to wake only receivers the envelope can
  /// satisfy. Guarded by mu_.
  struct RecvWaiter {
    detail::Fiber* fiber = nullptr;
    int source = 0;
    int tag = 0;

    [[nodiscard]] bool matches(int env_source, int env_tag) const noexcept {
      return (source == kAnySource || source == env_source) &&
             (tag == kAnyTag || tag == env_tag);
    }
  };

  void remove_recv_waiter(detail::Fiber* fiber) {
    for (auto it = recv_waiters_.begin(); it != recv_waiters_.end(); ++it) {
      if (it->fiber == fiber) {
        recv_waiters_.erase(it);
        return;
      }
    }
  }

  /// Fiber-path receive: park instead of condvar-waiting, no timeout.
  /// Requires `lock` held; called with the calling fiber's scheduler set.
  Envelope pop_matching_fiber(int source, int tag,
                              std::unique_lock<std::mutex>& lock) {
    bool counted_wait = false;
    detail::Fiber* const self = FiberScheduler::current_fiber();
    for (;;) {
      if (abort_->triggered()) throw AbortError();
      if (SubQueue* queue = find_match(source, tag); queue != nullptr) {
        return take_front(*queue);
      }
      if (sched_->deadlocked()) {
        throw DeadlockError("receive blocked with no runnable fiber: deadlock");
      }
      if (!counted_wait) {
        telemetry::count(telemetry::Counter::SimmpiMailboxWaits);
        counted_wait = true;
      }
      recv_waiters_.push_back(RecvWaiter{self, source, tag});
      sched_->park(lock);
      remove_recv_waiter(self);
    }
  }

  /// Wire sources are world ranks (>= 0) and wire tags are non-negative
  /// 31-bit values, so the pair packs into one index key.
  static std::uint64_t key_of(int source, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }
  static int key_source(std::uint64_t key) noexcept {
    return static_cast<int>(key >> 32);
  }
  static int key_tag(std::uint64_t key) noexcept {
    return static_cast<int>(key & 0xffffffffu);
  }

  /// The sub-queue whose front is the earliest-arrived matching envelope,
  /// or nullptr. Exact (source, tag) pairs are one hash lookup; wildcards
  /// scan the live sub-queue fronts for the smallest arrival stamp, which
  /// preserves the arrival-order semantics of the old linear scan.
  SubQueue* find_match(int source, int tag) {
    if (source != kAnySource && tag != kAnyTag) {
      const auto it = queues_.find(key_of(source, tag));
      return it == queues_.end() ? nullptr : &it->second;
    }
    SubQueue* best = nullptr;
    std::uint64_t best_stamp = 0;
    for (auto& [key, queue] : queues_) {
      const bool src_ok = source == kAnySource || key_source(key) == source;
      const bool tag_ok = tag == kAnyTag || key_tag(key) == tag;
      if (!src_ok || !tag_ok) continue;
      const std::uint64_t stamp = queue.front().stamp;
      if (best == nullptr || stamp < best_stamp) {
        best = &queue;
        best_stamp = stamp;
      }
    }
    return best;
  }

  AbortToken* abort_;
  std::chrono::milliseconds timeout_;
  FiberScheduler* sched_ = nullptr;  ///< set when the job runs on fibers
  std::vector<RecvWaiter> recv_waiters_;  ///< parked receivers (under mu_)
  std::mutex mu_;
  std::condition_variable cv_;
  /// (source, tag) -> FIFO of envelopes; empty sub-queues are erased.
  std::unordered_map<std::uint64_t, SubQueue> queues_;
  std::uint64_t next_stamp_ = 0;
  std::uint64_t arrivals_ = 0;  ///< pushes ever seen; progress signal
  std::size_t pending_ = 0;
  BufferPool pool_;
};

}  // namespace resilience::simmpi
