// Stackful fiber primitive for the simmpi scheduler: an owned, pooled
// mmap stack plus a ucontext execution context.
//
// A FiberContext is the mechanism only — allocate a stack, run an entry
// function on it, switch in from a worker thread and out from the fiber.
// All policy (run queues, park/wake states, deadlock detection) lives in
// scheduler.{hpp,cpp}.
//
// Stacks: each fiber owns a private mmap'd stack with a PROT_NONE guard
// page below it, so an overflow faults instead of silently corrupting a
// neighbour. Campaigns create and destroy thousands of fibers (one per
// rank per job), so mappings are recycled through a process-wide freelist
// keyed by size — steady-state jobs pay no mmap/munmap at all. Size comes
// from RESILIENCE_FIBER_STACK_KB (resolved by the scheduler).
//
// ThreadSanitizer: tsan models each fiber as a logical thread. Every
// context switch is announced via __tsan_switch_to_fiber immediately
// before the swapcontext, and fiber creation/destruction via
// __tsan_create_fiber/__tsan_destroy_fiber, so the tsan-labeled test
// suite runs unchanged on the fiber scheduler.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_THREAD__)
#define RESILIENCE_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RESILIENCE_TSAN_FIBERS 1
#endif
#endif

#include <ucontext.h>

namespace resilience::simmpi::detail {

/// Round a requested stack size up to whole pages, with a sane floor.
[[nodiscard]] std::size_t usable_stack_bytes(std::size_t requested);

/// One resumable execution context on an owned stack.
class FiberContext {
 public:
  using Entry = void (*)(void* arg);

  /// Acquires a stack (pooled) and prepares `entry(arg)` to run on it at
  /// the first switch_in(). `entry` must finish with a final switch_out()
  /// and never return.
  FiberContext(std::size_t stack_bytes, Entry entry, void* arg);
  ~FiberContext();

  FiberContext(const FiberContext&) = delete;
  FiberContext& operator=(const FiberContext&) = delete;

  /// Transfer the calling (worker) thread into the fiber; returns when
  /// the fiber next calls switch_out(). Not reentrant: a fiber must not
  /// switch into another fiber.
  void switch_in();

  /// Transfer from inside the fiber back to the worker that resumed it.
  /// Callable on any thread the fiber was resumed on (migration-safe).
  void switch_out();

  /// Drop every pooled idle stack mapping (tests / memory pressure).
  static void clear_stack_pool();

 private:
  static void trampoline(unsigned hi, unsigned lo);

  Entry entry_;
  void* arg_;
  void* mapping_ = nullptr;      ///< guard page + stack
  std::size_t mapping_bytes_ = 0;
  ucontext_t context_{};
#if defined(RESILIENCE_TSAN_FIBERS)
  void* tsan_fiber_ = nullptr;
#endif
};

}  // namespace resilience::simmpi::detail
