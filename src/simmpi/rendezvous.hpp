// Same-process rendezvous fast path for synchronizing collectives.
//
// The seed runtime decomposed barrier/reduce/allreduce/bcast into mailbox
// point-to-point messages: every hop allocated an envelope, copied the
// payload twice, and took the destination mailbox lock. But all ranks of
// a job live in one process, so the data never needs to travel — a
// publishing rank can expose its buffer and let the logical receivers
// read it in place (zero-copy), with a sense-reversing epoch per slot
// providing the synchronization.
//
// The *logical* collective algorithm is unchanged: data still flows along
// the same binomial tree, combines still happen on the same rank in the
// same order, TransportTraits::on_receive still fires on the receiving
// rank for exactly the payloads the p2p decomposition would have
// delivered, and transport statistics still count the logical message
// decomposition. Campaign results and golden profiles are therefore
// bit-identical to the mailbox path (enforced by tests; the mailbox path
// remains selectable via RESILIENCE_FAST_COLLECTIVES=0).
//
// Epochs: every collective operation consumes one SPMD sequence number
// per communicator (the same counter that salts collective wire tags), so
// all members agree on the epoch of each operation without coordination.
// A publisher stamps its slot with the operation's epoch; readers wait
// for the stamp, consume in place, then acknowledge; the publisher waits
// for all acknowledgements before its buffer may die. Monotonic epochs
// are the generalized sense-reversing flag: a slot is "full for epoch e"
// exactly while stamp == e, and stale stamps from earlier operations can
// never satisfy a later wait.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "simmpi/errors.hpp"
#include "simmpi/mailbox.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::simmpi::detail {

/// Rendezvous state of one communicator (world or split group); slots are
/// indexed by communicator-local rank.
class GroupRendezvous {
 public:
  GroupRendezvous(int size, const AbortToken* abort,
                  std::chrono::milliseconds timeout)
      : size_(size),
        abort_(abort),
        timeout_(timeout),
        slots_(static_cast<std::size_t>(size)) {}

  GroupRendezvous(const GroupRendezvous&) = delete;
  GroupRendezvous& operator=(const GroupRendezvous&) = delete;

  [[nodiscard]] int size() const noexcept { return size_; }

  /// Expose `rank`'s buffer for `readers` consumers under `epoch`. The
  /// buffer must stay alive until await_acks(rank) returns.
  void publish(int rank, const void* data, std::size_t len, int readers,
               std::uint64_t epoch) {
    telemetry::count(telemetry::Counter::SimmpiRendezvousEpochs);
    Slot& slot = slots_[static_cast<std::size_t>(rank)];
    {
      std::lock_guard lock(mu_);
      slot.data = static_cast<const std::byte*>(data);
      slot.len = len;
      slot.acks_remaining = readers;
      slot.epoch = epoch;
    }
    slot.cv.notify_all();
  }

  /// Wait for `publisher`'s buffer of `epoch`; read it in place, then
  /// call ack(). Throws AbortError / DeadlockError like a blocked receive.
  [[nodiscard]] std::span<const std::byte> await_publish(int publisher,
                                                         std::uint64_t epoch) {
    std::unique_lock lock(mu_);
    Slot& slot = slots_[static_cast<std::size_t>(publisher)];
    wait_or_die(lock, slot.cv, [&] { return slot.epoch >= epoch; });
    return {slot.data, slot.len};
  }

  /// Release `publisher`'s buffer after reading it.
  void ack(int publisher) {
    Slot& slot = slots_[static_cast<std::size_t>(publisher)];
    bool done = false;
    {
      std::lock_guard lock(mu_);
      done = --slot.acks_remaining == 0;
    }
    if (done) slot.cv.notify_all();
  }

  /// Block until every reader of `rank`'s current publication acked.
  void await_acks(int rank) {
    std::unique_lock lock(mu_);
    Slot& slot = slots_[static_cast<std::size_t>(rank)];
    wait_or_die(lock, slot.cv, [&] { return slot.acks_remaining == 0; });
  }

  /// Sense-reversing barrier across all members (central counter; the
  /// phase counter is the generalized sense flag).
  void barrier() {
    std::unique_lock lock(mu_);
    if (abort_->triggered()) throw AbortError();
    const std::uint64_t phase = barrier_phase_;
    if (++barrier_arrived_ == size_) {
      barrier_arrived_ = 0;
      ++barrier_phase_;
      lock.unlock();
      barrier_cv_.notify_all();
      telemetry::count(telemetry::Counter::SimmpiRendezvousEpochs);
      return;
    }
    wait_or_die(lock, barrier_cv_, [&] { return barrier_phase_ != phase; });
  }

  /// Wake every parked member so it can observe an abort.
  void interrupt() {
    for (Slot& slot : slots_) slot.cv.notify_all();
    barrier_cv_.notify_all();
  }

 private:
  // Each slot carries its own condition variable so a publish or ack
  // wakes only the ranks actually waiting on that slot. A single shared
  // condvar would turn every tree edge into a group-wide thundering herd:
  // O(size) spurious wakeups per event, O(size^2) per collective, which
  // dominates wall time once ranks outnumber cores.
  struct Slot {
    const std::byte* data = nullptr;
    std::size_t len = 0;
    std::uint64_t epoch = 0;  ///< 0 = never published (epochs start at 1)
    int acks_remaining = 0;
    std::condition_variable cv;
  };

  /// Wait on `cv` for `pred` with the same priority order as
  /// Mailbox::pop_matching: abort beats a satisfied predicate, timeout
  /// means deadlock.
  template <typename Pred>
  void wait_or_die(std::unique_lock<std::mutex>& lock,
                   std::condition_variable& cv, Pred pred) {
    const auto deadline = std::chrono::steady_clock::now() + timeout_;
    for (;;) {
      if (abort_->triggered()) throw AbortError();
      if (pred()) return;
      if (cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (abort_->triggered()) throw AbortError();
        if (pred()) return;
        throw DeadlockError(
            "collective rendezvous timed out: likely deadlock or hang");
      }
    }
  }

  const int size_;
  const AbortToken* abort_;
  const std::chrono::milliseconds timeout_;
  std::mutex mu_;
  std::vector<Slot> slots_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_phase_ = 0;
};

/// Lazily-created rendezvous groups of one job, keyed by communicator
/// salt (0 = world; split() assigns every sub-communicator a distinct
/// salt, so the key identifies the member set exactly).
class CollectiveHub {
 public:
  GroupRendezvous& get(int salt, int size, const AbortToken* abort,
                       std::chrono::milliseconds timeout) {
    std::lock_guard lock(mu_);
    auto& group = groups_[salt];
    if (group == nullptr) {
      group = std::make_unique<GroupRendezvous>(size, abort, timeout);
    }
    return *group;
  }

  /// Wake every parked member of every group (abort teardown).
  void interrupt_all() {
    std::lock_guard lock(mu_);
    for (auto& [salt, group] : groups_) group->interrupt();
  }

 private:
  std::mutex mu_;
  std::unordered_map<int, std::unique_ptr<GroupRendezvous>> groups_;
};

/// Whether collectives use the rendezvous fast path (default) or the
/// mailbox p2p decomposition. Overridable for differential testing; the
/// RESILIENCE_FAST_COLLECTIVES env var ("0" disables) sets the default.
[[nodiscard]] bool fast_collectives_enabled() noexcept;
/// Force the fast path on/off for this process (tests and benches).
void set_fast_collectives_enabled(bool enabled) noexcept;

}  // namespace resilience::simmpi::detail
