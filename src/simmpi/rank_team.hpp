// Persistent rank teams: parked OS threads reused across simmpi jobs.
//
// A fault-injection campaign is thousands of short jobs at one width, and
// the seed runtime paid nranks thread spawns + joins for every one of
// them. A RankTeam keeps `width` threads parked on a condition variable
// between jobs and re-dispatches them with one epoch bump, so a campaign
// of N trials costs O(distinct widths) thread creations instead of
// O(N * nranks). The RankTeamPool checks teams out keyed by width: the
// campaign executor can run several trials of one deployment concurrently
// and each checkout gets its own team, returned to the pool when the
// trial ends.
//
// Determinism: a team only decides *where* rank bodies run, never what
// they compute. Per-rank state (the fault injector's thread-local
// context) is installed by Runtime's on_rank_start hook at the start of
// every job and cleared by on_rank_exit, so thread reuse across jobs is
// invisible to the ranks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace resilience::simmpi {

/// A fixed-width set of parked threads that can run one job at a time.
class RankTeam {
 public:
  /// Spawns `width` threads; they park until the first run().
  explicit RankTeam(int width);
  /// Wakes and joins every thread. The team must be idle.
  ~RankTeam();

  RankTeam(const RankTeam&) = delete;
  RankTeam& operator=(const RankTeam&) = delete;

  [[nodiscard]] int width() const noexcept { return width_; }

  /// Run `fn(rank)` for every rank in [0, width) on the team's threads
  /// and block until all of them returned. `fn` must not throw (the
  /// runtime's rank wrapper catches everything); an escaping exception
  /// terminates, exactly as it would on a freshly spawned thread.
  template <typename Fn>
  void run(Fn&& fn) {
    using Body = std::remove_reference_t<Fn>;
    dispatch(
        [](void* ctx, int rank) { (*static_cast<Body*>(ctx))(rank); },
        &fn);
  }

 private:
  using JobFn = void (*)(void* ctx, int rank);

  void dispatch(JobFn job, void* ctx);
  void thread_main(int rank);

  const int width_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< threads park here between jobs
  std::condition_variable done_cv_;  ///< dispatch() parks here until done
  JobFn job_ = nullptr;
  void* job_ctx_ = nullptr;
  std::uint64_t epoch_ = 0;  ///< bumped once per dispatched job
  int remaining_ = 0;        ///< ranks still running the current job
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Process-wide cache of idle RankTeams keyed by width.
class RankTeamPool {
 public:
  /// Moves a checked-out team back into the pool on destruction.
  class Lease {
   public:
    Lease(RankTeamPool* pool, std::unique_ptr<RankTeam> team)
        : pool_(pool), team_(std::move(team)) {}
    ~Lease() {
      if (team_ != nullptr) pool_->release(std::move(team_));
    }
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] RankTeam& team() noexcept { return *team_; }

   private:
    RankTeamPool* pool_;
    std::unique_ptr<RankTeam> team_;
  };

  static RankTeamPool& instance();

  /// Check out an idle team of `width`, creating one on a pool miss.
  [[nodiscard]] Lease acquire(int width);

  /// Ensure at least `teams` idle teams of `width` exist (campaign
  /// warm-up: pays the thread spawns before the timed trial loop).
  void prewarm(int width, int teams);

  /// Join and drop every idle team (tests; checked-out teams are
  /// unaffected and return to an empty pool).
  void clear();

  // Reuse telemetry.
  [[nodiscard]] std::uint64_t teams_created() const noexcept;
  [[nodiscard]] std::uint64_t checkouts() const noexcept;
  [[nodiscard]] std::size_t idle_teams();

  /// Whether Runtime::run uses pooled teams (default) or spawn-and-join.
  /// The RESILIENCE_TEAM_POOL env var ("0" disables) sets the default;
  /// tests and benches may force it per process.
  [[nodiscard]] static bool enabled() noexcept;
  static void set_enabled(bool enabled) noexcept;

 private:
  void release(std::unique_ptr<RankTeam> team);

  /// Idle teams kept per width; beyond this a returned team just joins.
  static constexpr std::size_t kMaxIdlePerWidth = 32;

  std::mutex mu_;
  std::unordered_map<int, std::vector<std::unique_ptr<RankTeam>>> idle_;
  std::atomic<std::uint64_t> teams_created_{0};
  std::atomic<std::uint64_t> checkouts_{0};
};

}  // namespace resilience::simmpi
