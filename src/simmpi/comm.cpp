#include "simmpi/comm.hpp"

namespace resilience::simmpi {

namespace detail {
namespace {

// true = fuse fiber-mode collectives (default), false = forced onto the
// mailbox decomposition. Programmatic test/bench toggle only.
std::atomic<bool> g_fused_collectives{true};

}  // namespace

bool fused_collectives_enabled() noexcept {
  return g_fused_collectives.load(std::memory_order_relaxed);
}

void set_fused_collectives_enabled(bool enabled) noexcept {
  g_fused_collectives.store(enabled, std::memory_order_relaxed);
}

}  // namespace detail

void Comm::barrier() {
  if (fused_active()) {
    // Fused barrier: the last arriving fiber releases everyone. The tag
    // sequence still advances and the stats still record the logical
    // notify/release decomposition, so the two paths are
    // indistinguishable to campaign results.
    if (job_->abort.triggered()) throw AbortError();
    const std::uint64_t epoch = next_collective_epoch(6);
    detail::FusedGroup& group = fused_group();
    const int logical_sends = rank_ == 0 ? size_ - 1 : 1;
    for (int i = 0; i < logical_sends; ++i) record_logical_send(1);
    detail::Arrival arrival;
    arrival.fiber = FiberScheduler::current_fiber();
    std::unique_lock lock(group.mutex());
    switch (group.arrive(rank_, epoch, arrival, size_)) {
      case detail::FusedGroup::ArriveOutcome::EpochMismatch:
        throw UsageError("collective: SPMD sequence mismatch");
      case detail::FusedGroup::ArriveOutcome::Combiner:
        group.complete(epoch, *job_->scheduler);
        return;
      case detail::FusedGroup::ArriveOutcome::Waiter:
        await_fused(group, lock, epoch);
        return;
    }
  }
  // Linear notify/release through rank 0. Two message waves; abort-safe
  // because it reuses the ordinary mailbox machinery.
  const int tag = next_collective_tag(6);
  const std::byte token{0};
  if (rank_ == 0) {
    std::byte sink{};
    for (int r = 1; r < size_; ++r) {
      recv_internal(r, tag, std::span<std::byte>(&sink, 1));
    }
    for (int r = 1; r < size_; ++r) {
      send_internal(r, tag, std::span<const std::byte>(&token, 1));
    }
  } else {
    send_internal(0, tag, std::span<const std::byte>(&token, 1));
    std::byte sink{};
    recv_internal(0, tag, std::span<std::byte>(&sink, 1));
  }
}

namespace {
struct SplitEntry {
  int color = 0;
  int key = 0;
  int rank = 0;
};
static_assert(std::is_trivially_copyable_v<SplitEntry>);
}  // namespace

Comm Comm::split(int color, int key) {
  if (salt_ != 0) {
    throw UsageError("split: only the world communicator can be split");
  }
  constexpr int kMaxSplits = 16;
  constexpr int kMaxColors = 15;
  if (split_seq_ >= kMaxSplits) {
    throw UsageError("split: too many split calls on this communicator");
  }

  // Everyone learns everyone's (color, key).
  std::vector<SplitEntry> entries(static_cast<std::size_t>(size_));
  const SplitEntry mine{color, key, rank_};
  allgather(std::span<const SplitEntry>(&mine, 1),
            std::span<SplitEntry>(entries));

  // Distinct colors in sorted order determine each child's tag salt
  // deterministically and identically on every member.
  std::vector<int> colors;
  colors.reserve(entries.size());
  for (const auto& e : entries) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  if (static_cast<int>(colors.size()) > kMaxColors) {
    throw UsageError("split: more than 15 distinct colors");
  }
  const int color_index = static_cast<int>(
      std::find(colors.begin(), colors.end(), color) - colors.begin());
  const int salt = split_seq_ * kMaxColors + color_index + 1;
  ++split_seq_;

  // My group: members with my color, ordered by (key, rank).
  std::vector<SplitEntry> members;
  for (const auto& e : entries) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(),
            [](const SplitEntry& a, const SplitEntry& b) {
              return a.key != b.key ? a.key < b.key : a.rank < b.rank;
            });
  std::vector<int> group;
  group.reserve(members.size());
  int my_local = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(members[i].rank);  // world communicator: rank == world
    if (members[i].rank == rank_) my_local = static_cast<int>(i);
  }
  const int group_size = static_cast<int>(group.size());
  return Comm(job_, my_local, group_size, salt, std::move(group));
}

}  // namespace resilience::simmpi
