// The per-rank communicator handle: typed point-to-point messaging and
// deterministic collectives over the mailbox transport.
//
// Semantics follow MPI where it matters for resilience modeling:
//  - sends are buffered and non-blocking (MPI_Send on eager-size messages);
//  - receives block with (source, tag) matching and non-overtaking order;
//  - collectives are SPMD: every rank of a communicator must call the same
//    sequence of collectives (the paper's application model, Section 2,
//    assumes all MPI processes run the same computation);
//  - reductions combine contributions in a fixed tree order so that
//    floating-point results — and corruption propagation — are
//    deterministic run-to-run, which the fault injector's profiling
//    pre-pass relies on;
//  - split() carves sub-communicators out of the world communicator; each
//    gets its own tag space (an 8-bit salt folded into every wire tag), so
//    traffic in different communicators can never cross-match.
//
// Wire tag layout (31 usable bits of a non-negative int):
//   [bit 30]     internal (collective) flag
//   [bits 22-29] communicator salt (0 = world)
//   [bits 0-21]  user tag, or collective sequence * 8 + operation slot
#pragma once

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "simmpi/collective.hpp"
#include "simmpi/errors.hpp"
#include "simmpi/mailbox.hpp"
#include "simmpi/request.hpp"
#include "simmpi/scheduler.hpp"
#include "simmpi/transport_traits.hpp"

namespace resilience::simmpi {

namespace detail {

/// Shared state of one running job; owned by Runtime::run.
struct JobState {
  explicit JobState(int nranks, std::chrono::milliseconds deadlock_timeout)
      : timeout(deadlock_timeout) {
    mailboxes.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      mailboxes.push_back(std::make_unique<Mailbox>(&abort, timeout));
    }
  }

  /// Wire the job to a fiber scheduler (fibers mode): blocking receives
  /// park their fiber, and collectives take the fused path.
  void attach_scheduler(FiberScheduler* sched) {
    scheduler = sched;
    for (auto& box : mailboxes) box->set_scheduler(sched);
  }

  void trigger_abort() {
    abort.trigger();
    if (scheduler != nullptr) scheduler->wake_all_parked();
    for (auto& box : mailboxes) box->interrupt();
  }

  /// Aggregate envelope-pool statistics across every rank's mailbox.
  [[nodiscard]] BufferPool::Stats pool_stats() const {
    BufferPool::Stats total;
    for (const auto& box : mailboxes) {
      const BufferPool::Stats s = box->pool_stats();
      total.allocs += s.allocs;
      total.reuses += s.reuses;
    }
    return total;
  }

  AbortToken abort;
  std::chrono::milliseconds timeout;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  /// Fiber scheduler driving this job's ranks; null in threads mode.
  FiberScheduler* scheduler = nullptr;
  /// Fused-collective meeting points, keyed by communicator salt.
  FusedHub fused;
  /// Transport statistics for the whole job (all communicators).
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> bytes_sent{0};
};

/// Whether fiber-mode collectives fuse at the group meeting point (the
/// default) or decompose into mailbox messages like threads mode. A
/// programmatic test/bench toggle only — there is no environment knob,
/// because the fused path is semantically identical and strictly faster.
[[nodiscard]] bool fused_collectives_enabled() noexcept;
void set_fused_collectives_enabled(bool enabled) noexcept;

inline constexpr int kUserTagBits = 22;
inline constexpr int kSaltBits = 8;
inline constexpr int kInternalFlag = 1 << 30;
inline constexpr int kCollectiveSlots = 8;

constexpr int wire_user_tag(int salt, int tag) noexcept {
  return (salt << kUserTagBits) | tag;
}
constexpr int wire_internal_tag(int salt, int seq, int slot) noexcept {
  return kInternalFlag | (salt << kUserTagBits) |
         (seq * kCollectiveSlots + slot);
}

}  // namespace detail

/// Largest user-visible message tag.
inline constexpr int kMaxUserTag = (1 << detail::kUserTagBits) - 1;

template <typename T>
concept Transportable = std::is_trivially_copyable_v<T>;

/// Binary reduction operators for reduce/allreduce/scan.
/// Any callable T(const T&, const T&) works; these cover the common cases.
struct Sum {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};
struct Prod {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a * b;
  }
};
struct Min {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};
struct Max {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

class Comm {
 public:
  /// World communicator handle (constructed by Runtime).
  Comm(detail::JobState* job, int rank, int size)
      : job_(job), rank_(rank), size_(size) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }
  /// This rank's identity in the world communicator.
  [[nodiscard]] int world_rank() const noexcept { return translate(rank_); }

  // ---- point to point -----------------------------------------------------

  /// Buffered send: copies `values` and returns immediately.
  template <Transportable T>
  void send(int dest, int tag, std::span<const T> values) {
    check_peer(dest, "send");
    check_tag(tag);
    post(dest, detail::wire_user_tag(salt_, tag), values);
  }

  template <Transportable T>
  void send_value(int dest, int tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }

  /// Blocking receive into a caller-sized buffer. The matched message must
  /// contain exactly `out.size()` elements of T.
  /// `source` may be kAnySource and `tag` may be kAnyTag.
  /// Returns the actual source rank (in this communicator).
  template <Transportable T>
  int recv(int source, int tag, std::span<T> out) {
    Envelope env = my_mailbox().pop_matching(wire_source(source, "recv"),
                                             wire_recv_tag(tag));
    if (env.bytes.size() != out.size_bytes()) {
      throw UsageError("recv: message size " + std::to_string(env.bytes.size()) +
                       " bytes does not match buffer " +
                       std::to_string(out.size_bytes()) + " bytes");
    }
    if (!out.empty()) std::memcpy(out.data(), env.bytes.data(), out.size_bytes());
    const int source_rank = local_rank_of(env.source);
    my_mailbox().recycle(std::move(env));
    TransportTraits<T>::on_receive(std::span<T>(out.data(), out.size()));
    return source_rank;
  }

  template <Transportable T>
  T recv_value(int source, int tag) {
    T value{};
    recv(source, tag, std::span<T>(&value, 1));
    return value;
  }

  /// Combined send+receive (deadlock-free because sends are buffered).
  template <Transportable T>
  void sendrecv(int dest, int send_tag, std::span<const T> send_buf,
                int source, int recv_tag, std::span<T> recv_buf) {
    send(dest, send_tag, send_buf);
    recv(source, recv_tag, recv_buf);
  }

  /// True if a matching message is already queued (MPI_Iprobe).
  [[nodiscard]] bool probe(int source, int tag) {
    if (my_mailbox().probe(wire_source(source, "probe"),
                           wire_recv_tag(tag))) {
      return true;
    }
    // Probe loops would starve the sender under the cooperative core;
    // let the peers run before reporting no.
    FiberScheduler::yield_current();
    return false;
  }

  // ---- nonblocking ----------------------------------------------------------

  /// Nonblocking send. Sends are buffered, so the returned request is
  /// already complete; it exists for symmetric wait_all code.
  template <Transportable T>
  Request isend(int dest, int tag, std::span<const T> values) {
    send(dest, tag, values);
    return Request{};
  }

  /// Nonblocking receive: matching is deferred to wait()/test() on the
  /// returned request. The buffer must stay alive until completion.
  template <Transportable T>
  Request irecv(int source, int tag, std::span<T> out) {
    const int wire_src = wire_source(source, "irecv");
    return Request(&my_mailbox(), wire_src, wire_recv_tag(tag),
                   std::as_writable_bytes(out),
                   [](std::span<std::byte> bytes) {
                     TransportTraits<T>::on_receive(std::span<T>(
                         reinterpret_cast<T*>(bytes.data()),
                         bytes.size() / sizeof(T)));
                   });
  }

  /// Complete every request in the span (MPI_Waitall).
  static void wait_all(std::span<Request> requests) {
    for (auto& request : requests) request.wait();
  }

  // ---- collectives ----------------------------------------------------------

  /// Synchronize all ranks (linear gather to rank 0 + release fan-out).
  void barrier();

  /// Broadcast `buf` from `root` to all ranks over a binomial tree.
  /// Under the fiber scheduler the broadcast executes as one fused
  /// combine (the last arriving fiber copies the root's buffer to every
  /// participant); otherwise every tree edge is a mailbox message. Both
  /// paths deliver the same bytes with the same per-rank receive
  /// instrumentation and the same logical transport stats.
  template <Transportable T>
  void bcast(std::span<T> buf, int root) {
    check_peer(root, "bcast");
    if (fused_active()) {
      bcast_fused(buf, root);
      return;
    }
    const int tag = next_collective_tag(0);
    // Renumber so the root is virtual rank 0, then walk the binomial tree.
    const int vrank = (rank_ - root + size_) % size_;
    // Receive from parent (unless root).
    if (vrank != 0) {
      const int parent = ((vrank - 1) / 2 + root) % size_;
      recv_internal(parent, tag, buf);
    }
    // Forward to children.
    for (int child_v : {2 * vrank + 1, 2 * vrank + 2}) {
      if (child_v < size_) {
        send_internal((child_v + root) % size_, tag, std::span<const T>(buf));
      }
    }
  }

  template <Transportable T>
  T bcast_value(T value, int root) {
    bcast(std::span<T>(&value, 1), root);
    return value;
  }

  /// Element-wise reduction of `in` into `out` on `root`.
  /// Contributions are combined bottom-up over a fixed binary tree, so the
  /// combine order is identical for every run at a given job size.
  template <Transportable T, typename Op = Sum>
  void reduce(std::span<const T> in, std::span<T> out, int root, Op op = {}) {
    check_peer(root, "reduce");
    if (in.size() != out.size() && rank_ == root) {
      throw UsageError("reduce: in/out size mismatch on root");
    }
    if (fused_active()) {
      reduce_fused(in, out, root, op);
      return;
    }
    const int tag = next_collective_tag(1);
    const int vrank = (rank_ - root + size_) % size_;
    std::vector<T> acc(in.begin(), in.end());
    // Gather children's partial results (left child first: fixed order).
    for (int child_v : {2 * vrank + 1, 2 * vrank + 2}) {
      if (child_v < size_) {
        std::vector<T> child(in.size());
        recv_internal((child_v + root) % size_, tag, std::span<T>(child));
        // Combine as library code: not application computation.
        [[maybe_unused]] typename TransportTraits<T>::LibraryGuard guard{};
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] = op(acc[i], child[i]);
        }
      }
    }
    if (vrank == 0) {
      std::copy(acc.begin(), acc.end(), out.begin());
    } else {
      const int parent = ((vrank - 1) / 2 + root) % size_;
      send_internal(parent, tag, std::span<const T>(acc));
    }
  }

  /// Reduce-to-all: tree reduce onto rank 0 followed by a broadcast, so
  /// every rank observes the same bit pattern (and corruption) in the
  /// result.
  template <Transportable T, typename Op = Sum>
  void allreduce(std::span<const T> in, std::span<T> out, Op op = {}) {
    if (in.size() != out.size()) {
      throw UsageError("allreduce: in/out size mismatch");
    }
    reduce(in, out, /*root=*/0, op);
    bcast(out, /*root=*/0);
  }

  template <Transportable T, typename Op = Sum>
  T allreduce_value(const T& value, Op op = {}) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Gather equal-size blocks onto `root`; out must hold size()*in.size()
  /// elements on the root and may be empty elsewhere.
  template <Transportable T>
  void gather(std::span<const T> in, std::span<T> out, int root) {
    check_peer(root, "gather");
    const int tag = next_collective_tag(2);
    if (rank_ == root) {
      if (out.size() != in.size() * static_cast<std::size_t>(size_)) {
        throw UsageError("gather: out must be size()*block elements on root");
      }
      for (int r = 0; r < size_; ++r) {
        auto slot = out.subspan(static_cast<std::size_t>(r) * in.size(),
                                in.size());
        if (r == rank_) {
          std::copy(in.begin(), in.end(), slot.begin());
        } else {
          recv_internal(r, tag, slot);
        }
      }
    } else {
      send_internal(root, tag, in);
    }
  }

  /// Gather-to-all: gather on rank 0 + broadcast.
  template <Transportable T>
  void allgather(std::span<const T> in, std::span<T> out) {
    if (out.size() != in.size() * static_cast<std::size_t>(size_)) {
      throw UsageError("allgather: out must be size()*block elements");
    }
    gather(in, out, /*root=*/0);
    bcast(out, /*root=*/0);
  }

  /// Variable-count gather (MPI_Gatherv): rank r contributes counts[r]
  /// elements; `counts` must be identical on every rank (exchange sizes
  /// with an allgather first if they are not known). `out` must hold
  /// sum(counts) elements on the root.
  template <Transportable T>
  void gatherv(std::span<const T> in, std::span<T> out,
               std::span<const std::size_t> counts, int root) {
    check_peer(root, "gatherv");
    check_counts(counts, in.size(), "gatherv");
    const int tag = next_collective_tag(2);
    if (rank_ == root) {
      std::size_t offset = 0;
      for (int r = 0; r < size_; ++r) {
        auto slot = out.subspan(offset, counts[static_cast<std::size_t>(r)]);
        if (r == rank_) {
          std::copy(in.begin(), in.end(), slot.begin());
        } else {
          recv_internal(r, tag, slot);
        }
        offset += counts[static_cast<std::size_t>(r)];
      }
      if (offset != out.size()) {
        throw UsageError("gatherv: out must hold sum(counts) elements");
      }
    } else {
      send_internal(root, tag, in);
    }
  }

  /// Variable-count gather-to-all (MPI_Allgatherv).
  template <Transportable T>
  void allgatherv(std::span<const T> in, std::span<T> out,
                  std::span<const std::size_t> counts) {
    gatherv(in, out, counts, /*root=*/0);
    bcast(out, /*root=*/0);
  }

  /// Scatter equal-size blocks from `root`; in must hold size()*out.size()
  /// elements on the root and may be empty elsewhere.
  template <Transportable T>
  void scatter(std::span<const T> in, std::span<T> out, int root) {
    check_peer(root, "scatter");
    const int tag = next_collective_tag(3);
    if (rank_ == root) {
      if (in.size() != out.size() * static_cast<std::size_t>(size_)) {
        throw UsageError("scatter: in must be size()*block elements on root");
      }
      for (int r = 0; r < size_; ++r) {
        auto block = in.subspan(static_cast<std::size_t>(r) * out.size(),
                                out.size());
        if (r == rank_) {
          std::copy(block.begin(), block.end(), out.begin());
        } else {
          send_internal(r, tag, block);
        }
      }
    } else {
      recv_internal(root, tag, out);
    }
  }

  /// Personalized all-to-all exchange of equal-size blocks: block j of `in`
  /// goes to rank j; block i of `out` comes from rank i. This is the
  /// communication pattern of FT's distributed transpose.
  template <Transportable T>
  void alltoall(std::span<const T> in, std::span<T> out) {
    const auto p = static_cast<std::size_t>(size_);
    if (in.size() != out.size() || in.size() % p != 0) {
      throw UsageError("alltoall: buffers must be size()*block elements");
    }
    const std::size_t block = in.size() / p;
    const int tag = next_collective_tag(4);
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) continue;
      send_internal(r, tag,
                    in.subspan(static_cast<std::size_t>(r) * block, block));
    }
    auto self_in = in.subspan(static_cast<std::size_t>(rank_) * block, block);
    auto self_out = out.subspan(static_cast<std::size_t>(rank_) * block, block);
    std::copy(self_in.begin(), self_in.end(), self_out.begin());
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) continue;
      recv_internal(r, tag,
                    out.subspan(static_cast<std::size_t>(r) * block, block));
    }
  }

  /// Variable-count personalized exchange (MPI_Alltoallv). `in` holds my
  /// blocks back to back in rank order with sizes `send_counts`; `out`
  /// receives blocks in rank order with sizes `recv_counts`.
  template <Transportable T>
  void alltoallv(std::span<const T> in,
                 std::span<const std::size_t> send_counts, std::span<T> out,
                 std::span<const std::size_t> recv_counts) {
    check_counts(send_counts, SIZE_MAX, "alltoallv");
    check_counts(recv_counts, SIZE_MAX, "alltoallv");
    const int tag = next_collective_tag(4);
    std::size_t send_offset = 0;
    std::span<const T> self_block;
    for (int r = 0; r < size_; ++r) {
      const auto count = send_counts[static_cast<std::size_t>(r)];
      auto block = in.subspan(send_offset, count);
      if (r == rank_) {
        self_block = block;
      } else if (count > 0) {
        send_internal(r, tag, block);
      }
      send_offset += count;
    }
    std::size_t recv_offset = 0;
    for (int r = 0; r < size_; ++r) {
      const auto count = recv_counts[static_cast<std::size_t>(r)];
      auto slot = out.subspan(recv_offset, count);
      if (r == rank_) {
        if (self_block.size() != count) {
          throw UsageError("alltoallv: self block size mismatch");
        }
        std::copy(self_block.begin(), self_block.end(), slot.begin());
      } else if (count > 0) {
        recv_internal(r, tag, slot);
      }
      recv_offset += count;
    }
  }

  /// Reduce size()*block elements element-wise, then scatter one block to
  /// each rank (MPI_Reduce_scatter_block). `in` holds size()*out.size()
  /// elements; rank r receives block r of the reduction.
  template <Transportable T, typename Op = Sum>
  void reduce_scatter(std::span<const T> in, std::span<T> out, Op op = {}) {
    if (in.size() != out.size() * static_cast<std::size_t>(size_)) {
      throw UsageError("reduce_scatter: in must be size()*block elements");
    }
    std::vector<T> reduced(rank_ == 0 ? in.size() : 0);
    reduce(in, std::span<T>(reduced), /*root=*/0, op);
    scatter(std::span<const T>(reduced), out, /*root=*/0);
  }

  /// Inclusive prefix reduction: rank r receives op(in_0, ..., in_r).
  /// Linear chain — deterministic and sufficient for our job sizes.
  template <Transportable T, typename Op = Sum>
  void scan(std::span<const T> in, std::span<T> out, Op op = {}) {
    if (in.size() != out.size()) throw UsageError("scan: size mismatch");
    const int tag = next_collective_tag(5);
    std::vector<T> acc(in.begin(), in.end());
    if (rank_ > 0) {
      std::vector<T> prev(in.size());
      recv_internal(rank_ - 1, tag, std::span<T>(prev));
      // Combine as library code: not application computation.
      [[maybe_unused]] typename TransportTraits<T>::LibraryGuard guard{};
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = op(prev[i], acc[i]);
    }
    if (rank_ + 1 < size_) send_internal(rank_ + 1, tag, std::span<const T>(acc));
    std::copy(acc.begin(), acc.end(), out.begin());
  }

  // ---- communicator management ----------------------------------------------

  /// Partition this communicator by `color` (MPI_Comm_split): ranks with
  /// equal color form a new communicator ordered by (key, rank). Only the
  /// world communicator can be split (one nesting level), and at most 16
  /// split calls of up to 15 colors each are supported — enough for
  /// row/column sub-grids at every scale this framework runs.
  /// Collective over this communicator.
  Comm split(int color, int key);

 private:
  friend class Runtime;

  /// Sub-communicator constructor (used by split).
  Comm(detail::JobState* job, int rank, int size, int salt,
       std::vector<int> group)
      : job_(job),
        rank_(rank),
        size_(size),
        salt_(salt),
        group_(std::move(group)) {}

  /// Internal send/recv used by collectives: identical to the public pair
  /// but permitted to use the reserved collective tag space.
  template <Transportable T>
  void send_internal(int dest, int wire_tag, std::span<const T> values) {
    check_peer(dest, "send");
    post(dest, wire_tag, values);
  }

  template <Transportable T>
  void recv_internal(int source, int wire_tag, std::span<T> out) {
    check_peer(source, "recv");
    Envelope env = my_mailbox().pop_matching(translate(source), wire_tag);
    if (env.bytes.size() != out.size_bytes()) {
      throw UsageError("collective: message size mismatch");
    }
    if (!out.empty()) {
      std::memcpy(out.data(), env.bytes.data(), out.size_bytes());
    }
    my_mailbox().recycle(std::move(env));
    TransportTraits<T>::on_receive(std::span<T>(out.data(), out.size()));
  }

  // ---- fused collectives ----------------------------------------------------
  //
  // The fused implementations below mirror the mailbox tree walks exactly
  // — same virtual-rank numbering, same child order, same combine order
  // under the same LibraryGuard, same on_receive payloads attributed to
  // the same logical rank — but execute the whole tree as one combine on
  // the last arriving fiber instead of 2(N-1) parked message hops.
  // Transport stats record the *logical* tree messages (each rank records
  // its own sends before arriving) so either path reports identical
  // counts. See collective.hpp for the arrival/epoch protocol and the
  // pointer-safety argument.

  /// True when collectives should fuse: this job runs on the fiber
  /// scheduler, the caller is a fiber, and the test toggle is on.
  [[nodiscard]] bool fused_active() const noexcept {
    return size_ > 1 && job_->scheduler != nullptr &&
           FiberScheduler::in_fiber() && detail::fused_collectives_enabled();
  }

  /// This communicator's fused meeting point (created on first use).
  [[nodiscard]] detail::FusedGroup& fused_group() {
    if (fg_ == nullptr) {
      fg_ = &job_->fused.group(static_cast<std::uint32_t>(salt_));
    }
    return *fg_;
  }

  /// Count one logical tree message that the fused path did not
  /// physically enqueue, keeping messages_sent/bytes_sent path-independent.
  void record_logical_send(std::size_t bytes) noexcept {
    job_->messages_sent.fetch_add(1, std::memory_order_relaxed);
    job_->bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// The epoch of the collective op about to run. Consumes the same SPMD
  /// sequence number that the mailbox path folds into its wire tags, so
  /// mixed fused/mailbox collective sequences stay aligned and every op
  /// gets a unique, monotonically increasing epoch per communicator.
  std::uint64_t next_collective_epoch(int slot) noexcept {
    const auto epoch = static_cast<std::uint64_t>(collective_seq_) + 1;
    next_collective_tag(slot);
    return epoch;
  }

  /// Park until the fused group's combiner publishes `epoch`. Requires
  /// `lock` on the group mutex. An arrived rank must park *before*
  /// checking abort or deadlock and stay parked until woken: its Arrival
  /// slot and the group's arrival count are combiner inputs, so bailing
  /// out between arrive() and park would hand a racing combiner a stale
  /// slot and an unparked fiber to borrow. The group-tagged park exempts
  /// this fiber from abort wakeups while a combiner may be mid-combine
  /// (see FiberScheduler::wake_all_parked and BorrowFiberTls); when no
  /// combiner ever comes, the scheduler's no-runnable sweep — which
  /// cannot coincide with a combine — delivers the wake, and abort and
  /// deadlock are observed here after resuming.
  void await_fused(detail::FusedGroup& group,
                   std::unique_lock<std::mutex>& lock, std::uint64_t epoch) {
    detail::Fiber* const self = FiberScheduler::current_fiber();
    group.waiters().add(self);
    while (group.done_epoch() < epoch) {
      job_->scheduler->park_on_group(lock, &group);
      if (group.done_epoch() >= epoch) break;
      if (job_->abort.triggered()) {
        group.waiters().remove(self);
        throw AbortError();
      }
      if (job_->scheduler->deadlocked()) {
        group.waiters().remove(self);
        throw DeadlockError(
            "collective blocked with no runnable fiber: deadlock");
      }
    }
    group.waiters().remove(self);
  }

  template <Transportable T>
  void bcast_fused(std::span<T> buf, int root) {
    if (job_->abort.triggered()) throw AbortError();
    const std::uint64_t epoch = next_collective_epoch(0);
    detail::FusedGroup& group = fused_group();
    const int vrank = (rank_ - root + size_) % size_;
    // Record this rank's own logical tree sends (edges to its children),
    // exactly as the mailbox walk would have.
    for (int child_v : {2 * vrank + 1, 2 * vrank + 2}) {
      if (child_v < size_) record_logical_send(buf.size_bytes());
    }
    detail::Arrival arrival;
    arrival.data = reinterpret_cast<std::byte*>(buf.data());
    arrival.out = arrival.data;
    arrival.len = buf.size_bytes();
    arrival.fiber = FiberScheduler::current_fiber();
    std::unique_lock lock(group.mutex());
    switch (group.arrive(vrank, epoch, arrival, size_)) {
      case detail::FusedGroup::ArriveOutcome::EpochMismatch:
        throw UsageError("collective: SPMD sequence mismatch");
      case detail::FusedGroup::ArriveOutcome::Combiner:
        combine_bcast_subtree<T>(group, 0);
        group.complete(epoch, *job_->scheduler);
        return;
      case detail::FusedGroup::ArriveOutcome::Waiter:
        await_fused(group, lock, epoch);
        return;  // combiner already wrote buf and replayed on_receive
    }
  }

  /// Combiner side of a fused bcast: pre-order walk from virtual rank
  /// `v`, copying each parent's buffer to its children and replaying the
  /// child's receive instrumentation under the child's own fiber TLS.
  /// The copy source is the *parent's* buffer, not the root's: the
  /// mailbox walk forwards whatever bytes a rank holds after its own
  /// receive, so a payload flip landing mid-tree contaminates that rank's
  /// whole subtree. Copying from the root would silently localize the
  /// corruption and make trial outcomes scheduler-dependent.
  template <Transportable T>
  void combine_bcast_subtree(detail::FusedGroup& group, int v) {
    const detail::Arrival& parent = group.slot(v);
    for (int child_v : {2 * v + 1, 2 * v + 2}) {
      if (child_v >= size_) continue;
      detail::Arrival& child = group.slot(child_v);
      if (child.len != parent.len) {
        throw UsageError("collective: message size mismatch");
      }
      if (child.len != 0 && child.out != parent.out) {
        std::memcpy(child.out, parent.out, child.len);
      }
      {
        BorrowFiberTls borrow(child.fiber);
        TransportTraits<T>::on_receive(std::span<T>(
            reinterpret_cast<T*>(child.out), child.len / sizeof(T)));
      }
      combine_bcast_subtree<T>(group, child_v);
    }
  }

  template <Transportable T, typename Op>
  void reduce_fused(std::span<const T> in, std::span<T> out, int root,
                    Op op) {
    if (job_->abort.triggered()) throw AbortError();
    const std::uint64_t epoch = next_collective_epoch(1);
    detail::FusedGroup& group = fused_group();
    const int vrank = (rank_ - root + size_) % size_;
    // The accumulator lives on this fiber's stack; it stays valid for the
    // combiner because this fiber cannot resume until the combiner
    // releases the group mutex (see collective.hpp).
    std::vector<T> acc(in.begin(), in.end());
    if (vrank != 0) record_logical_send(acc.size() * sizeof(T));
    detail::Arrival arrival;
    arrival.data = reinterpret_cast<std::byte*>(acc.data());
    arrival.out =
        vrank == 0 ? reinterpret_cast<std::byte*>(out.data()) : nullptr;
    arrival.len = acc.size() * sizeof(T);
    arrival.fiber = FiberScheduler::current_fiber();
    std::unique_lock lock(group.mutex());
    switch (group.arrive(vrank, epoch, arrival, size_)) {
      case detail::FusedGroup::ArriveOutcome::EpochMismatch:
        throw UsageError("collective: SPMD sequence mismatch");
      case detail::FusedGroup::ArriveOutcome::Combiner: {
        combine_reduce_subtree<T>(group, 0, op);
        // Root-local finish: copy virtual rank 0's accumulator into its
        // out span (plain copy, no receive instrumentation — identical to
        // the mailbox walk's local std::copy on the root).
        detail::Arrival& root_a = group.slot(0);
        if (root_a.len != 0) {
          std::memcpy(root_a.out, root_a.data, root_a.len);
        }
        group.complete(epoch, *job_->scheduler);
        return;
      }
      case detail::FusedGroup::ArriveOutcome::Waiter:
        await_fused(group, lock, epoch);
        return;
    }
  }

  /// Combiner side of a fused reduce: post-order walk (left child first,
  /// the mailbox path's fixed order) folding each child's accumulator
  /// into its parent's, replaying the parent's receive instrumentation
  /// and LibraryGuard under the parent's fiber TLS.
  template <Transportable T, typename Op>
  void combine_reduce_subtree(detail::FusedGroup& group, int v, Op op) {
    detail::Arrival& parent = group.slot(v);
    auto* parent_vals = reinterpret_cast<T*>(parent.data);
    const std::size_t count = parent.len / sizeof(T);
    for (int child_v : {2 * v + 1, 2 * v + 2}) {
      if (child_v >= size_) continue;
      combine_reduce_subtree<T>(group, child_v, op);
      detail::Arrival& child = group.slot(child_v);
      if (child.len != parent.len) {
        throw UsageError("collective: message size mismatch");
      }
      // child.data is the child fiber's stack-local accumulator (a copy
      // of its contribution), so a payload flip here corrupts only what
      // this parent combines — the same bytes the mailbox path would have
      // flipped in its own receive temp — never the child's live state.
      auto* child_vals = reinterpret_cast<T*>(child.data);
      BorrowFiberTls borrow(parent.fiber);
      TransportTraits<T>::on_receive(std::span<T>(child_vals, count));
      // Combine as library code: not application computation.
      [[maybe_unused]] typename TransportTraits<T>::LibraryGuard guard{};
      for (std::size_t i = 0; i < count; ++i) {
        parent_vals[i] = op(parent_vals[i], child_vals[i]);
      }
    }
  }

  /// Local rank -> world rank.
  [[nodiscard]] int translate(int local) const noexcept {
    return group_.empty() ? local : group_[static_cast<std::size_t>(local)];
  }

  /// World rank -> local rank (receives report communicator-local ranks).
  [[nodiscard]] int local_rank_of(int world) const noexcept {
    if (group_.empty()) return world;
    const auto it = std::find(group_.begin(), group_.end(), world);
    return it == group_.end() ? -1
                              : static_cast<int>(it - group_.begin());
  }

  [[nodiscard]] Mailbox& my_mailbox() const {
    return *job_->mailboxes[static_cast<std::size_t>(translate(rank_))];
  }

  /// Map a possibly-wildcard local source to the wire (world) source.
  int wire_source(int source, const char* what) const {
    if (source == kAnySource) {
      if (!group_.empty()) {
        // Wildcard receives on a sub-communicator could match traffic from
        // members only by source filtering, which the mailbox does not
        // implement per-group; keep the feature world-only.
        throw UsageError(std::string(what) +
                         ": kAnySource unsupported on sub-communicators");
      }
      return kAnySource;
    }
    check_peer(source, what);
    return translate(source);
  }

  /// Salt a user receive tag (wildcard passes through; the salt keeps
  /// cross-communicator traffic from matching anyway via the source).
  [[nodiscard]] int wire_recv_tag(int tag) const {
    if (tag == kAnyTag) return kAnyTag;
    check_tag(tag);
    return detail::wire_user_tag(salt_, tag);
  }

  void check_peer(int peer, const char* what) const {
    if (peer < 0 || peer >= size_) {
      throw UsageError(std::string(what) + ": rank " + std::to_string(peer) +
                       " out of range [0, " + std::to_string(size_) + ")");
    }
  }

  static void check_tag(int tag) {
    if (tag < 0 || tag > kMaxUserTag) {
      throw UsageError("tag " + std::to_string(tag) + " out of user range");
    }
  }

  void check_counts(std::span<const std::size_t> counts, std::size_t mine,
                    const char* what) const {
    if (counts.size() != static_cast<std::size_t>(size_)) {
      throw UsageError(std::string(what) + ": counts must have size() entries");
    }
    if (mine != SIZE_MAX &&
        counts[static_cast<std::size_t>(rank_)] != mine) {
      throw UsageError(std::string(what) +
                       ": my count does not match my buffer size");
    }
  }

  /// Per-rank collective sequence counter. Because every rank executes the
  /// same sequence of collectives (SPMD), identical counters on each rank
  /// yield matching tags without any global coordination.
  int next_collective_tag(int slot) noexcept {
    return detail::wire_internal_tag(salt_, collective_seq_++, slot);
  }

  template <Transportable T>
  void post(int dest, int wire_tag, std::span<const T> values) {
    Mailbox& dest_box =
        *job_->mailboxes[static_cast<std::size_t>(translate(dest))];
    Envelope env;
    env.source = translate(rank_);
    env.tag = wire_tag;
    // Recycle payload capacity from envelopes the destination already
    // consumed; steady-state traffic allocates nothing.
    env.bytes = dest_box.acquire_buffer(values.size_bytes());
    if (!values.empty()) {
      std::memcpy(env.bytes.data(), values.data(), values.size_bytes());
    }
    if (job_->abort.triggered()) throw AbortError();
    job_->messages_sent.fetch_add(1, std::memory_order_relaxed);
    job_->bytes_sent.fetch_add(values.size_bytes(), std::memory_order_relaxed);
    dest_box.push(std::move(env));
  }

  detail::JobState* job_;
  int rank_;
  int size_;
  int salt_ = 0;
  std::vector<int> group_;  ///< local -> world rank map; empty on the world
  detail::FusedGroup* fg_ = nullptr;  ///< cached fused-hub lookup
  int collective_seq_ = 0;
  int split_seq_ = 0;
};

}  // namespace resilience::simmpi
