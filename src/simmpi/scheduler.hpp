// Cooperative fiber scheduler: resumable ranks multiplexed over a small
// worker pool (DESIGN.md §11).
//
// Thread-per-rank capped campaigns near the paper's 128 ranks — a
// 1024-rank job is 1024 OS threads fighting over a handful of cores, and
// every collective is N threads rendezvousing on condition variables. The
// scheduler replaces that with one stackful fiber per rank (fiber.hpp)
// run by `workers` pooled threads: a blocking point (mailbox receive,
// fused collective arrival) parks the fiber and the worker picks the next
// runnable one, so a job's thread footprint is the worker-pool width no
// matter how many ranks it simulates.
//
// Park/wake protocol (all state transitions under the scheduler mutex):
//   - A fiber that must block registers itself in the owning structure's
//     WaitList while holding that structure's lock, marks itself Parking,
//     releases the lock and switches to its worker. The worker *commits*
//     the park: Parking -> Parked, or — if a waker already flagged it —
//     straight back onto the run queue. Wakers therefore never lose a
//     wakeup regardless of where the fiber is in its switch.
//   - Wakers call unpark(): Parked -> Runnable (enqueued); Parking ->
//     ParkingWoken (the committing worker requeues); any other state is a
//     satisfied or spurious wake and is ignored. Parked fibers remove
//     themselves from their WaitList after resuming (they reacquire the
//     owner lock anyway to re-check their predicate), so wakers never
//     touch list storage they don't own.
//   - Fibers parked on a fused-collective group (park_on_group) are
//     exempt from the job-abort broadcast (wake_all_parked): the group's
//     combiner may be borrowing their TLS banks mid-combine, and an
//     early resume would race those swaps. Such fibers are woken by the
//     combiner's complete() or by the no-runnable sweep, which cannot
//     run while a combiner (a running fiber) exists.
//
// Deadlock detection is deterministic, not timer-based: the moment no
// fiber is runnable or running while some are still unfinished, no future
// event can ever unblock them (there are no timers and no external
// inputs), so the scheduler declares the job deadlocked and wakes every
// parked fiber; the blocking primitives observe deadlocked() and throw
// DeadlockError, which Runtime::run records exactly like a threads-mode
// deadlock timeout — minus the ten seconds of waiting.
//
// TLS migration: a resuming worker installs the fiber's saved bank of
// registered thread-local slots (util::FiberTlsRegistry — fault-injector
// context, trial control, telemetry scope stack and lane) and restores
// its own on suspend, so per-rank state follows the fiber across worker
// threads. The scheduler mutex orders every suspend/resume pair, which is
// what keeps single-writer telemetry shards valid under migration.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "simmpi/fiber.hpp"
#include "util/fiber_tls.hpp"

namespace resilience::simmpi {

class FiberScheduler;
class BorrowFiberTls;

namespace detail {

/// One rank's resumable execution context plus its scheduler state.
class Fiber {
 public:
  Fiber(FiberScheduler* scheduler, int rank, std::size_t stack_bytes);

  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  friend class ::resilience::simmpi::FiberScheduler;
  friend class ::resilience::simmpi::BorrowFiberTls;

  enum class State { Runnable, Running, Parking, ParkingWoken, Parked, Done };

  static void entry_thunk(void* arg);

  FiberScheduler* scheduler_;
  int rank_;
  State state_ = State::Runnable;  ///< guarded by the scheduler mutex
  /// Non-null while the fiber is parked (or parking) on a fused-collective
  /// group: a combiner may be borrowing its TLS bank, so abort wakeups are
  /// deferred to the group's own wake paths. Guarded by the scheduler
  /// mutex; cleared whenever the fiber is actually woken.
  const void* park_group_ = nullptr;
  bool finished_ = false;  ///< set by the fiber before its last switch-out
  util::FiberTlsRegistry::Values tls_{};  ///< saved bank while suspended
  FiberContext context_;  ///< last member: entry may run immediately never
};

}  // namespace detail

class FiberScheduler {
 public:
  /// Prepares a scheduler for `nranks` fibers with `stack_bytes` stacks.
  FiberScheduler(int nranks, std::size_t stack_bytes);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Create one runnable fiber per rank executing `body(rank)`. `body`
  /// must not throw (Runtime's rank wrapper catches everything) and must
  /// outlive the worker loop.
  void start(const std::function<void(int rank)>& body);

  /// Drive fibers until every one of them finished. Run this on each of
  /// the job's worker threads (or inline on the launching thread for a
  /// single-worker job); every call returns once all fibers are done.
  void worker_main(int worker_index);

  /// Park the calling fiber. `owner_lock` — the lock of the structure the
  /// fiber registered its WaitList entry under — is released before the
  /// stack switch and reacquired after resume.
  void park(std::unique_lock<std::mutex>& owner_lock);

  /// Park the calling fiber on a fused-collective group identified by the
  /// opaque `group_tag`. Identical to park(), except that while the tag
  /// is set the fiber is exempt from wake_all_parked(): the group's
  /// combiner may be borrowing the fiber's TLS bank (BorrowFiberTls), and
  /// resuming the fiber would race that borrow. Group-parked fibers are
  /// woken by the combiner's complete() or — when no combiner can be
  /// running — by the no-runnable-fiber sweep.
  void park_on_group(std::unique_lock<std::mutex>& owner_lock,
                     const void* group_tag);

  /// Make a parked (or parking) fiber runnable; satisfied and spurious
  /// wakes are ignored.
  void unpark(detail::Fiber* fiber);

  /// Wake every parked fiber (job abort teardown): each resumes inside
  /// its blocking primitive, re-checks its predicate and observes the
  /// abort token. Fibers parked on a fused-collective group are *not*
  /// woken here — a combiner may be mid-combine borrowing their TLS —
  /// they are released by the combiner's complete() or, if no combiner
  /// ever arrives, by the deterministic no-runnable-fiber sweep (which
  /// cannot coincide with a combine: a combiner is a running fiber).
  void wake_all_parked();

  /// True once the scheduler declared the job deadlocked (every fiber
  /// blocked). Blocking primitives check this after resuming and throw
  /// DeadlockError.
  [[nodiscard]] bool deadlocked() const noexcept {
    return deadlocked_.load(std::memory_order_acquire);
  }

  /// Reschedule the calling fiber at the back of the run queue so its
  /// peers can make progress; no-op outside fibers. The non-blocking
  /// query primitives (probe, Request::test) yield on failure, because a
  /// cooperative core would otherwise starve the very rank a polling
  /// loop is waiting on.
  static void yield_current();

  /// The fiber running on the calling thread (nullptr outside fibers).
  [[nodiscard]] static detail::Fiber* current_fiber() noexcept;
  [[nodiscard]] static bool in_fiber() noexcept {
    return current_fiber() != nullptr;
  }

 private:
  friend class detail::Fiber;
  friend class BorrowFiberTls;

  void fiber_entry(detail::Fiber* fiber);
  void resume(detail::Fiber* fiber);
  void unpark_locked(detail::Fiber* fiber);
  void park_impl(std::unique_lock<std::mutex>& owner_lock,
                 const void* group_tag);

  const int nranks_;
  const std::size_t stack_bytes_;
  std::function<void(int)> body_;
  std::mutex mu_;
  std::condition_variable cv_;  ///< idle workers park here
  /// Signalled when a group-parked fiber's park commits (Parking ->
  /// Parked): BorrowFiberTls waits here for the owning worker to finish
  /// banking the fiber's TLS before borrowing it.
  std::condition_variable borrow_cv_;
  std::deque<detail::Fiber*> run_queue_;
  std::vector<std::unique_ptr<detail::Fiber>> fibers_;
  int running_ = 0;   ///< fibers currently on a worker (commit pending too)
  int finished_ = 0;  ///< fibers whose body returned
  bool deadlock_declared_ = false;
  std::atomic<bool> deadlocked_{false};
};

namespace detail {

/// Parked fibers blocked on one structure (a mailbox, a fused-collective
/// group). All methods require the owning structure's lock; entries are
/// removed by the fibers themselves after they resume.
class WaitList {
 public:
  void add(Fiber* fiber) { fibers_.push_back(fiber); }
  void remove(Fiber* fiber) {
    for (auto it = fibers_.begin(); it != fibers_.end(); ++it) {
      if (*it == fiber) {
        fibers_.erase(it);
        return;
      }
    }
  }
  [[nodiscard]] bool empty() const noexcept { return fibers_.empty(); }
  void wake_all(FiberScheduler& scheduler) {
    for (Fiber* fiber : fibers_) scheduler.unpark(fiber);
  }

 private:
  std::vector<Fiber*> fibers_;
};

}  // namespace detail

/// Temporarily install a *parked* fiber's saved thread-local bank on the
/// calling thread. The fused-collective combiner uses this to attribute
/// per-rank instrumentation (TransportTraits::on_receive, fault-context
/// taint, telemetry counts) to the logical rank it belongs to while
/// executing the whole combine on one fiber. No-op for null or the
/// calling fiber itself.
///
/// The borrowed fiber must be parked (or mid-park) on a fused group whose
/// mutex the caller holds for the borrow's lifetime. The constructor
/// waits, under the scheduler mutex, for the fiber's park to *commit*
/// (state Parked), i.e. for the suspending worker to finish banking the
/// fiber's TLS; and because group-parked fibers are exempt from abort
/// wakeups (see wake_all_parked) while the only other wake sources — the
/// group's complete() and the no-runnable sweep — cannot run during the
/// combine, the bank cannot be swapped out from under the borrow.
class BorrowFiberTls {
 public:
  explicit BorrowFiberTls(detail::Fiber* fiber);
  ~BorrowFiberTls();
  BorrowFiberTls(const BorrowFiberTls&) = delete;
  BorrowFiberTls& operator=(const BorrowFiberTls&) = delete;

 private:
  detail::Fiber* fiber_ = nullptr;
};

}  // namespace resilience::simmpi
