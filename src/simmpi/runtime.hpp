// Job launcher for the simulated MPI runtime.
//
// Runtime::run executes `body` once per rank and reports how the job
// ended: clean completion, abort (a rank threw), or deadlock/hang. The
// campaign harness maps abnormal endings onto the paper's "Failure"
// fault-injection outcome.
//
// Execution core (RESILIENCE_SCHEDULER):
//  - "fibers" (default): each rank is a cooperative fiber multiplexed
//    over a small worker pool (RESILIENCE_SCHED_WORKERS, default
//    min(hardware concurrency, nranks)), so a 1024-rank job costs a
//    handful of OS threads and deadlock is detected deterministically
//    the moment no fiber is runnable. See scheduler.hpp.
//  - "threads": one OS thread per rank — on a pooled RankTeam by
//    default, or freshly spawned std::threads when the pool is disabled
//    (RESILIENCE_TEAM_POOL=0) — with the timeout-based deadlock
//    detector. Kept as the bit-identical reference core.
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "simmpi/comm.hpp"

namespace resilience::simmpi {

namespace detail {

/// Scheduler-mode knobs resolved from util::RuntimeOptions, each with a
/// programmatic override for tests/benches (override > env > default).
/// The setters accept a sentinel to drop the override again.
[[nodiscard]] bool scheduler_fibers_enabled() noexcept;
void set_scheduler_fibers_enabled(bool enabled) noexcept;
void reset_scheduler_fibers_enabled() noexcept;

/// Worker threads a fiber-mode job of `nranks` will use.
[[nodiscard]] int resolved_scheduler_workers(int nranks) noexcept;
/// Override the worker count (0 = auto, negative = back to options).
void set_scheduler_workers(int workers) noexcept;

[[nodiscard]] std::size_t resolved_fiber_stack_bytes() noexcept;
/// Override the fiber stack size (0 = back to options).
void set_fiber_stack_kb(std::size_t kb) noexcept;

}  // namespace detail

struct RunOptions {
  /// How long a blocked receive waits before declaring the job hung
  /// (threads mode only: the fiber scheduler detects deadlock
  /// deterministically and ignores this).
  std::chrono::milliseconds deadlock_timeout{10'000};
  /// Optional hook run on each rank's thread before the body (the fault
  /// injector uses it to install per-rank thread-local state).
  std::function<void(int rank)> on_rank_start{};
  /// Optional hook run on each rank's thread after the body, even when the
  /// body throws.
  std::function<void(int rank)> on_rank_exit{};
};

struct RunResult {
  bool ok = false;          ///< all ranks returned normally
  bool aborted = false;     ///< a rank threw; job torn down
  bool deadlocked = false;  ///< a blocking op timed out
  int failed_rank = -1;     ///< rank whose exception triggered the abort
  std::string error;        ///< what() of the first exception
  /// Transport statistics over the whole job: point-to-point messages and
  /// the messages collectives decompose into. Fused fiber-mode
  /// collectives still report their logical decomposition, so these
  /// counts are independent of which execution core ran the job.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Envelope-pool statistics: payload buffers freshly heap-allocated vs
  /// recycled from the per-mailbox freelists. Also published to the
  /// telemetry registry as simmpi.buffer_allocs / simmpi.buffer_reuses.
  std::uint64_t pool_allocs = 0;
  std::uint64_t pool_reuses = 0;

  [[nodiscard]] bool failed() const noexcept { return !ok; }
};

class Runtime {
 public:
  /// Run `body` on `nranks` ranks and join all of them.
  /// Exceptions thrown by a rank trigger an MPI_Abort-style teardown: the
  /// first exception is recorded and every blocked rank is woken with
  /// AbortError. Never throws for in-job errors; throws UsageError for
  /// nranks < 1.
  static RunResult run(int nranks, const std::function<void(Comm&)>& body,
                       const RunOptions& options = {});

  /// OS threads a job of `nranks` will occupy under the current
  /// scheduler configuration: 1 for serial jobs, the resolved worker
  /// count in fibers mode, nranks in threads mode. The campaign executor
  /// uses this as the admission weight of a trial task and as the
  /// rank-team prewarm width.
  [[nodiscard]] static int job_width(int nranks) noexcept;
};

}  // namespace resilience::simmpi
