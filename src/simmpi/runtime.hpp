// Job launcher for the simulated MPI runtime.
//
// Runtime::run executes `body` once per rank — on a pooled RankTeam by
// default, or on freshly spawned std::threads when the pool is disabled
// (RESILIENCE_TEAM_POOL=0) — hands each rank a Comm, and reports how the
// job ended: clean completion, abort (a rank threw), or deadlock/hang.
// The campaign harness maps abnormal endings onto the paper's "Failure"
// fault-injection outcome.
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "simmpi/comm.hpp"

namespace resilience::simmpi {

struct RunOptions {
  /// How long a blocked receive waits before declaring the job hung.
  std::chrono::milliseconds deadlock_timeout{10'000};
  /// Optional hook run on each rank's thread before the body (the fault
  /// injector uses it to install per-rank thread-local state).
  std::function<void(int rank)> on_rank_start{};
  /// Optional hook run on each rank's thread after the body, even when the
  /// body throws.
  std::function<void(int rank)> on_rank_exit{};
};

struct RunResult {
  bool ok = false;          ///< all ranks returned normally
  bool aborted = false;     ///< a rank threw; job torn down
  bool deadlocked = false;  ///< a blocking op timed out
  int failed_rank = -1;     ///< rank whose exception triggered the abort
  std::string error;        ///< what() of the first exception
  /// Transport statistics over the whole job: point-to-point messages and
  /// the messages collectives decompose into. Collectives taking the
  /// rendezvous fast path still report their logical decomposition, so
  /// these counts are independent of which transport ran the job.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Envelope-pool statistics: payload buffers freshly heap-allocated vs
  /// recycled from the per-mailbox freelists. Also published to the
  /// telemetry registry as simmpi.buffer_allocs / simmpi.buffer_reuses.
  std::uint64_t pool_allocs = 0;
  std::uint64_t pool_reuses = 0;

  [[deprecated("use pool_allocs or the telemetry registry "
               "(simmpi.buffer_allocs)")]] [[nodiscard]] std::uint64_t
  buffer_allocs() const noexcept {
    return pool_allocs;
  }
  [[deprecated("use pool_reuses or the telemetry registry "
               "(simmpi.buffer_reuses)")]] [[nodiscard]] std::uint64_t
  buffer_reuses() const noexcept {
    return pool_reuses;
  }

  [[nodiscard]] bool failed() const noexcept { return !ok; }
};

class Runtime {
 public:
  /// Run `body` on `nranks` ranks and join all of them.
  /// Exceptions thrown by a rank trigger an MPI_Abort-style teardown: the
  /// first exception is recorded and every blocked rank is woken with
  /// AbortError. Never throws for in-job errors; throws UsageError for
  /// nranks < 1.
  static RunResult run(int nranks, const std::function<void(Comm&)>& body,
                       const RunOptions& options = {});
};

}  // namespace resilience::simmpi
