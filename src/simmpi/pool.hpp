// Envelope payload freelist.
//
// A fault-injection campaign sends millions of short-lived messages, and
// the seed runtime heap-allocated every payload (`Envelope::bytes`) on
// send and freed it on receive. The pool recycles that capacity instead:
// consumed payload buffers return to a freelist and the next send reuses
// them, so steady-state traffic performs no allocations at all.
//
// The pool itself is unsynchronized. Each Mailbox embeds one and guards
// it with the mailbox mutex it already takes per message, which shards
// the freelists by destination rank: a ping-pong pair recycles the same
// two buffers forever, and there is no job-global allocator lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace resilience::simmpi {

class BufferPool {
 public:
  struct Stats {
    /// Buffers handed out that had to be freshly allocated.
    std::uint64_t allocs = 0;
    /// Buffers handed out from the freelist (capacity recycled).
    std::uint64_t reuses = 0;
  };

  /// A buffer of exactly `bytes` size, reusing freelist capacity when
  /// available. Contents are unspecified; callers overwrite them.
  [[nodiscard]] std::vector<std::byte> get(std::size_t bytes) {
    if (free_.empty()) {
      ++stats_.allocs;
      return std::vector<std::byte>(bytes);
    }
    ++stats_.reuses;
    std::vector<std::byte> buf = std::move(free_.back());
    free_.pop_back();
    buf.resize(bytes);
    return buf;
  }

  /// Return a consumed buffer's capacity to the freelist. The freelist is
  /// bounded so a burst of in-flight messages cannot pin memory forever.
  void put(std::vector<std::byte>&& buf) {
    if (free_.size() < kMaxFree) free_.push_back(std::move(buf));
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// More in-flight messages per rank than any app here posts; beyond it
  /// the excess buffers simply free.
  static constexpr std::size_t kMaxFree = 256;

  std::vector<std::vector<std::byte>> free_;
  Stats stats_;
};

}  // namespace resilience::simmpi
