#include "simmpi/runtime.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "simmpi/rank_team.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::simmpi {

RunResult Runtime::run(int nranks, const std::function<void(Comm&)>& body,
                       const RunOptions& options) {
  if (nranks < 1) throw UsageError("Runtime::run: nranks must be >= 1");

  detail::JobState job(nranks, options.deadlock_timeout);

  std::mutex result_mu;
  RunResult result;
  result.ok = true;

  auto record_failure = [&](int rank, const char* what, bool deadlock) {
    std::lock_guard lock(result_mu);
    // Keep the first root cause; ranks that die with AbortError are
    // collateral damage of an already-recorded failure.
    if (result.ok) {
      result.ok = false;
      result.aborted = true;
      result.deadlocked = deadlock;
      result.failed_rank = rank;
      result.error = what;
    }
  };

  // Rank threads run with the launching thread's metric-scope stack, so
  // substrate counters land in the campaign that caused them. The handle
  // stays valid because this thread blocks until the job joins.
  const telemetry::ScopeStackHandle scopes = telemetry::current_scope_stack();

  auto rank_main = [&](int rank) {
    telemetry::AdoptScopeStack adopt(scopes);
    Comm comm(&job, rank, nranks);
    if (options.on_rank_start) options.on_rank_start(rank);
    try {
      body(comm);
    } catch (const AbortError&) {
      // Torn down because another rank failed first; nothing to record.
    } catch (const DeadlockError& e) {
      record_failure(rank, e.what(), /*deadlock=*/true);
      job.trigger_abort();
    } catch (const std::exception& e) {
      record_failure(rank, e.what(), /*deadlock=*/false);
      job.trigger_abort();
    } catch (...) {
      record_failure(rank, "unknown exception", /*deadlock=*/false);
      job.trigger_abort();
    }
    if (options.on_rank_exit) options.on_rank_exit(rank);
  };

  if (nranks == 1) {
    // Serial execution runs inline: no thread spawn, so the fault
    // injector's thread-local context installed by the caller stays valid
    // and serial campaigns are cheap.
    rank_main(0);
  } else if (RankTeamPool::enabled()) {
    // Check a parked team of this width out of the process-wide pool;
    // repeated jobs at one width reuse threads instead of respawning
    // them. The on_rank_start/on_rank_exit hooks run inside rank_main,
    // so per-rank thread-local state is re-installed every job and team
    // reuse is invisible to the ranks.
    RankTeamPool::Lease lease = RankTeamPool::instance().acquire(nranks);
    lease.team().run(rank_main);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back(rank_main, r);
    }
    for (auto& t : threads) t.join();
  }
  result.messages_sent = job.messages_sent.load(std::memory_order_relaxed);
  result.bytes_sent = job.bytes_sent.load(std::memory_order_relaxed);
  const BufferPool::Stats pool = job.pool_stats();
  result.pool_allocs = pool.allocs;
  result.pool_reuses = pool.reuses;
  telemetry::count(telemetry::Counter::SimmpiJobs);
  if (pool.allocs != 0) {
    telemetry::count(telemetry::Counter::SimmpiBufferAllocs, pool.allocs);
  }
  if (pool.reuses != 0) {
    telemetry::count(telemetry::Counter::SimmpiBufferReuses, pool.reuses);
  }
  return result;
}

}  // namespace resilience::simmpi
