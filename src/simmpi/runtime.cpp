#include "simmpi/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "simmpi/rank_team.hpp"
#include "simmpi/scheduler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/options.hpp"

namespace resilience::simmpi {

namespace detail {
namespace {

// Programmatic overrides: -1 = follow RuntimeOptions. The options values
// are latched on first use (same latching caveat as every set_*_enabled
// pattern in this repo — documented in util/options.hpp).
std::atomic<int> g_fibers_override{-1};
std::atomic<int> g_workers_override{-1};
std::atomic<std::size_t> g_stack_kb_override{0};

int hardware_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

bool scheduler_fibers_enabled() noexcept {
  const int forced = g_fibers_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_options =
      util::RuntimeOptions::global().scheduler_fibers;
  return from_options;
}

void set_scheduler_fibers_enabled(bool enabled) noexcept {
  g_fibers_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void reset_scheduler_fibers_enabled() noexcept {
  g_fibers_override.store(-1, std::memory_order_relaxed);
}

int resolved_scheduler_workers(int nranks) noexcept {
  int workers = g_workers_override.load(std::memory_order_relaxed);
  if (workers < 0) {
    static const int from_options =
        util::RuntimeOptions::global().sched_workers;
    workers = from_options;
  }
  if (workers <= 0) workers = hardware_workers();
  return std::min(workers, std::max(1, nranks));
}

void set_scheduler_workers(int workers) noexcept {
  g_workers_override.store(workers < 0 ? -1 : workers,
                           std::memory_order_relaxed);
}

std::size_t resolved_fiber_stack_bytes() noexcept {
  std::size_t kb = g_stack_kb_override.load(std::memory_order_relaxed);
  if (kb == 0) {
    static const std::size_t from_options =
        util::RuntimeOptions::global().fiber_stack_kb;
    kb = from_options;
  }
  return kb * 1024;
}

void set_fiber_stack_kb(std::size_t kb) noexcept {
  g_stack_kb_override.store(kb, std::memory_order_relaxed);
}

}  // namespace detail

RunResult Runtime::run(int nranks, const std::function<void(Comm&)>& body,
                       const RunOptions& options) {
  if (nranks < 1) throw UsageError("Runtime::run: nranks must be >= 1");

  detail::JobState job(nranks, options.deadlock_timeout);

  std::mutex result_mu;
  RunResult result;
  result.ok = true;

  auto record_failure = [&](int rank, const char* what, bool deadlock) {
    std::lock_guard lock(result_mu);
    // Keep the first root cause; ranks that die with AbortError are
    // collateral damage of an already-recorded failure.
    if (result.ok) {
      result.ok = false;
      result.aborted = true;
      result.deadlocked = deadlock;
      result.failed_rank = rank;
      result.error = what;
    }
  };

  // Rank threads run with the launching thread's metric-scope stack, so
  // substrate counters land in the campaign that caused them. The handle
  // stays valid because this thread blocks until the job joins.
  const telemetry::ScopeStackHandle scopes = telemetry::current_scope_stack();

  auto rank_main = [&](int rank) {
    telemetry::AdoptScopeStack adopt(scopes);
    Comm comm(&job, rank, nranks);
    if (options.on_rank_start) options.on_rank_start(rank);
    try {
      body(comm);
    } catch (const AbortError&) {
      // Torn down because another rank failed first; nothing to record.
    } catch (const DeadlockError& e) {
      record_failure(rank, e.what(), /*deadlock=*/true);
      job.trigger_abort();
    } catch (const std::exception& e) {
      record_failure(rank, e.what(), /*deadlock=*/false);
      job.trigger_abort();
    } catch (...) {
      record_failure(rank, "unknown exception", /*deadlock=*/false);
      job.trigger_abort();
    }
    if (options.on_rank_exit) options.on_rank_exit(rank);
  };

  if (nranks == 1) {
    // Serial execution runs inline: no thread spawn, so the fault
    // injector's thread-local context installed by the caller stays valid
    // and serial campaigns are cheap.
    rank_main(0);
  } else if (detail::scheduler_fibers_enabled()) {
    // Fiber scheduler: one resumable fiber per rank, multiplexed over a
    // small worker pool. Blocking points park the fiber instead of an OS
    // thread, so the job's thread footprint is the worker count no
    // matter how many ranks it simulates.
    FiberScheduler sched(nranks, detail::resolved_fiber_stack_bytes());
    job.attach_scheduler(&sched);
    sched.start(rank_main);
    const int workers = detail::resolved_scheduler_workers(nranks);
    if (workers == 1) {
      // Single worker drives every fiber inline on the launching thread:
      // no handoff, no spawn — the common case on small hosts.
      sched.worker_main(0);
    } else if (RankTeamPool::enabled()) {
      // Reuse the rank-team pool as the worker pool, at worker width
      // instead of rank width.
      RankTeamPool::Lease lease = RankTeamPool::instance().acquire(workers);
      lease.team().run([&sched](int worker) { sched.worker_main(worker); });
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&sched, w] { sched.worker_main(w); });
      }
      for (auto& t : threads) t.join();
    }
    job.attach_scheduler(nullptr);  // sched dies at scope exit
  } else if (RankTeamPool::enabled()) {
    // Check a parked team of this width out of the process-wide pool;
    // repeated jobs at one width reuse threads instead of respawning
    // them. The on_rank_start/on_rank_exit hooks run inside rank_main,
    // so per-rank thread-local state is re-installed every job and team
    // reuse is invisible to the ranks.
    RankTeamPool::Lease lease = RankTeamPool::instance().acquire(nranks);
    lease.team().run(rank_main);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back(rank_main, r);
    }
    for (auto& t : threads) t.join();
  }
  result.messages_sent = job.messages_sent.load(std::memory_order_relaxed);
  result.bytes_sent = job.bytes_sent.load(std::memory_order_relaxed);
  const BufferPool::Stats pool = job.pool_stats();
  result.pool_allocs = pool.allocs;
  result.pool_reuses = pool.reuses;
  telemetry::count(telemetry::Counter::SimmpiJobs);
  if (pool.allocs != 0) {
    telemetry::count(telemetry::Counter::SimmpiBufferAllocs, pool.allocs);
  }
  if (pool.reuses != 0) {
    telemetry::count(telemetry::Counter::SimmpiBufferReuses, pool.reuses);
  }
  return result;
}

int Runtime::job_width(int nranks) noexcept {
  if (nranks <= 1) return 1;
  if (detail::scheduler_fibers_enabled()) {
    return detail::resolved_scheduler_workers(nranks);
  }
  return nranks;
}

}  // namespace resilience::simmpi
