// Error types raised by the simulated MPI runtime.
//
// The campaign harness maps these onto the paper's "Failure" outcome:
// AbortError models MPI_Abort-style teardown after a rank dies, and
// DeadlockError models a hung job that a batch system would eventually
// kill.
#pragma once

#include <stdexcept>
#include <string>

namespace resilience::simmpi {

/// Base class for all runtime errors raised inside a rank.
class MpiError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised in blocked ranks when another rank has failed and the job is
/// being torn down (the analogue of MPI_Abort reaching a blocked call).
class AbortError : public MpiError {
 public:
  AbortError() : MpiError("job aborted by another rank") {}
};

/// Raised when a blocking operation waits past the runtime's deadlock
/// timeout — the simulated analogue of a hung MPI job.
class DeadlockError : public MpiError {
 public:
  explicit DeadlockError(const std::string& what) : MpiError(what) {}
};

/// Raised on API misuse (bad rank, mismatched buffer sizes, ...).
class UsageError : public MpiError {
 public:
  explicit UsageError(const std::string& what) : MpiError(what) {}
};

}  // namespace resilience::simmpi
