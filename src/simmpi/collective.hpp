// Fused collectives for the fiber scheduler.
//
// On the threaded substrate a collective is a storm of point-to-point
// envelopes (or, historically, a condvar rendezvous): every rank blocks
// in turn, and the tree structure costs one wake per edge. With fibers
// the whole picture simplifies: each participating fiber *arrives* at its
// group's FusedGroup carrying pointers to its contribution and its output
// slot, then parks. The last arriver — already running, holding every
// other participant parked — executes the entire combine in one pass on
// its own stack (one fused combine instead of 2(N-1) message hops), marks
// the epoch done and wakes everyone. Logical instrumentation is preserved
// exactly: each rank records its own logical sends *before* arriving
// (mirroring the mailbox decomposition byte for byte), and the combiner
// replays per-rank receive hooks under BorrowFiberTls so taint and
// telemetry land on the logical rank that would have executed them.
//
// Safety of the borrowed pointers and TLS banks: every non-last
// arriver's Arrival points into its own fiber stack (accumulator
// buffers, user output slots), and the combiner swaps each arriver's
// saved thread-local bank onto its own thread while replaying that
// rank's instrumentation. Both are safe because an arrived fiber stays
// *parked* for the whole combine: it parks with a group tag
// (park_on_group), which exempts it from wake_all_parked — a job abort
// cannot make it runnable, so no worker can swap its TLS bank
// concurrently with the borrow. The only wake sources for a group-parked
// fiber are the combiner's own complete() (after the combine) and the
// scheduler's no-runnable-fiber sweep (impossible mid-combine: the
// combiner is a running fiber). BorrowFiberTls additionally waits for
// each park to commit before swapping, so a not-yet-suspended arriver is
// never borrowed early. The combiner runs the whole combine under the
// group mutex and never parks.
//
// Epochs: collectives on one communicator are totally ordered by the
// Comm's collective sequence number. The first arriver of an epoch pins
// it; a rank arriving with a different epoch has diverged from SPMD order
// and is reported as a usage error. `done_epoch_` is monotonic, so a
// waiter's predicate is simply done_epoch() >= its epoch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "simmpi/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace resilience::simmpi::detail {

/// One rank's contribution to a fused collective, valid while its fiber
/// stays parked (or, for the combiner, for the duration of the combine).
struct Arrival {
  std::byte* data = nullptr;  ///< this rank's input contribution
  std::byte* out = nullptr;   ///< where the combiner writes this rank's result
  std::size_t len = 0;        ///< contribution size in bytes
  Fiber* fiber = nullptr;     ///< arriving fiber, for BorrowFiberTls
};

/// Fused-collective meeting point for one communicator (one per salt).
class FusedGroup {
 public:
  enum class ArriveOutcome { Waiter, Combiner, EpochMismatch };

  [[nodiscard]] std::mutex& mutex() noexcept { return mu_; }

  /// Record `vrank`'s arrival for `epoch`. Requires mutex(). The last
  /// arriver becomes the combiner and must run the combine before
  /// releasing the mutex; arrival slots stay valid exactly that long.
  ArriveOutcome arrive(int vrank, std::uint64_t epoch, const Arrival& arrival,
                       int group_size) {
    if (epoch <= done_epoch_) {
      // A rank arriving with an already-completed epoch has fallen behind
      // the group's SPMD sequence (it skipped collectives its peers ran).
      // Reject before recording anything: pinning current_epoch_ to the
      // stale value would corrupt group state and misreport the error at
      // a healthy rank's next collective instead of the diverged rank.
      return ArriveOutcome::EpochMismatch;
    }
    if (arrived_ == 0) {
      current_epoch_ = epoch;
      if (arrivals_.size() < static_cast<std::size_t>(group_size)) {
        arrivals_.resize(static_cast<std::size_t>(group_size));
      }
    } else if (epoch != current_epoch_) {
      return ArriveOutcome::EpochMismatch;
    }
    arrivals_[static_cast<std::size_t>(vrank)] = arrival;
    ++arrived_;
    if (arrived_ == group_size) {
      arrived_ = 0;  // slots are consumed by this combine; epoch may reuse
      return ArriveOutcome::Combiner;
    }
    return ArriveOutcome::Waiter;
  }

  /// The combiner's view of a participant's arrival. Requires mutex().
  [[nodiscard]] Arrival& slot(int vrank) {
    return arrivals_[static_cast<std::size_t>(vrank)];
  }

  /// Combiner only, after all outputs are written: publish the epoch and
  /// wake every parked participant. Requires mutex().
  void complete(std::uint64_t epoch, FiberScheduler& scheduler) {
    done_epoch_ = epoch;
    telemetry::count(telemetry::Counter::SimmpiFusedCollectives);
    waiters_.wake_all(scheduler);
  }

  [[nodiscard]] std::uint64_t done_epoch() const noexcept {
    return done_epoch_;
  }
  [[nodiscard]] WaitList& waiters() noexcept { return waiters_; }

 private:
  std::mutex mu_;
  WaitList waiters_;
  std::vector<Arrival> arrivals_;
  int arrived_ = 0;
  std::uint64_t current_epoch_ = 0;
  std::uint64_t done_epoch_ = 0;
};

/// Lazily materialised FusedGroup per communicator salt; owned by the
/// JobState so split communicators get distinct meeting points.
class FusedHub {
 public:
  FusedGroup& group(std::uint32_t salt) {
    std::lock_guard lock(mu_);
    auto& slot = groups_[salt];
    if (slot == nullptr) slot = std::make_unique<FusedGroup>();
    return *slot;
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::uint32_t, std::unique_ptr<FusedGroup>> groups_;
};

}  // namespace resilience::simmpi::detail
