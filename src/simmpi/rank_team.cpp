#include "simmpi/rank_team.hpp"

#include <atomic>

#include "telemetry/telemetry.hpp"
#include "util/options.hpp"

namespace resilience::simmpi {

RankTeam::RankTeam(int width) : width_(width) {
  threads_.reserve(static_cast<std::size_t>(width));
  for (int rank = 0; rank < width; ++rank) {
    threads_.emplace_back([this, rank] { thread_main(rank); });
  }
}

RankTeam::~RankTeam() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void RankTeam::dispatch(JobFn job, void* ctx) {
  std::unique_lock lock(mu_);
  job_ = job;
  job_ctx_ = ctx;
  remaining_ = width_;
  ++epoch_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  job_ctx_ = nullptr;
}

void RankTeam::thread_main(int rank) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    JobFn job = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      ctx = job_ctx_;
    }
    job(ctx, rank);
    bool last = false;
    {
      std::lock_guard lock(mu_);
      last = --remaining_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

RankTeamPool& RankTeamPool::instance() {
  // Leaked on purpose: parked team threads may still exist at process
  // exit, and destroying the pool under static teardown would race them.
  static RankTeamPool* pool = new RankTeamPool();
  return *pool;
}

RankTeamPool::Lease RankTeamPool::acquire(int width) {
  telemetry::count(telemetry::Counter::SimmpiTeamCheckouts);
  {
    std::lock_guard lock(mu_);
    ++checkouts_;
    auto it = idle_.find(width);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<RankTeam> team = std::move(it->second.back());
      it->second.pop_back();
      return Lease(this, std::move(team));
    }
    ++teams_created_;
  }
  // Spawn outside the lock: thread creation is the slow path.
  telemetry::count(telemetry::Counter::SimmpiTeamSpawns);
  return Lease(this, std::make_unique<RankTeam>(width));
}

void RankTeamPool::prewarm(int width, int teams) {
  std::size_t have = 0;
  {
    std::lock_guard lock(mu_);
    have = idle_[width].size();
  }
  std::vector<std::unique_ptr<RankTeam>> fresh;
  for (std::size_t i = have; i < static_cast<std::size_t>(teams); ++i) {
    fresh.push_back(std::make_unique<RankTeam>(width));
  }
  if (fresh.empty()) return;
  telemetry::trace_instant("simmpi", "team_pool_prewarm", "teams",
                           fresh.size());
  telemetry::count(telemetry::Counter::SimmpiTeamSpawns, fresh.size());
  std::lock_guard lock(mu_);
  teams_created_ += fresh.size();
  auto& bucket = idle_[width];
  for (auto& team : fresh) {
    if (bucket.size() < kMaxIdlePerWidth) bucket.push_back(std::move(team));
  }
}

void RankTeamPool::clear() {
  std::unordered_map<int, std::vector<std::unique_ptr<RankTeam>>> doomed;
  {
    std::lock_guard lock(mu_);
    doomed.swap(idle_);
  }
  // Teams join their threads here, outside the pool lock.
}

std::uint64_t RankTeamPool::teams_created() const noexcept {
  return teams_created_.load(std::memory_order_relaxed);
}

std::uint64_t RankTeamPool::checkouts() const noexcept {
  return checkouts_.load(std::memory_order_relaxed);
}

std::size_t RankTeamPool::idle_teams() {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& [width, bucket] : idle_) total += bucket.size();
  return total;
}

namespace {

// -1 = follow RuntimeOptions, 0 = forced off, 1 = forced on.
std::atomic<int> g_team_pool_override{-1};

}  // namespace

bool RankTeamPool::enabled() noexcept {
  const int forced = g_team_pool_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_options = util::RuntimeOptions::global().team_pool;
  return from_options;
}

void RankTeamPool::set_enabled(bool enabled) noexcept {
  g_team_pool_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void RankTeamPool::release(std::unique_ptr<RankTeam> team) {
  {
    std::lock_guard lock(mu_);
    auto& bucket = idle_[team->width()];
    if (bucket.size() < kMaxIdlePerWidth) {
      bucket.push_back(std::move(team));
      return;
    }
  }
  // Bucket full: the team destructs (and joins its threads) here.
}

}  // namespace resilience::simmpi
