#include "simmpi/topology.hpp"

#include <algorithm>
#include <string>

namespace resilience::simmpi {

BlockRange block_partition(std::int64_t n, int parts, int index) {
  if (parts < 1 || index < 0 || index >= parts) {
    throw UsageError("block_partition: bad parts/index");
  }
  if (n < 0) throw UsageError("block_partition: negative n");
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  const std::int64_t lo =
      index * base + std::min<std::int64_t>(index, extra);
  const std::int64_t len = base + (index < extra ? 1 : 0);
  return {lo, lo + len};
}

int block_owner(std::int64_t n, int parts, std::int64_t i) {
  if (i < 0 || i >= n) throw UsageError("block_owner: index out of range");
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  // First `extra` blocks have base+1 elements.
  const std::int64_t big_span = extra * (base + 1);
  if (i < big_span) {
    return static_cast<int>(i / (base + 1));
  }
  return static_cast<int>(extra + (i - big_span) / base);
}

std::vector<int> dims_create(int nranks, int ndims) {
  if (nranks < 1 || ndims < 1) throw UsageError("dims_create: bad arguments");
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  // Factorize, then assign primes from largest to smallest onto the
  // currently-smallest dimension: yields a near-cubic grid (e.g. 12 in 2D
  // becomes 4 x 3, not 6 x 2).
  std::vector<int> factors;
  int remaining = nranks;
  for (int f = 2; f * f <= remaining;) {
    if (remaining % f == 0) {
      factors.push_back(f);
      remaining /= f;
    } else {
      ++f;
    }
  }
  if (remaining > 1) factors.push_back(remaining);
  std::sort(factors.begin(), factors.end(), std::greater<>());
  for (int f : factors) {
    auto it = std::min_element(dims.begin(), dims.end());
    *it *= f;
  }
  std::sort(dims.begin(), dims.end(), std::greater<>());
  return dims;
}

CartGrid::CartGrid(std::vector<int> dims, std::vector<bool> periodic)
    : dims_(std::move(dims)), periodic_(std::move(periodic)), size_(1) {
  if (dims_.empty() || dims_.size() != periodic_.size()) {
    throw UsageError("CartGrid: dims/periodic mismatch");
  }
  for (int d : dims_) {
    if (d < 1) throw UsageError("CartGrid: nonpositive dimension");
    size_ *= d;
  }
}

CartGrid CartGrid::balanced(int nranks, int ndims, bool periodic) {
  return CartGrid(dims_create(nranks, ndims),
                  std::vector<bool>(static_cast<std::size_t>(ndims), periodic));
}

int CartGrid::rank_of(const std::vector<int>& coords) const {
  if (coords.size() != dims_.size()) throw UsageError("rank_of: bad coords");
  int rank = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (coords[d] < 0 || coords[d] >= dims_[d]) {
      throw UsageError("rank_of: coordinate out of range");
    }
    rank = rank * dims_[d] + coords[d];
  }
  return rank;
}

std::vector<int> CartGrid::coords_of(int rank) const {
  if (rank < 0 || rank >= size_) throw UsageError("coords_of: bad rank");
  std::vector<int> coords(dims_.size());
  for (std::size_t d = dims_.size(); d-- > 0;) {
    coords[d] = rank % dims_[d];
    rank /= dims_[d];
  }
  return coords;
}

int CartGrid::shift(int rank, int dim, int disp) const {
  if (dim < 0 || dim >= ndims()) throw UsageError("shift: bad dimension");
  auto coords = coords_of(rank);
  const int extent = dims_[static_cast<std::size_t>(dim)];
  std::int64_t c = coords[static_cast<std::size_t>(dim)] + disp;
  if (periodic_[static_cast<std::size_t>(dim)]) {
    c = ((c % extent) + extent) % extent;
  } else if (c < 0 || c >= extent) {
    return -1;  // MPI_PROC_NULL
  }
  coords[static_cast<std::size_t>(dim)] = static_cast<int>(c);
  return rank_of(coords);
}

}  // namespace resilience::simmpi
