// Nonblocking communication requests.
//
// Sends in this runtime are always buffered, so an isend completes
// immediately; an irecv defers its matching to wait()/test(). This is a
// legal MPI progress model (completion may happen entirely inside the
// wait call) and is exactly what the mini-apps need to overlap their halo
// exchange posts.
#pragma once

#include <cstring>
#include <optional>
#include <cassert>
#include <span>

#include "simmpi/errors.hpp"
#include "simmpi/mailbox.hpp"
#include "simmpi/transport_traits.hpp"

namespace resilience::simmpi {

class Comm;

/// Handle for an outstanding nonblocking operation. Move-only; must be
/// completed with wait() (or via Comm::wait_all) before destruction —
/// destroying an incomplete receive request is a usage bug and terminates
/// in debug builds.
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { *this = std::move(other); }
  Request& operator=(Request&& other) noexcept {
    mailbox_ = other.mailbox_;
    source_ = other.source_;
    tag_ = other.tag_;
    bytes_ = other.bytes_;
    deliver_ = other.deliver_;
    pending_ = other.pending_;
    other.pending_ = false;
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  ~Request() {
    // An abandoned pending receive would silently drop a message.
    assert(!pending_ && "Request destroyed before wait()");
  }

  /// Block until the operation completes (no-op for completed requests
  /// and send requests). Returns the source rank for receives, -1 else.
  int wait() {
    if (!pending_) return -1;
    Envelope env = mailbox_->pop_matching(source_, tag_);
    const int actual_source = env.source;
    complete(env);
    mailbox_->recycle(std::move(env));
    return actual_source;
  }

  /// True if the operation can complete without blocking; completes it if
  /// so (MPI_Test semantics).
  bool test() {
    if (!pending_) return true;
    if (!mailbox_->probe(source_, tag_)) {
      // Polling loops (`while (!req.test()) {}`) would starve the sender
      // under the cooperative core; let the peers run before reporting no.
      FiberScheduler::yield_current();
      return false;
    }
    wait();
    return true;
  }

  [[nodiscard]] bool pending() const noexcept { return pending_; }

 private:
  friend class Comm;

  /// Construct a pending receive (used by Comm::irecv).
  Request(Mailbox* mailbox, int source, int tag, std::span<std::byte> bytes,
          void (*deliver)(std::span<std::byte>))
      : mailbox_(mailbox),
        source_(source),
        tag_(tag),
        bytes_(bytes),
        deliver_(deliver),
        pending_(true) {}

  void complete(const Envelope& env) {
    if (env.bytes.size() != bytes_.size()) {
      pending_ = false;
      throw UsageError("irecv: message size does not match buffer");
    }
    if (!bytes_.empty()) {
      std::memcpy(bytes_.data(), env.bytes.data(), bytes_.size());
    }
    pending_ = false;
    if (deliver_ != nullptr) deliver_(bytes_);
  }

  Mailbox* mailbox_ = nullptr;
  int source_ = 0;
  int tag_ = 0;
  std::span<std::byte> bytes_{};
  void (*deliver_)(std::span<std::byte>) = nullptr;
  bool pending_ = false;
};

}  // namespace resilience::simmpi
