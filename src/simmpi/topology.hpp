// Domain-decomposition helpers shared by the mini-apps.
//
// All six benchmarks strong-scale one fixed input problem across ranks
// (paper Section 2), so they all need the same machinery: balanced block
// partitions of an index range, near-cubic process grids, and neighbor
// lookup on a Cartesian grid.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "simmpi/errors.hpp"

namespace resilience::simmpi {

/// Half-open index range [lo, hi) owned by one rank.
struct BlockRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  [[nodiscard]] std::int64_t count() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(std::int64_t i) const noexcept {
    return i >= lo && i < hi;
  }
  bool operator==(const BlockRange&) const = default;
};

/// Balanced block partition of [0, n) into `parts` ranges; the first
/// n % parts ranges get one extra element (MPI_Scatterv-style layout).
BlockRange block_partition(std::int64_t n, int parts, int index);

/// The rank owning global index i under block_partition(n, parts, ·).
int block_owner(std::int64_t n, int parts, std::int64_t i);

/// Factor `nranks` into `ndims` factors as close to equal as possible,
/// largest first (the analogue of MPI_Dims_create).
std::vector<int> dims_create(int nranks, int ndims);

/// Cartesian process grid with optional periodic wraparound per dimension.
class CartGrid {
 public:
  CartGrid(std::vector<int> dims, std::vector<bool> periodic);

  /// Convenience: near-balanced grid for nranks in ndims dimensions.
  static CartGrid balanced(int nranks, int ndims, bool periodic);

  [[nodiscard]] int ndims() const noexcept {
    return static_cast<int>(dims_.size());
  }
  [[nodiscard]] const std::vector<int>& dims() const noexcept { return dims_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  /// Row-major rank of grid coordinates.
  [[nodiscard]] int rank_of(const std::vector<int>& coords) const;

  /// Grid coordinates of a rank.
  [[nodiscard]] std::vector<int> coords_of(int rank) const;

  /// Neighbor of `rank` displaced by `disp` along `dim`; -1 when the
  /// neighbor falls off a non-periodic boundary (MPI_PROC_NULL).
  [[nodiscard]] int shift(int rank, int dim, int disp) const;

 private:
  std::vector<int> dims_;
  std::vector<bool> periodic_;
  int size_;
};

}  // namespace resilience::simmpi
