// Customization point connecting the transport layer to higher layers.
//
// simmpi moves trivially-copyable values between ranks without knowing
// what they are. The fault-injection layer (fsefi) specializes
// TransportTraits for its instrumented Real type so that the runtime can
// report "tainted data landed in this rank's memory" — the contamination
// event the paper's P-FSEFI tool observes when profiling error
// propagation across MPI processes.
#pragma once

#include <span>

namespace resilience::simmpi {

template <typename T>
struct TransportTraits {
  /// Called on the receiving rank's thread after `values` have been
  /// delivered into receiver-owned memory (the application buffer of a
  /// recv/bcast, or a library-internal scratch accumulator inside a
  /// collective). The span is mutable so the fault injector can corrupt a
  /// payload exactly as it lands — never the sender's memory. Default:
  /// nothing to observe.
  static void on_receive(std::span<T> values) noexcept { (void)values; }

  /// RAII scope instantiated around arithmetic the runtime performs
  /// internally (reduction combines, scans). The fault injector
  /// specializes this to suspend instrumentation there: combine operations
  /// are MPI-library code, not application computation, so they are not
  /// injection targets and are not counted — though corruption still
  /// propagates through them. Default: no-op.
  struct LibraryGuard {};
};

}  // namespace resilience::simmpi
