// Weighted-admission thread pool for fault-injection campaigns.
//
// A campaign is hundreds of independent trials, but each trial of an
// n-rank deployment spawns n simmpi rank threads while it runs. Admitting
// trials by *count* would oversubscribe the machine (8 concurrent 8-rank
// trials = 64 runnable threads on an 8-core host), so the executor admits
// queued tasks by their *rank weight* instead: the sum of in-flight
// weights never exceeds the budget (== worker count). A serial sweep
// saturates every core with weight-1 trials while an 8-rank campaign on 8
// cores runs one trial at a time — both at full hardware utilisation.
//
// Determinism contract: the executor only decides *when* a task runs,
// never what it computes. Campaign code keeps results bit-identical to
// serial execution by giving every trial its own seeded RNG stream and
// merging per-trial outcomes in trial order (see CampaignRunner::run).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace resilience::harness {

class Executor {
 public:
  struct Task {
    /// Rank threads the task occupies while running; clamped to
    /// [1, budget] at submission so oversized deployments still run
    /// (alone) rather than starve.
    int weight = 1;
    std::function<void()> fn;
  };

  /// max_workers <= 0 resolves via resolve_workers(). A 1-worker executor
  /// spawns no threads; run() then executes batches inline on the caller.
  explicit Executor(int max_workers = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Worker count; also the rank-concurrency budget.
  [[nodiscard]] int workers() const noexcept { return workers_; }

  /// Run every task to completion and return. Tasks are admitted in FIFO
  /// order as their weight fits the remaining budget. Safe to call from
  /// several threads at once — concurrent batches interleave in the one
  /// queue under the one budget (how run_study overlaps its phases).
  /// Called from inside one of this pool's workers (or any Executor's
  /// worker), the batch runs inline on the caller instead, so nested
  /// submission cannot deadlock the pool.
  /// If tasks threw, the lowest-index exception is rethrown after all
  /// tasks of the batch finished.
  void run(std::vector<Task> tasks);

  /// Effective worker count: `requested` if > 0, else the
  /// RESILIENCE_THREADS environment variable if set, else
  /// std::thread::hardware_concurrency() (1 if unknown).
  static int resolve_workers(int requested) noexcept;

 private:
  /// Completion state of one run() call; lives on the caller's stack.
  struct Batch {
    std::size_t pending = 0;
    std::size_t error_index = 0;
    std::exception_ptr error;
    std::condition_variable done;
  };
  struct Queued {
    Batch* batch;
    std::size_t index;
    int weight;
    std::function<void()> fn;
  };

  void worker_main();
  static void run_inline(std::vector<Task>& tasks);

  int workers_ = 1;
  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<Queued> queue_;
  int available_ = 0;  ///< unclaimed budget units, in [0, workers_]
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace resilience::harness
