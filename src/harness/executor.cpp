#include "harness/executor.hpp"

#include <algorithm>

#include "util/options.hpp"

namespace resilience::harness {

namespace {
// Set while a thread is executing pool tasks; run() from such a thread
// falls back to inline execution instead of enqueueing and waiting on
// workers that may all be blocked the same way.
thread_local bool tl_in_worker = false;
}  // namespace

int Executor::resolve_workers(int requested) noexcept {
  if (requested > 0) return requested;
  const int configured = util::RuntimeOptions::global().threads;
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Executor::Executor(int max_workers)
    : workers_(std::max(resolve_workers(max_workers), 1)),
      available_(workers_) {
  if (workers_ <= 1) return;
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void Executor::run_inline(std::vector<Task>& tasks) {
  std::exception_ptr first;
  const bool outer = !tl_in_worker;
  if (outer) tl_in_worker = true;
  for (auto& task : tasks) {
    try {
      task.fn();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (outer) tl_in_worker = false;
  if (first) std::rethrow_exception(first);
}

void Executor::run(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  if (workers_ <= 1 || tl_in_worker) {
    run_inline(tasks);
    return;
  }

  Batch batch;
  batch.pending = tasks.size();
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queue_.push_back({&batch, i, std::clamp(tasks[i].weight, 1, workers_),
                        std::move(tasks[i].fn)});
    }
  }
  ready_.notify_all();

  std::unique_lock lock(mu_);
  batch.done.wait(lock, [&] { return batch.pending == 0; });
  if (batch.error) std::rethrow_exception(batch.error);
}

void Executor::worker_main() {
  tl_in_worker = true;
  std::unique_lock lock(mu_);
  for (;;) {
    // Strict FIFO admission: everyone waits for the head task to fit, so
    // heavy tasks cannot be starved by a stream of light ones.
    ready_.wait(lock, [&] {
      return stop_ || (!queue_.empty() && queue_.front().weight <= available_);
    });
    if (stop_) return;

    Queued item = std::move(queue_.front());
    queue_.pop_front();
    available_ -= item.weight;
    if (!queue_.empty() && queue_.front().weight <= available_) {
      ready_.notify_one();
    }
    lock.unlock();

    std::exception_ptr error;
    try {
      item.fn();
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    available_ += item.weight;
    Batch& batch = *item.batch;
    if (error && (!batch.error || item.index < batch.error_index)) {
      batch.error = error;
      batch.error_index = item.index;
    }
    if (--batch.pending == 0) batch.done.notify_all();
    // Returned weight may make the (possibly heavy) head admissible.
    ready_.notify_all();
  }
}

}  // namespace resilience::harness
