// Campaign persistence: serialize campaign results to JSON and load them
// back, so expensive fault-injection campaigns (the serial sweeps and
// small-scale profiles the model consumes) can be collected once —
// possibly on another machine — and reused across studies.
#pragma once

#include <string>

#include "harness/campaign.hpp"
#include "util/json.hpp"

namespace resilience::harness {

/// Campaign -> JSON value (schema versioned via a "version" field).
util::Json to_json(const CampaignResult& result);

/// Golden run -> JSON value, with full fidelity: profiles, signature,
/// max_rank_ops, and — unlike the campaign schema's runtime-only view —
/// the captured boundary checkpoints (digests, op profiles, base64 rank
/// state), so a golden run loaded back from disk drives the checkpoint
/// fast path exactly like a freshly profiled one. Used by the on-disk
/// GoldenStore; versioned via its own "version" field.
util::Json golden_to_json(const GoldenRun& golden);

/// JSON value -> golden run; throws util::JsonError on schema mismatch or
/// malformed shape.
GoldenRun golden_from_json(const util::Json& json);

/// JSON value -> campaign; throws util::JsonError on schema mismatch.
CampaignResult campaign_from_json(const util::Json& json);

/// Write a campaign to `path` (pretty-printed); throws std::runtime_error
/// on I/O failure.
void save_campaign(const std::string& path, const CampaignResult& result);

/// Load a campaign from `path`; throws std::runtime_error on I/O failure
/// and util::JsonError on malformed content.
CampaignResult load_campaign(const std::string& path);

/// Merge two campaigns of the same deployment shape (same app config is
/// the caller's responsibility; same nranks/errors/filters are checked)
/// into one with pooled statistics — the incremental-collection workflow:
/// run 400 tests today under seed A, 400 tomorrow under seed B, analyze
/// 800. The goldens must match bit-for-bit (same app + scale guarantee
/// this); wall time adds. Throws simmpi::UsageError on mismatch.
CampaignResult merge_campaigns(const CampaignResult& a,
                               const CampaignResult& b);

}  // namespace resilience::harness
