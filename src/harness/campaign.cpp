#include "harness/campaign.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "harness/executor.hpp"
#include "harness/golden_cache.hpp"
#include "simmpi/rank_team.hpp"
#include "simmpi/runtime.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace resilience::harness {

namespace {

/// Append the injection points of one drawn dynamic-op index, expanding
/// the deployment's fault pattern (operand, bit positions, width).
void expand_pattern(const DeploymentConfig& cfg, std::uint64_t idx,
                    util::Xoshiro256& rng, fsefi::InjectionPlan& plan) {
  const auto operand = static_cast<std::uint8_t>(rng.uniform_below(2));
  switch (cfg.pattern) {
    case fsefi::FaultPattern::SingleBit:
      plan.points.push_back(
          {idx, operand, static_cast<std::uint8_t>(rng.uniform_below(64)), 1});
      break;
    case fsefi::FaultPattern::DoubleBit: {
      // Two distinct random bits of the same operand.
      const auto bits = rng.sample_distinct(64, 2);
      for (auto bit : bits) {
        plan.points.push_back({idx, operand, static_cast<std::uint8_t>(bit), 1});
      }
      break;
    }
    case fsefi::FaultPattern::Burst4:
      plan.points.push_back(
          {idx, operand, static_cast<std::uint8_t>(rng.uniform_below(61)), 4});
      break;
  }
}

/// Draw the injection plan of one trial: a target rank plus
/// `errors_per_test` distinct dynamic-op indices in that rank's filtered
/// op stream, each with a random bit and operand.
std::pair<int, fsefi::InjectionPlan> draw_plan(
    const DeploymentConfig& cfg, const GoldenRun& golden,
    const std::vector<std::uint64_t>& rank_ops, std::uint64_t total_ops,
    util::Xoshiro256& rng) {
  // Pick the target rank.
  int target = 0;
  if (cfg.selection == TargetSelection::UniformInstruction) {
    std::uint64_t pick = rng.uniform_below(total_ops);
    for (int r = 0; r < cfg.nranks; ++r) {
      const std::uint64_t ops = rank_ops[static_cast<std::size_t>(r)];
      if (pick < ops) {
        target = r;
        break;
      }
      pick -= ops;
    }
  } else {
    // Uniform over ranks with a non-empty sample space.
    std::vector<int> eligible;
    for (int r = 0; r < cfg.nranks; ++r) {
      if (rank_ops[static_cast<std::size_t>(r)] >=
          static_cast<std::uint64_t>(cfg.errors_per_test)) {
        eligible.push_back(r);
      }
    }
    if (eligible.empty()) {
      throw std::runtime_error("no rank has enough eligible operations");
    }
    target = eligible[rng.uniform_below(eligible.size())];
  }

  const std::uint64_t ops = rank_ops[static_cast<std::size_t>(target)];
  const auto x = static_cast<std::uint64_t>(cfg.errors_per_test);
  if (ops < x) {
    throw std::runtime_error("target rank has fewer eligible ops than errors");
  }
  std::vector<std::uint64_t> indices = rng.sample_distinct(ops, x);
  std::sort(indices.begin(), indices.end());

  fsefi::InjectionPlan plan;
  plan.kinds = cfg.kinds;
  plan.regions = cfg.regions;
  plan.points.reserve(indices.size());
  for (std::uint64_t idx : indices) {
    expand_pattern(cfg, idx, rng, plan);
  }
  (void)golden;
  return {target, std::move(plan)};
}

/// Count of one outcome in a tally, by outcome ordinal (0 = Success,
/// 1 = SDC, 2 = Failure) — the iteration order the adaptive stop rule
/// uses.
std::size_t outcome_count(const FaultInjectionResult& tally,
                          int ordinal) noexcept {
  switch (ordinal) {
    case 0:
      return tally.success;
    case 1:
      return tally.sdc;
    default:
      return tally.failure;
  }
}

}  // namespace

const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::Success:
      return "Success";
    case Outcome::SDC:
      return "SDC";
    case Outcome::Failure:
      return "Failure";
  }
  return "?";
}

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::Converged:
      return "converged";
    case StopReason::TrialCap:
      return "trial-cap";
  }
  return "?";
}

AdaptiveConfig AdaptiveConfig::from_runtime() {
  const auto& opt = util::RuntimeOptions::global();
  AdaptiveConfig cfg;
  cfg.enabled = opt.adaptive;
  cfg.batch = opt.adaptive_batch;
  cfg.min_trials = opt.adaptive_min_trials;
  cfg.ci_half_width = opt.adaptive_ci_half_width;
  cfg.ci_relative = opt.adaptive_ci_relative;
  cfg.stratify = opt.adaptive_stratify;
  return cfg;
}

double signature_deviation(const std::vector<double>& a,
                           const std::vector<double>& b, double floor) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i])) return std::numeric_limits<double>::infinity();
    const double scale = std::max(std::abs(b[i]), floor);
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

Outcome CampaignRunner::classify(const RunOutput& out,
                                 const std::vector<double>& golden_signature,
                                 double tolerance) {
  if (!out.runtime.ok || !out.result.has_value()) return Outcome::Failure;
  const auto& sig = out.result->signature;
  if (sig == golden_signature) return Outcome::Success;  // bit-identical
  const double dev = signature_deviation(sig, golden_signature);
  // "Different from the fault-free run but passes the application
  // checkers" (paper Success case 1).
  return dev <= tolerance ? Outcome::Success : Outcome::SDC;
}

std::vector<double> CampaignResult::propagation_probabilities() const {
  if (adaptive.has_value() && !adaptive->propagation.empty()) {
    return adaptive->propagation;
  }
  std::size_t injected_total = 0;
  for (std::size_t x = 1; x < contamination_hist.size(); ++x) {
    injected_total += contamination_hist[x];
  }
  std::vector<double> r(static_cast<std::size_t>(config.nranks), 0.0);
  if (injected_total == 0) return r;
  for (std::size_t x = 1; x < contamination_hist.size(); ++x) {
    r[x - 1] = static_cast<double>(contamination_hist[x]) /
               static_cast<double>(injected_total);
  }
  return r;
}

CampaignResult CampaignRunner::run(const apps::App& app,
                                   const DeploymentConfig& cfg) {
  return run(app, cfg, CampaignContext{});
}

CampaignResult CampaignRunner::run(const apps::App& app,
                                   const DeploymentConfig& cfg,
                                   const CampaignContext& context) {
  if (cfg.errors_per_test < 1) {
    throw std::invalid_argument("errors_per_test must be >= 1");
  }
  // The campaign's accounting domain. Every count below — whether from
  // this thread, an executor worker running a trial chunk, or a rank
  // thread inside a job — lands here; totals roll up into the study's
  // scope (if any) when this scope dies.
  telemetry::MetricScope metrics(context.metrics_parent);
  telemetry::TraceSpan span("harness", "campaign", "trials", cfg.trials);

  CampaignResult result;
  result.config = cfg;
  {
    telemetry::ScopeGuard guard(&metrics);
    telemetry::count(telemetry::Counter::HarnessCampaigns);
    if (context.golden_cache != nullptr) {
      result.golden = *context.golden_cache->get_or_profile(
          app, cfg.nranks, cfg.deadlock_timeout, context.executor);
    } else {
      result.golden = profile_app(app, cfg.nranks, cfg.deadlock_timeout);
      telemetry::count(telemetry::Counter::HarnessGoldenProfiles);
    }
  }

  std::vector<std::uint64_t> rank_ops;
  rank_ops.reserve(result.golden.profiles.size());
  std::uint64_t total_ops = 0;
  for (const auto& prof : result.golden.profiles) {
    rank_ops.push_back(prof.matching(cfg.kinds, cfg.regions));
    total_ops += rank_ops.back();
  }
  if (total_ops == 0) {
    throw std::runtime_error(app.label() +
                             ": no dynamic operations match the deployment's "
                             "kind/region filters");
  }

  RunOptions run_opts;
  run_opts.deadlock_timeout = cfg.deadlock_timeout;
  run_opts.op_budget = static_cast<std::uint64_t>(
                           cfg.hang_budget_factor *
                           static_cast<double>(result.golden.max_rank_ops)) +
                       cfg.hang_budget_slack;
  // Trial fast-forward (DESIGN.md §9): hand every trial the boundary
  // checkpoints the golden pre-pass captured. Null when the kill switch
  // was off at capture time.
  if (checkpoint_enabled() && result.golden.checkpoints != nullptr) {
    run_opts.checkpoints = result.golden.checkpoints.get();
  }

  result.contamination_hist.assign(static_cast<std::size_t>(cfg.nranks) + 1,
                                   0);
  result.by_contamination.assign(static_cast<std::size_t>(cfg.nranks) + 1,
                                 FaultInjectionResult{});

  // One trial: the unit of work every execution path shares. A trial's
  // randomness is a pure function of its identity (trial index, or
  // (stratum, index-within-stratum) under the adaptive engine), which is
  // what keeps all paths bit-identical across worker counts.
  struct TrialOutcome {
    Outcome outcome = Outcome::Failure;
    int contaminated = -1;
  };
  auto execute_trial = [&](std::size_t trial_tag, int target,
                           fsefi::InjectionPlan plan) -> TrialOutcome {
    // Per-trial scope push: the calling thread may be this function's
    // thread (inline path) or an executor worker (chunked path); either
    // way the trial's counts must land in this campaign's scope.
    telemetry::ScopeGuard guard(&metrics);
    telemetry::TraceSpan trial_span("harness", "trial", "index", trial_tag);
    std::vector<fsefi::InjectionPlan> plans(
        static_cast<std::size_t>(cfg.nranks));
    plans[static_cast<std::size_t>(target)] = std::move(plan);
    const RunOutput out = run_app_once(app, cfg.nranks, plans, run_opts);
    telemetry::count(telemetry::Counter::HarnessTrials);
    if (out.checkpoint_restored) {
      telemetry::count(telemetry::Counter::HarnessCheckpointRestores);
      telemetry::trace_instant(
          "harness", "checkpoint_restore", "iteration",
          static_cast<std::uint64_t>(out.resume_iteration));
    }
    if (out.early_exit) {
      telemetry::count(telemetry::Counter::HarnessEarlyExits);
      telemetry::trace_instant("harness", "early_exit");
    }
    if (out.hang) {
      telemetry::count(telemetry::Counter::HarnessHangAborts);
    } else if (out.runtime.deadlocked) {
      telemetry::count(telemetry::Counter::HarnessDeadlockAborts);
      telemetry::trace_instant("harness", "deadlock_abort");
    }
    const int contaminated = out.contaminated_ranks();
    if (contaminated >= 0) {
      telemetry::record(telemetry::Histogram::HarnessContaminatedRanks,
                        static_cast<std::uint64_t>(contaminated));
    }
    if (out.runtime.ok) {
      // Only clean completions: the op totals of a torn-down job depend on
      // where the surviving ranks happened to stop, and histograms take
      // part in the logical-determinism contract.
      std::uint64_t trial_ops = 0;
      for (const auto& prof : out.profiles) trial_ops += prof.total();
      telemetry::record(telemetry::Histogram::HarnessTrialOps, trial_ops);
    }
    return {classify(out, result.golden.signature, app.checker_tolerance()),
            contaminated};
  };
  // Uniform drawing, seeded from the global trial index — the fixed-mode
  // stream (and the adaptive engine's fallback when it cannot stratify).
  auto run_trial = [&](std::size_t trial) -> TrialOutcome {
    util::Xoshiro256 rng(util::derive_seed(cfg.seed, trial));
    auto [target, plan] =
        draw_plan(cfg, result.golden, rank_ops, total_ops, rng);
    return execute_trial(trial, target, std::move(plan));
  };

  Executor* executor = context.executor;
  std::unique_ptr<Executor> local_executor;
  if (executor == nullptr && cfg.trials > 1) {
    const int workers = Executor::resolve_workers(cfg.max_workers);
    if (workers > 1) {
      local_executor = std::make_unique<Executor>(workers);
      executor = local_executor.get();
    }
  }

  // The thread footprint of one trial's job: nranks in threads mode, the
  // resolved fiber-worker count in fibers mode. Both the rank-team
  // prewarm width and the executor admission weight follow it.
  const int width = simmpi::Runtime::job_width(cfg.nranks);

  if (executor != nullptr && width > 1 && simmpi::RankTeamPool::enabled()) {
    // Pay the rank-team thread spawns before the timed trial loop: each
    // concurrently running trial checks out its own team of this width.
    telemetry::ScopeGuard guard(&metrics);
    const int concurrent = std::max(1, executor->workers() / width);
    simmpi::RankTeamPool::instance().prewarm(width, concurrent);
  }

  // Run trials [0, n) of `body` to completion and return the
  // serial-equivalent seconds. Inline when no executor; otherwise
  // contiguous chunks, several per worker: large enough to amortise
  // queueing, small enough that the tail stays balanced.
  auto run_chunked = [&](std::size_t n, auto&& body) -> double {
    if (n == 0) return 0.0;
    if (executor == nullptr) {
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; ++i) body(i);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    }
    const std::size_t chunk_target =
        static_cast<std::size_t>(executor->workers()) * 4;
    const std::size_t nchunks =
        std::min(n, std::max<std::size_t>(chunk_target, 1));
    const std::size_t chunk = (n + nchunks - 1) / nchunks;
    std::vector<double> chunk_seconds(nchunks, 0.0);
    std::vector<Executor::Task> tasks;
    tasks.reserve(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, n);
      if (lo >= hi) break;
      tasks.push_back({width, [&, c, lo, hi] {
                         const auto start = std::chrono::steady_clock::now();
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                         chunk_seconds[c] =
                             std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
                       }});
    }
    executor->run(std::move(tasks));
    // Serial-equivalent injection time: execution spans summed across
    // workers, in chunk order so the sum itself is reproducible.
    double total = 0.0;
    for (double s : chunk_seconds) total += s;
    return total;
  };

  // Fold one finished trial into the campaign tallies. Always called in
  // deterministic trial order — the parallel path stays bit-identical to
  // the serial one no matter how chunks were scheduled.
  auto merge_trial = [&](const TrialOutcome& t) {
    result.overall.add(t.outcome);
    if (t.contaminated >= 0 &&
        t.contaminated < static_cast<int>(result.contamination_hist.size())) {
      result.contamination_hist[static_cast<std::size_t>(t.contaminated)] += 1;
      result.by_contamination[static_cast<std::size_t>(t.contaminated)].add(
          t.outcome);
    }
  };

  if (!cfg.adaptive.enabled) {
    std::vector<TrialOutcome> outcomes(cfg.trials);
    result.wall_seconds = run_chunked(cfg.trials, [&](std::size_t trial) {
      outcomes[trial] = run_trial(trial);
    });
    for (const TrialOutcome& t : outcomes) merge_trial(t);
    result.metrics = metrics.snapshot();
    return result;
  }

  // ---- adaptive engine (DESIGN.md §12) ------------------------------------
  // CI-driven early stopping over (optionally) stratified sampling. The
  // stop rule runs only at batch boundaries on tallies merged in
  // deterministic (stratum, index) order, so for a given seed the
  // stopping point — and therefore every classified outcome — is
  // reproducible across worker counts and scheduler modes.
  const AdaptiveConfig& ad = cfg.adaptive;
  const std::size_t cap = cfg.trials;
  const std::size_t batch_size = std::max<std::size_t>(1, ad.batch);
  const std::size_t min_trials =
      std::min(std::max<std::size_t>(1, ad.min_trials), cap);

  // Stratification needs single-error UniformInstruction deployments:
  // decile ranges are defined on single op indices, and multi-error
  // distinct draws do not decompose into independent strata.
  const bool want_strata =
      ad.stratify && cfg.errors_per_test == 1 &&
      cfg.selection == TargetSelection::UniformInstruction && ad.deciles >= 1;

  // One stratum of the injection space with its running tallies.
  struct StratumState {
    fsefi::Stratum stratum;
    std::size_t id = 0;  ///< grid index: RNG substream + ordering key
    std::vector<std::uint64_t> rank_pop;  ///< per-rank decile population
    std::uint64_t population = 0;
    double weight = 0.0;  ///< population / total_ops (the W_s of §12)
    FaultInjectionResult tally;
    std::vector<std::size_t> hist;  ///< contamination counts
    std::size_t drawn = 0;          ///< trials assigned so far
  };
  std::vector<StratumState> strata;
  if (want_strata) {
    for (int r = 0; r < fsefi::kNumRegions; ++r) {
      if (!fsefi::contains(cfg.regions, static_cast<fsefi::Region>(r)))
        continue;
      for (int k = 0; k < fsefi::kNumOpKinds; ++k) {
        if (!fsefi::contains(cfg.kinds, static_cast<fsefi::OpKind>(k)))
          continue;
        for (int d = 0; d < ad.deciles; ++d) {
          StratumState s;
          s.stratum = {static_cast<fsefi::Region>(r),
                       static_cast<fsefi::OpKind>(k), d, ad.deciles};
          s.id = fsefi::stratum_index(s.stratum);
          s.rank_pop.reserve(result.golden.profiles.size());
          for (const auto& prof : result.golden.profiles) {
            const std::uint64_t pop = fsefi::stratum_population(prof, s.stratum);
            s.rank_pop.push_back(pop);
            s.population += pop;
          }
          if (s.population == 0) continue;  // nothing to hit: drop
          s.weight = static_cast<double>(s.population) /
                     static_cast<double>(total_ops);
          s.hist.assign(static_cast<std::size_t>(cfg.nranks) + 1, 0);
          strata.push_back(std::move(s));
        }
      }
    }
  }
  const bool use_strata = want_strata && !strata.empty();

  // A stratified trial: rank weighted by its share of the stratum, then a
  // uniform op index inside that rank's decile range of the (region,
  // kind) cell stream. The plan narrows its filters to the single cell,
  // so op_index counts within the cell's own dynamic stream. Seeded from
  // (stratum grid id, index-within-stratum): independent of batch
  // boundaries and allocation history.
  auto run_stratum_trial = [&](const StratumState& s, std::size_t j,
                               std::size_t tag) -> TrialOutcome {
    util::Xoshiro256 rng(util::derive_seed(cfg.seed, s.id, j));
    std::uint64_t pick = rng.uniform_below(s.population);
    int target = 0;
    for (int r = 0; r < cfg.nranks; ++r) {
      const std::uint64_t pop = s.rank_pop[static_cast<std::size_t>(r)];
      if (pick < pop) {
        target = r;
        break;
      }
      pick -= pop;
    }
    const auto& prof =
        result.golden.profiles[static_cast<std::size_t>(target)];
    const std::uint64_t cell =
        prof.counts[static_cast<int>(s.stratum.region)]
                   [static_cast<int>(s.stratum.kind)];
    const auto [lo, hi] =
        fsefi::decile_range(cell, s.stratum.decile, s.stratum.ndeciles);
    fsefi::InjectionPlan plan;
    plan.kinds = s.stratum.kinds();
    plan.regions = s.stratum.regions();
    expand_pattern(cfg, lo + rng.uniform_below(hi - lo), rng, plan);
    return execute_trial(tag, target, std::move(plan));
  };

  // Per-batch allocation: one trial to every still-unsampled stratum
  // first (largest population first — the stop rule cannot fire until
  // every live stratum has data), then largest-remainder apportionment of
  // the rest by W_s * sqrt(v_s) — proportional on the first batch (all
  // v_s equal) and Neyman-refined once per-stratum variance is observed.
  auto allocate_batch = [&](std::size_t n) -> std::vector<std::size_t> {
    std::vector<std::size_t> alloc(strata.size(), 0);
    std::vector<std::size_t> order(strata.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (strata[a].population != strata[b].population)
        return strata[a].population > strata[b].population;
      return strata[a].id < strata[b].id;
    });
    for (std::size_t i : order) {
      if (n == 0) break;
      if (strata[i].drawn + alloc[i] == 0) {
        alloc[i] += 1;
        --n;
      }
    }
    if (n == 0) return alloc;
    std::vector<double> w(strata.size(), 0.0);
    double wsum = 0.0;
    for (std::size_t i = 0; i < strata.size(); ++i) {
      const auto& s = strata[i];
      // Multinomial spread sum_o p_o(1 - p_o), shrunk toward the center
      // ((k+2)/(n+4)) so a handful of same-outcome trials cannot zero a
      // stratum out of the allocation; 2/3 (the maximal spread) until a
      // stratum has enough data to say otherwise.
      double v = 2.0 / 3.0;
      if (s.tally.trials >= 8) {
        v = 0.0;
        const double ns = static_cast<double>(s.tally.trials);
        for (int o = 0; o < 3; ++o) {
          const double pv =
              (static_cast<double>(outcome_count(s.tally, o)) + 2.0) /
              (ns + 4.0);
          v += pv * (1.0 - pv);
        }
        v = std::max(v, 1e-4);  // converged strata keep a trickle share
      }
      w[i] = s.weight * std::sqrt(v);
      wsum += w[i];
    }
    std::vector<std::pair<double, std::size_t>> frac;
    frac.reserve(strata.size());
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < strata.size(); ++i) {
      const double quota = static_cast<double>(n) * w[i] / wsum;
      const auto base = static_cast<std::size_t>(quota);
      alloc[i] += base;
      assigned += base;
      frac.emplace_back(quota - static_cast<double>(base), i);
    }
    std::sort(frac.begin(), frac.end(),
              [&](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return strata[a.second].id < strata[b.second].id;
              });
    for (std::size_t r = 0; assigned < n; ++r) {
      alloc[frac[r % frac.size()].second] += 1;
      ++assigned;
    }
    return alloc;
  };

  // Rate estimate + CI per outcome on the current tallies. Post-
  // stratified when strata are in play and all are covered; exact
  // Clopper–Pearson bounds (widened to contain the post-stratified
  // point) on the rare tail, where the normal approximations under-cover.
  auto compute_envelope = [&](bool covered) {
    std::array<OutcomeInterval, 3> env;
    const std::size_t n_total = result.overall.trials;
    for (int o = 0; o < 3; ++o) {
      const std::size_t k = outcome_count(result.overall, o);
      double est = n_total == 0
                       ? 0.0
                       : static_cast<double>(k) / static_cast<double>(n_total);
      double strat_var = 0.0;
      if (use_strata && covered) {
        est = 0.0;
        for (const auto& s : strata) {
          const double ns = static_cast<double>(s.tally.trials);
          const double ks = static_cast<double>(outcome_count(s.tally, o));
          // Shrunk rate in the variance term only: guards the
          // zero-variance trap of small all-same-outcome samples.
          const double pv = (ks + 2.0) / (ns + 4.0);
          est += s.weight * (ks / ns);
          strat_var += s.weight * s.weight * pv * (1.0 - pv) / ns;
        }
      }
      const double pooled =
          n_total == 0 ? 0.0
                       : static_cast<double>(k) / static_cast<double>(n_total);
      const std::size_t complement = n_total - k;
      const bool rare = pooled < ad.rare_threshold ||
                        1.0 - pooled < ad.rare_threshold ||
                        std::min(k, complement) < 8;
      OutcomeInterval iv;
      iv.rate = est;
      if (rare) {
        const auto cp =
            util::clopper_pearson_interval(k, n_total, ad.confidence_z);
        iv.lo = std::min(cp.lo, est);
        iv.hi = std::max(cp.hi, est);
        iv.exact = true;
      } else if (use_strata && covered) {
        const double half = ad.confidence_z * std::sqrt(strat_var);
        iv.lo = std::max(0.0, est - half);
        iv.hi = std::min(1.0, est + half);
      } else {
        const auto wi = util::wilson_interval(k, n_total, ad.confidence_z);
        iv.lo = wi.lo;
        iv.hi = wi.hi;
      }
      env[static_cast<std::size_t>(o)] = iv;
    }
    return env;
  };
  auto target_half_width = [&](double est) {
    if (ad.ci_relative > 0.0)
      return ad.ci_relative * std::max(est, ad.rare_threshold);
    return ad.ci_half_width;
  };

  struct WorkItem {
    std::size_t stratum = 0;  ///< index into `strata` (unused unstratified)
    std::size_t j = 0;        ///< index within the stratum's substream
    std::size_t tag = 0;      ///< global executed index (trace label)
  };
  std::size_t executed = 0;
  StopReason stop = StopReason::TrialCap;
  std::array<OutcomeInterval, 3> envelope{};
  while (executed < cap) {
    const std::size_t n = std::min(batch_size, cap - executed);
    std::vector<WorkItem> items;
    items.reserve(n);
    if (use_strata) {
      const auto alloc = allocate_batch(n);
      for (std::size_t i = 0; i < strata.size(); ++i) {
        for (std::size_t a = 0; a < alloc[i]; ++a) {
          items.push_back({i, strata[i].drawn + a, 0});
        }
        strata[i].drawn += alloc[i];
      }
    } else {
      for (std::size_t t = 0; t < n; ++t) items.push_back({0, executed + t, 0});
    }
    for (std::size_t p = 0; p < items.size(); ++p) items[p].tag = executed + p;

    std::vector<TrialOutcome> out(items.size());
    result.wall_seconds += run_chunked(items.size(), [&](std::size_t i) {
      const WorkItem& it = items[i];
      out[i] = use_strata ? run_stratum_trial(strata[it.stratum], it.j, it.tag)
                          : run_trial(it.j);
    });
    // Merge in (stratum, index) order — fixed before the batch ran.
    for (std::size_t i = 0; i < items.size(); ++i) {
      merge_trial(out[i]);
      if (use_strata) {
        auto& s = strata[items[i].stratum];
        s.tally.add(out[i].outcome);
        const int c = out[i].contaminated;
        if (c >= 0 && c < static_cast<int>(s.hist.size())) {
          s.hist[static_cast<std::size_t>(c)] += 1;
        }
      }
    }
    executed += items.size();

    bool covered = true;
    if (use_strata) {
      for (const auto& s : strata) covered = covered && s.tally.trials > 0;
    }
    envelope = compute_envelope(covered);
    if (executed >= min_trials && covered) {
      bool converged = true;
      for (const auto& iv : envelope) {
        converged = converged && iv.half_width() <= target_half_width(iv.rate);
      }
      if (converged) {
        stop = StopReason::Converged;
        break;
      }
    }
  }

  AdaptiveStats stats;
  stats.trials_requested = cap;
  stats.trials_executed = executed;
  stats.stop_reason = stop;
  stats.stratified = use_strata;
  stats.strata = use_strata ? strata.size() : 1;
  stats.success = envelope[0];
  stats.sdc = envelope[1];
  stats.failure = envelope[2];
  if (use_strata) {
    // Post-stratified r_x: each stratum's contamination distribution
    // weighted by its population share, renormalized over the trials
    // whose contamination is known (mirrors the raw-histogram rule).
    std::vector<double> q(static_cast<std::size_t>(cfg.nranks), 0.0);
    double mass = 0.0;
    for (const auto& s : strata) {
      if (s.tally.trials == 0) continue;
      const double ns = static_cast<double>(s.tally.trials);
      for (std::size_t x = 1; x < s.hist.size(); ++x) {
        const double share =
            s.weight * static_cast<double>(s.hist[x]) / ns;
        q[x - 1] += share;
        mass += share;
      }
    }
    if (mass > 0.0) {
      for (double& v : q) v /= mass;
      stats.propagation = std::move(q);
    }
  }
  result.adaptive = stats;
  {
    telemetry::ScopeGuard guard(&metrics);
    telemetry::count(telemetry::Counter::CampaignTrialsSaved,
                     static_cast<std::uint64_t>(cap - executed));
    telemetry::count(telemetry::Counter::CampaignStrata,
                     static_cast<std::uint64_t>(stats.strata));
    telemetry::trace_instant("harness",
                             stop == StopReason::Converged
                                 ? "adaptive_stop_converged"
                                 : "adaptive_stop_trial_cap",
                             "executed",
                             static_cast<std::uint64_t>(executed));
  }
  // Workers have quiesced (executor->run returned / inline loop ended):
  // the merge is exact. The scope's destructor then rolls these totals up
  // into the study scope, if any.
  result.metrics = metrics.snapshot();
  return result;
}

}  // namespace resilience::harness
