#include "harness/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "harness/campaign_engine.hpp"
#include "harness/executor.hpp"
#include "harness/golden_cache.hpp"
#include "simmpi/rank_team.hpp"
#include "simmpi/runtime.hpp"
#include "util/options.hpp"

namespace resilience::harness {

const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::Success:
      return "Success";
    case Outcome::SDC:
      return "SDC";
    case Outcome::Failure:
      return "Failure";
    case Outcome::Crash:
      return "Crash";
  }
  return "?";
}

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::Converged:
      return "converged";
    case StopReason::TrialCap:
      return "trial-cap";
  }
  return "?";
}

AdaptiveConfig AdaptiveConfig::from_runtime() {
  const auto& opt = util::RuntimeOptions::global();
  AdaptiveConfig cfg;
  cfg.enabled = opt.adaptive;
  cfg.batch = opt.adaptive_batch;
  cfg.min_trials = opt.adaptive_min_trials;
  cfg.ci_half_width = opt.adaptive_ci_half_width;
  cfg.ci_relative = opt.adaptive_ci_relative;
  cfg.stratify = opt.adaptive_stratify;
  return cfg;
}

double signature_deviation(const std::vector<double>& a,
                           const std::vector<double>& b, double floor) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i])) return std::numeric_limits<double>::infinity();
    const double scale = std::max(std::abs(b[i]), floor);
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

Outcome CampaignRunner::classify(const RunOutput& out,
                                 const std::vector<double>& golden_signature,
                                 double tolerance) {
  // A planned rank death is the fault itself, not a symptom of one: the
  // abort that tears the job down classifies as Crash, not Failure.
  if (out.crashed) return Outcome::Crash;
  if (!out.runtime.ok || !out.result.has_value()) return Outcome::Failure;
  const auto& sig = out.result->signature;
  if (sig == golden_signature) return Outcome::Success;  // bit-identical
  const double dev = signature_deviation(sig, golden_signature);
  // "Different from the fault-free run but passes the application
  // checkers" (paper Success case 1).
  return dev <= tolerance ? Outcome::Success : Outcome::SDC;
}

std::vector<double> CampaignResult::propagation_probabilities() const {
  if (adaptive.has_value() && !adaptive->propagation.empty()) {
    return adaptive->propagation;
  }
  std::size_t injected_total = 0;
  for (std::size_t x = 1; x < contamination_hist.size(); ++x) {
    injected_total += contamination_hist[x];
  }
  std::vector<double> r(static_cast<std::size_t>(config.nranks), 0.0);
  if (injected_total == 0) return r;
  for (std::size_t x = 1; x < contamination_hist.size(); ++x) {
    r[x - 1] = static_cast<double>(contamination_hist[x]) /
               static_cast<double>(injected_total);
  }
  return r;
}

CampaignResult CampaignRunner::run(const apps::App& app,
                                   const DeploymentConfig& cfg) {
  return run(app, cfg, CampaignContext{});
}

CampaignResult CampaignRunner::run(const apps::App& app,
                                   const DeploymentConfig& cfg,
                                   const CampaignContext& context) {
  if (cfg.errors_per_test < 1) {
    throw std::invalid_argument("errors_per_test must be >= 1");
  }
  // The campaign's accounting domain. Every count below — whether from
  // this thread, an executor worker running a trial chunk, or a rank
  // thread inside a job — lands here; totals roll up into the study's
  // scope (if any) when this scope dies.
  telemetry::MetricScope metrics(context.metrics_parent);
  telemetry::TraceSpan span("harness", "campaign", "trials", cfg.trials);

  CampaignResult result;
  result.config = cfg;
  {
    telemetry::ScopeGuard guard(&metrics);
    telemetry::count(telemetry::Counter::HarnessCampaigns);
    if (context.golden_cache != nullptr) {
      result.golden = *context.golden_cache->get_or_profile(
          app, cfg.nranks, cfg.deadlock_timeout, context.executor);
    } else {
      result.golden = profile_app(app, cfg.nranks, cfg.deadlock_timeout);
      telemetry::count(telemetry::Counter::HarnessGoldenProfiles);
    }
  }

  // The deterministic trial machinery (plan drawing, execution, strata) —
  // shared with the shard coordinator/worker path (src/shard), which is
  // why a sharded campaign is bit-identical to this in-process one.
  TrialSpace space(app, cfg, result.golden);

  result.contamination_hist.assign(static_cast<std::size_t>(cfg.nranks) + 1,
                                   0);
  result.by_contamination.assign(static_cast<std::size_t>(cfg.nranks) + 1,
                                 FaultInjectionResult{});

  Executor* executor = context.executor;
  std::unique_ptr<Executor> local_executor;
  if (executor == nullptr && cfg.trials > 1) {
    const int workers = Executor::resolve_workers(cfg.max_workers);
    if (workers > 1) {
      local_executor = std::make_unique<Executor>(workers);
      executor = local_executor.get();
    }
  }

  // The thread footprint of one trial's job: nranks in threads mode, the
  // resolved fiber-worker count in fibers mode. Both the rank-team
  // prewarm width and the executor admission weight follow it.
  const int width = simmpi::Runtime::job_width(cfg.nranks);

  if (executor != nullptr && width > 1 && simmpi::RankTeamPool::enabled()) {
    // Pay the rank-team thread spawns before the timed trial loop: each
    // concurrently running trial checks out its own team of this width.
    telemetry::ScopeGuard guard(&metrics);
    const int concurrent = std::max(1, executor->workers() / width);
    simmpi::RankTeamPool::instance().prewarm(width, concurrent);
  }

  // Run trials [0, n) of `body` to completion and return the
  // serial-equivalent seconds. Inline when no executor; otherwise
  // contiguous chunks, several per worker: large enough to amortise
  // queueing, small enough that the tail stays balanced.
  auto run_chunked = [&](std::size_t n, auto&& body) -> double {
    if (n == 0) return 0.0;
    if (executor == nullptr) {
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; ++i) body(i);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    }
    const std::size_t chunk_target =
        static_cast<std::size_t>(executor->workers()) * 4;
    const std::size_t nchunks =
        std::min(n, std::max<std::size_t>(chunk_target, 1));
    const std::size_t chunk = (n + nchunks - 1) / nchunks;
    std::vector<double> chunk_seconds(nchunks, 0.0);
    std::vector<Executor::Task> tasks;
    tasks.reserve(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, n);
      if (lo >= hi) break;
      tasks.push_back({width, [&, c, lo, hi] {
                         const auto start = std::chrono::steady_clock::now();
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                         chunk_seconds[c] =
                             std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
                       }});
    }
    executor->run(std::move(tasks));
    // Serial-equivalent injection time: execution spans summed across
    // workers, in chunk order so the sum itself is reproducible.
    double total = 0.0;
    for (double s : chunk_seconds) total += s;
    return total;
  };

  // Fold one finished trial into the campaign tallies. Always called in
  // deterministic trial order — the parallel path stays bit-identical to
  // the serial one no matter how chunks were scheduled.
  auto merge_trial = [&](const TrialResult& t) {
    result.overall.add(t.outcome);
    if (t.contaminated >= 0 &&
        t.contaminated < static_cast<int>(result.contamination_hist.size())) {
      result.contamination_hist[static_cast<std::size_t>(t.contaminated)] += 1;
      result.by_contamination[static_cast<std::size_t>(t.contaminated)].add(
          t.outcome);
    }
  };

  // One trial body: the executing thread may be this function's thread
  // (inline path) or an executor worker (chunked path); the scope push
  // makes the trial's counts land in this campaign's scope either way.
  auto run_ref = [&](const TrialRef& ref) -> TrialResult {
    telemetry::ScopeGuard guard(&metrics);
    return space.run(ref);
  };

  if (!cfg.adaptive.enabled) {
    std::vector<TrialResult> outcomes(cfg.trials);
    result.wall_seconds = run_chunked(cfg.trials, [&](std::size_t trial) {
      outcomes[trial] = run_ref({kNoStratum, trial, trial});
    });
    for (const TrialResult& t : outcomes) merge_trial(t);
    result.metrics = metrics.snapshot();
    return result;
  }

  // ---- adaptive engine (DESIGN.md §12) ------------------------------------
  // CI-driven early stopping over (optionally) stratified sampling. The
  // driver issues refs and evaluates the stop rule only at batch
  // boundaries on tallies folded in deterministic (stratum, index) order,
  // so for a given seed the stopping point — and therefore every
  // classified outcome — is reproducible across worker counts and
  // scheduler modes.
  AdaptiveDriver driver(cfg, space);
  std::vector<TrialRef> refs;
  while (!(refs = driver.next_batch()).empty()) {
    std::vector<TrialResult> out(refs.size());
    result.wall_seconds += run_chunked(
        refs.size(), [&](std::size_t i) { out[i] = run_ref(refs[i]); });
    // Merge in (stratum, index) order — fixed before the batch ran.
    for (const TrialResult& t : out) merge_trial(t);
    driver.fold(refs, out);
  }

  const AdaptiveStats stats = driver.stats();
  result.adaptive = stats;
  {
    telemetry::ScopeGuard guard(&metrics);
    telemetry::count(telemetry::Counter::CampaignTrialsSaved,
                     static_cast<std::uint64_t>(stats.trials_requested -
                                                stats.trials_executed));
    telemetry::count(telemetry::Counter::CampaignStrata,
                     static_cast<std::uint64_t>(stats.strata));
    telemetry::trace_instant("harness",
                             stats.stop_reason == StopReason::Converged
                                 ? "adaptive_stop_converged"
                                 : "adaptive_stop_trial_cap",
                             "executed",
                             static_cast<std::uint64_t>(stats.trials_executed));
  }
  // Workers have quiesced (executor->run returned / inline loop ended):
  // the merge is exact. The scope's destructor then rolls these totals up
  // into the study scope, if any.
  result.metrics = metrics.snapshot();
  return result;
}

}  // namespace resilience::harness
